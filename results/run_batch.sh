#!/bin/bash
# Sequential experiment batch; each output recorded under results/.
cd /root/repo
B=target/release
set -x
$B/exp_fig5                                             > results/exp_fig5.txt 2>&1
$B/exp_table8                                           > results/exp_table8.txt 2>&1
$B/exp_fig6   --budget-ms 1600                          > results/exp_fig6.txt 2>&1
$B/exp_trend  --budget-ms 1600                          > results/exp_trend.txt 2>&1
$B/exp_warmstart --evals 18                             > results/exp_warmstart.txt 2>&1
$B/exp_reduction --budget-ms 600                        > results/exp_reduction.txt 2>&1
$B/exp_table5 --datasets 12 --budget-ms 300             > results/exp_table5.txt 2>&1
$B/exp_fig7   --budget-ms 300                           > results/exp_fig7.txt 2>&1
$B/exp_fig8   --budget-ms 2000                          > results/exp_fig8.txt 2>&1
$B/exp_fig9   --budget-ms 2000                          > results/exp_fig9.txt 2>&1
$B/exp_fig10  --datasets 12 --budget-ms 400             > results/exp_fig10.txt 2>&1
$B/exp_fig11  --datasets 12 --budget-ms 400             > results/exp_fig11.txt 2>&1
$B/exp_deep_probe --evals 100                           > results/exp_deep_probe.txt 2>&1
$B/exp_table1 --datasets 12 --evals 120                 > results/exp_table1.txt 2>&1
$B/exp_fig2   --evals 2800                              > results/exp_fig2.txt 2>&1
$B/exp_table2 --evals 2800                              > results/exp_table2.txt 2>&1
$B/exp_patterns --datasets all --budget-ms 400          > results/exp_patterns.txt 2>&1
# table4_v2 deferred
echo BATCH_DONE > results/BATCH_DONE
