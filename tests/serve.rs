//! Integration tests of the fit-once / serve-many subsystem: zero
//! train/serve skew, quarantine routing, and the TCP path end-to-end.

use autofp::core::{EvalConfig, Evaluator};
use autofp::data::SynthConfig;
use autofp::models::classifier::ModelKind;
use autofp::models::Classifier;
use autofp::preprocess::{Pipeline, PreprocKind};
use autofp::serve::{
    fit_artifact, RowOutcome, ServeArtifact, ServeClient, ServeEngine, ServeServer,
};
use std::sync::Arc;

fn spread_dataset(name: &str, seed: u64) -> autofp::data::Dataset {
    let mut p = autofp::data::Personality::default();
    p.scale_spread = 5.0;
    p.skew = 0.3;
    p.class_sep = 1.8;
    SynthConfig::new(name, 300, 6, 3, seed).with_personality(p).generate()
}

fn full_pipeline() -> Pipeline {
    Pipeline::from_kinds(&[
        PreprocKind::StandardScaler,
        PreprocKind::PowerTransformer,
        PreprocKind::QuantileTransformer,
        PreprocKind::MinMaxScaler,
    ])
}

/// Round-trip an artifact through its wire bytes, as a served copy
/// would arrive on another machine.
fn round_tripped(artifact: ServeArtifact) -> ServeArtifact {
    ServeArtifact::decode(&artifact.encode()).expect("round trip")
}

/// The tentpole guarantee: serving an exported artifact reproduces the
/// in-search evaluation bit-for-bit — same split, same fitted
/// parameters, same model weights, same per-row predictions.
#[test]
fn serve_transform_has_zero_train_serve_skew() {
    let dataset = spread_dataset("skew-ds", 29);
    let pipeline = full_pipeline();
    for model in ModelKind::ALL {
        let config = EvalConfig { model, seed: 17, ..Default::default() };
        let artifact =
            round_tripped(fit_artifact(&dataset, &pipeline, &config).expect("export fits"));

        // The evaluator's view of the same configuration.
        let evaluator = Evaluator::new(&dataset, config);
        let trial = evaluator.evaluate(&pipeline);
        assert_eq!(
            artifact.meta.accuracy.to_bits(),
            trial.accuracy.to_bits(),
            "{model}: exported accuracy skewed from the in-search trial"
        );

        // Replay the evaluator's own fit path and compare the served
        // transform + prediction on every validation row.
        let (fitted, _train_x) = pipeline.fit_transform(&evaluator.split().train.x);
        let valid_x = fitted.transform_new(&evaluator.split().valid.x);

        let engine = ServeEngine::new(artifact);
        let rows: Vec<Vec<f64>> =
            evaluator.split().valid.x.rows_iter().map(<[f64]>::to_vec).collect();
        let report = engine.predict_batch(&rows, 1);
        assert_eq!(report.outcomes.len(), rows.len());
        for (i, outcome) in report.outcomes.iter().enumerate() {
            let RowOutcome::Predicted(served) = outcome else {
                panic!("{model}: clean validation row {i} was quarantined: {outcome:?}");
            };
            let in_search = engine.artifact().model.predict_row(valid_x.row(i));
            assert_eq!(
                *served, in_search,
                "{model}: row {i} served prediction skewed from in-search"
            );
        }

        // And the fitted pipelines agree bitwise on the matrices.
        let mut served_valid = evaluator.split().valid.x.clone();
        engine.artifact().pipeline.transform(&mut served_valid);
        let a = valid_x.as_slice().iter().map(|v| v.to_bits());
        let b = served_valid.as_slice().iter().map(|v| v.to_bits());
        assert!(a.eq(b), "{model}: served transform differs bitwise from in-search transform");
    }
}

/// Malformed rows route to the quarantine stream with the right
/// taxonomy reason, never poisoning adjacent clean rows, and the whole
/// batch is bit-identical across thread counts.
#[test]
fn quarantine_routes_malformed_rows_by_reason() {
    let dataset = spread_dataset("quarantine-ds", 31);
    let config = EvalConfig { model: ModelKind::Lr, seed: 3, ..Default::default() };
    let artifact = fit_artifact(&dataset, &full_pipeline(), &config).expect("export fits");
    let engine = ServeEngine::new(artifact);

    // Interleave clean rows with every malformed shape.
    let clean: Vec<Vec<f64>> = dataset.x.rows_iter().take(40).map(<[f64]>::to_vec).collect();
    let mut rows = Vec::new();
    for (i, row) in clean.iter().enumerate() {
        rows.push(row.clone());
        match i % 4 {
            0 => {
                let mut bad = row.clone();
                let j = i % bad.len();
                bad[j] = f64::NAN;
                rows.push(bad);
            }
            1 => {
                let mut bad = row.clone();
                let j = i % bad.len();
                bad[j] = f64::INFINITY;
                rows.push(bad);
            }
            2 => rows.push(row[..row.len() - 1].to_vec()), // short row
            _ => {
                let mut bad = row.clone();
                bad.push(0.0); // long row
                rows.push(bad);
            }
        }
    }

    let report = engine.predict_batch(&rows, 1);
    assert_eq!(report.outcomes.len(), rows.len());
    assert_eq!(report.predicted, 40);
    assert_eq!(report.rejected_non_finite, 20, "10 NaN + 10 inf rows");
    assert_eq!(report.rejected_arity, 20, "10 short + 10 long rows");
    // Clean rows (even indices) all predicted; malformed (odd) all rejected.
    for (i, o) in report.outcomes.iter().enumerate() {
        if i % 2 == 0 {
            assert!(matches!(o, RowOutcome::Predicted(_)), "clean row {i}: {o:?}");
        } else {
            assert!(matches!(o, RowOutcome::Rejected(_)), "malformed row {i}: {o:?}");
        }
    }

    // Same batch, 8 threads: identical outcomes, counters doubled.
    let threaded = engine.predict_batch(&rows, 8);
    assert_eq!(threaded.outcomes, report.outcomes, "thread count changed outcomes");
    let stats = engine.stats();
    assert_eq!(stats.rows, 2 * rows.len() as u64);
    assert_eq!(stats.predicted, 80);
    assert_eq!(stats.rejected_non_finite, 40);
    assert_eq!(stats.rejected_arity, 40);
}

/// The TCP path end-to-end: info, batched predict (identical to the
/// in-process engine), stats accumulation, shutdown.
#[test]
fn tcp_serve_round_trip_matches_in_process_engine() {
    let dataset = spread_dataset("tcp-ds", 37);
    let config = EvalConfig { model: ModelKind::Xgb, seed: 5, ..Default::default() };
    let artifact = fit_artifact(&dataset, &full_pipeline(), &config).expect("export fits");
    let reference = ServeEngine::new(round_tripped(
        fit_artifact(&dataset, &full_pipeline(), &config).expect("export fits"),
    ));

    let engine = Arc::new(ServeEngine::new(artifact));
    let server = ServeServer::bind("127.0.0.1:0", Arc::clone(&engine), 2).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run());

    let mut rows: Vec<Vec<f64>> = dataset.x.rows_iter().take(30).map(<[f64]>::to_vec).collect();
    rows.push(vec![f64::NAN; dataset.x.ncols()]);
    rows.push(vec![1.0]); // wrong arity

    let mut client = ServeClient::connect(addr).expect("connect");
    client.ping().expect("ping");
    let info = client.info().expect("info");
    assert_eq!(info.model, "XGB");
    assert_eq!(info.n_features, dataset.x.ncols() as u64);

    let (outcomes, stats) = client.predict(rows.clone()).expect("predict");
    let local = reference.predict_batch(&rows, 1);
    assert_eq!(outcomes, local.outcomes, "TCP outcomes differ from in-process engine");
    assert_eq!(stats.rows, rows.len() as u64);
    assert_eq!(stats.predicted, 30);
    assert_eq!(stats.rejected_non_finite, 1);
    assert_eq!(stats.rejected_arity, 1);

    // A second batch accumulates into the daemon's lifetime counters.
    let _ = client.predict(rows.clone()).expect("second predict");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.rows, 2 * rows.len() as u64);

    client.shutdown().expect("shutdown");
    drop(client);
    handle.join().expect("server thread").expect("server run");
}

/// An artifact survives disk round trips byte-stably.
#[test]
fn artifact_save_load_is_byte_stable() {
    let dataset = spread_dataset("disk-ds", 41);
    let config = EvalConfig { model: ModelKind::Mlp, seed: 9, ..Default::default() };
    let artifact = fit_artifact(&dataset, &full_pipeline(), &config).expect("export fits");
    let bytes = artifact.encode();

    let dir = std::env::temp_dir().join(format!("autofp-serve-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("model.afp");
    artifact.save(&path).expect("save");
    let loaded = ServeArtifact::load(&path).expect("load");
    assert_eq!(loaded.encode(), bytes, "disk round trip changed the artifact bytes");
    std::fs::remove_dir_all(&dir).ok();
}
