//! Runtime counterpart of `xtask lint`'s `nondet` rule: full searches
//! must be bit-reproducible across runs *and* across worker counts.
//!
//! Two searchers cover the two evaluation paths: Hyperband drives the
//! batched rung step (`BatchEvaluator` fan-out, where a thread-count
//! dependence would enter through result ordering), TPE drives the
//! sequential path (where it would enter through RNG or sort order).
//! Histories are serialized to a canonical byte string — every
//! result-bearing field, floats by bit pattern — and compared for
//! byte identity.

use autofp::core::{Budget, EvalConfig, Evaluator, SearchContext, SearchOutcome, Searcher};
use autofp::data::SynthConfig;
use autofp::preprocess::ParamSpace;
use autofp::search::{Hyperband, TpeSearch};
use std::fmt::Write as _;

fn evaluator() -> (autofp::data::Dataset, EvalConfig) {
    let d = SynthConfig::new("determinism", 200, 6, 2, 23).generate();
    (d, EvalConfig::default())
}

/// Canonical byte serialization of everything a search *decided*:
/// pipeline identities, scores (bit patterns), budget fractions, and
/// failure kinds, in evaluation order. Wall-clock measurements
/// (prep/train durations, elapsed) are intentionally excluded — they
/// are attribution, not results, and legitimately vary run to run.
fn canonical_history(outcome: &SearchOutcome) -> Vec<u8> {
    let mut out = String::new();
    for t in outcome.history.trials() {
        let _ = writeln!(
            out,
            "{}|{:016x}|{:016x}|{:016x}|{:?}",
            t.pipeline.key(),
            t.accuracy.to_bits(),
            t.error.to_bits(),
            t.train_fraction.to_bits(),
            t.failure,
        );
    }
    out.into_bytes()
}

fn run_with_threads(searcher: &mut dyn Searcher, threads: usize) -> SearchOutcome {
    let (d, config) = evaluator();
    let ev = Evaluator::new(&d, config);
    let mut ctx = SearchContext::new(&ev, Budget::evals(48));
    ctx.set_batch_threads(threads);
    searcher.search(&mut ctx);
    ctx.finish(searcher.name())
}

#[test]
fn hyperband_history_byte_identical_across_1_and_8_threads() {
    let run = |threads| {
        let mut hb = Hyperband::new(ParamSpace::default_space(), 4, 29);
        canonical_history(&run_with_threads(&mut hb, threads))
    };
    let seq = run(1);
    let par = run(8);
    assert!(!seq.is_empty());
    assert_eq!(seq, par, "Hyperband history depends on worker count");
}

#[test]
fn tpe_history_byte_identical_across_1_and_8_threads() {
    let run = |threads| {
        let mut tpe = TpeSearch::new(ParamSpace::default_space(), 4, 29);
        canonical_history(&run_with_threads(&mut tpe, threads))
    };
    let seq = run(1);
    let par = run(8);
    assert!(!seq.is_empty());
    assert_eq!(seq, par, "TPE history depends on worker count");
}

#[test]
fn same_seed_reruns_are_byte_identical() {
    let hb = || {
        let mut s = Hyperband::new(ParamSpace::default_space(), 4, 31);
        canonical_history(&run_with_threads(&mut s, 4))
    };
    let tpe = || {
        let mut s = TpeSearch::new(ParamSpace::default_space(), 4, 31);
        canonical_history(&run_with_threads(&mut s, 4))
    };
    assert_eq!(hb(), hb(), "Hyperband rerun differs under the same seed");
    assert_eq!(tpe(), tpe(), "TPE rerun differs under the same seed");
}

#[test]
fn different_seeds_actually_change_the_history() {
    // Guard that the canonicalization isn't vacuous (e.g. empty).
    let run = |seed| {
        let mut s = Hyperband::new(ParamSpace::default_space(), 4, seed);
        canonical_history(&run_with_threads(&mut s, 2))
    };
    assert_ne!(run(1), run(2), "seed does not reach the search");
}
