//! Failure-injection tests: the full search stack must stay finite and
//! panic-free on pathological inputs — NaN/Inf cells, constant features,
//! single-row classes, extreme magnitudes, and degenerate budgets.

use autofp::core::{
    run_search, Budget, EvalConfig, EvalError, Evaluate, Evaluator, FailureKind, Trial,
};
use autofp::data::{registry, Dataset, DatasetSpec, SynthConfig};
use autofp::linalg::Matrix;
use autofp::models::classifier::ModelKind;
use autofp::models::CancelToken;
use autofp::preprocess::{ParamSpace, Pipeline, PreprocKind};
use autofp::search::{make_searcher, AlgName};
use autofp_bench::{run_matrix_with, HarnessConfig, MatrixOutcome};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A dataset contaminated with NaN, Inf, constants and huge magnitudes.
fn poisoned_dataset() -> Dataset {
    let mut d = SynthConfig::new("poisoned", 120, 6, 2, 3).generate();
    let rows = d.x.nrows();
    // Column 0: some NaN; column 1: some Inf; column 2: constant;
    // column 3: huge magnitudes.
    for i in (0..rows).step_by(7) {
        d.x.set(i, 0, f64::NAN);
    }
    for i in (0..rows).step_by(11) {
        d.x.set(i, 1, if i % 2 == 0 { f64::INFINITY } else { f64::NEG_INFINITY });
    }
    for i in 0..rows {
        d.x.set(i, 2, 42.0);
        let v = d.x.get(i, 3);
        d.x.set(i, 3, v * 1e250);
    }
    d
}

#[test]
fn search_survives_poisoned_data_on_all_models() {
    let d = poisoned_dataset();
    for model in ModelKind::ALL {
        let ev = Evaluator::new(&d, EvalConfig { model, ..Default::default() });
        let mut s = make_searcher(AlgName::Rs, ParamSpace::default_space(), 4, 1);
        let out = run_search(s.as_mut(), &ev, Budget::evals(8));
        assert_eq!(out.history.len(), 8, "{model}");
        for t in out.history.trials() {
            assert!(t.accuracy.is_finite(), "{model} produced non-finite accuracy");
        }
    }
}

#[test]
fn every_algorithm_survives_poisoned_data() {
    let d = poisoned_dataset();
    let ev = Evaluator::new(&d, EvalConfig::default());
    for alg in AlgName::ALL {
        let mut s = make_searcher(alg, ParamSpace::default_space(), 3, 5);
        let out = run_search(s.as_mut(), &ev, Budget::evals(6));
        assert!(!out.history.is_empty(), "{alg}");
    }
}

#[test]
fn all_constant_features_fall_back_to_majority() {
    let x = Matrix::filled(60, 4, 3.0);
    let y: Vec<usize> = (0..60).map(|i| usize::from(i % 3 == 0)).collect();
    let d = Dataset::new("const", x, y, 2);
    let ev = Evaluator::new(&d, EvalConfig::default());
    // Majority class is 2/3 of rows; baseline must be at least close to it.
    assert!(ev.baseline_accuracy() >= 0.5);
    let mut s = make_searcher(AlgName::Pbt, ParamSpace::default_space(), 3, 1);
    let out = run_search(s.as_mut(), &ev, Budget::evals(10));
    assert!(out.best_accuracy() >= 0.5);
}

#[test]
fn single_example_class_does_not_break_split_or_search() {
    let mut rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, (i * 3 % 7) as f64]).collect();
    rows.push(vec![999.0, 999.0]);
    let mut y: Vec<usize> = (0..50).map(|i| i % 2).collect();
    y.push(2); // a class with exactly one example
    let d = Dataset::new("rare-class", Matrix::from_rows(&rows), y, 3);
    let ev = Evaluator::new(&d, EvalConfig::default());
    let mut s = make_searcher(AlgName::TevoY, ParamSpace::default_space(), 3, 2);
    let out = run_search(s.as_mut(), &ev, Budget::evals(8));
    assert_eq!(out.history.len(), 8);
}

#[test]
fn two_row_dataset_is_survivable() {
    let d = Dataset::new(
        "tiny",
        Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]),
        vec![0, 1],
        2,
    );
    let ev = Evaluator::new(&d, EvalConfig::default());
    let mut s = make_searcher(AlgName::Rs, ParamSpace::default_space(), 3, 1);
    let out = run_search(s.as_mut(), &ev, Budget::evals(5));
    assert_eq!(out.history.len(), 5);
}

#[test]
fn zero_budget_yields_empty_outcome() {
    let d = SynthConfig::new("zb", 50, 3, 2, 1).generate();
    let ev = Evaluator::new(&d, EvalConfig::default());
    for alg in [AlgName::Rs, AlgName::Pbt, AlgName::Hyperband, AlgName::Smac] {
        let mut s = make_searcher(alg, ParamSpace::default_space(), 3, 1);
        let out = run_search(s.as_mut(), &ev, Budget::evals(0));
        assert!(out.history.is_empty(), "{alg} evaluated under zero budget");
        assert_eq!(out.best_accuracy(), 0.0);
    }
}

#[test]
fn single_feature_dataset_works_end_to_end() {
    let d = SynthConfig::new("one-col", 100, 1, 2, 9).generate();
    let ev = Evaluator::new(&d, EvalConfig { model: ModelKind::Xgb, ..Default::default() });
    let mut s = make_searcher(AlgName::TevoH, ParamSpace::default_space(), 4, 3);
    let out = run_search(s.as_mut(), &ev, Budget::evals(10));
    assert_eq!(out.history.len(), 10);
    assert!(out.best_accuracy() > 0.0);
}

/// Wraps the real [`Evaluator`] and panics on one specific pipeline —
/// a deterministic fault targeting the matrix path. The counter tracks
/// *real* panics (as opposed to cached worst-error trials).
struct PanicsOn {
    inner: Evaluator,
    victim: String,
    panics: Arc<AtomicU64>,
}

impl Evaluate for PanicsOn {
    fn evaluate_raw(
        &self,
        pipeline: &Pipeline,
        fraction: f64,
        cancel: &CancelToken,
    ) -> Result<Trial, EvalError> {
        if pipeline.key() == self.victim {
            self.panics.fetch_add(1, Ordering::Relaxed);
            panic!("injected fault: victim pipeline reached the trainer");
        }
        self.inner.evaluate_raw(pipeline, fraction, cancel)
    }
    fn config(&self) -> &EvalConfig {
        self.inner.config()
    }
    fn baseline_accuracy(&self) -> f64 {
        self.inner.baseline_accuracy()
    }
    fn train_rows(&self) -> usize {
        self.inner.train_rows()
    }
}

/// Cell results reduced to their deterministic fields (no wall-clock,
/// no cache counters).
fn canonical_cells(outcome: &MatrixOutcome) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for c in &outcome.cells {
        let _ = writeln!(
            s,
            "{}|{}|{}|{:016x}|{}|{}|{}",
            c.dataset,
            c.model.name(),
            c.algorithm,
            c.best_accuracy.to_bits(),
            c.n_evals,
            c.best_pipeline,
            c.failures.count(FailureKind::Panic),
        );
    }
    s
}

/// One deterministic panicking pipeline inside a matrix run costs
/// exactly one worst-error trial per affected cell and never poisons
/// the shared cache: the panic's worst-error trial is served from the
/// cache to later cells of the group (counters stay exact, no second
/// panic), and the worker-thread count cannot leak into results even
/// under faults.
#[test]
fn matrix_panic_costs_one_trial_per_cell_and_spares_the_shared_cache() {
    // PMNE and PLNE both deterministically evaluate all 7 single-step
    // pipelines first, so every cell evaluates the victim exactly once.
    let victim = Pipeline::from_kinds(&[PreprocKind::StandardScaler]).key();
    let mut cfg = HarnessConfig::default();
    cfg.scale = 0.05;
    cfg.budget = Budget::evals(8);
    cfg.max_rows = 160;
    cfg.min_rows = 120;
    cfg.max_len = 3;
    cfg.seed = 11;
    let specs: Vec<DatasetSpec> = registry().into_iter().take(2).collect();
    let models = [ModelKind::Lr, ModelKind::Xgb];
    let algs = [AlgName::Pmne, AlgName::Plne];
    let run = |threads: usize, real_panics: &Arc<AtomicU64>| {
        let mut cfg = cfg.clone();
        cfg.threads = threads;
        run_matrix_with(&specs, &models, &algs, &cfg, |d, c, _prefix| {
            Box::new(PanicsOn {
                inner: Evaluator::new(d, c),
                victim: victim.clone(),
                panics: real_panics.clone(),
            })
        })
    };

    let sequential_panics = Arc::new(AtomicU64::new(0));
    let outcome = run(1, &sequential_panics);
    assert_eq!(outcome.cells.len(), 8, "2 datasets x 2 models x 2 algorithms");
    for c in &outcome.cells {
        assert_eq!(
            c.failures.count(FailureKind::Panic),
            1,
            "{}/{}/{} must record exactly one panic worst-error trial",
            c.dataset,
            c.model.name(),
            c.algorithm
        );
        assert_eq!(c.n_evals, 8, "the panic costs one trial, never the cell");
    }
    assert_eq!(outcome.failures.count(FailureKind::Panic), 8);
    // Sequential cells + one shared cache per (dataset, model) group:
    // the group's first cell panics for real, the second is served the
    // memoized worst-error trial — 4 groups, 4 real panics. A poisoned
    // cache would either panic again or stop serving hits.
    assert_eq!(sequential_panics.load(Ordering::Relaxed), 4);
    assert!(outcome.cache.hits >= 28, "PLNE's singles must hit PMNE's cached work");

    let parallel_panics = Arc::new(AtomicU64::new(0));
    let parallel = run(8, &parallel_panics);
    assert_eq!(
        canonical_cells(&outcome),
        canonical_cells(&parallel),
        "worker-thread count leaked into faulted matrix results"
    );
}

#[test]
fn extended_spaces_survive_poisoned_data() {
    let d = poisoned_dataset();
    let ev = Evaluator::new(&d, EvalConfig::default());
    let mut one = autofp::search::OneStep::new(ParamSpace::high_cardinality(), 4, 7);
    let out = run_search(&mut one, &ev, Budget::evals(6));
    assert_eq!(out.history.len(), 6);
    let mut two = autofp::search::TwoStep::new(ParamSpace::low_cardinality(), 4, 7);
    let out = run_search(&mut two, &ev, Budget::evals(6));
    assert_eq!(out.history.len(), 6);
}
