//! Failure-injection tests: the full search stack must stay finite and
//! panic-free on pathological inputs — NaN/Inf cells, constant features,
//! single-row classes, extreme magnitudes, and degenerate budgets.

use autofp::core::{run_search, Budget, EvalConfig, Evaluator};
use autofp::data::{Dataset, SynthConfig};
use autofp::linalg::Matrix;
use autofp::models::classifier::ModelKind;
use autofp::preprocess::ParamSpace;
use autofp::search::{make_searcher, AlgName};

/// A dataset contaminated with NaN, Inf, constants and huge magnitudes.
fn poisoned_dataset() -> Dataset {
    let mut d = SynthConfig::new("poisoned", 120, 6, 2, 3).generate();
    let rows = d.x.nrows();
    // Column 0: some NaN; column 1: some Inf; column 2: constant;
    // column 3: huge magnitudes.
    for i in (0..rows).step_by(7) {
        d.x.set(i, 0, f64::NAN);
    }
    for i in (0..rows).step_by(11) {
        d.x.set(i, 1, if i % 2 == 0 { f64::INFINITY } else { f64::NEG_INFINITY });
    }
    for i in 0..rows {
        d.x.set(i, 2, 42.0);
        let v = d.x.get(i, 3);
        d.x.set(i, 3, v * 1e250);
    }
    d
}

#[test]
fn search_survives_poisoned_data_on_all_models() {
    let d = poisoned_dataset();
    for model in ModelKind::ALL {
        let ev = Evaluator::new(&d, EvalConfig { model, ..Default::default() });
        let mut s = make_searcher(AlgName::Rs, ParamSpace::default_space(), 4, 1);
        let out = run_search(s.as_mut(), &ev, Budget::evals(8));
        assert_eq!(out.history.len(), 8, "{model}");
        for t in out.history.trials() {
            assert!(t.accuracy.is_finite(), "{model} produced non-finite accuracy");
        }
    }
}

#[test]
fn every_algorithm_survives_poisoned_data() {
    let d = poisoned_dataset();
    let ev = Evaluator::new(&d, EvalConfig::default());
    for alg in AlgName::ALL {
        let mut s = make_searcher(alg, ParamSpace::default_space(), 3, 5);
        let out = run_search(s.as_mut(), &ev, Budget::evals(6));
        assert!(!out.history.is_empty(), "{alg}");
    }
}

#[test]
fn all_constant_features_fall_back_to_majority() {
    let x = Matrix::filled(60, 4, 3.0);
    let y: Vec<usize> = (0..60).map(|i| usize::from(i % 3 == 0)).collect();
    let d = Dataset::new("const", x, y, 2);
    let ev = Evaluator::new(&d, EvalConfig::default());
    // Majority class is 2/3 of rows; baseline must be at least close to it.
    assert!(ev.baseline_accuracy() >= 0.5);
    let mut s = make_searcher(AlgName::Pbt, ParamSpace::default_space(), 3, 1);
    let out = run_search(s.as_mut(), &ev, Budget::evals(10));
    assert!(out.best_accuracy() >= 0.5);
}

#[test]
fn single_example_class_does_not_break_split_or_search() {
    let mut rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, (i * 3 % 7) as f64]).collect();
    rows.push(vec![999.0, 999.0]);
    let mut y: Vec<usize> = (0..50).map(|i| i % 2).collect();
    y.push(2); // a class with exactly one example
    let d = Dataset::new("rare-class", Matrix::from_rows(&rows), y, 3);
    let ev = Evaluator::new(&d, EvalConfig::default());
    let mut s = make_searcher(AlgName::TevoY, ParamSpace::default_space(), 3, 2);
    let out = run_search(s.as_mut(), &ev, Budget::evals(8));
    assert_eq!(out.history.len(), 8);
}

#[test]
fn two_row_dataset_is_survivable() {
    let d = Dataset::new(
        "tiny",
        Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]),
        vec![0, 1],
        2,
    );
    let ev = Evaluator::new(&d, EvalConfig::default());
    let mut s = make_searcher(AlgName::Rs, ParamSpace::default_space(), 3, 1);
    let out = run_search(s.as_mut(), &ev, Budget::evals(5));
    assert_eq!(out.history.len(), 5);
}

#[test]
fn zero_budget_yields_empty_outcome() {
    let d = SynthConfig::new("zb", 50, 3, 2, 1).generate();
    let ev = Evaluator::new(&d, EvalConfig::default());
    for alg in [AlgName::Rs, AlgName::Pbt, AlgName::Hyperband, AlgName::Smac] {
        let mut s = make_searcher(alg, ParamSpace::default_space(), 3, 1);
        let out = run_search(s.as_mut(), &ev, Budget::evals(0));
        assert!(out.history.is_empty(), "{alg} evaluated under zero budget");
        assert_eq!(out.best_accuracy(), 0.0);
    }
}

#[test]
fn single_feature_dataset_works_end_to_end() {
    let d = SynthConfig::new("one-col", 100, 1, 2, 9).generate();
    let ev = Evaluator::new(&d, EvalConfig { model: ModelKind::Xgb, ..Default::default() });
    let mut s = make_searcher(AlgName::TevoH, ParamSpace::default_space(), 4, 3);
    let out = run_search(s.as_mut(), &ev, Budget::evals(10));
    assert_eq!(out.history.len(), 10);
    assert!(out.best_accuracy() > 0.0);
}

#[test]
fn extended_spaces_survive_poisoned_data() {
    let d = poisoned_dataset();
    let ev = Evaluator::new(&d, EvalConfig::default());
    let mut one = autofp::search::OneStep::new(ParamSpace::high_cardinality(), 4, 7);
    let out = run_search(&mut one, &ev, Budget::evals(6));
    assert_eq!(out.history.len(), 6);
    let mut two = autofp::search::TwoStep::new(ParamSpace::low_cardinality(), 4, 7);
    let out = run_search(&mut two, &ev, Budget::evals(6));
    assert_eq!(out.history.len(), 6);
}
