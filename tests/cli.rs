//! Integration tests of the `autofp` command-line binary.

use std::process::Command;

fn autofp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autofp"))
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = autofp().args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn help_lists_commands() {
    let (stdout, _, ok) = run(&["--help"]);
    assert!(ok);
    assert!(stdout.contains("autofp search"));
    assert!(stdout.contains("--budget-ms"));
}

#[test]
fn algorithms_lists_all_fifteen() {
    let (stdout, _, ok) = run(&["algorithms"]);
    assert!(ok);
    for name in ["RS", "PBT", "TEVO_H", "BOHB", "PMNE", "ENAS"] {
        assert!(stdout.contains(name), "missing {name}:\n{stdout}");
    }
}

#[test]
fn preprocessors_lists_all_seven() {
    let (stdout, _, ok) = run(&["preprocessors"]);
    assert!(ok);
    for name in [
        "Binarizer",
        "MaxAbsScaler",
        "MinMaxScaler",
        "Normalizer",
        "PowerTransformer",
        "QuantileTransformer",
        "StandardScaler",
    ] {
        assert!(stdout.contains(name), "missing {name}");
    }
}

#[test]
fn search_on_a_csv_end_to_end() {
    // Build a learnable CSV: label = (feature > 50).
    let mut csv = String::from("f0,f1,label\n");
    for i in 0..60 {
        csv.push_str(&format!("{},{},{}\n", i, i * 1000, usize::from(i > 30)));
    }
    let path = std::env::temp_dir().join("autofp_cli_it.csv");
    std::fs::write(&path, csv).unwrap();

    let (stdout, stderr, ok) = run(&[
        "search",
        "--csv",
        path.to_str().unwrap(),
        "--evals",
        "12",
        "--alg",
        "TEVO_H",
        "--max-len",
        "3",
        "--seed",
        "1",
    ]);
    std::fs::remove_file(&path).ok();
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("best pipeline:"), "{stdout}");
    assert!(stdout.contains("dataset: 60 rows x 2 cols, 2 classes"), "{stdout}");
    assert!(stdout.contains("evaluated 12 pipelines"), "{stdout}");
}

#[test]
fn unknown_algorithm_fails_cleanly() {
    let (_, stderr, ok) = run(&["search", "--csv", "x.csv", "--alg", "NOPE"]);
    assert!(!ok);
    assert!(stderr.contains("unknown algorithm"), "{stderr}");
}

#[test]
fn missing_csv_fails_cleanly() {
    let (_, stderr, ok) = run(&["search", "--csv", "/definitely/not/here.csv", "--evals", "1"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

fn evald(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_evald")).args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn evald_serve_on_an_already_bound_port_fails_with_a_clear_error() {
    let holder = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let port = holder.local_addr().expect("addr").port();
    let (_, stderr, code) = evald(&["serve", "--port", &port.to_string()]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("already in use"), "{stderr}");
    assert!(stderr.contains(&port.to_string()), "{stderr}");
}

#[test]
fn evald_rejects_bad_usage_with_exit_two() {
    let (_, stderr, code) = evald(&["frobnicate"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown command"), "{stderr}");
    let (_, stderr, code) = evald(&["health"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("needs a worker address"), "{stderr}");
    let (_, stderr, code) = evald(&["serve", "--port", "notaport"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--port"), "{stderr}");
}

#[test]
fn meta_flag_prints_forty_features() {
    let mut csv = String::from("a,b,c,label\n");
    for i in 0..40 {
        csv.push_str(&format!("{},{},{},{}\n", i, i % 7, i % 3, i % 2));
    }
    let path = std::env::temp_dir().join("autofp_cli_meta.csv");
    std::fs::write(&path, csv).unwrap();
    let (stdout, _, ok) = run(&[
        "search",
        "--csv",
        path.to_str().unwrap(),
        "--evals",
        "2",
        "--meta",
    ]);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    assert!(stdout.contains("SkewnessMean"));
    assert!(stdout.contains("Landmark1NN"));
}

#[test]
fn export_then_predict_round_trip() {
    // Build a learnable CSV: label = (feature > 30).
    let mut csv = String::from("f0,f1,label\n");
    for i in 0..80 {
        csv.push_str(&format!("{},{},{}\n", i, (i * 37) % 100, usize::from(i > 30)));
    }
    let dir = std::env::temp_dir().join(format!("autofp_cli_export_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let train = dir.join("train.csv");
    std::fs::write(&train, csv).unwrap();

    let artifact = dir.join("model.afp");
    let (stdout, stderr, ok) = run(&[
        "export",
        "--csv",
        train.to_str().unwrap(),
        "--out",
        artifact.to_str().unwrap(),
        "--pipeline",
        "StandardScaler,MinMaxScaler",
        "--seed",
        "7",
    ]);
    assert!(ok, "export failed: {stderr}");
    assert!(stdout.contains("exported"), "{stdout}");
    assert!(stdout.contains("StandardScaler -> MinMaxScaler"), "{stdout}");
    assert!(artifact.exists());

    // Two clean rows, one non-finite, one wrong-arity.
    let rows = dir.join("rows.csv");
    std::fs::write(&rows, "f0,f1\n5,10\n70,2\nnotanumber,3\n1,2,3\n").unwrap();
    let (stdout, stderr, ok) = run(&[
        "predict",
        "--artifact",
        artifact.to_str().unwrap(),
        "--csv",
        rows.to_str().unwrap(),
    ]);
    assert!(ok, "predict failed: {stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "{stdout}");
    assert_eq!(lines[0], "0");
    assert_eq!(lines[1], "1");
    assert_eq!(lines[2], "reject:non-finite");
    assert_eq!(lines[3], "reject:degenerate");
    assert!(stderr.contains("2 predicted, 2 rejected"), "{stderr}");

    // Thread count must not change stdout.
    let (threaded, _, ok) = run(&[
        "predict",
        "--artifact",
        artifact.to_str().unwrap(),
        "--csv",
        rows.to_str().unwrap(),
        "--threads",
        "8",
    ]);
    assert!(ok);
    assert_eq!(threaded, stdout, "thread count changed predict output");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn export_and_predict_reject_bad_usage() {
    let (_, stderr, ok) = run(&["export", "--csv", "x.csv"]);
    assert!(!ok);
    assert!(stderr.contains("--out is required"), "{stderr}");
    let (_, stderr, ok) = run(&["predict", "--csv", "x.csv"]);
    assert!(!ok);
    assert!(stderr.contains("exactly one of"), "{stderr}");
    let (_, stderr, ok) = run(&["predict", "--artifact", "a", "--addr", "b", "--csv", "x.csv"]);
    assert!(!ok);
    assert!(stderr.contains("exactly one of"), "{stderr}");
    let (_, stderr, ok) = run(&[
        "export",
        "--csv",
        "x.csv",
        "--out",
        "y.afp",
        "--pipeline",
        "NotAPreprocessor",
    ]);
    assert!(!ok);
    assert!(stderr.contains("unknown preprocessor"), "{stderr}");
    let (_, stderr, ok) = run(&["serve", "--port", "1"]);
    assert!(!ok);
    assert!(stderr.contains("--artifact is required"), "{stderr}");
    let (_, stderr, ok) = run(&["serve", "--artifact", "x.afp", "--bind", "nothost"]);
    assert!(!ok);
    assert!(stderr.contains("--bind"), "{stderr}");
}

#[test]
fn repo_gc_dry_run_reports_without_deleting() {
    let dir = std::env::temp_dir().join(format!("autofp_cli_gc_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let (stdout, _, ok) =
        run(&["repo", "gc", "--dir", dir.to_str().unwrap(), "--dry-run"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("0 segments kept"), "{stdout}");
    let (_, stderr, ok) = run(&["repo", "frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("gc"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
