//! Prefix-transform cache suite: the second cache layer (transformed
//! train/valid matrices keyed by pipeline *prefix*, below the trial
//! cache — see ARCHITECTURE.md "Cache hierarchy") must be purely an
//! optimization. Three pillars:
//!
//! 1. Matrix-level bit-identity: a full bench matrix with the prefix
//!    cache on reproduces the prefix-cache-off canonical byte string,
//!    across 1 and 8 worker threads and across reruns.
//! 2. Byte-budget eviction: a cache squeezed far below its working set
//!    evicts (deterministically, given one thread) and still returns
//!    results bit-identical to an unbounded cache.
//! 3. Poisoning: a prefix whose transform output contains NaN is never
//!    admitted, so later pipelines can never be served a poisoned
//!    matrix — the non-finite worst-error taxonomy is identical with
//!    and without the cache.

use autofp_bench::{run_matrix, HarnessConfig, MatrixOutcome};
use autofp_core::{
    Budget, EvalConfig, Evaluate, Evaluator, FailureKind, SharedPrefixCache,
};
use autofp_data::{registry, Dataset, DatasetSpec, SynthConfig};
use autofp_models::classifier::ModelKind;
use autofp_preprocess::{Pipeline, PreprocKind};
use autofp_search::AlgName;
use std::fmt::Write as _;

/// The mini Table 4 matrix of `tests/matrix.rs`, with the two PNAS
/// variants whose shared 7-single opening guarantees cross-algorithm
/// prefix reuse.
fn mini_config() -> (Vec<DatasetSpec>, [ModelKind; 2], [AlgName; 3], HarnessConfig) {
    let mut cfg = HarnessConfig::default();
    cfg.scale = 0.05;
    cfg.budget = Budget::evals(8);
    cfg.max_rows = 160;
    cfg.min_rows = 120;
    cfg.max_len = 3;
    cfg.seed = 11;
    let specs: Vec<DatasetSpec> = registry().into_iter().take(2).collect();
    (specs, [ModelKind::Lr, ModelKind::Xgb], [AlgName::Rs, AlgName::Pmne, AlgName::Plne], cfg)
}

/// Deterministic cell serialization (same field set as
/// `tests/matrix.rs`): f64 bit patterns, no cache counters, no timings.
fn canonical(outcome: &MatrixOutcome) -> String {
    let mut s = String::new();
    for c in &outcome.cells {
        let failures: Vec<String> = FailureKind::ALL
            .iter()
            .map(|&k| format!("{}={}", k.name(), c.failures.count(k)))
            .collect();
        let _ = writeln!(
            s,
            "{}|{}|{}|{:016x}|{:016x}|{}|{}|{}",
            c.dataset,
            c.model.name(),
            c.algorithm,
            c.baseline.to_bits(),
            c.best_accuracy.to_bits(),
            c.n_evals,
            c.best_pipeline,
            failures.join(","),
        );
    }
    s
}

#[test]
fn prefix_cache_matrix_bit_identical_across_threads_and_reruns() {
    let (specs, models, algs, mut cfg) = mini_config();
    cfg.threads = 1;
    let plain = canonical(&run_matrix(&specs, &models, &algs, &cfg));

    cfg.prefix_cache = true;
    let cached = run_matrix(&specs, &models, &algs, &cfg);
    assert_eq!(plain, canonical(&cached), "prefix cache changed single-thread results");
    assert!(cached.prefix.hits > 0, "the PNAS singles must produce prefix reuse");
    assert!(cached.prefix.steps_saved > 0);
    assert_eq!(cached.prefix.poisoned, 0, "registry datasets produce finite transforms");

    let rerun = run_matrix(&specs, &models, &algs, &cfg);
    assert_eq!(plain, canonical(&rerun), "prefix-cached rerun diverged");
    // Sequential cells also make the counter stream deterministic.
    assert_eq!(cached.prefix.hits, rerun.prefix.hits);
    assert_eq!(cached.prefix.misses, rerun.prefix.misses);
    assert_eq!(cached.prefix.steps_saved, rerun.prefix.steps_saved);

    cfg.threads = 8;
    let eight = run_matrix(&specs, &models, &algs, &cfg);
    assert_eq!(plain, canonical(&eight), "thread count leaked through the prefix cache");
}

#[test]
fn tight_byte_budget_evicts_deterministically_without_changing_results() {
    let (specs, models, algs, mut cfg) = mini_config();
    cfg.threads = 1;
    cfg.prefix_cache = true;
    cfg.prefix_cache_bytes = None; // unbounded
    let unbounded = run_matrix(&specs, &models, &algs, &cfg);
    assert_eq!(unbounded.prefix.evictions, 0, "unbounded caches never evict");
    assert!(unbounded.prefix.bytes > 0);

    // Room for roughly one 160x~20 f64 train/valid pair: every deeper
    // insert must push earlier prefixes out.
    cfg.prefix_cache_bytes = Some(64 << 10);
    let tight = run_matrix(&specs, &models, &algs, &cfg);
    assert_eq!(
        canonical(&unbounded),
        canonical(&tight),
        "byte-budget eviction must only cost recomputation, never change results"
    );
    assert!(tight.prefix.evictions > 0, "a 64 KiB budget over this matrix must evict");
    assert!(tight.prefix.bytes_evicted > 0);
    assert!(
        tight.prefix.bytes <= 2 * (64 << 10),
        "2 per-dataset caches x 64 KiB budget violated: {} live bytes",
        tight.prefix.bytes
    );

    // One worker thread = one deterministic insert/evict stream.
    let rerun = run_matrix(&specs, &models, &algs, &cfg);
    assert_eq!(tight.prefix.evictions, rerun.prefix.evictions);
    assert_eq!(tight.prefix.bytes_evicted, rerun.prefix.bytes_evicted);
    assert_eq!(tight.prefix.hits, rerun.prefix.hits);
}

/// One column entirely NaN: every prefix transform output stays
/// non-finite, which the cache must refuse to admit.
fn nan_column_dataset() -> Dataset {
    let mut d = SynthConfig::new("nan-col", 80, 4, 2, 19).generate();
    for i in 0..d.x.nrows() {
        d.x.set(i, 2, f64::NAN);
    }
    d
}

#[test]
fn poisoned_prefix_is_rejected_and_never_served() {
    let d = nan_column_dataset();
    let cache = SharedPrefixCache::new();
    let cached =
        Evaluator::new(&d, EvalConfig::default()).with_prefix_cache(cache.clone());
    let plain = Evaluator::new(&d, EvalConfig::default());

    let pipelines = [
        Pipeline::from_kinds(&[PreprocKind::StandardScaler]),
        Pipeline::from_kinds(&[PreprocKind::StandardScaler, PreprocKind::MinMaxScaler]),
        Pipeline::from_kinds(&[PreprocKind::MinMaxScaler, PreprocKind::Normalizer]),
    ];
    for p in &pipelines {
        // Evaluate twice: were a poisoned matrix ever admitted, the
        // second pass would consume it via a cache hit.
        let a = cached.evaluate(p);
        let b = cached.evaluate(p);
        let expect = plain.evaluate(p);
        for t in [&a, &b] {
            assert_eq!(t.accuracy.to_bits(), expect.accuracy.to_bits(), "{p}");
            assert_eq!(t.error.to_bits(), expect.error.to_bits(), "{p}");
            assert_eq!(t.failure, expect.failure, "{p}");
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.entries, 0, "a non-finite prefix output must never be admitted");
    assert_eq!(stats.hits, 0, "nothing admitted, so nothing may be served");
    assert!(stats.poisoned > 0, "rejections must be visible in the poisoned counter");
    // The evaluator probed the cache on every evaluation.
    let probed = cached.prefix_stats().expect("evaluator carries a prefix cache");
    assert_eq!(probed.lookups(), pipelines.len() as u64 * 2);
}
