//! Resilience suite: the fault-tolerant evaluation layer end to end.
//!
//! Three pillars, mirroring the acceptance criteria of the
//! fault-tolerance work:
//!
//! 1. A degenerate-dataset property sweep — single-class labels,
//!    all-constant features, an all-NaN column, and one-row training
//!    splits, crossed with every preprocessor and every downstream
//!    model — where `try_evaluate` must return `Err` or a finite
//!    `Trial`, and never panic.
//! 2. Every search algorithm (the 15 Auto-FP searchers plus TPOT-FP
//!    and AutoSklearn-FP) running to budget completion under a
//!    [`FaultInjector`] at a 10% mixed fault rate, with seed-reproducible
//!    trial histories and failure counts.
//! 3. A 64-pipeline batch with exactly one panicking pipeline yielding
//!    63 successful trials plus one worst-error trial, bit-identical
//!    across worker thread counts.

use autofp::core::{
    evaluate_or_worst, run_search, BatchEvaluator, Budget, EvalConfig, EvalError, Evaluate,
    Evaluator, FailureKind, FaultConfig, FaultInjector, InjectedPanic, SearchOutcome, Trial,
};
use autofp::data::{Dataset, SynthConfig};
use autofp::linalg::rng::rng_from_seed;
use autofp::linalg::Matrix;
use autofp::models::classifier::ModelKind;
use autofp::models::CancelToken;
use autofp::preprocess::{ParamSpace, Pipeline, PreprocKind};
use autofp::search::{make_searcher, AlgName};
use std::sync::Once;

/// Install (once per test binary) a panic hook that stays quiet for
/// [`InjectedPanic`] payloads — the panics this suite injects on
/// purpose — while leaving every other panic loud. Installed once and
/// never restored: tests run concurrently in one process and the hook
/// is global, so a save/restore dance would race between tests.
fn silence_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

// ---------------------------------------------------------------------
// Pillar 1: degenerate datasets × all preprocessors × all models.
// ---------------------------------------------------------------------

/// All labels identical (only one observed class).
fn single_class_dataset() -> Dataset {
    let d = SynthConfig::new("one-class", 80, 4, 2, 17).generate();
    Dataset::new("one-class", d.x, vec![0; 80], 2)
}

/// Every feature is the same constant.
fn all_constant_dataset() -> Dataset {
    let x = Matrix::filled(80, 4, 7.0);
    let y: Vec<usize> = (0..80).map(|i| i % 2).collect();
    Dataset::new("all-const", x, y, 2)
}

/// One column is entirely NaN.
fn nan_column_dataset() -> Dataset {
    let mut d = SynthConfig::new("nan-col", 80, 4, 2, 19).generate();
    for i in 0..d.x.nrows() {
        d.x.set(i, 2, f64::NAN);
    }
    d
}

/// So few rows that the training split holds a single example.
fn one_row_train_dataset() -> Dataset {
    Dataset::new(
        "one-row-train",
        Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]),
        vec![0, 1],
        2,
    )
}

#[test]
fn degenerate_datasets_never_panic_across_preprocessors_and_models() {
    let datasets = [
        single_class_dataset(),
        all_constant_dataset(),
        nan_column_dataset(),
        one_row_train_dataset(),
    ];
    for d in &datasets {
        for model in ModelKind::ALL {
            let ev = Evaluator::new(d, EvalConfig { model, ..Default::default() });
            for kind in PreprocKind::ALL {
                let p = Pipeline::from_kinds(&[kind]);
                // The property: Err or a finite Trial — never a panic,
                // never a non-finite accuracy presented as success.
                match ev.try_evaluate(&p) {
                    Ok(t) => {
                        assert!(
                            t.accuracy.is_finite() && t.error.is_finite(),
                            "{}/{model}/{kind:?}: non-finite trial",
                            d.name
                        );
                        assert!(t.failure.is_none());
                    }
                    Err(e) => {
                        // Every error maps to a failure kind usable as
                        // a worst-error trial tag.
                        let _ = e.kind();
                    }
                }
            }
        }
    }
}

#[test]
fn degenerate_datasets_yield_worst_error_trials_not_crashes() {
    // The infallible path must convert the same degenerate inputs into
    // Eq. 2 worst-error placeholders so searchers keep moving.
    let d = nan_column_dataset();
    let ev = Evaluator::new(&d, EvalConfig::default());
    for kind in PreprocKind::ALL {
        let p = Pipeline::from_kinds(&[kind]);
        let t = evaluate_or_worst(&ev, &p, 1.0, &CancelToken::new());
        assert!(t.accuracy.is_finite());
        assert!(t.error.is_finite());
        if t.is_failed() {
            assert_eq!(t.accuracy, 0.0);
            assert_eq!(t.error, 1.0);
        }
    }
}

// ---------------------------------------------------------------------
// Pillar 2: all 17 algorithms under a 10% mixed fault rate.
// ---------------------------------------------------------------------

/// A small healthy dataset for the search runs.
fn search_dataset() -> Dataset {
    SynthConfig::new("resilience-ds", 140, 5, 2, 23).generate()
}

/// The injector the acceptance criteria name: 10% faults, mixed
/// panic/error/delay, deterministic in the pipeline identity.
fn mixed_faults(seed: u64) -> FaultConfig {
    FaultConfig { failure_rate: 0.1, seed, ..FaultConfig::default() }
}

/// Run one named searcher over a fault-injecting evaluator.
fn run_faulty(ev: &Evaluator, name: &str, seed: u64, evals: usize) -> SearchOutcome {
    let inj = FaultInjector::new(ev, mixed_faults(seed));
    let budget = Budget::evals(evals);
    match name {
        "TPOT-FP" => {
            let mut s = autofp::automl::TpotFp::new(seed);
            run_search(&mut s, &inj, budget)
        }
        "AutoSklearn-FP" => {
            let mut s = autofp::automl::AutoSklearnFp;
            run_search(&mut s, &inj, budget)
        }
        _ => {
            let alg = AlgName::ALL
                .into_iter()
                .find(|a| a.as_str() == name)
                .unwrap_or_else(|| panic!("unknown algorithm {name}"));
            let mut s = make_searcher(alg, ParamSpace::default_space(), 3, seed);
            run_search(s.as_mut(), &inj, budget)
        }
    }
}

/// (pipeline key, accuracy bits, failure kind) per trial: the
/// deterministic fingerprint of a run (timings excluded — they are the
/// only nondeterministic trial fields).
fn fingerprint(out: &SearchOutcome) -> Vec<(String, u64, Option<FailureKind>)> {
    out.history
        .trials()
        .iter()
        .map(|t| (t.pipeline.key(), t.accuracy.to_bits(), t.failure))
        .collect()
}

#[test]
fn all_seventeen_algorithms_survive_ten_percent_faults_reproducibly() {
    silence_injected_panics();
    let d = search_dataset();
    let ev = Evaluator::new(&d, EvalConfig::default());
    let mut names: Vec<&str> = AlgName::ALL.iter().map(|a| a.as_str()).collect();
    names.push("TPOT-FP");
    names.push("AutoSklearn-FP");
    assert_eq!(names.len(), 17);

    let evals = 12;
    let mut total_failures = 0u64;
    for name in names {
        let first = run_faulty(&ev, name, 33, evals);
        // Budget completion: the run consumed its budget (AutoSklearn-FP
        // exhausts its six-option space first, by design).
        if name == "AutoSklearn-FP" {
            assert_eq!(first.history.len(), 6, "{name}");
        } else {
            assert_eq!(first.history.len(), evals, "{name}");
        }
        // Every recorded trial is finite; failed ones carry the
        // worst-error placeholder.
        for t in first.history.trials() {
            assert!(t.accuracy.is_finite(), "{name}: non-finite accuracy");
            if t.is_failed() {
                assert_eq!(t.error, 1.0, "{name}: failed trial not worst-error");
            }
        }
        // Failure accounting matches the history.
        let tagged = first.history.trials().iter().filter(|t| t.is_failed()).count() as u64;
        assert_eq!(first.failures.total(), tagged, "{name}");
        total_failures += tagged;
        // Seed-reproducibility: an identical rerun produces the exact
        // same trials and failure pattern.
        let second = run_faulty(&ev, name, 33, evals);
        assert_eq!(fingerprint(&first), fingerprint(&second), "{name} not reproducible");
    }
    // At a 10% mixed rate (a third of which are delays, which do not
    // fail the trial), the 17 runs together must have tripped faults.
    assert!(total_failures > 0, "fault injector never fired");
}

#[test]
fn failure_counts_by_kind_are_seed_reproducible() {
    silence_injected_panics();
    let d = search_dataset();
    let ev = Evaluator::new(&d, EvalConfig::default());
    // A hot fault rate so each kind shows up within one small budget.
    let cfg = FaultConfig { failure_rate: 0.5, seed: 9, ..FaultConfig::default() };
    let run = || {
        let inj = FaultInjector::new(&ev, cfg.clone());
        let mut s = make_searcher(AlgName::Rs, ParamSpace::default_space(), 3, 4);
        run_search(s.as_mut(), &inj, Budget::evals(30))
    };
    let a = run();
    let b = run();
    assert!(a.failures.total() > 0);
    for kind in FailureKind::ALL {
        assert_eq!(a.failures.count(kind), b.failures.count(kind), "{kind} count drifted");
    }
}

// ---------------------------------------------------------------------
// Pillar 3: one panicking pipeline in a 64-pipeline batch.
// ---------------------------------------------------------------------

/// Wraps an evaluator and panics on exactly one victim pipeline.
struct PanicsOnVictim<'a> {
    inner: &'a Evaluator,
    victim_key: String,
}

impl Evaluate for PanicsOnVictim<'_> {
    fn evaluate_raw(
        &self,
        pipeline: &Pipeline,
        fraction: f64,
        cancel: &CancelToken,
    ) -> Result<Trial, EvalError> {
        if pipeline.key() == self.victim_key {
            std::panic::panic_any(InjectedPanic { pipeline_key: pipeline.key() });
        }
        self.inner.evaluate_raw(pipeline, fraction, cancel)
    }

    fn config(&self) -> &EvalConfig {
        Evaluate::config(self.inner)
    }

    fn baseline_accuracy(&self) -> f64 {
        Evaluate::baseline_accuracy(self.inner)
    }

    fn train_rows(&self) -> usize {
        self.inner.train_rows()
    }
}

/// 64 distinct pipelines sampled from the default space.
fn sixty_four_pipelines() -> Vec<Pipeline> {
    let space = ParamSpace::default_space();
    let mut rng = rng_from_seed(71);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    while out.len() < 64 {
        let p = space.sample_pipeline(&mut rng, 4);
        if seen.insert(p.key()) {
            out.push(p);
        }
    }
    out
}

#[test]
fn one_panicking_pipeline_in_a_64_batch_costs_exactly_one_trial() {
    silence_injected_panics();
    let d = search_dataset();
    let ev = Evaluator::new(&d, EvalConfig::default());
    let pipelines = sixty_four_pipelines();
    let victim_idx = 41;
    let wrapper =
        PanicsOnVictim { inner: &ev, victim_key: pipelines[victim_idx].key() };

    let mut per_thread_count: Vec<Vec<u64>> = Vec::new();
    for threads in [1usize, 2, 8] {
        let batch = BatchEvaluator::new(&wrapper).with_threads(threads);
        let trials = batch.evaluate_batch(&pipelines);
        assert_eq!(trials.len(), 64, "threads={threads}");
        for (i, t) in trials.iter().enumerate() {
            if i == victim_idx {
                assert_eq!(t.failure, Some(FailureKind::Panic), "threads={threads}");
                assert_eq!(t.accuracy, 0.0);
                assert_eq!(t.error, 1.0);
            } else {
                assert!(t.failure.is_none(), "threads={threads}: trial {i} failed");
                assert!(t.accuracy.is_finite());
            }
        }
        per_thread_count.push(trials.iter().map(|t| t.accuracy.to_bits()).collect());
    }
    // Bit-identical results regardless of worker count.
    assert_eq!(per_thread_count[0], per_thread_count[1]);
    assert_eq!(per_thread_count[0], per_thread_count[2]);
}
