//! Recovery suite for the durable trial repository: crash-resume,
//! warm-start, corrupt-tail tolerance, and the never-persist rule —
//! the integration-level guarantees behind `--trial-store`.
//!
//! Four pillars:
//!
//! 1. **Crash-resume** — a matrix run over a store whose segments were
//!    torn mid-record (and one deleted outright) produces cell results
//!    byte-identical to an uninterrupted cold run: the torn tail is
//!    truncated on open, the surviving trials preload the group caches,
//!    and the replayed trajectory fills in only what is missing.
//! 2. **Warm-start** — a rerun over a fully populated store is
//!    bit-identical to the cold run with *zero* real evaluator calls
//!    (cache hits count toward eval budgets, so preloaded trials keep
//!    the proposal sequence unchanged).
//! 3. **Corrupt tail** — a segment truncated mid-record reopens
//!    cleanly with exactly the surviving records, reporting the
//!    dropped bytes; a checksum-valid prefix after a mid-file flip
//!    still loads; a damaged magic is hard corruption, not a panic.
//! 4. **Never-persist** — deadline/transport worst-error trials go
//!    through the same search-context insert path as everything else
//!    but are refused by the store (mirroring [`EvalCache::insert`]),
//!    pinned end to end with a [`FaultInjector`]-driven search.

use autofp::core::{
    evaluate_or_worst, run_search_cached, Budget, CacheKey, EvalCache, EvalConfig, EvalError,
    Evaluate, Evaluator, FailureKind, FaultConfig, FaultInjector, Trial, TrialRepo, TrialStore,
};
use autofp::data::{registry, DatasetSpec, SynthConfig};
use autofp::models::classifier::ModelKind;
use autofp::models::CancelToken;
use autofp::preprocess::{ParamSpace, Pipeline};
use autofp::search::{make_searcher, AlgName};
use autofp_bench::{run_matrix, run_matrix_with, CacheMode, HarnessConfig, MatrixOutcome};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fresh directory under the system temp dir, unique per test within
/// this process (pid + counter; no wall clock — the suite must stay
/// deterministic).
fn fresh_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "afp-trial-store-{}-{}-{tag}",
        std::process::id(),
        n
    ));
    std::fs::create_dir_all(&dir).expect("create temp store dir");
    dir
}

/// The mini matrix from `tests/matrix.rs`, in shared-cache mode (the
/// trial store rides the per-group shared caches) with one worker
/// thread so cache hit/miss splits are deterministic.
fn mini_config() -> (Vec<DatasetSpec>, [ModelKind; 2], [AlgName; 3], HarnessConfig) {
    let mut cfg = HarnessConfig::default();
    cfg.scale = 0.05;
    cfg.budget = Budget::evals(8);
    cfg.max_rows = 160;
    cfg.min_rows = 120;
    cfg.max_len = 3;
    cfg.seed = 11;
    cfg.threads = 1;
    cfg.cache_mode = CacheMode::Shared;
    let specs: Vec<DatasetSpec> = registry().into_iter().take(2).collect();
    (specs, [ModelKind::Lr, ModelKind::Xgb], [AlgName::Rs, AlgName::Pmne, AlgName::Plne], cfg)
}

/// The deterministic byte string of a matrix run (identical to the
/// canonicalization in `tests/matrix.rs`): cell identity, f64 bit
/// patterns, eval counts, winning pipelines, failure tallies. Cache and
/// store counters are excluded — they describe *how* results were
/// obtained, not the results.
fn canonical(outcome: &MatrixOutcome) -> String {
    let mut s = String::new();
    for c in &outcome.cells {
        let failures: Vec<String> = FailureKind::ALL
            .iter()
            .map(|&k| format!("{}={}", k.name(), c.failures.count(k)))
            .collect();
        let _ = writeln!(
            s,
            "{}|{}|{}|{:016x}|{:016x}|{}|{}|{}",
            c.dataset,
            c.model.name(),
            c.algorithm,
            c.baseline.to_bits(),
            c.best_accuracy.to_bits(),
            c.n_evals,
            c.best_pipeline,
            failures.join(","),
        );
    }
    s
}

// ---------------------------------------------------------------------
// Pillar 1: crash-resume.
// ---------------------------------------------------------------------

#[test]
fn resumed_matrix_is_byte_identical_to_an_uninterrupted_cold_run() {
    let (specs, models, algs, mut cfg) = mini_config();

    // Ground truth: the same matrix with no store at all.
    let cold = canonical(&run_matrix(&specs, &models, &algs, &cfg));

    // Populate a store with a full run; with-store results must already
    // match the storeless run (persistence is write-through, invisible).
    let dir = fresh_dir("resume");
    cfg.trial_store = Some(dir.clone());
    let populated = run_matrix(&specs, &models, &algs, &cfg);
    assert_eq!(canonical(&populated), cold, "write-through must not change results");
    let populated_stats = populated.store.expect("store stats present");
    assert!(populated_stats.appended > 0, "full run persisted nothing");

    // Simulate the crash: tear every segment three bytes into its final
    // record, and delete one segment outright (a context the interrupted
    // run never reached).
    let mut segments: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .expect("read store dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "log"))
        .collect();
    segments.sort();
    assert_eq!(segments.len(), 4, "2 datasets x 2 models = 4 segments");
    for seg in &segments[1..] {
        let len = std::fs::metadata(seg).expect("segment metadata").len();
        assert!(len > 3, "segment too small to tear");
        let f = std::fs::OpenOptions::new().write(true).open(seg).expect("open segment");
        f.set_len(len - 3).expect("tear segment tail");
    }
    std::fs::remove_file(&segments[0]).expect("delete first segment");

    // Resume over the damaged store.
    let resumed = run_matrix(&specs, &models, &algs, &cfg);
    assert_eq!(
        canonical(&resumed),
        cold,
        "resumed run must be byte-identical to the uninterrupted cold run"
    );
    let stats = resumed.store.expect("store stats present");
    assert!(stats.truncated_bytes > 0, "torn tails must be detected and dropped");
    assert!(stats.preloaded > 0, "surviving trials must warm the caches");
    assert!(stats.appended > 0, "the torn/missing trials must be re-persisted");

    // A second resume finds the store complete again: nothing to append.
    let healed = run_matrix(&specs, &models, &algs, &cfg);
    assert_eq!(canonical(&healed), cold);
    let healed_stats = healed.store.expect("store stats present");
    assert_eq!(healed_stats.appended, 0, "healed store must already hold every trial");
    assert_eq!(healed_stats.truncated_bytes, 0, "resume already truncated the torn tails");

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Pillar 2: warm-start with zero real evaluations.
// ---------------------------------------------------------------------

/// Counts every real (raw) evaluation that reaches the inner evaluator.
struct CountingEvaluator {
    inner: Evaluator,
    raw_evals: Arc<AtomicU64>,
}

impl Evaluate for CountingEvaluator {
    fn evaluate_raw(
        &self,
        pipeline: &Pipeline,
        fraction: f64,
        cancel: &CancelToken,
    ) -> Result<Trial, EvalError> {
        self.raw_evals.fetch_add(1, Ordering::Relaxed);
        self.inner.evaluate_raw(pipeline, fraction, cancel)
    }

    fn config(&self) -> &EvalConfig {
        self.inner.config()
    }

    fn baseline_accuracy(&self) -> f64 {
        self.inner.baseline_accuracy()
    }

    fn train_rows(&self) -> usize {
        self.inner.train_rows()
    }
}

#[test]
fn warm_start_is_bit_identical_with_zero_real_evaluations() {
    let (specs, models, algs, mut cfg) = mini_config();
    let dir = fresh_dir("warm");
    cfg.trial_store = Some(dir.clone());

    let run = |cfg: &HarnessConfig| {
        let raw_evals = Arc::new(AtomicU64::new(0));
        let counter = raw_evals.clone();
        let outcome = run_matrix_with(&specs, &models, &algs, cfg, move |d, c, prefix| {
            let mut ev = Evaluator::new(d, c);
            if let Some(cache) = prefix {
                ev = ev.with_prefix_cache(cache.clone());
            }
            Box::new(CountingEvaluator { inner: ev, raw_evals: counter.clone() })
        });
        (outcome, raw_evals.load(Ordering::Relaxed))
    };

    let (first, cold_evals) = run(&cfg);
    assert!(cold_evals > 0, "cold run must evaluate for real");

    let (second, warm_evals) = run(&cfg);
    assert_eq!(
        canonical(&second),
        canonical(&first),
        "warm-started matrix must be bit-identical to the cold run"
    );
    assert_eq!(
        warm_evals, 0,
        "a fully populated store must serve every proposal from the preloaded caches"
    );
    let stats = second.store.expect("store stats present");
    assert!(stats.preloaded > 0, "warm run must preload from the store");
    assert_eq!(stats.appended, 0, "warm run has nothing new to persist");

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Pillar 3: corrupt tails and damaged files.
// ---------------------------------------------------------------------

#[test]
fn a_torn_tail_reopens_with_exactly_the_surviving_records() {
    let (specs, models, algs, mut cfg) = mini_config();
    let dir = fresh_dir("tail");
    cfg.trial_store = Some(dir.clone());
    run_matrix(&specs, &models[..1], &algs[..1], &cfg);

    let context = cfg.eval_context(&specs[0], models[0]).canonical();
    let repo = TrialRepo::open(&dir).expect("open repo");
    let seg = repo.segment_path(&context);
    let intact = TrialStore::open(&seg, &context).expect("open intact segment");
    let before = intact.open_report();
    assert!(before.trials > 1, "need at least two trials to drop one");
    assert_eq!(before.truncated_bytes, 0, "intact segment must open clean");
    drop(intact);

    // Tear three bytes off the end: the final record loses part of its
    // checksum, so exactly one trial must vanish and the rest survive.
    let len = std::fs::metadata(&seg).expect("segment metadata").len();
    let f = std::fs::OpenOptions::new().write(true).open(&seg).expect("open segment");
    f.set_len(len - 3).expect("tear tail");
    drop(f);

    let torn = TrialStore::open(&seg, &context).expect("torn tail must still open");
    let after = torn.open_report();
    assert_eq!(after.trials, before.trials - 1, "exactly the torn record is dropped");
    assert!(after.truncated_bytes > 0, "the dropped bytes are reported, not silent");
    drop(torn);

    // Open truncated the file back to its last good record; reopening
    // is clean and stable.
    let reopened = TrialStore::open(&seg, &context).expect("reopen after truncation");
    assert_eq!(reopened.open_report().trials, before.trials - 1);
    assert_eq!(reopened.open_report().truncated_bytes, 0);
    drop(reopened);

    // A mid-file checksum break truncates everything after it (the scan
    // cannot trust bytes beyond a bad frame) but still opens.
    let mut bytes = std::fs::read(&seg).expect("read segment");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&seg, &bytes).expect("write flipped segment");
    let flipped = TrialStore::open(&seg, &context).expect("mid-file damage must not panic");
    assert!(
        flipped.open_report().trials < before.trials,
        "damage mid-file must drop at least the damaged record"
    );
    drop(flipped);

    // Damaged magic is not a segment at all: a hard error, not a panic
    // and not a silent empty store.
    bytes[0] ^= 0xFF;
    std::fs::write(&seg, &bytes).expect("write bad-magic segment");
    assert!(
        TrialStore::open(&seg, &context).is_err(),
        "a damaged magic must be reported as corruption"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Pillar 4: the never-persist rule, end to end under fault injection.
// ---------------------------------------------------------------------

/// Maps the injector's `TrainerDiverged` faults to transport errors,
/// the way the remote evaluation arm surfaces dead workers and timed-out
/// sockets. The other injected kinds pass through untouched, so one
/// search mixes persistable and never-persist failures.
struct TransportFaults<'a> {
    inner: FaultInjector<'a>,
}

impl Evaluate for TransportFaults<'_> {
    fn evaluate_raw(
        &self,
        pipeline: &Pipeline,
        fraction: f64,
        cancel: &CancelToken,
    ) -> Result<Trial, EvalError> {
        match self.inner.evaluate_raw(pipeline, fraction, cancel) {
            Err(EvalError::TrainerDiverged { detail }) => Err(EvalError::Transport { detail }),
            other => other,
        }
    }

    fn config(&self) -> &EvalConfig {
        self.inner.config()
    }

    fn baseline_accuracy(&self) -> f64 {
        self.inner.baseline_accuracy()
    }

    fn train_rows(&self) -> usize {
        self.inner.train_rows()
    }
}

#[test]
fn deadline_and_transport_trials_are_never_persisted() {
    let d = SynthConfig::new("never-persist-ds", 140, 5, 2, 23).generate();
    let ev = Evaluator::new(&d, EvalConfig::default());
    // Every evaluation faults as an error: the injector cycles through
    // NonFinite / Degenerate / TrainerDiverged by pipeline hash, and the
    // wrapper turns the TrainerDiverged third into transport failures.
    let faults = FaultConfig {
        failure_rate: 1.0,
        panic_weight: 0.0,
        error_weight: 1.0,
        delay_weight: 0.0,
        seed: 7,
        ..FaultConfig::default()
    };
    let injected = TransportFaults { inner: FaultInjector::new(&ev, faults) };

    let dir = fresh_dir("never-persist");
    let repo = TrialRepo::open(&dir).expect("open repo");
    let context = "never-persist-test";
    let store = repo.open_context(context).expect("open segment");
    let cache = EvalCache::new();
    cache.attach_store(store.clone());

    let mut searcher = make_searcher(AlgName::Rs, ParamSpace::default_space(), 3, 4);
    let outcome = run_search_cached(searcher.as_mut(), &injected, Budget::evals(30), &cache);
    assert_eq!(outcome.history.len(), 30);
    let transported = outcome.failures.count(FailureKind::Transport);
    assert!(transported > 0, "the transport-mapped third of the faults never fired");
    assert!(
        outcome.failures.count(FailureKind::NonFinite) > 0
            || outcome.failures.count(FailureKind::Degenerate) > 0,
        "no deterministic failures to contrast against"
    );

    // A deadline worst-error trial through the same insert path: a
    // cancelled evaluation degrades to FailureKind::Deadline.
    let cancelled = CancelToken::new();
    cancelled.cancel();
    let pipeline = Pipeline::empty();
    let deadline_trial = evaluate_or_worst(&injected, &pipeline, 1.0, &cancelled);
    assert_eq!(deadline_trial.failure, Some(FailureKind::Deadline));
    cache.insert(&CacheKey::new(&pipeline, 1.0, injected.config()), &deadline_trial);

    let stats = store.stats();
    assert!(stats.skipped > 0, "never-persist refusals must be counted");
    assert!(stats.appended > 0, "deterministic failures are still persisted");

    // What actually reached the disk: deterministic failure trials only.
    let reopened =
        TrialStore::open(repo.segment_path(context), context).expect("reopen segment");
    assert_eq!(reopened.len() as u64, stats.appended, "disk holds exactly the appended trials");
    let mut persisted_kinds = std::collections::BTreeSet::new();
    for (_, trial) in reopened.snapshot() {
        let kind = trial.failure.expect("every injected trial failed");
        assert!(
            !matches!(kind, FailureKind::Deadline | FailureKind::Transport),
            "a circumstantial {kind} trial leaked to disk"
        );
        persisted_kinds.insert(kind.name());
    }
    assert!(!persisted_kinds.is_empty(), "deterministic failures must persist");

    let _ = std::fs::remove_dir_all(&dir);
}
