//! Cross-crate integration tests: the full Auto-FP flow from dataset
//! generation through search to ranked results.

use autofp::automl::{HpoSearch, TpotFp};
use autofp::core::ranking::{average_rankings, Scenario, IMPROVEMENT_THRESHOLD};
use autofp::core::{run_search, Budget, EvalConfig, Evaluator};
use autofp::data::{spec_by_name, Personality, SynthConfig};
use autofp::models::classifier::ModelKind;
use autofp::preprocess::{ParamSpace, PreprocKind};
use autofp::search::{make_searcher, AlgName, Pbt, RandomSearch};

fn needs_fp_dataset() -> autofp::data::Dataset {
    SynthConfig::new("e2e", 400, 8, 2, 17)
        .with_personality(Personality {
            scale_spread: 6.0,
            skew: 0.6,
            heavy_tail: 0.3,
            class_sep: 1.5,
            label_noise: 0.03,
            ..Personality::default()
        })
        .generate()
}

#[test]
fn search_beats_no_fp_baseline_on_scale_spread_data() {
    let dataset = needs_fp_dataset();
    let evaluator = Evaluator::new(&dataset, EvalConfig::default());
    let mut rs = RandomSearch::new(ParamSpace::default_space(), 4, 3);
    let outcome = run_search(&mut rs, &evaluator, Budget::evals(25));
    assert!(
        outcome.best_accuracy() > evaluator.baseline_accuracy() + 0.02,
        "best {} vs baseline {}",
        outcome.best_accuracy(),
        evaluator.baseline_accuracy()
    );
}

#[test]
fn all_fifteen_algorithms_complete_on_registry_dataset() {
    let dataset = spec_by_name("heart").expect("registry").generate(0.5);
    let evaluator = Evaluator::new(&dataset, EvalConfig::default());
    for alg in AlgName::ALL {
        let mut searcher = make_searcher(alg, ParamSpace::default_space(), 4, 5);
        let outcome = run_search(searcher.as_mut(), &evaluator, Budget::evals(10));
        assert!(!outcome.history.is_empty(), "{alg} evaluated nothing");
        assert!(
            outcome.best_accuracy() >= dataset.majority_accuracy() * 0.5,
            "{alg} produced nonsense accuracy {}",
            outcome.best_accuracy()
        );
        for t in outcome.history.trials() {
            assert!(t.pipeline.len() <= 4, "{alg} exceeded max_len: {}", t.pipeline);
            assert!((0.0..=1.0).contains(&t.accuracy));
        }
    }
}

#[test]
fn whole_flow_is_deterministic_per_seed() {
    let dataset = needs_fp_dataset();
    let evaluator = Evaluator::new(&dataset, EvalConfig::default());
    for alg in [AlgName::Rs, AlgName::Pbt, AlgName::Tpe, AlgName::Smac, AlgName::Enas] {
        let run = |seed| {
            let mut s = make_searcher(alg, ParamSpace::default_space(), 4, seed);
            let out = run_search(s.as_mut(), &evaluator, Budget::evals(8));
            (out.best_accuracy(), out.best().map(|t| t.pipeline.key()))
        };
        assert_eq!(run(42), run(42), "{alg} is not deterministic");
        // Different seeds generally explore differently (not asserted
        // strictly — spaces are small enough for coincidences).
    }
}

#[test]
fn ranking_pipeline_over_three_algorithms() {
    let dataset = needs_fp_dataset();
    let evaluator = Evaluator::new(&dataset, EvalConfig::default());
    let algs = [AlgName::Rs, AlgName::TevoH, AlgName::Reinforce];
    let mut accs = Vec::new();
    for alg in algs {
        let mut s = make_searcher(alg, ParamSpace::default_space(), 4, 9);
        accs.push(run_search(s.as_mut(), &evaluator, Budget::evals(12)).best_accuracy());
    }
    let scenario = Scenario {
        label: "e2e/LR".into(),
        baseline: evaluator.baseline_accuracy(),
        accuracies: accs,
    };
    let (ranks, n) = average_rankings(&[scenario], IMPROVEMENT_THRESHOLD);
    assert_eq!(n, 1);
    assert_eq!(ranks.len(), 3);
    // Ranks are a permutation-with-ties of 1..=3: sum is fixed at 6.
    assert!((ranks.iter().sum::<f64>() - 6.0).abs() < 1e-9);
}

#[test]
fn automl_context_comparison_runs() {
    let dataset = needs_fp_dataset();
    let evaluator =
        Evaluator::new(&dataset, EvalConfig { model: ModelKind::Lr, train_fraction: 0.8, seed: 0, train_subsample: None });
    let mut pbt = Pbt::new(ParamSpace::default_space(), 5, 1);
    let auto_fp = run_search(&mut pbt, &evaluator, Budget::evals(20)).best_accuracy();
    let mut tpot = TpotFp::new(1);
    let tpot_fp = run_search(&mut tpot, &evaluator, Budget::evals(20)).best_accuracy();
    let hpo = HpoSearch::new(ModelKind::Lr, 1).run(evaluator.split(), Budget::evals(5));
    assert!(auto_fp > 0.0 && tpot_fp > 0.0 && hpo.best_accuracy > 0.0);
    // Auto-FP searches a strictly larger space than TPOT-FP; with equal
    // budgets it should not lose by much on data that rewards the extra
    // preprocessors.
    assert!(auto_fp >= tpot_fp - 0.05, "auto_fp {auto_fp} vs tpot {tpot_fp}");
}

#[test]
fn partial_budget_evaluations_only_from_bandits() {
    let dataset = needs_fp_dataset();
    let evaluator =
        Evaluator::new(&dataset, EvalConfig { model: ModelKind::Xgb, train_fraction: 0.8, seed: 0, train_subsample: None });
    for alg in [AlgName::Rs, AlgName::Pbt, AlgName::Tpe] {
        let mut s = make_searcher(alg, ParamSpace::default_space(), 4, 2);
        let out = run_search(s.as_mut(), &evaluator, Budget::evals(10));
        assert!(
            out.history.trials().iter().all(|t| t.train_fraction >= 1.0 - 1e-9),
            "{alg} used partial budgets"
        );
    }
    let mut hb = make_searcher(AlgName::Hyperband, ParamSpace::default_space(), 4, 2);
    let out = run_search(hb.as_mut(), &evaluator, Budget::evals(30));
    assert!(
        out.history.trials().iter().any(|t| t.train_fraction < 1.0),
        "Hyperband never used a partial budget"
    );
}

#[test]
fn evolution_tends_to_beat_reinforce_under_wall_clock() {
    // A light-weight version of the paper's central ranking claim: with a
    // small wall-clock budget on FP-sensitive data, TEVO_H should do at
    // least as well as REINFORCE most of the time. Summed over seeds to
    // damp noise.
    let dataset = needs_fp_dataset();
    let evaluator = Evaluator::new(&dataset, EvalConfig::default());
    let mut tevo_total = 0.0;
    let mut reinforce_total = 0.0;
    for seed in 0..3 {
        let mut tevo = make_searcher(AlgName::TevoH, ParamSpace::default_space(), 4, seed);
        tevo_total += run_search(tevo.as_mut(), &evaluator, Budget::evals(20)).best_accuracy();
        let mut r = make_searcher(AlgName::Reinforce, ParamSpace::default_space(), 4, seed);
        reinforce_total +=
            run_search(r.as_mut(), &evaluator, Budget::evals(20)).best_accuracy();
    }
    assert!(
        tevo_total >= reinforce_total - 0.05,
        "TEVO_H {tevo_total} vs REINFORCE {reinforce_total}"
    );
}

#[test]
fn preprocessors_compose_across_crates() {
    // Build a pipeline through the facade and check the paper's P1/P2
    // example compose differently end-to-end.
    let dataset = needs_fp_dataset();
    let evaluator = Evaluator::new(&dataset, EvalConfig::default());
    let p1 = autofp::preprocess::Pipeline::from_kinds(&[
        PreprocKind::MinMaxScaler,
        PreprocKind::PowerTransformer,
    ]);
    let p2 = autofp::preprocess::Pipeline::from_kinds(&[
        PreprocKind::PowerTransformer,
        PreprocKind::MinMaxScaler,
        PreprocKind::Normalizer,
    ]);
    let t1 = evaluator.evaluate(&p1);
    let t2 = evaluator.evaluate(&p2);
    assert!(t1.accuracy > 0.0 && t2.accuracy > 0.0);
}
