//! Invariants stated in the paper's text, checked against this
//! implementation: search-space sizes, Figure 1 values, Table 3
//! categorization, Table 6/7 cardinalities, Table 9 statistics.

use autofp::data::registry;
use autofp::linalg::Matrix;
use autofp::preprocess::enumerate::{enumerate_pipelines, total_count};
use autofp::preprocess::{ParamSpace, Preproc, PreprocKind};
use autofp::search::AlgName;

#[test]
fn section2_2_enumeration_is_2800() {
    // "we only consider pipelines whose length is no larger than 4,
    //  leading to a total of 2800 different pipelines"
    assert_eq!(total_count(7, 4), 2800);
    assert_eq!(enumerate_pipelines(4).len(), 2800);
}

#[test]
fn section7_3_default_space_is_about_one_million() {
    // "the search space ... of Auto-FP contains about 1 million pipelines"
    let n = total_count(7, 7);
    assert_eq!(n, 960_799);
    assert!((900_000..1_100_000).contains(&n));
}

#[test]
fn figure1_values_match_paper() {
    let column = [-1.5, 1.0, 1.5, 2.5, 3.0, 4.0, 5.0];
    let x = Matrix::column_vector(&column);
    let check = |kind: PreprocKind, expected: &[f64], tol: f64| {
        let mut m = x.clone();
        Preproc::default_for(kind).fit(&x).transform(&mut m);
        for (got, want) in m.col(0).iter().zip(expected) {
            assert!((got - want).abs() <= tol, "{kind}: {:?} vs {expected:?}", m.col(0));
        }
    };
    // Figure 1 columns (b)-(h).
    check(PreprocKind::StandardScaler, &[-1.87, -0.61, -0.36, 0.15, 0.40, 0.90, 1.41], 0.02);
    check(PreprocKind::MaxAbsScaler, &[-0.3, 0.2, 0.3, 0.5, 0.6, 0.8, 1.0], 1e-9);
    check(PreprocKind::MinMaxScaler, &[0.0, 0.38, 0.46, 0.61, 0.69, 0.85, 1.0], 0.01);
    check(PreprocKind::Normalizer, &[-1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0], 1e-9);
    check(PreprocKind::PowerTransformer, &[-1.72, -0.71, -0.46, 0.07, 0.35, 0.93, 1.53], 0.08);
    check(
        PreprocKind::QuantileTransformer,
        &[0.0, 1.0 / 6.0, 2.0 / 6.0, 0.5, 4.0 / 6.0, 5.0 / 6.0, 1.0],
        1e-6,
    );
    check(PreprocKind::Binarizer, &[0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0], 1e-9);
}

#[test]
fn table3_fifteen_algorithms_in_five_categories() {
    assert_eq!(AlgName::ALL.len(), 15);
    let categories = [
        ("Traditional", 2),
        ("Surrogate-model-based", 6),
        ("Evolution-based", 3),
        ("RL-based", 2),
        ("Bandit-based", 2),
    ];
    for (cat, count) in categories {
        assert_eq!(
            AlgName::ALL.iter().filter(|a| a.category() == cat).count(),
            count,
            "{cat}"
        );
    }
}

#[test]
fn table6_low_cardinality_space() {
    let space = ParamSpace::low_cardinality();
    // "the number of preprocessors ... will be increased from 7 to
    //  6+1+1+3+2+2+16 = 31"
    assert_eq!(space.n_variants(), 31);
    // Max cardinality is n_quantiles with 8 values.
    assert_eq!(space.variants_of(PreprocKind::QuantileTransformer).len(), 8 * 2);
}

#[test]
fn table7_high_cardinality_space_is_quantile_dominated() {
    let space = ParamSpace::high_cardinality();
    let q = space.variants_of(PreprocKind::QuantileTransformer).len() as f64;
    let share = q / space.n_variants() as f64;
    // "QuantileTransformer takes a large proportion ... ~99.3%"
    assert!(share > 0.99, "share {share}");
}

#[test]
fn table9_registry_statistics() {
    let specs = registry();
    assert_eq!(specs.len(), 45);
    // "28 binary classification datasets and 17 multi-classification
    //  datasets with up to 100 classes"
    assert_eq!(specs.iter().filter(|s| s.classes == 2).count(), 28);
    assert_eq!(specs.iter().map(|s| s.classes).max(), Some(100));
    // "file size ... from 0.01 MB to 75.2 MB"
    let min_mb = specs.iter().map(|s| s.size_mb).fold(f64::INFINITY, f64::min);
    let max_mb = specs.iter().map(|s| s.size_mb).fold(0.0, f64::max);
    assert!((min_mb - 0.01).abs() < 1e-9);
    assert!((max_mb - 75.2).abs() < 1e-9);
    // "number of rows ... from 242 to 464,809; columns from 4 to 1,636"
    assert_eq!(specs.iter().map(|s| s.rows).min(), Some(242));
    assert_eq!(specs.iter().map(|s| s.rows).max(), Some(464_809));
    assert_eq!(specs.iter().map(|s| s.cols).min(), Some(4));
    assert_eq!(specs.iter().map(|s| s.cols).max(), Some(1_636));
}

#[test]
fn metafeature_list_matches_table10() {
    assert_eq!(autofp::metafeatures::NAMES.len(), 40);
    for name in ["SkewnessMean", "Landmark1NN", "ClassEntropy", "NumberOfClasses"] {
        assert!(autofp::metafeatures::NAMES.contains(&name), "{name} missing");
    }
}

#[test]
fn table8_tpot_has_five_preprocessors() {
    assert_eq!(autofp::automl::TPOT_PREPROCESSORS.len(), 5);
    // TPOT lacks the two transformers (per Table 8 discussion).
    assert!(!autofp::automl::TPOT_PREPROCESSORS.contains(&PreprocKind::PowerTransformer));
    assert!(!autofp::automl::TPOT_PREPROCESSORS.contains(&PreprocKind::QuantileTransformer));
}
