//! Matrix-level determinism and cache-reuse suite: the bench harness's
//! dataset × model × algorithm runner must be a pure function of its
//! config — worker-thread count, rerun, cache mode, and LRU capacity
//! may change wall-clock, never results.
//!
//! This extends the per-search invariants of `tests/determinism.rs` to
//! the bench layer: a mini Table 4 matrix (2 datasets × 2 models × 3
//! algorithms) is canonicalized to a byte string (f64 bit patterns, no
//! wall-clock fields) and compared across runs.

use autofp_bench::{run_matrix, CacheMode, HarnessConfig, MatrixOutcome};
use autofp_core::{Budget, FailureKind};
use autofp_data::{registry, DatasetSpec};
use autofp_models::classifier::ModelKind;
use autofp_search::AlgName;
use std::fmt::Write as _;

/// The mini Table 4 matrix: small datasets, eval-count budget (so cache
/// hits cannot change how many proposals fit in the budget), and two
/// PNAS variants that both open with the same 7 single-preprocessor
/// pipelines — guaranteed cross-algorithm duplicates for the shared
/// cache to absorb.
fn mini_config() -> (Vec<DatasetSpec>, [ModelKind; 2], [AlgName; 3], HarnessConfig) {
    let mut cfg = HarnessConfig::default();
    cfg.scale = 0.05;
    cfg.budget = Budget::evals(8);
    cfg.max_rows = 160;
    cfg.min_rows = 120;
    cfg.max_len = 3;
    cfg.seed = 11;
    let specs: Vec<DatasetSpec> = registry().into_iter().take(2).collect();
    (specs, [ModelKind::Lr, ModelKind::Xgb], [AlgName::Rs, AlgName::Pmne, AlgName::Plne], cfg)
}

/// Serialize everything deterministic about a matrix run: cell identity,
/// f64 bit patterns, eval counts, winning pipelines, and failure
/// tallies. Cache counters and phase timings are deliberately excluded
/// (hit/miss splits race under a shared cache; timings are wall-clock).
fn canonical(outcome: &MatrixOutcome) -> String {
    let mut s = String::new();
    for c in &outcome.cells {
        let failures: Vec<String> = FailureKind::ALL
            .iter()
            .map(|&k| format!("{}={}", k.name(), c.failures.count(k)))
            .collect();
        let _ = writeln!(
            s,
            "{}|{}|{}|{:016x}|{:016x}|{}|{}|{}",
            c.dataset,
            c.model.name(),
            c.algorithm,
            c.baseline.to_bits(),
            c.best_accuracy.to_bits(),
            c.n_evals,
            c.best_pipeline,
            failures.join(","),
        );
    }
    s
}

#[test]
fn matrix_byte_identical_across_thread_counts_and_reruns() {
    let (specs, models, algs, mut cfg) = mini_config();
    cfg.threads = 1;
    let single = canonical(&run_matrix(&specs, &models, &algs, &cfg));
    let rerun = canonical(&run_matrix(&specs, &models, &algs, &cfg));
    assert_eq!(single, rerun, "same config must reproduce byte-identically");
    cfg.threads = 8;
    let eight = canonical(&run_matrix(&specs, &models, &algs, &cfg));
    assert_eq!(single, eight, "worker-thread count leaked into matrix results");
    assert_eq!(single.lines().count(), 12, "2 datasets x 2 models x 3 algorithms");
}

#[test]
fn shared_cache_matches_per_cell_and_reuses_across_algorithms() {
    let (specs, models, algs, mut cfg) = mini_config();
    // Sequential cells make the hit counts deterministic: concurrent
    // cells of one group can race to a miss on the same key (results
    // stay bit-identical — thread invariance is pinned above — but the
    // hit/miss split would wobble).
    cfg.threads = 1;
    cfg.cache_mode = CacheMode::Shared;
    let shared = run_matrix(&specs, &models, &algs, &cfg);
    cfg.cache_mode = CacheMode::PerCell;
    let per_cell = run_matrix(&specs, &models, &algs, &cfg);

    assert_eq!(
        canonical(&shared),
        canonical(&per_cell),
        "cache sharing must never change results"
    );
    // PMNE and PLNE both evaluate the 7 single-preprocessor pipelines
    // first, so each (dataset, model) group's shared cache serves at
    // least those 7 across algorithms: 4 groups x 7 = 28 minimum.
    assert!(
        shared.cache.hits >= 28,
        "expected >= 28 cross-algorithm cache hits, got {}",
        shared.cache.hits
    );
    assert!(
        shared.cache.misses < per_cell.cache.misses,
        "shared cache must evaluate strictly less than per-cell caches ({} vs {})",
        shared.cache.misses,
        per_cell.cache.misses
    );
    // Both modes perform the same number of lookups (cache hits still
    // count toward the eval budget).
    assert_eq!(shared.cache.lookups(), per_cell.cache.lookups());
}

#[test]
fn lru_cap_evicts_without_changing_results() {
    let (specs, models, algs, mut cfg) = mini_config();
    cfg.threads = 2;
    cfg.cache_mode = CacheMode::Shared;
    let unbounded = run_matrix(&specs, &models, &algs, &cfg);
    assert_eq!(unbounded.cache.evictions, 0, "unbounded caches never evict");

    cfg.cache_capacity = Some(3);
    let capped = run_matrix(&specs, &models, &algs, &cfg);
    assert_eq!(
        canonical(&unbounded),
        canonical(&capped),
        "LRU eviction must only cost recomputation, never change results"
    );
    assert!(capped.cache.evictions > 0, "a 3-entry cap over 8-eval searches must evict");
    // `entries` aggregates over the 4 (dataset, model) group caches,
    // each individually capped at 3 live entries.
    assert!(
        capped.cache.entries <= 4 * 3,
        "with_capacity(3) violated: {} live entries across 4 group caches",
        capped.cache.entries
    );
}
