//! Distributed-evaluation suite: a scenario matrix run against real
//! `evald` worker processes must be bit-identical to the in-process
//! run, and must survive (deterministically) a worker dying mid-fleet.
//!
//! These tests spawn the actual `evald` binary (built by this
//! package's `src/bin/evald.rs`) via `CARGO_BIN_EXE_evald`, so the
//! full stack is exercised: process spawn → TCP → wire protocol →
//! worker-local dataset regeneration → sharded cache → response.

use autofp_bench::{run_matrix, HarnessConfig, MatrixOutcome};
use autofp_core::{Budget, FailureKind};
use autofp_data::{registry, DatasetSpec};
use autofp_models::classifier::ModelKind;
use autofp_search::AlgName;
use autofp::evald::WorkerFleet;
use std::fmt::Write as _;
use std::path::Path;

/// Same mini Table 4 matrix as tests/matrix.rs: 2 datasets × 2 models
/// × 3 algorithms at an eval-count budget, so remote transport faults
/// can never change how many proposals fit in the budget.
fn mini_config() -> (Vec<DatasetSpec>, [ModelKind; 2], [AlgName; 3], HarnessConfig) {
    let mut cfg = HarnessConfig::default();
    cfg.scale = 0.05;
    cfg.budget = Budget::evals(8);
    cfg.max_rows = 160;
    cfg.min_rows = 120;
    cfg.max_len = 3;
    cfg.seed = 11;
    let specs: Vec<DatasetSpec> = registry().into_iter().take(2).collect();
    (specs, [ModelKind::Lr, ModelKind::Xgb], [AlgName::Rs, AlgName::Pmne, AlgName::Plne], cfg)
}

/// Deterministic serialization of a matrix run (mirrors
/// tests/matrix.rs): identities, f64 bit patterns, eval counts, winning
/// pipelines, failure tallies — no wall-clock or cache-counter fields.
fn canonical(outcome: &MatrixOutcome) -> String {
    let mut s = String::new();
    for c in &outcome.cells {
        let failures: Vec<String> = FailureKind::ALL
            .iter()
            .map(|&k| format!("{}={}", k.name(), c.failures.count(k)))
            .collect();
        let _ = writeln!(
            s,
            "{}|{}|{}|{:016x}|{:016x}|{}|{}|{}",
            c.dataset,
            c.model.name(),
            c.algorithm,
            c.baseline.to_bits(),
            c.best_accuracy.to_bits(),
            c.n_evals,
            c.best_pipeline,
            failures.join(","),
        );
    }
    s
}

fn spawn_fleet(n: usize) -> WorkerFleet {
    WorkerFleet::spawn(Path::new(env!("CARGO_BIN_EXE_evald")), n).expect("spawn evald workers")
}

#[test]
fn sharded_two_worker_run_is_bit_identical_to_in_process() {
    let (specs, models, algs, mut cfg) = mini_config();
    let local = canonical(&run_matrix(&specs, &models, &algs, &cfg));

    let fleet = spawn_fleet(2);
    cfg.remote_addrs = fleet.addrs();
    let remote = run_matrix(&specs, &models, &algs, &cfg);
    assert_eq!(
        local,
        canonical(&remote),
        "sharded remote evaluation must reproduce the in-process matrix bit-identically"
    );
    // No transport faults in a healthy fleet.
    assert_eq!(remote.failures.count(FailureKind::Transport), 0);
}

#[test]
fn fleet_survives_a_killed_worker_deterministically() {
    let (specs, models, algs, mut cfg) = mini_config();
    let mut fleet = spawn_fleet(2);
    cfg.remote_addrs = fleet.addrs();

    // Warm run against the healthy fleet (also proves both workers are
    // actually serving before we kill one).
    let healthy = run_matrix(&specs, &models, &algs, &cfg);
    assert_eq!(healthy.failures.count(FailureKind::Transport), 0);

    // Kill worker 1. Its address stays in the shard map, so every
    // request fingerprint-routed to it now fails: retries exhaust
    // against a refused connection and the evaluation degrades to a
    // worst-error trial tagged Transport.
    fleet.kill(1);
    let degraded = run_matrix(&specs, &models, &algs, &cfg);
    let rerun = run_matrix(&specs, &models, &algs, &cfg);

    assert_eq!(
        canonical(&degraded),
        canonical(&rerun),
        "a dead worker must degrade the matrix deterministically"
    );
    assert!(
        degraded.failures.count(FailureKind::Transport) > 0,
        "requests sharded to the killed worker must surface as Transport failures"
    );
    // The budget still completes: worst-error trials count as
    // evaluations, so every cell finishes its 8 evals.
    for cell in &degraded.cells {
        assert_eq!(cell.n_evals, 8, "{}/{}/{}", cell.dataset, cell.model.name(), cell.algorithm);
    }
    // And the run differs from the healthy one only through those
    // worst-error trials — the surviving worker's results are intact
    // (baselines come from worker 0's Describe and must match).
    for (h, d) in healthy.cells.iter().zip(&degraded.cells) {
        assert_eq!(h.baseline.to_bits(), d.baseline.to_bits());
    }
}
