//! Distributed-evaluation suite: a scenario matrix run against real
//! `evald` worker processes must be bit-identical to the in-process
//! run — including while the fleet is being killed, respawned, or
//! resized under it. Rendezvous routing plus deterministic failover
//! means a live worker always produces the same trial bits the dead
//! one would have, so chaos shows up only in the robustness counters,
//! never in the results.
//!
//! These tests spawn the actual `evald` binary (built by this
//! package's `src/bin/evald.rs`) via `CARGO_BIN_EXE_evald`, so the
//! full stack is exercised: process spawn → TCP → wire protocol →
//! worker-local dataset regeneration → sharded cache → response.

use autofp::evald::{FleetSupervisor, SupervisorConfig, WorkerFleet};
use autofp_bench::{run_matrix, HarnessConfig, MatrixOutcome};
use autofp_core::{Budget, FailureKind};
use autofp_data::{registry, DatasetSpec};
use autofp_models::classifier::ModelKind;
use autofp_search::AlgName;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

/// Same mini Table 4 matrix as tests/matrix.rs: 2 datasets × 2 models
/// × 3 algorithms at an eval-count budget, so remote transport faults
/// can never change how many proposals fit in the budget.
fn mini_config() -> (Vec<DatasetSpec>, [ModelKind; 2], [AlgName; 3], HarnessConfig) {
    let mut cfg = HarnessConfig::default();
    cfg.scale = 0.05;
    cfg.budget = Budget::evals(8);
    cfg.max_rows = 160;
    cfg.min_rows = 120;
    cfg.max_len = 3;
    cfg.seed = 11;
    let specs: Vec<DatasetSpec> = registry().into_iter().take(2).collect();
    (specs, [ModelKind::Lr, ModelKind::Xgb], [AlgName::Rs, AlgName::Pmne, AlgName::Plne], cfg)
}

/// Deterministic serialization of a matrix run (mirrors
/// tests/matrix.rs): identities, f64 bit patterns, eval counts, winning
/// pipelines, failure tallies — no wall-clock or cache-counter fields.
fn canonical(outcome: &MatrixOutcome) -> String {
    let mut s = String::new();
    for c in &outcome.cells {
        let failures: Vec<String> = FailureKind::ALL
            .iter()
            .map(|&k| format!("{}={}", k.name(), c.failures.count(k)))
            .collect();
        let _ = writeln!(
            s,
            "{}|{}|{}|{:016x}|{:016x}|{}|{}|{}",
            c.dataset,
            c.model.name(),
            c.algorithm,
            c.baseline.to_bits(),
            c.best_accuracy.to_bits(),
            c.n_evals,
            c.best_pipeline,
            failures.join(","),
        );
    }
    s
}

fn evald_bin() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_evald"))
}

fn spawn_fleet(n: usize) -> WorkerFleet {
    WorkerFleet::spawn(evald_bin(), n).expect("spawn evald workers")
}

/// A supervisor tuned for tests: instant-ish respawn (tiny backoff) and
/// a short health-probe timeout so supervision passes are fast.
fn spawn_supervised(n: usize) -> FleetSupervisor {
    let config = SupervisorConfig {
        max_restarts: 3,
        backoff: Duration::from_millis(1),
        jitter_seed: 0x7E57,
        ping_timeout: Duration::from_millis(500),
    };
    FleetSupervisor::spawn(evald_bin(), n, config).expect("spawn supervised evald workers")
}

/// Block until the fleet has served at least `min_served` evaluation
/// requests (so a chaos action provably lands mid-run, not before it).
fn wait_for_served(addrs: &[String], min_served: u64) {
    for _ in 0..4000 {
        let served: u64 = addrs
            .iter()
            .filter_map(|a| autofp::evald::stats(a, Duration::from_secs(1)).ok())
            .map(|s| s.served)
            .sum();
        if served >= min_served {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("fleet never reached served >= {min_served}");
}

#[test]
fn sharded_two_worker_run_is_bit_identical_to_in_process() {
    let (specs, models, algs, mut cfg) = mini_config();
    let local = canonical(&run_matrix(&specs, &models, &algs, &cfg));

    let fleet = spawn_fleet(2);
    cfg.remote_addrs = fleet.addrs();
    let remote = run_matrix(&specs, &models, &algs, &cfg);
    assert_eq!(
        local,
        canonical(&remote),
        "sharded remote evaluation must reproduce the in-process matrix bit-identically"
    );
    // No transport faults in a healthy fleet.
    assert_eq!(remote.failures.count(FailureKind::Transport), 0);
    // The matrix reports its fleet counters; a healthy fixed fleet
    // needed no healing.
    let stats = remote.fleet.expect("remote runs carry fleet stats");
    assert_eq!(stats.workers, 2);
    assert_eq!(stats.reconnects, 0);
    assert_eq!(stats.failovers, 0);
    assert_eq!(stats.respawns, 0);
}

#[test]
fn killed_worker_fails_over_with_bit_identical_results() {
    let (specs, models, algs, mut cfg) = mini_config();
    let mut fleet = spawn_fleet(2);
    cfg.remote_addrs = fleet.addrs();

    // Warm run against the healthy fleet (also proves both workers are
    // actually serving before we kill one).
    let healthy = run_matrix(&specs, &models, &algs, &cfg);
    assert_eq!(healthy.failures.count(FailureKind::Transport), 0);

    // Kill worker 1. Its address stays in the shard map, so every
    // request rendezvous-routed to it first fails there — and then
    // fails over to its rendezvous successor (worker 0), which
    // regenerates the same dataset and returns the same trial bits.
    // With at least one live worker, nothing degrades to a worst-error
    // trial.
    fleet.kill(1);
    let failed_over = run_matrix(&specs, &models, &algs, &cfg);

    assert_eq!(
        canonical(&healthy),
        canonical(&failed_over),
        "failover must reproduce the healthy fleet's matrix bit-identically"
    );
    assert_eq!(
        failed_over.failures.count(FailureKind::Transport),
        0,
        "no Transport worst-error trials while a live worker remains"
    );
    let stats = failed_over.fleet.expect("remote runs carry fleet stats");
    assert!(stats.failovers > 0, "keys sharded to the dead worker must fail over");
    assert!(stats.circuit_opens >= 1, "the dead worker's circuit must open");
}

#[test]
fn fully_dead_fleet_degrades_to_deterministic_transport_failures() {
    let (specs, models, algs, mut cfg) = mini_config();
    let mut fleet = spawn_fleet(2);
    cfg.remote_addrs = fleet.addrs();
    fleet.kill(0);
    fleet.kill(1);

    // No live worker anywhere: every evaluation exhausts the whole
    // fleet and surfaces as a worst-error trial tagged Transport; the
    // baseline probe degrades to 0.0. The budget still completes —
    // worst-error trials count as evaluations.
    let dead = run_matrix(&specs, &models, &algs, &cfg);
    let rerun = run_matrix(&specs, &models, &algs, &cfg);
    assert_eq!(
        canonical(&dead),
        canonical(&rerun),
        "a fully dead fleet must degrade the matrix deterministically"
    );
    assert!(
        dead.failures.count(FailureKind::Transport) > 0,
        "with zero live workers, evaluations must surface as Transport failures"
    );
    for cell in &dead.cells {
        assert_eq!(cell.n_evals, 8, "{}/{}/{}", cell.dataset, cell.model.name(), cell.algorithm);
        assert_eq!(cell.baseline.to_bits(), 0.0f64.to_bits());
    }
}

#[test]
fn supervisor_respawns_a_worker_killed_mid_run_bit_identically() {
    let (specs, models, algs, mut cfg) = mini_config();
    let local = canonical(&run_matrix(&specs, &models, &algs, &cfg));

    let mut supervisor = spawn_supervised(2);
    cfg.fleet_spec = Some(supervisor.fleet());
    let addrs = supervisor.addrs();

    let outcome = std::thread::scope(|scope| {
        let cfg = &cfg;
        let specs = &specs;
        let handle = scope.spawn(move || run_matrix(specs, &models, &algs, cfg));
        // Let the matrix provably start, then kill a worker mid-run and
        // heal the fleet. The respawned worker comes back on a fresh
        // OS-assigned port but keeps slot 1, so its keyspace follows it.
        wait_for_served(&addrs, 1);
        supervisor.kill(1);
        assert_eq!(supervisor.supervise_once(), 1, "the killed worker must be respawned");
        handle.join().expect("matrix run panicked")
    });

    assert_eq!(
        local,
        canonical(&outcome),
        "kill + respawn mid-matrix must not change a single result bit"
    );
    assert_eq!(
        outcome.failures.count(FailureKind::Transport),
        0,
        "failover covers the gap between death and respawn"
    );
    assert_eq!(supervisor.respawns(), 1);
    assert!(supervisor.epoch() >= 2, "respawn must republish an epoch-bumped spec");
    let stats = outcome.fleet.expect("remote runs carry fleet stats");
    assert_eq!(stats.respawns, 1);
    // The respawned worker answers on its new address.
    let new_addrs = supervisor.addrs();
    assert_ne!(addrs[1], new_addrs[1], "respawn lands on a fresh port");
    autofp::evald::ping(&new_addrs[1], Duration::from_secs(2)).expect("respawned worker alive");
}

#[test]
fn resizing_the_fleet_mid_run_keeps_results_bit_identical() {
    let (specs, models, algs, mut cfg) = mini_config();
    let local = canonical(&run_matrix(&specs, &models, &algs, &cfg));

    let mut supervisor = spawn_supervised(2);
    cfg.fleet_spec = Some(supervisor.fleet());
    let addrs = supervisor.addrs();

    let outcome = std::thread::scope(|scope| {
        let cfg = &cfg;
        let specs = &specs;
        let handle = scope.spawn(move || run_matrix(specs, &models, &algs, cfg));
        // Grow the fleet 2 → 3 mid-matrix: rendezvous hashing moves
        // only the ~1/3 of keys whose top slot becomes the new worker
        // (pinned quantitatively by core::remote's resize unit test),
        // and every moved key lands on a worker that regenerates the
        // identical dataset.
        wait_for_served(&addrs, 1);
        supervisor.resize(3).expect("resize to 3 workers");
        handle.join().expect("matrix run panicked")
    });

    assert_eq!(
        local,
        canonical(&outcome),
        "a mid-run fleet resize must not change a single result bit"
    );
    assert_eq!(outcome.failures.count(FailureKind::Transport), 0);
    assert_eq!(supervisor.len(), 3);
    assert!(supervisor.epoch() >= 2, "resize must republish an epoch-bumped spec");
    // All three workers are live members of the final spec.
    for addr in supervisor.addrs() {
        autofp::evald::ping(&addr, Duration::from_secs(2)).expect("worker alive after resize");
    }
}
