//! Property-based tests (proptest) on the core invariants: preprocessor
//! output ranges, pipeline totality, mutation bounds, metric ranges and
//! rank consistency — over arbitrary (finite) data.

use autofp::linalg::stats::average_ranks;
use autofp::linalg::Matrix;
use autofp::models::metrics::{accuracy, auc_binary};
use autofp::preprocess::{ParamSpace, Pipeline, Preproc, PreprocKind};
use proptest::prelude::*;

/// Generator: a small matrix of finite floats in a bounded range.
fn small_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..12, 1usize..6).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(-1e6f64..1e6, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    })
}

/// Generator: a pipeline of up to 4 default-parameter steps.
fn small_pipeline() -> impl Strategy<Value = Pipeline> {
    proptest::collection::vec(0usize..7, 1..5)
        .prop_map(|kinds| Pipeline::from_kinds(&kinds.iter().map(|&k| PreprocKind::from_index(k)).collect::<Vec<_>>()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_pipeline_on_any_data_stays_finite(x in small_matrix(), p in small_pipeline()) {
        let (fitted, train_out) = p.fit_transform(&x);
        prop_assert!(train_out.is_finite(), "train output not finite for {p}");
        prop_assert_eq!(train_out.shape(), x.shape());
        // Transforming fresh data through the fitted chain also stays finite.
        let mut other = x.clone();
        other.map_inplace(|v| v * 0.5 + 1.0);
        fitted.transform(&mut other);
        prop_assert!(other.is_finite(), "valid output not finite for {p}");
    }

    #[test]
    fn minmax_maps_training_data_into_unit_interval(x in small_matrix()) {
        let mut m = x.clone();
        Preproc::MinMaxScaler.fit(&x).transform(&mut m);
        for &v in m.as_slice() {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "minmax value {v}");
        }
    }

    #[test]
    fn maxabs_maps_training_data_into_unit_ball(x in small_matrix()) {
        let mut m = x.clone();
        Preproc::MaxAbsScaler.fit(&x).transform(&mut m);
        for &v in m.as_slice() {
            prop_assert!(v.abs() <= 1.0 + 1e-9, "maxabs value {v}");
        }
    }

    #[test]
    fn binarizer_outputs_zero_or_one(x in small_matrix(), threshold in -10.0f64..10.0) {
        let mut m = x.clone();
        Preproc::Binarizer { threshold }.fit(&x).transform(&mut m);
        for &v in m.as_slice() {
            prop_assert!(v == 0.0 || v == 1.0);
        }
    }

    #[test]
    fn normalizer_rows_have_unit_norm_or_zero(x in small_matrix()) {
        let mut m = x.clone();
        Preproc::default_for(PreprocKind::Normalizer).fit(&x).transform(&mut m);
        for row in m.rows_iter() {
            let n = autofp::linalg::matrix::norm_l2(row);
            prop_assert!(n < 1e-9 || (n - 1.0).abs() < 1e-9, "row norm {n}");
        }
    }

    #[test]
    fn quantile_uniform_output_in_unit_interval(x in small_matrix()) {
        let mut m = x.clone();
        Preproc::default_for(PreprocKind::QuantileTransformer).fit(&x).transform(&mut m);
        for &v in m.as_slice() {
            prop_assert!((0.0..=1.0).contains(&v), "quantile value {v}");
        }
    }

    #[test]
    fn standard_scaler_train_columns_are_standardized(x in small_matrix()) {
        let mut m = x.clone();
        Preproc::StandardScaler { with_mean: true }.fit(&x).transform(&mut m);
        for j in 0..m.ncols() {
            let col = m.col(j);
            let mean = autofp::linalg::stats::mean(&col);
            let std = autofp::linalg::stats::std_dev(&col);
            prop_assert!(mean.abs() < 1e-6, "col mean {mean}");
            // Constant columns keep std 0; others become ~1.
            prop_assert!(std < 1e-9 || (std - 1.0).abs() < 1e-6, "col std {std}");
        }
    }

    #[test]
    fn power_transform_is_monotone_per_column(x in small_matrix()) {
        let fitted = Preproc::PowerTransformer { standardize: false }.fit(&x);
        let mut m = x.clone();
        fitted.transform(&mut m);
        for j in 0..x.ncols() {
            let orig = x.col(j);
            let out = m.col(j);
            let mut pairs: Vec<(f64, f64)> = orig.into_iter().zip(out).collect();
            pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in pairs.windows(2) {
                prop_assert!(w[1].1 >= w[0].1 - 1e-9, "non-monotone in column {j}");
            }
        }
    }

    #[test]
    fn mutation_preserves_length_bounds(
        kinds in proptest::collection::vec(0usize..7, 1..7),
        seed in 0u64..1000,
    ) {
        let p = Pipeline::from_kinds(
            &kinds.iter().map(|&k| PreprocKind::from_index(k)).collect::<Vec<_>>(),
        );
        let space = ParamSpace::default_space();
        let mut rng = autofp::linalg::rng::rng_from_seed(seed);
        let m = autofp::search::mutation::mutate(&p, &space, 7, &mut rng);
        prop_assert!(!m.is_empty() && m.len() <= 7);
    }

    #[test]
    fn accuracy_is_bounded_and_complements_error(
        labels in proptest::collection::vec(0usize..3, 1..40),
        preds in proptest::collection::vec(0usize..3, 1..40),
    ) {
        let n = labels.len().min(preds.len());
        let acc = accuracy(&labels[..n], &preds[..n]);
        prop_assert!((0.0..=1.0).contains(&acc));
        let err = autofp::models::metrics::error_rate(&labels[..n], &preds[..n]);
        prop_assert!((acc + err - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_is_invariant_to_monotone_score_transforms(
        labels in proptest::collection::vec(0usize..2, 4..30),
        scores in proptest::collection::vec(-100.0f64..100.0, 4..30),
    ) {
        let n = labels.len().min(scores.len());
        let a1 = auc_binary(&labels[..n], &scores[..n]);
        let transformed: Vec<f64> = scores[..n].iter().map(|s| s.exp().min(1e300)).collect();
        let a2 = auc_binary(&labels[..n], &transformed);
        prop_assert!((a1 - a2).abs() < 1e-9, "{a1} vs {a2}");
    }

    #[test]
    fn ranks_sum_is_invariant(values in proptest::collection::vec(-10.0f64..10.0, 1..20)) {
        let ranks = average_ranks(&values);
        let n = values.len() as f64;
        let expected = n * (n + 1.0) / 2.0;
        prop_assert!((ranks.iter().sum::<f64>() - expected).abs() < 1e-9);
    }

    #[test]
    fn pipeline_encoding_width_is_stable(p in small_pipeline(), max_len in 4usize..9) {
        let e = autofp::preprocess::encoding::encode_pipeline(&p, max_len);
        prop_assert_eq!(e.len(), autofp::preprocess::encoding::encoding_width(max_len));
        prop_assert!(e.iter().all(|v| v.is_finite()));
    }
}
