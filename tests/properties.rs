//! Randomized property tests on the core invariants: preprocessor
//! output ranges, pipeline totality, mutation bounds, metric ranges and
//! rank consistency — over seeded random (finite) data.
//!
//! The original suite used `proptest`; the offline build environment
//! cannot fetch it, so each property is exercised over a fixed number of
//! deterministically seeded random cases instead. Shrinking is lost,
//! but every case is reproducible from its printed seed.

use autofp::linalg::rng::rng_from_seed;
use autofp::linalg::stats::average_ranks;
use autofp::linalg::Matrix;
use autofp::models::metrics::{accuracy, auc_binary};
use autofp::preprocess::{ParamSpace, Pipeline, Preproc, PreprocKind};
use rand::rngs::StdRng;
use rand::Rng;

const CASES: u64 = 64;

/// A small matrix of finite floats in a bounded range.
fn small_matrix(rng: &mut StdRng) -> Matrix {
    let rows = rng.gen_range(2..12usize);
    let cols = rng.gen_range(1..6usize);
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1e6..1e6)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// A pipeline of up to 4 default-parameter steps.
fn small_pipeline(rng: &mut StdRng) -> Pipeline {
    let len = rng.gen_range(1..5usize);
    let kinds: Vec<PreprocKind> =
        (0..len).map(|_| PreprocKind::from_index(rng.gen_range(0..7usize))).collect();
    Pipeline::from_kinds(&kinds)
}

/// Run `body` over `CASES` deterministically seeded cases.
fn for_cases(test_seed: u64, mut body: impl FnMut(&mut StdRng)) {
    for case in 0..CASES {
        let seed = autofp::linalg::rng::derive_seed(test_seed, case);
        let mut rng = rng_from_seed(seed);
        body(&mut rng);
    }
}

#[test]
fn any_pipeline_on_any_data_stays_finite() {
    for_cases(0xA1, |rng| {
        let x = small_matrix(rng);
        let p = small_pipeline(rng);
        let (fitted, train_out) = p.fit_transform(&x);
        assert!(train_out.is_finite(), "train output not finite for {p}");
        assert_eq!(train_out.shape(), x.shape());
        // Transforming fresh data through the fitted chain also stays finite.
        let mut other = x.clone();
        other.map_inplace(|v| v * 0.5 + 1.0);
        fitted.transform(&mut other);
        assert!(other.is_finite(), "valid output not finite for {p}");
    });
}

#[test]
fn minmax_maps_training_data_into_unit_interval() {
    for_cases(0xA2, |rng| {
        let x = small_matrix(rng);
        let mut m = x.clone();
        Preproc::MinMaxScaler.fit(&x).transform(&mut m);
        for &v in m.as_slice() {
            assert!((-1e-9..=1.0 + 1e-9).contains(&v), "minmax value {v}");
        }
    });
}

#[test]
fn maxabs_maps_training_data_into_unit_ball() {
    for_cases(0xA3, |rng| {
        let x = small_matrix(rng);
        let mut m = x.clone();
        Preproc::MaxAbsScaler.fit(&x).transform(&mut m);
        for &v in m.as_slice() {
            assert!(v.abs() <= 1.0 + 1e-9, "maxabs value {v}");
        }
    });
}

#[test]
fn binarizer_outputs_zero_or_one() {
    for_cases(0xA4, |rng| {
        let x = small_matrix(rng);
        let threshold = rng.gen_range(-10.0..10.0);
        let mut m = x.clone();
        Preproc::Binarizer { threshold }.fit(&x).transform(&mut m);
        for &v in m.as_slice() {
            assert!(v == 0.0 || v == 1.0);
        }
    });
}

#[test]
fn normalizer_rows_have_unit_norm_or_zero() {
    for_cases(0xA5, |rng| {
        let x = small_matrix(rng);
        let mut m = x.clone();
        Preproc::default_for(PreprocKind::Normalizer).fit(&x).transform(&mut m);
        for row in m.rows_iter() {
            let n = autofp::linalg::matrix::norm_l2(row);
            assert!(n < 1e-9 || (n - 1.0).abs() < 1e-9, "row norm {n}");
        }
    });
}

#[test]
fn quantile_uniform_output_in_unit_interval() {
    for_cases(0xA6, |rng| {
        let x = small_matrix(rng);
        let mut m = x.clone();
        Preproc::default_for(PreprocKind::QuantileTransformer).fit(&x).transform(&mut m);
        for &v in m.as_slice() {
            assert!((0.0..=1.0).contains(&v), "quantile value {v}");
        }
    });
}

#[test]
fn standard_scaler_train_columns_are_standardized() {
    for_cases(0xA7, |rng| {
        let x = small_matrix(rng);
        let mut m = x.clone();
        Preproc::StandardScaler { with_mean: true }.fit(&x).transform(&mut m);
        for j in 0..m.ncols() {
            let col = m.col(j);
            let mean = autofp::linalg::stats::mean(&col);
            let std = autofp::linalg::stats::std_dev(&col);
            assert!(mean.abs() < 1e-6, "col mean {mean}");
            // Constant columns keep std 0; others become ~1.
            assert!(std < 1e-9 || (std - 1.0).abs() < 1e-6, "col std {std}");
        }
    });
}

#[test]
fn power_transform_is_monotone_per_column() {
    for_cases(0xA8, |rng| {
        let x = small_matrix(rng);
        let fitted = Preproc::PowerTransformer { standardize: false }.fit(&x);
        let mut m = x.clone();
        fitted.transform(&mut m);
        for j in 0..x.ncols() {
            let orig = x.col(j);
            let out = m.col(j);
            let mut pairs: Vec<(f64, f64)> = orig.into_iter().zip(out).collect();
            pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in pairs.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-9, "non-monotone in column {j}");
            }
        }
    });
}

#[test]
fn mutation_preserves_length_bounds() {
    for_cases(0xA9, |rng| {
        let len = rng.gen_range(1..7usize);
        let kinds: Vec<PreprocKind> =
            (0..len).map(|_| PreprocKind::from_index(rng.gen_range(0..7usize))).collect();
        let p = Pipeline::from_kinds(&kinds);
        let space = ParamSpace::default_space();
        let seed = rng.gen_range(0..1000u64);
        let mut mrng = rng_from_seed(seed);
        let m = autofp::search::mutation::mutate(&p, &space, 7, &mut mrng);
        assert!(!m.is_empty() && m.len() <= 7);
    });
}

#[test]
fn accuracy_is_bounded_and_complements_error() {
    for_cases(0xAA, |rng| {
        let n = rng.gen_range(1..40usize);
        let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..3usize)).collect();
        let preds: Vec<usize> = (0..n).map(|_| rng.gen_range(0..3usize)).collect();
        let acc = accuracy(&labels, &preds);
        assert!((0.0..=1.0).contains(&acc));
        let err = autofp::models::metrics::error_rate(&labels, &preds);
        assert!((acc + err - 1.0).abs() < 1e-12);
    });
}

#[test]
fn auc_is_invariant_to_monotone_score_transforms() {
    for_cases(0xAB, |rng| {
        let n = rng.gen_range(4..30usize);
        let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2usize)).collect();
        let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let a1 = auc_binary(&labels, &scores);
        let transformed: Vec<f64> = scores.iter().map(|s| s.exp().min(1e300)).collect();
        let a2 = auc_binary(&labels, &transformed);
        assert!((a1 - a2).abs() < 1e-9, "{a1} vs {a2}");
    });
}

#[test]
fn ranks_sum_is_invariant() {
    for_cases(0xAC, |rng| {
        let n = rng.gen_range(1..20usize);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let ranks = average_ranks(&values);
        let n = values.len() as f64;
        let expected = n * (n + 1.0) / 2.0;
        assert!((ranks.iter().sum::<f64>() - expected).abs() < 1e-9);
    });
}

#[test]
fn pipeline_encoding_width_is_stable() {
    for_cases(0xAD, |rng| {
        let p = small_pipeline(rng);
        let max_len = rng.gen_range(4..9usize);
        let e = autofp::preprocess::encoding::encode_pipeline(&p, max_len);
        assert_eq!(e.len(), autofp::preprocess::encoding::encoding_width(max_len));
        assert!(e.iter().all(|v| v.is_finite()));
    });
}
