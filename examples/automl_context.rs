//! Auto-FP in an AutoML context (§7 of the paper): dedicated pipeline
//! search (PBT) vs TPOT's FP module, Auto-Sklearn's FP module, and an
//! HPO module, all under one shared budget.
//!
//! Run with: `cargo run --release --example automl_context`

use autofp::automl::{AutoSklearnFp, HpoSearch, TpotFp};
use autofp::core::{run_search, Budget, EvalConfig, Evaluator};
use autofp::data::spec_by_name;
use autofp::models::classifier::ModelKind;
use autofp::preprocess::ParamSpace;
use autofp::search::Pbt;
use std::time::Duration;

fn main() {
    let dataset = spec_by_name("vehicle").expect("registry").generate(1.0);
    let budget = Budget::wall_clock(Duration::from_millis(700));
    println!(
        "dataset: {} ({} rows x {} cols, {} classes), budget {:?}\n",
        dataset.name,
        dataset.n_rows(),
        dataset.n_cols(),
        dataset.n_classes,
        budget
    );

    for model in ModelKind::ALL {
        let evaluator =
            Evaluator::new(&dataset, EvalConfig { model, train_fraction: 0.8, seed: 5, train_subsample: None });

        let mut pbt = Pbt::new(ParamSpace::default_space(), 7, 5);
        let auto_fp = run_search(&mut pbt, &evaluator, budget);

        let mut tpot = TpotFp::new(5);
        let tpot_fp = run_search(&mut tpot, &evaluator, budget);

        let mut ask = AutoSklearnFp;
        let ask_fp = run_search(&mut ask, &evaluator, budget);

        let mut hpo = HpoSearch::new(model, 5);
        let hpo_out = hpo.run(evaluator.split(), budget);

        println!("--- downstream model {model} ---");
        println!("  no-FP baseline:     {:.4}", evaluator.baseline_accuracy());
        println!(
            "  Auto-FP (PBT):      {:.4}   best = {}",
            auto_fp.best_accuracy(),
            auto_fp.best().map(|t| t.pipeline.to_string()).unwrap_or_default()
        );
        println!("  TPOT-FP (GP):       {:.4}", tpot_fp.best_accuracy());
        println!("  Auto-Sklearn-FP:    {:.4}", ask_fp.best_accuracy());
        println!(
            "  HPO (no FP):        {:.4}   best = {}\n",
            hpo_out.best_accuracy, hpo_out.best_config
        );
    }
    println!(
        "Expected shape (paper §7): Auto-FP ≥ TPOT-FP ≥ Auto-Sklearn-FP in most runs,\n\
         and Auto-FP competitive with HPO — preprocessing search matters as much as\n\
         hyperparameter tuning."
    );
}
