//! Parameter search (§6 of the paper): One-step vs Two-step over the
//! extended low- and high-cardinality spaces.
//!
//! Run with: `cargo run --release --example parameter_search`

use autofp::core::{run_search, Budget, EvalConfig, Evaluator};
use autofp::data::spec_by_name;
use autofp::preprocess::{ParamSpace, PreprocKind};
use autofp::search::{OneStep, TwoStep};
use std::time::Duration;

fn main() {
    let dataset = spec_by_name("austrilian").expect("registry").generate(1.0);
    let evaluator = Evaluator::new(&dataset, EvalConfig::default());
    let budget = Budget::wall_clock(Duration::from_millis(800));

    println!("no-FP baseline: {:.4}\n", evaluator.baseline_accuracy());
    for (label, space) in [
        ("low-cardinality (Table 6, 31 variants)", ParamSpace::low_cardinality()),
        ("high-cardinality (Table 7, ~4000 variants)", ParamSpace::high_cardinality()),
    ] {
        println!("--- {label} ---");
        let mut one = OneStep::new(space.clone(), 7, 3);
        let one_out = run_search(&mut one, &evaluator, budget);
        let mut two = TwoStep::new(space.clone(), 7, 3);
        let two_out = run_search(&mut two, &evaluator, budget);

        // How often did One-step pick QuantileTransformer steps? (The
        // §6.3 degeneracy on the high-cardinality space.)
        let (q, total) = one_out
            .history
            .trials()
            .iter()
            .flat_map(|t| t.pipeline.steps().iter())
            .fold((0usize, 0usize), |(q, n), s| {
                (q + usize::from(s.kind() == PreprocKind::QuantileTransformer), n + 1)
            });

        println!(
            "  One-step: best {:.4} over {} evals ({}% quantile steps)",
            one_out.best_accuracy(),
            one_out.history.len(),
            100 * q / total.max(1)
        );
        println!(
            "  Two-step: best {:.4} over {} evals",
            two_out.best_accuracy(),
            two_out.history.len()
        );
        println!(
            "  best One-step pipeline: {}",
            one_out.best().map(|t| t.pipeline.to_string()).unwrap_or_default()
        );
        println!(
            "  best Two-step pipeline: {}\n",
            two_out.best().map(|t| t.pipeline.to_string()).unwrap_or_default()
        );
    }
    println!(
        "Expected shape (paper §6.3): One-step ahead on the low-cardinality space;\n\
         on the high-cardinality space One-step's steps are almost all\n\
         QuantileTransformer variants, and Two-step tends to win."
    );
}
