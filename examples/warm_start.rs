//! Warm-starting pipeline search from historical tasks (paper §8).
//!
//! Builds a meta-store from searches on two "historical" datasets, then
//! warm-starts PBT on a third, related dataset: the initial population
//! begins from the best pipelines of the most meta-feature-similar task
//! instead of random pipelines.
//!
//! Run with: `cargo run --release --example warm_start`

use autofp::automl::MetaStore;
use autofp::core::{run_search, Budget, EvalConfig, Evaluator};
use autofp::data::spec_by_name;
use autofp::metafeatures::{extract, ExtractConfig};
use autofp::preprocess::ParamSpace;
use autofp::search::Pbt;

fn main() {
    let mf_cfg = ExtractConfig::default();
    let mut store = MetaStore::new();

    // Phase 1: record two historical tasks.
    for name in ["heart", "vehicle"] {
        let dataset = spec_by_name(name).expect("registry").generate(1.0);
        let evaluator = Evaluator::new(&dataset, EvalConfig::default());
        let mut pbt = Pbt::new(ParamSpace::default_space(), 7, 1);
        let outcome = run_search(&mut pbt, &evaluator, Budget::evals(30));
        let mut trials = outcome.history.trials().to_vec();
        trials.sort_by(|a, b| b.accuracy.total_cmp(&a.accuracy));
        let best: Vec<_> = trials.into_iter().take(3).map(|t| t.pipeline).collect();
        println!(
            "recorded {name}: best {:.4} via {}",
            outcome.best_accuracy(),
            best[0]
        );
        store.record(name, extract(&dataset, &mf_cfg).as_slice().to_vec(), best);
    }

    // Phase 2: warm-start on a new task.
    let target = spec_by_name("ionosphere").expect("registry").generate(1.0);
    let evaluator = Evaluator::new(&target, EvalConfig::default());
    let meta = extract(&target, &mf_cfg).as_slice().to_vec();
    let seeds = store.warm_start(&meta, 1);
    println!(
        "\ntarget: {} (no-FP {:.4}); warm seeds: {}",
        target.name,
        evaluator.baseline_accuracy(),
        seeds.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(" | ")
    );

    let budget = Budget::evals(15);
    let mut warm =
        Pbt::new(ParamSpace::default_space(), 7, 2).with_seed_pipelines(seeds);
    let warm_out = run_search(&mut warm, &evaluator, budget);
    let mut cold = Pbt::new(ParamSpace::default_space(), 7, 2);
    let cold_out = run_search(&mut cold, &evaluator, budget);

    println!("warm PBT best after 15 evals: {:.4}", warm_out.best_accuracy());
    println!("cold PBT best after 15 evals: {:.4}", cold_out.best_accuracy());
    println!(
        "\nUnder tight budgets a good initial population is most of the battle — the\n\
         paper's first research opportunity (§8)."
    );
}
