//! Using Auto-FP on your own CSV data.
//!
//! Writes a small CSV to a temp directory (stand-in for "your file"),
//! loads it with the CSV reader, and searches for the best preprocessing
//! pipeline for a gradient-boosted-tree model.
//!
//! Run with: `cargo run --release --example custom_data`

use autofp::core::{run_search, Budget, EvalConfig, Evaluator};
use autofp::data::csv::{read_csv_file, write_csv_file};
use autofp::data::SynthConfig;
use autofp::models::classifier::ModelKind;
use autofp::preprocess::ParamSpace;
use autofp::search::TournamentEvolution;
use autofp::search::evolution::KillStrategy;

fn main() -> std::io::Result<()> {
    // Pretend this CSV came from the user.
    let path = std::env::temp_dir().join("autofp_custom_data.csv");
    let original = SynthConfig::new("my_data", 400, 6, 3, 99).generate();
    write_csv_file(&original, &path)?;
    println!("wrote example CSV to {}", path.display());

    // Load it back the way a user would.
    let dataset = read_csv_file(&path)?;
    println!(
        "loaded: {} rows x {} cols, {} classes",
        dataset.n_rows(),
        dataset.n_cols(),
        dataset.n_classes
    );

    // Search with the paper's TEVO_H under an evaluation budget.
    let evaluator =
        Evaluator::new(&dataset, EvalConfig { model: ModelKind::Xgb, train_fraction: 0.8, seed: 3, train_subsample: None });
    let mut searcher =
        TournamentEvolution::new(ParamSpace::default_space(), 5, KillStrategy::Worst, 3);
    let outcome = run_search(&mut searcher, &evaluator, Budget::evals(40));

    println!("\nno-FP baseline (XGB): {:.4}", evaluator.baseline_accuracy());
    let best = outcome.best().expect("evaluated pipelines");
    println!("best pipeline:        {}", best.pipeline);
    println!("best accuracy:        {:.4}", best.accuracy);

    std::fs::remove_file(&path)?;
    Ok(())
}
