//! Compare several search algorithms on one benchmark dataset under the
//! same wall-clock budget — a miniature of the paper's §5 experiment.
//!
//! Run with: `cargo run --release --example search_comparison`

use autofp::core::{run_search, Budget, EvalConfig, Evaluator};
use autofp::data::spec_by_name;
use autofp::models::classifier::ModelKind;
use autofp::preprocess::ParamSpace;
use autofp::search::{make_searcher, AlgName};
use std::time::Duration;

fn main() {
    // A scaled-down "heart" (Table 9): small, scale-heterogeneous, the
    // kind of dataset where FP moves LR accuracy a lot.
    let dataset = spec_by_name("heart").expect("registry").generate(1.0);
    println!(
        "dataset: {} ({} rows x {} cols, {} classes)\n",
        dataset.name,
        dataset.n_rows(),
        dataset.n_cols(),
        dataset.n_classes
    );

    let budget = Budget::wall_clock(Duration::from_millis(500));
    for model in [ModelKind::Lr, ModelKind::Xgb, ModelKind::Mlp] {
        let evaluator =
            Evaluator::new(&dataset, EvalConfig { model, train_fraction: 0.8, seed: 1, train_subsample: None });
        println!(
            "--- downstream model {model} (no-FP baseline {:.4}) ---",
            evaluator.baseline_accuracy()
        );
        for alg in [AlgName::Rs, AlgName::Pbt, AlgName::TevoH, AlgName::Tpe, AlgName::Hyperband]
        {
            let mut searcher = make_searcher(alg, ParamSpace::default_space(), 7, 11);
            let outcome = run_search(searcher.as_mut(), &evaluator, budget);
            println!(
                "{:>10}: best acc {:.4} ({:+.2} pp) after {:>4} evals; best = {}",
                alg.as_str(),
                outcome.best_accuracy(),
                (outcome.best_accuracy() - evaluator.baseline_accuracy()) * 100.0,
                outcome.history.len(),
                outcome.best().map(|t| t.pipeline.to_string()).unwrap_or_default()
            );
        }
        println!();
    }
    println!(
        "Note how the evolution-based searchers complete far more evaluations than the\n\
         surrogate-based ones within the same wall-clock budget — the mechanism behind\n\
         the paper's Table 4 ranking."
    );
}
