//! Quickstart: the paper's Figure 1 worked example, then a first
//! pipeline search.
//!
//! Part 1 applies each of the seven preprocessors to the column
//! `[-1.5, 1, 1.5, 2.5, 3, 4, 5]` and prints the same table as Figure 1
//! of the paper. Part 2 generates a small synthetic dataset whose
//! features have wildly different scales, and lets random search find a
//! preprocessing pipeline that beats the no-FP baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use autofp::core::{run_search, Budget, EvalConfig, Evaluator};
use autofp::data::{Personality, SynthConfig};
use autofp::linalg::Matrix;
use autofp::preprocess::{ParamSpace, Preproc, PreprocKind};
use autofp::search::RandomSearch;

fn main() {
    figure1();
    first_search();
}

/// Reproduce Figure 1: the seven preprocessors on one column.
fn figure1() {
    println!("== Part 1: Figure 1 — the seven preprocessors ==\n");
    let column = [-1.5, 1.0, 1.5, 2.5, 3.0, 4.0, 5.0];
    let x = Matrix::column_vector(&column);

    // Fit each preprocessor on the column and collect outputs.
    let mut outputs: Vec<(String, Vec<f64>)> = vec![(
        "(none)".to_string(),
        column.to_vec(),
    )];
    for kind in PreprocKind::ALL {
        let preproc = Preproc::default_for(kind);
        let mut transformed = x.clone();
        preproc.fit(&x).transform(&mut transformed);
        outputs.push((kind.name().to_string(), transformed.col(0)));
    }

    // Print as a table, one preprocessor per column (like Figure 1).
    for (name, _) in &outputs {
        print!("{name:>20}");
    }
    println!();
    for row in 0..column.len() {
        for (_, vals) in &outputs {
            print!("{:>20.2}", vals[row]);
        }
        println!();
    }
    println!();
}

/// A first Auto-FP search on data that needs preprocessing.
fn first_search() {
    println!("== Part 2: a first pipeline search ==\n");
    // Features spread over 6 orders of magnitude with skewed marginals:
    // exactly the situation where LR needs preprocessing.
    let dataset = SynthConfig::new("quickstart", 300, 10, 2, 42)
        .with_personality(Personality {
            scale_spread: 6.0,
            skew: 0.8,
            heavy_tail: 0.5,
            class_sep: 1.0,
            label_noise: 0.05,
            ..Personality::default()
        })
        .generate();

    let evaluator = Evaluator::new(&dataset, EvalConfig::default());
    println!("no-FP baseline accuracy (LR): {:.4}", evaluator.baseline_accuracy());

    let mut searcher = RandomSearch::new(ParamSpace::default_space(), 4, 7);
    let outcome = run_search(&mut searcher, &evaluator, Budget::evals(30));

    let best = outcome.best().expect("searched something");
    println!("best pipeline after 30 evaluations: {}", best.pipeline);
    println!("best validation accuracy:           {:.4}", best.accuracy);
    println!(
        "improvement over no-FP:             {:+.2} percentage points",
        (best.accuracy - evaluator.baseline_accuracy()) * 100.0
    );
    let (pick, prep, train) = outcome.breakdown.percentages();
    println!("time breakdown: Pick {pick:.0}% | Prep {prep:.0}% | Train {train:.0}%");
}
