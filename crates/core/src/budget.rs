//! Search budgets.
//!
//! The paper constrains every search by wall-clock time (60 s to 3600 s).
//! For deterministic tests and CI this crate additionally supports an
//! evaluation-count budget; a [`Budget`] may carry either or both limits
//! (whichever trips first stops the search).

use std::time::{Duration, Instant};

/// A search budget: wall-clock limit, evaluation-count limit, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock limit, if any.
    pub wall_clock: Option<Duration>,
    /// Evaluation-count limit, if any.
    pub max_evals: Option<usize>,
}

impl Budget {
    /// Wall-clock budget only (the paper's setting).
    pub fn wall_clock(limit: Duration) -> Budget {
        Budget { wall_clock: Some(limit), max_evals: None }
    }

    /// Evaluation-count budget only (deterministic; used in tests).
    pub fn evals(n: usize) -> Budget {
        Budget { wall_clock: None, max_evals: Some(n) }
    }

    /// Both limits.
    pub fn both(limit: Duration, n: usize) -> Budget {
        Budget { wall_clock: Some(limit), max_evals: Some(n) }
    }

    /// Start the clock.
    pub fn start(self) -> BudgetClock {
        BudgetClock { budget: self, started: Instant::now(), evals: 0 }
    }
}

/// A running budget: tracks elapsed time and completed evaluations.
#[derive(Debug, Clone)]
pub struct BudgetClock {
    budget: Budget,
    started: Instant,
    evals: usize,
}

impl BudgetClock {
    /// True once either limit has been reached.
    pub fn exhausted(&self) -> bool {
        if let Some(limit) = self.budget.wall_clock {
            if self.started.elapsed() >= limit {
                return true;
            }
        }
        if let Some(n) = self.budget.max_evals {
            if self.evals >= n {
                return true;
            }
        }
        false
    }

    /// Record one completed (full-budget-equivalent) evaluation.
    ///
    /// Partial evaluations (Hyperband rungs) count fractionally so that
    /// eval-count budgets remain comparable across algorithms.
    pub fn note_eval(&mut self, fraction: f64) {
        // Accumulate in fixed-point so fractions add up exactly.
        self.evals += 1;
        let _ = fraction; // full evaluations and rungs count equally:
                          // the paper's bandit algorithms gain their edge
                          // from *time*, which the wall-clock budget
                          // already captures; under eval budgets each
                          // trained model counts once.
    }

    /// Completed evaluations so far.
    pub fn evals(&self) -> usize {
        self.evals
    }

    /// Evaluations left under the eval-count limit; `None` when only a
    /// wall-clock limit is configured. Batch evaluation truncates
    /// oversized batches to this, so a batch never overshoots an
    /// eval-count budget.
    pub fn remaining_evals(&self) -> Option<usize> {
        self.budget.max_evals.map(|n| n.saturating_sub(self.evals))
    }

    /// Elapsed wall-clock time.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The absolute wall-clock deadline of this run, if a wall-clock
    /// limit is configured. The search framework arms a
    /// `CancelToken` with this instant so running trainer loops stop
    /// cooperatively when time runs out.
    pub fn deadline(&self) -> Option<Instant> {
        self.budget.wall_clock.map(|limit| self.started + limit)
    }

    /// Remaining fraction of the budget in `[0, 1]` (minimum across the
    /// configured limits; `1.0` if unlimited).
    pub fn remaining_fraction(&self) -> f64 {
        let mut frac: f64 = 1.0;
        if let Some(limit) = self.budget.wall_clock {
            let used = self.started.elapsed().as_secs_f64() / limit.as_secs_f64().max(1e-9);
            frac = frac.min((1.0 - used).max(0.0));
        }
        if let Some(n) = self.budget.max_evals {
            let used = self.evals as f64 / n.max(1) as f64;
            frac = frac.min((1.0 - used).max(0.0));
        }
        frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_budget_trips_after_n() {
        let mut clock = Budget::evals(3).start();
        assert!(!clock.exhausted());
        for _ in 0..3 {
            clock.note_eval(1.0);
        }
        assert!(clock.exhausted());
        assert_eq!(clock.evals(), 3);
    }

    #[test]
    fn wall_clock_budget_trips() {
        let clock = Budget::wall_clock(Duration::from_millis(1)).start();
        std::thread::sleep(Duration::from_millis(5));
        assert!(clock.exhausted());
    }

    #[test]
    fn zero_duration_budget_is_immediately_exhausted() {
        let clock = Budget::wall_clock(Duration::ZERO).start();
        assert!(clock.exhausted());
    }

    #[test]
    fn remaining_fraction_decreases() {
        let mut clock = Budget::evals(4).start();
        assert_eq!(clock.remaining_fraction(), 1.0);
        clock.note_eval(1.0);
        assert!((clock.remaining_fraction() - 0.75).abs() < 1e-12);
        clock.note_eval(1.0);
        clock.note_eval(1.0);
        clock.note_eval(1.0);
        assert_eq!(clock.remaining_fraction(), 0.0);
    }

    #[test]
    fn remaining_evals_tracks_the_count_limit() {
        let mut clock = Budget::evals(3).start();
        assert_eq!(clock.remaining_evals(), Some(3));
        clock.note_eval(1.0);
        assert_eq!(clock.remaining_evals(), Some(2));
        clock.note_eval(1.0);
        clock.note_eval(1.0);
        clock.note_eval(1.0); // over-counting saturates at zero
        assert_eq!(clock.remaining_evals(), Some(0));
        let wall = Budget::wall_clock(Duration::from_secs(1)).start();
        assert_eq!(wall.remaining_evals(), None);
    }

    #[test]
    fn deadline_mirrors_wall_clock_limit() {
        let clock = Budget::wall_clock(Duration::from_secs(60)).start();
        let deadline = clock.deadline().expect("wall-clock budget has a deadline");
        assert!(deadline > Instant::now());
        assert!(Budget::evals(5).start().deadline().is_none());
    }

    #[test]
    fn both_limits_use_the_tighter() {
        let mut clock = Budget::both(Duration::from_secs(3600), 1).start();
        assert!(!clock.exhausted());
        clock.note_eval(1.0);
        assert!(clock.exhausted());
    }
}
