//! Rendering search outcomes as text artifacts (TSV and Markdown).
//!
//! The experiment harness and the CLI both need to persist results in a
//! form that diff-based tooling and humans can read. This module keeps
//! the rendering logic next to the data it renders.

use crate::cache::CacheStats;
use crate::error::{FailureKind, FailureStats};
use crate::framework::SearchOutcome;
use crate::prefix::PrefixStats;
use crate::remote::FleetStats;
use crate::repo::StoreStats;
use std::fmt::Write as _;

/// Render an outcome's trials as TSV (`index`, `pipeline`, `accuracy`,
/// `error`, `prep_ms`, `train_ms`, `train_fraction`, `failure`), with a
/// header row. The `failure` column is `-` for successful trials and
/// the [`FailureKind`] name for worst-error trials.
pub fn trials_tsv(outcome: &SearchOutcome) -> String {
    let mut out = String::from(
        "index\tpipeline\taccuracy\terror\tprep_ms\ttrain_ms\ttrain_fraction\tfailure\n",
    );
    for (i, t) in outcome.history.trials().iter().enumerate() {
        let _ = writeln!(
            out,
            "{i}\t{}\t{:.6}\t{:.6}\t{:.3}\t{:.3}\t{:.3}\t{}",
            t.pipeline,
            t.accuracy,
            t.error,
            t.prep_time.as_secs_f64() * 1e3,
            t.train_time.as_secs_f64() * 1e3,
            t.train_fraction,
            t.failure.map_or("-", FailureKind::name),
        );
    }
    out
}

/// Render a compact Markdown summary of one search run.
pub fn summary_markdown(outcome: &SearchOutcome, baseline: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {} search summary\n", outcome.algorithm);
    let _ = writeln!(out, "| metric | value |");
    let _ = writeln!(out, "|---|---|");
    let _ = writeln!(out, "| evaluations | {} |", outcome.history.len());
    let _ = writeln!(out, "| elapsed | {:.3} s |", outcome.elapsed.as_secs_f64());
    let _ = writeln!(out, "| no-FP baseline | {baseline:.4} |");
    let _ = writeln!(out, "| best accuracy | {:.4} |", outcome.best_accuracy());
    let _ = writeln!(
        out,
        "| improvement | {:+.2} pp |",
        (outcome.best_accuracy() - baseline) * 100.0
    );
    if let Some(best) = outcome.best() {
        let _ = writeln!(out, "| best pipeline | `{}` |", best.pipeline);
    }
    let (pick, prep, train) = outcome.breakdown.percentages();
    let _ = writeln!(
        out,
        "| phase split | Pick {pick:.0}% / Prep {prep:.0}% / Train {train:.0}% |"
    );
    if let Some(stats) = &outcome.cache {
        let _ = writeln!(
            out,
            "| cache | {} hits / {} lookups ({:.0}% hit rate), {:.3} s saved |",
            stats.hits,
            stats.lookups(),
            stats.hit_rate() * 100.0,
            stats.saved.as_secs_f64(),
        );
    }
    if let Some(p) = &outcome.prefix {
        let _ = writeln!(
            out,
            "| prefix cache | {} hits / {} lookups ({:.0}% hit rate), {} steps saved |",
            p.hits,
            p.lookups(),
            p.hit_rate() * 100.0,
            p.steps_saved,
        );
    }
    if outcome.failures.total() > 0 {
        let detail: Vec<String> = FailureKind::ALL
            .iter()
            .filter(|&&k| outcome.failures.count(k) > 0)
            .map(|&k| format!("{} {}", outcome.failures.count(k), k.name()))
            .collect();
        let _ = writeln!(
            out,
            "| failed trials | {} ({}) |",
            outcome.failures.total(),
            detail.join(", ")
        );
    }
    out
}

/// Render a per-run failure tally as a Markdown table (every kind is
/// listed, including zero rows, so tables are diffable across runs).
pub fn failure_stats_markdown(stats: &FailureStats) -> String {
    let mut out = String::from("### Evaluation failures\n\n");
    let _ = writeln!(out, "| kind | count |");
    let _ = writeln!(out, "|---|---|");
    for kind in FailureKind::ALL {
        let _ = writeln!(out, "| {} | {} |", kind.name(), stats.count(kind));
    }
    let _ = writeln!(out, "| **total** | {} |", stats.total());
    out
}

/// Render cache-layer statistics as a Markdown table with one block of
/// rows per layer, so trial-cache ([`crate::EvalCache`]) and
/// prefix-cache ([`crate::PrefixCache`]) numbers stay distinguishable
/// in exp_* bin output. Pass `prefix: None` for runs without a prefix
/// cache — the table then only carries `trial` rows.
pub fn cache_stats_markdown(stats: &CacheStats, prefix: Option<&PrefixStats>) -> String {
    let mut out = String::from("### Evaluation caches\n\n");
    let _ = writeln!(out, "| layer | metric | value |");
    let _ = writeln!(out, "|---|---|---|");
    let _ = writeln!(out, "| trial | lookups | {} |", stats.lookups());
    let _ = writeln!(out, "| trial | hits | {} |", stats.hits);
    let _ = writeln!(out, "| trial | misses | {} |", stats.misses);
    let _ = writeln!(out, "| trial | hit rate | {:.1}% |", stats.hit_rate() * 100.0);
    let _ = writeln!(out, "| trial | entries | {} |", stats.entries);
    let _ = writeln!(out, "| trial | evictions | {} |", stats.evictions);
    let _ = writeln!(out, "| trial | eval time saved | {:.3} s |", stats.saved.as_secs_f64());
    if let Some(p) = prefix {
        out.push_str(&prefix_stats_rows(p));
    }
    out
}

/// The `prefix` layer's rows of a per-layer cache table (shared by
/// [`cache_stats_markdown`] and [`matrix_stats_markdown`]).
fn prefix_stats_rows(p: &PrefixStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| prefix | lookups | {} |", p.lookups());
    let _ = writeln!(out, "| prefix | hits | {} |", p.hits);
    let _ = writeln!(out, "| prefix | misses | {} |", p.misses);
    let _ = writeln!(out, "| prefix | hit rate | {:.1}% |", p.hit_rate() * 100.0);
    let _ = writeln!(out, "| prefix | entries | {} |", p.entries);
    let _ = writeln!(out, "| prefix | bytes | {} |", p.bytes);
    let _ = writeln!(out, "| prefix | evictions | {} |", p.evictions);
    let _ = writeln!(out, "| prefix | bytes evicted | {} |", p.bytes_evicted);
    let _ = writeln!(out, "| prefix | poisoned rejects | {} |", p.poisoned);
    let _ = writeln!(out, "| prefix | steps saved | {} |", p.steps_saved);
    let _ = writeln!(out, "| prefix | transform time saved | {:.3} s |", p.saved.as_secs_f64());
    out
}

/// The durable `store` layer's rows of a per-layer cache table (see
/// [`crate::repo::TrialStore`]); every counter is listed, including
/// zeros, so tables are diffable across runs. A nonzero
/// `truncated bytes` row is the visible trace of a torn-tail recovery.
fn store_stats_rows(s: &StoreStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| store | trials | {} |", s.trials);
    let _ = writeln!(out, "| store | preloaded | {} |", s.preloaded);
    let _ = writeln!(out, "| store | appended | {} |", s.appended);
    let _ = writeln!(out, "| store | deduped | {} |", s.deduped);
    let _ = writeln!(out, "| store | never-persist skips | {} |", s.skipped);
    let _ = writeln!(out, "| store | io errors | {} |", s.io_errors);
    let _ = writeln!(out, "| store | truncated bytes | {} |", s.truncated_bytes);
    out
}

/// Render matrix-level aggregate statistics — per-layer cache tallies
/// and one failure tally folded over every cell of a dataset × model ×
/// algorithm matrix — as a compact Markdown block.
///
/// The bench harness prints this under each results table so shared
/// cross-algorithm cache reuse, prefix-transform reuse (when a prefix
/// cache ran — pass `None` otherwise), durable trial-store traffic
/// (when `--trial-store` ran — pass `None` otherwise), and any
/// worst-error trials are observable in the report itself.
pub fn matrix_stats_markdown(
    cache: &CacheStats,
    prefix: Option<&PrefixStats>,
    store: Option<&StoreStats>,
    failures: &FailureStats,
) -> String {
    let mut out = String::from("### Matrix aggregate stats\n\n");
    let _ = writeln!(out, "| layer | metric | value |");
    let _ = writeln!(out, "|---|---|---|");
    let _ = writeln!(out, "| trial | lookups | {} |", cache.lookups());
    let _ = writeln!(
        out,
        "| trial | hits | {} ({:.1}%) |",
        cache.hits,
        cache.hit_rate() * 100.0
    );
    let _ = writeln!(out, "| trial | misses | {} |", cache.misses);
    let _ = writeln!(out, "| trial | entries | {} |", cache.entries);
    let _ = writeln!(out, "| trial | evictions | {} |", cache.evictions);
    let _ = writeln!(out, "| trial | eval time saved | {:.3} s |", cache.saved.as_secs_f64());
    if let Some(p) = prefix {
        out.push_str(&prefix_stats_rows(p));
    }
    if let Some(s) = store {
        out.push_str(&store_stats_rows(s));
    }
    if failures.total() == 0 {
        let _ = writeln!(out, "| - | failed trials | 0 |");
    } else {
        let detail: Vec<String> = FailureKind::ALL
            .iter()
            .filter(|&&k| failures.count(k) > 0)
            .map(|&k| format!("{} {}", failures.count(k), k.name()))
            .collect();
        let _ = writeln!(
            out,
            "| - | failed trials | {} ({}) |",
            failures.total(),
            detail.join(", ")
        );
    }
    out
}

/// Render the fleet robustness counters of a `--remote`/`--workers`
/// run as a Markdown table (see [`FleetStats`]). Every counter is
/// listed, including zero rows, so tables are diffable across runs; a
/// healthy run shows all zeros below the `workers` row.
pub fn fleet_stats_markdown(stats: &FleetStats) -> String {
    let mut out = String::from("### Fleet robustness\n\n");
    let _ = writeln!(out, "| metric | value |");
    let _ = writeln!(out, "|---|---|");
    let _ = writeln!(out, "| epoch | {} |", stats.epoch);
    let _ = writeln!(out, "| workers | {} |", stats.workers);
    let _ = writeln!(out, "| reconnects | {} |", stats.reconnects);
    let _ = writeln!(out, "| retries | {} |", stats.retries);
    let _ = writeln!(out, "| failovers | {} |", stats.failovers);
    let _ = writeln!(out, "| circuit opens | {} |", stats.circuit_opens);
    let _ = writeln!(out, "| respawns | {} |", stats.respawns);
    out
}

/// The best-so-far accuracy after each evaluation (the paper's anytime
/// curves, Figures 17-19).
pub fn best_so_far_curve(outcome: &SearchOutcome) -> Vec<f64> {
    let mut best = 0.0_f64;
    outcome
        .history
        .trials()
        .iter()
        .map(|t| {
            // Partial rungs do not improve the reported best.
            if t.train_fraction >= 1.0 - 1e-9 {
                best = best.max(t.accuracy);
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{EvalConfig, Evaluator};
    use crate::framework::{run_search, SearchContext, Searcher};
    use crate::Budget;
    use autofp_data::SynthConfig;
    use autofp_preprocess::{ParamSpace, Pipeline};

    struct Fixed;
    impl Searcher for Fixed {
        fn name(&self) -> &'static str {
            "FIXED"
        }
        fn search(&mut self, ctx: &mut SearchContext) {
            let space = ParamSpace::default_space();
            let mut rng = autofp_linalg::rng::rng_from_seed(5);
            while ctx.evaluate(&space.sample_pipeline(&mut rng, 3)).is_some() {}
        }
    }

    fn outcome() -> (SearchOutcome, f64) {
        let d = SynthConfig::new("report", 100, 4, 2, 3).generate();
        let ev = Evaluator::new(&d, EvalConfig::default());
        (run_search(&mut Fixed, &ev, Budget::evals(6)), ev.baseline_accuracy())
    }

    #[test]
    fn tsv_has_header_and_one_row_per_trial() {
        let (out, _) = outcome();
        let tsv = trials_tsv(&out);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 7);
        assert!(lines[0].starts_with("index\tpipeline"));
        assert_eq!(lines[1].split('\t').count(), 8);
        assert!(lines[1].ends_with("\t-"), "successful trial renders `-` failure");
    }

    #[test]
    fn failure_stats_render_all_kinds() {
        use crate::error::{FailureKind, FailureStats};
        let mut stats = FailureStats::new();
        stats.record(FailureKind::Panic);
        stats.record(FailureKind::Deadline);
        stats.record(FailureKind::Deadline);
        let md = failure_stats_markdown(&stats);
        for kind in FailureKind::ALL {
            assert!(md.contains(kind.name()), "missing {}", kind.name());
        }
        assert!(md.contains("| panic | 1 |"));
        assert!(md.contains("| deadline | 2 |"));
        assert!(md.contains("| **total** | 3 |"));
        assert!(md.contains("| non-finite | 0 |"));
    }

    #[test]
    fn summary_lists_failures_only_when_present() {
        let (out, baseline) = outcome();
        let md = summary_markdown(&out, baseline);
        assert!(!md.contains("failed trials"), "clean run has no failure row");
        let mut faulty = out.clone();
        faulty.failures.record(crate::error::FailureKind::Panic);
        let md = summary_markdown(&faulty, baseline);
        assert!(md.contains("| failed trials | 1 (1 panic) |"));
    }

    #[test]
    fn markdown_mentions_best_pipeline() {
        let (out, baseline) = outcome();
        let md = summary_markdown(&out, baseline);
        assert!(md.contains("best accuracy"));
        assert!(md.contains("FIXED"));
        assert!(md.contains("| best pipeline |"));
    }

    #[test]
    fn cache_stats_render_and_appear_in_summary() {
        use crate::cache::EvalCache;
        use crate::framework::run_search_cached;
        let d = SynthConfig::new("report-cache", 100, 4, 2, 3).generate();
        let ev = Evaluator::new(&d, EvalConfig::default());
        let cache = EvalCache::new();
        let out = run_search_cached(&mut Fixed, &ev, Budget::evals(6), &cache);
        let stats = out.cache.expect("cached run snapshots stats");
        let md = cache_stats_markdown(&stats, None);
        assert!(md.contains("| trial | lookups | 6 |"));
        assert!(md.contains("hit rate"));
        assert!(md.contains("| trial | evictions | 0 |"), "eviction count must be observable");
        assert!(!md.contains("| prefix |"), "no prefix rows without a prefix cache");
        let summary = summary_markdown(&out, ev.baseline_accuracy());
        assert!(summary.contains("| cache |"));
        assert!(!summary.contains("| prefix cache |"));
    }

    #[test]
    fn per_layer_rows_keep_trial_and_prefix_distinguishable() {
        use crate::prefix::PrefixStats;
        let trial = CacheStats {
            hits: 4,
            misses: 6,
            entries: 6,
            evictions: 0,
            saved: std::time::Duration::from_millis(20),
        };
        let prefix = PrefixStats {
            hits: 8,
            misses: 2,
            entries: 5,
            bytes: 4096,
            evictions: 3,
            bytes_evicted: 2048,
            poisoned: 1,
            steps_saved: 17,
            saved: std::time::Duration::from_millis(50),
        };
        let md = cache_stats_markdown(&trial, Some(&prefix));
        // Same metric name in both layers must resolve to different rows.
        assert!(md.contains("| trial | hits | 4 |"));
        assert!(md.contains("| prefix | hits | 8 |"));
        assert!(md.contains("| prefix | bytes | 4096 |"));
        assert!(md.contains("| prefix | bytes evicted | 2048 |"));
        assert!(md.contains("| prefix | poisoned rejects | 1 |"));
        assert!(md.contains("| prefix | steps saved | 17 |"));

        let md = matrix_stats_markdown(&trial, Some(&prefix), None, &FailureStats::new());
        assert!(md.contains("| trial | hits | 4 (40.0%) |"));
        assert!(md.contains("| prefix | hits | 8 |"));
        assert!(md.contains("| prefix | hit rate | 80.0% |"));
        assert!(!md.contains("| store |"), "no store rows without a trial store");
    }

    #[test]
    fn store_rows_render_every_counter_in_the_matrix_table() {
        use crate::repo::StoreStats;
        let store = StoreStats {
            appended: 12,
            deduped: 3,
            skipped: 2,
            io_errors: 0,
            preloaded: 7,
            trials: 19,
            truncated_bytes: 41,
        };
        let md = matrix_stats_markdown(&CacheStats::default(), None, Some(&store), &FailureStats::new());
        assert!(md.contains("| store | trials | 19 |"));
        assert!(md.contains("| store | preloaded | 7 |"));
        assert!(md.contains("| store | appended | 12 |"));
        assert!(md.contains("| store | deduped | 3 |"));
        assert!(md.contains("| store | never-persist skips | 2 |"));
        assert!(md.contains("| store | io errors | 0 |"));
        assert!(md.contains("| store | truncated bytes | 41 |"), "torn-tail recovery must be visible:\n{md}");
    }

    #[test]
    fn prefix_summary_row_renders_when_cache_attached() {
        use crate::prefix::SharedPrefixCache;
        let d = SynthConfig::new("report-prefix", 100, 4, 2, 3).generate();
        let ev = Evaluator::new(&d, EvalConfig::default())
            .with_prefix_cache(SharedPrefixCache::new());
        let out = run_search(&mut Fixed, &ev, Budget::evals(6));
        let md = summary_markdown(&out, ev.baseline_accuracy());
        assert!(md.contains("| prefix cache |"), "summary must surface prefix stats:\n{md}");
    }

    #[test]
    fn matrix_stats_render_cache_and_failures() {
        use crate::cache::CacheStats;
        use crate::error::{FailureKind, FailureStats};
        let mut cache = CacheStats::default();
        cache.hits = 3;
        cache.misses = 7;
        cache.entries = 7;
        cache.evictions = 2;
        let mut failures = FailureStats::new();
        let md = matrix_stats_markdown(&cache, None, None, &failures);
        assert!(md.contains("| trial | lookups | 10 |"));
        assert!(md.contains("| trial | hits | 3 (30.0%) |"));
        assert!(md.contains("| trial | evictions | 2 |"));
        assert!(md.contains("| - | failed trials | 0 |"));
        assert!(!md.contains("| prefix |"));
        failures.record(FailureKind::Panic);
        let md = matrix_stats_markdown(&cache, None, None, &failures);
        assert!(md.contains("| - | failed trials | 1 (1 panic) |"));
    }

    #[test]
    fn best_so_far_is_monotone() {
        let (out, _) = outcome();
        let curve = best_so_far_curve(&out);
        assert_eq!(curve.len(), 6);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(*curve.last().unwrap(), out.best_accuracy());
    }

    #[test]
    fn partial_rungs_do_not_raise_the_curve() {
        let d = SynthConfig::new("report2", 80, 3, 2, 9).generate();
        let ev = Evaluator::new(&d, EvalConfig::default());
        let mut ctx = SearchContext::new(&ev, Budget::evals(3));
        let p = Pipeline::empty();
        ctx.evaluate_budgeted(&p, 0.1);
        ctx.evaluate(&p);
        let out = ctx.finish("manual");
        let curve = best_so_far_curve(&out);
        assert_eq!(curve[0], 0.0);
        assert!(curve[1] > 0.0);
    }
}
