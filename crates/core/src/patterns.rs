//! Frequent-pattern mining over best pipelines (§5.2 of the paper).
//!
//! The paper runs FP-growth over the best pipelines PBT finds on all 45
//! datasets, asking whether "frequent excellent feature preprocessor
//! patterns" exist — and finds none with meaningful support, which
//! motivates search over rules. This module implements the equivalent
//! analysis: level-wise (Apriori-style) mining of frequent *contiguous*
//! subsequences of preprocessor kinds, with per-pipeline support
//! counting. For the handful of symbols and short pipelines involved,
//! level-wise enumeration with prefix pruning is exactly as effective as
//! FP-growth and much simpler.

use crate::order::nan_smallest;
use autofp_preprocess::{Pipeline, PreprocKind};
use std::collections::BTreeMap;

/// A mined pattern: a contiguous kind subsequence with its support.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqPattern {
    /// The preprocessor-kind subsequence.
    pub kinds: Vec<PreprocKind>,
    /// Number of pipelines containing the pattern.
    pub count: usize,
    /// `count / n_pipelines`.
    pub support: f64,
}

impl SeqPattern {
    /// Human-readable pattern ("MinMaxScaler -> Binarizer").
    pub fn display(&self) -> String {
        self.kinds.iter().map(|k| k.name()).collect::<Vec<_>>().join(" -> ")
    }
}

/// Does `haystack` contain `needle` as a contiguous subsequence?
fn contains_subsequence(haystack: &[PreprocKind], needle: &[PreprocKind]) -> bool {
    if needle.is_empty() || needle.len() > haystack.len() {
        return needle.is_empty();
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// Mine all contiguous kind-subsequences with support at least
/// `min_support`, up to length `max_pattern_len`, sorted by descending
/// support (ties: shorter first, then lexicographic).
pub fn mine_frequent_subsequences(
    pipelines: &[Pipeline],
    min_support: f64,
    max_pattern_len: usize,
) -> Vec<SeqPattern> {
    if pipelines.is_empty() {
        return Vec::new();
    }
    let sequences: Vec<Vec<PreprocKind>> = pipelines.iter().map(Pipeline::kinds).collect();
    let n = sequences.len() as f64;
    let min_count = (min_support * n).ceil().max(1.0) as usize;

    let mut frequent: Vec<SeqPattern> = Vec::new();
    // Level 1.
    let mut current: Vec<Vec<PreprocKind>> =
        PreprocKind::ALL.iter().map(|&k| vec![k]).collect();
    let mut level = 1usize;
    while !current.is_empty() && level <= max_pattern_len {
        // BTreeMap, not HashMap: candidate (and therefore report) order
        // must not vary run to run.
        let mut counts: BTreeMap<Vec<PreprocKind>, usize> = BTreeMap::new();
        for cand in &current {
            let count = sequences.iter().filter(|s| contains_subsequence(s, cand)).count();
            if count >= min_count {
                counts.insert(cand.clone(), count);
            }
        }
        // Record level's frequent patterns and build next candidates by
        // appending every symbol to each frequent pattern (prefix-pruned
        // by construction).
        let mut next = Vec::new();
        for (kinds, count) in &counts {
            frequent.push(SeqPattern {
                kinds: kinds.clone(),
                count: *count,
                support: *count as f64 / n,
            });
            for &k in &PreprocKind::ALL {
                let mut extended = kinds.clone();
                extended.push(k);
                next.push(extended);
            }
        }
        current = next;
        level += 1;
    }
    frequent.sort_by(|a, b| {
        // Support is count/n with n > 0, so NaN is unreachable — but
        // the total order costs nothing and the invariant stays machine
        // checkable (xtask lint's nan-ord rule).
        nan_smallest(&b.support, &a.support)
            .then(a.kinds.len().cmp(&b.kinds.len()))
            .then(a.kinds.cmp(&b.kinds))
    });
    frequent
}

/// The strongest pattern of length >= `min_len` (the paper cares about
/// multi-preprocessor patterns; single symbols are trivially frequent).
pub fn strongest_pattern(patterns: &[SeqPattern], min_len: usize) -> Option<&SeqPattern> {
    patterns.iter().find(|p| p.kinds.len() >= min_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipe(kinds: &[PreprocKind]) -> Pipeline {
        Pipeline::from_kinds(kinds)
    }

    #[test]
    fn finds_planted_pattern() {
        use PreprocKind::*;
        let pipelines = vec![
            pipe(&[MinMaxScaler, StandardScaler, Binarizer]),
            pipe(&[Normalizer, MinMaxScaler, StandardScaler]),
            pipe(&[MinMaxScaler, StandardScaler]),
            pipe(&[PowerTransformer]),
        ];
        let patterns = mine_frequent_subsequences(&pipelines, 0.5, 4);
        let planted = patterns
            .iter()
            .find(|p| p.kinds == vec![MinMaxScaler, StandardScaler])
            .expect("planted pattern found");
        assert_eq!(planted.count, 3);
        assert!((planted.support - 0.75).abs() < 1e-12);
    }

    #[test]
    fn order_matters_for_subsequences() {
        use PreprocKind::*;
        let pipelines = vec![
            pipe(&[Binarizer, Normalizer]),
            pipe(&[Normalizer, Binarizer]),
        ];
        let patterns = mine_frequent_subsequences(&pipelines, 0.9, 2);
        // Each 2-pattern appears in only one pipeline: below support 0.9.
        assert!(patterns.iter().all(|p| p.kinds.len() == 1));
    }

    #[test]
    fn support_counts_once_per_pipeline() {
        use PreprocKind::*;
        let pipelines = vec![pipe(&[Binarizer, Binarizer, Binarizer])];
        let patterns = mine_frequent_subsequences(&pipelines, 1.0, 2);
        let single = patterns.iter().find(|p| p.kinds == vec![Binarizer]).unwrap();
        assert_eq!(single.count, 1);
    }

    #[test]
    fn random_pipelines_have_no_strong_long_pattern() {
        use autofp_linalg::rng::rng_from_seed;
        let space = autofp_preprocess::ParamSpace::default_space();
        let mut rng = rng_from_seed(7);
        let pipelines: Vec<Pipeline> =
            (0..200).map(|_| space.sample_pipeline(&mut rng, 5)).collect();
        let patterns = mine_frequent_subsequences(&pipelines, 0.02, 5);
        // The strongest length>=2 pattern over uniform pipelines is weak
        // (expected pair support is a few percent).
        if let Some(p) = strongest_pattern(&patterns, 2) {
            assert!(p.support < 0.25, "unexpectedly strong pattern {:?}", p.display());
        }
    }

    #[test]
    fn empty_input_is_safe() {
        assert!(mine_frequent_subsequences(&[], 0.5, 3).is_empty());
    }

    #[test]
    fn sorted_by_support_descending() {
        use PreprocKind::*;
        let pipelines = vec![
            pipe(&[Binarizer]),
            pipe(&[Binarizer]),
            pipe(&[Normalizer]),
        ];
        let patterns = mine_frequent_subsequences(&pipelines, 0.1, 1);
        assert_eq!(patterns[0].kinds, vec![Binarizer]);
        assert!(patterns[0].support >= patterns[1].support);
    }
}
