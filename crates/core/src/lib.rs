#![warn(missing_docs)]
//! Core problem formalization of Auto-FP (§3 of the paper) and the
//! unified search framework (Algorithm 1, §4.2).
//!
//! * [`evaluator::Evaluator`] implements the pipeline error of Eq. 2:
//!   fit the pipeline on training data, train the downstream classifier
//!   on the transformed training set, report validation accuracy. Each
//!   evaluation's preprocessing ("Prep") and training ("Train") time is
//!   recorded separately, and the [`framework::SearchContext`] measures
//!   the time an algorithm spends choosing pipelines ("Pick") — the
//!   three-way breakdown of the paper's Figure 7 bottleneck analysis.
//! * [`budget::Budget`] expresses the paper's wall-clock search limits
//!   plus a deterministic evaluation-count alternative used in tests.
//! * [`framework::Searcher`] is the interface all 15 algorithms
//!   implement; they interact with the world only through
//!   [`framework::SearchContext::evaluate`], which enforces the budget
//!   and appends to the [`history::TrialHistory`].
//! * [`ranking`] computes the paper's average-ranking tables (Table 4)
//!   with its tie and ≥1.5%-improvement scenario rules.
//! * [`batch::BatchEvaluator`] fans independent candidate evaluations
//!   across a worker pool, [`cache::EvalCache`] memoizes trials by a
//!   stable pipeline fingerprint, and [`prefix::PrefixCache`] memoizes
//!   *partially transformed datasets* so pipelines sharing a prefix pay
//!   only for their suffix — together they attack the paper's §5
//!   finding that evaluation dominates search time.
//! * [`repo::TrialStore`] persists finished trials to an append-only,
//!   checksummed on-disk repository keyed by the same
//!   [`cache::CacheKey`], so runs can warm-start, resume after a
//!   crash, or replay a whole search with zero evaluations
//!   ([`repo::ReplayEvaluator`]).
//! * [`remote::RemoteEvaluator`] extends [`evaluator::Evaluate`] across
//!   process boundaries: requests shard over a worker fleet by the
//!   stable [`cache::CacheKey`] fingerprint, transport faults retry
//!   with bounded backoff and then degrade to worst-error trials (the
//!   `autofp-evald` crate provides the worker daemon and wire
//!   protocol).
//! * Evaluation is fault-tolerant end to end: [`error::EvalError`]
//!   classifies failures (non-finite transforms, degenerate matrices,
//!   trainer divergence, panics, deadline overruns, transport faults), the
//!   [`evaluator::Evaluate`] trait shields every call with
//!   `catch_unwind`, failed pipelines become worst-error trials
//!   (error = 1.0, Eq. 2) so searches keep running deterministically,
//!   and [`fault::FaultInjector`] exercises all of it under a seeded,
//!   reproducible fault mix.

pub mod batch;
pub mod budget;
pub mod cache;
pub mod error;
pub mod evaluator;
pub mod fault;
pub mod framework;
pub mod history;
pub mod order;
pub mod patterns;
pub mod prefix;
pub mod remote;
pub mod repo;
pub mod report;
pub mod ranking;

pub use batch::{pool_map, BatchEvaluator};
pub use budget::{Budget, BudgetClock};
pub use cache::{fnv1a, CacheKey, CacheStats, EvalCache, SharedEvalCache};
pub use error::{EvalError, FailureKind, FailureStats};
pub use evaluator::{evaluate_or_worst, Evaluate, EvalConfig, Evaluator};
pub use fault::{FaultConfig, FaultInjector, InjectedPanic};
pub use framework::{
    run_search, run_search_cached, run_search_with, SearchContext, SearchOutcome, Searcher,
};
pub use history::{PhaseBreakdown, Trial, TrialHistory};
pub use order::{nan_largest, nan_smallest};
pub use prefix::{PrefixCache, PrefixHit, PrefixKey, PrefixStats, SharedPrefixCache};
pub use remote::{
    shard, shard_order, shard_weight, FleetStats, RemoteBackend, RemoteEvaluator, RemoteInfo,
    RetryPolicy,
};
pub use repo::{
    GcReport, GcSegment, OpenReport, RepoError, ReplayEvaluator, SharedTrialStore, StoreMeta,
    StoreStats, TrialRepo, TrialStore,
};
