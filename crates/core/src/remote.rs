//! Sharded remote evaluation: the client half of the evaluation
//! service (the server half lives in the `autofp-evald` crate).
//!
//! [`RemoteEvaluator`] implements [`Evaluate`] over a fleet of worker
//! processes reached through a [`RemoteBackend`]. Each request is
//! routed by rendezvous (highest-random-weight) hashing over
//! `CacheKey::fingerprint` — the same stable FNV-1a fingerprint the
//! [`crate::EvalCache`] keys on. Every `(fingerprint, slot)` pair gets
//! a mixed 64-bit weight and the request goes to the live slot with the
//! highest weight, so one pipeline always lands on one worker and that
//! worker's process-local cache converges to the shard of the
//! evaluation space it owns. Unlike `fingerprint % N`, resizing the
//! fleet from `N` to `N+1` workers remaps only ~`1/(N+1)` of the keys
//! (each key moves only if the new slot out-weighs its current owner),
//! so warm worker caches survive a resize.
//!
//! # Failover and failure conversion
//!
//! When a worker is unreachable the request walks down the key's
//! rendezvous preference order ([`shard_order`]) to the next routable
//! worker. Workers regenerate their datasets deterministically from the
//! evaluation context, so *any* worker returns bit-identical trials —
//! failover changes which process answers, never the answer. Per-worker
//! transport faults are retried with bounded exponential backoff before
//! moving on; only when every worker in the fleet has been exhausted
//! does the error surface as [`EvalError::Transport`], which the search
//! framework converts into the established worst-error-trial convention
//! (accuracy 0, error 1, tagged [`crate::FailureKind::Transport`]).
//! Searches therefore run their budgets to completion deterministically
//! even with workers down: routing is a pure function of
//! `(fingerprint, live-worker-set)`, so the same requests are served
//! the same way on every rerun. Transport failures are never cached
//! (see [`crate::EvalCache::insert`]) — a worker coming back must not
//! be masked by a memoized worst-error trial.
//!
//! Backends may additionally report fleet health through the defaulted
//! trait hooks ([`RemoteBackend::is_routable`] lets a circuit breaker
//! route around a repeatedly failing worker without paying a dial;
//! [`RemoteBackend::fleet_stats`] surfaces robustness counters). The
//! hooks default to no-ops so simple backends stay simple.
//!
//! This module is transport-agnostic by design: `autofp-evald` provides
//! the TCP and in-process loopback backends, keeping `autofp-core` free
//! of any wire-format knowledge (and of a dependency cycle).

use crate::cache::CacheKey;
use crate::error::EvalError;
use crate::evaluator::{EvalConfig, Evaluate};
use crate::history::Trial;
use autofp_models::CancelToken;
use autofp_preprocess::Pipeline;
use std::time::Duration;

/// Robustness counters a [`RemoteBackend`] accumulates over its life.
///
/// All counters are cumulative since backend construction; `epoch` and
/// `workers` describe the fleet spec the backend currently routes over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetStats {
    /// Fleet-spec epoch the backend last synchronized with.
    pub epoch: u64,
    /// Number of worker slots in the current fleet spec.
    pub workers: u64,
    /// Pooled connections that died and were transparently re-dialed.
    pub reconnects: u64,
    /// Same-worker transport retries (bounded backoff) performed.
    pub retries: u64,
    /// Requests served by a rendezvous successor instead of the
    /// primary owner of the key.
    pub failovers: u64,
    /// Circuit-breaker transitions from closed to open.
    pub circuit_opens: u64,
    /// Dead workers respawned by the fleet supervisor.
    pub respawns: u64,
}

/// What a worker reports about the evaluation context it serves:
/// the dataset/model facts an [`Evaluate`] implementation must answer
/// locally, plus the fleet robustness counters at observation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteInfo {
    /// Validation accuracy with no preprocessing (the no-FP baseline).
    pub baseline_accuracy: f64,
    /// Number of training rows the worker's evaluator fits on.
    pub train_rows: usize,
    /// Fleet robustness counters (see [`FleetStats`]).
    pub fleet: FleetStats,
}

/// Transport abstraction the [`RemoteEvaluator`] shards over.
///
/// A backend owns the addressing and wire concerns for `workers()`
/// interchangeable workers; the evaluator only decides *which* worker
/// index handles a request. Implementations map every transport-layer
/// fault to [`EvalError::Transport`] (the only retryable kind) and
/// must be deterministic for a fixed fleet state: the same request to
/// the same live worker returns the same trial bits.
///
/// The defaulted methods let richer backends (connection pools,
/// circuit breakers, supervised fleets) feed routing decisions and
/// robustness counters back to the evaluator without burdening simple
/// backends.
pub trait RemoteBackend: Send + Sync {
    /// Number of worker slots in the fleet spec being routed over.
    fn workers(&self) -> usize;

    /// Evaluate `pipeline` at training-budget `fraction` on `worker`.
    fn evaluate(&self, worker: usize, pipeline: &Pipeline, fraction: f64)
        -> Result<Trial, EvalError>;

    /// Ask `worker` for the context facts (baseline, train rows).
    fn describe(&self, worker: usize) -> Result<RemoteInfo, EvalError>;

    /// Epoch of the fleet spec the backend currently routes over.
    /// Bumped by a supervisor on membership change.
    fn epoch(&self) -> u64 {
        0
    }

    /// Whether `worker` should be attempted right now. A circuit
    /// breaker returns `false` while a worker's circuit is open (with
    /// periodic half-open probes); the evaluator then routes the
    /// request to the key's rendezvous successor instead.
    fn is_routable(&self, _worker: usize) -> bool {
        true
    }

    /// Observe a same-worker transport retry (for counters).
    fn note_retry(&self, _worker: usize) {}

    /// Observe a failover from `from` (the key's primary owner) to
    /// `to` (a rendezvous successor) — for counters.
    fn note_failover(&self, _from: usize, _to: usize) {}

    /// Snapshot of the backend's robustness counters.
    fn fleet_stats(&self) -> FleetStats {
        FleetStats { workers: self.workers() as u64, ..FleetStats::default() }
    }
}

/// Bounded retry-with-backoff policy for transport faults.
///
/// Only [`EvalError::Transport`] is retried — every other failure kind
/// is a deterministic property of the pipeline and retrying it would
/// just repeat the failure. The policy bounds attempts *per worker*;
/// after exhausting one worker the evaluator fails over to the key's
/// rendezvous successor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per worker per request (first try included); min 1.
    pub attempts: u32,
    /// Sleep before the first retry; doubles after each further retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { attempts: 3, backoff: Duration::from_millis(10) }
    }
}

/// An [`Evaluate`] implementation that forwards every request to a
/// sharded fleet of remote workers.
///
/// Construction never fails: if no worker answers `describe`, the
/// baseline falls back to `0.0` / `0` rows and every evaluation will
/// surface as a worst-error transport trial — the search still runs
/// its budget to completion.
pub struct RemoteEvaluator {
    backend: Box<dyn RemoteBackend>,
    config: EvalConfig,
    retry: RetryPolicy,
    info: RemoteInfo,
}

impl RemoteEvaluator {
    /// Build over `backend` with the default [`RetryPolicy`].
    pub fn new(backend: Box<dyn RemoteBackend>, config: EvalConfig) -> RemoteEvaluator {
        Self::with_retry(backend, config, RetryPolicy::default())
    }

    /// Build over `backend` with an explicit retry policy.
    ///
    /// `describe` is asked of each worker in index order until one
    /// answers; a fully dead fleet degrades to a zero baseline rather
    /// than failing construction.
    pub fn with_retry(
        backend: Box<dyn RemoteBackend>,
        config: EvalConfig,
        retry: RetryPolicy,
    ) -> RemoteEvaluator {
        let mut info =
            RemoteInfo { baseline_accuracy: 0.0, train_rows: 0, fleet: FleetStats::default() };
        for worker in 0..backend.workers() {
            if let Ok(described) = backend.describe(worker) {
                info = described;
                break;
            }
        }
        RemoteEvaluator { backend, config, retry, info }
    }

    /// The worker index `pipeline` @ `fraction` prefers: the head of
    /// the key's rendezvous order (see [`shard`]).
    pub fn shard_of(&self, pipeline: &Pipeline, fraction: f64) -> usize {
        let key = CacheKey::new(pipeline, fraction, &self.config);
        shard(key.fingerprint(), self.backend.workers())
    }

    /// Context facts plus a live snapshot of the backend's fleet
    /// robustness counters.
    pub fn remote_info(&self) -> RemoteInfo {
        RemoteInfo { fleet: self.backend.fleet_stats(), ..self.info }
    }

    /// Attempt one worker with the bounded per-worker retry policy.
    fn try_worker(
        &self,
        worker: usize,
        pipeline: &Pipeline,
        fraction: f64,
        cancel: &CancelToken,
    ) -> Result<Trial, EvalError> {
        let attempts = self.retry.attempts.max(1);
        let mut delay = self.retry.backoff;
        let mut last = EvalError::Transport { detail: "no attempt made".to_string() };
        for attempt in 0..attempts {
            if cancel.is_cancelled() {
                return Err(EvalError::DeadlineExceeded);
            }
            match self.backend.evaluate(worker, pipeline, fraction) {
                Ok(trial) => return Ok(trial),
                Err(err @ EvalError::Transport { .. }) => {
                    last = err;
                    if attempt + 1 < attempts {
                        self.backend.note_retry(worker);
                        std::thread::sleep(delay);
                        delay = delay.saturating_mul(2);
                    }
                }
                // Every other kind is a deterministic verdict about the
                // pipeline; pass it through untouched.
                Err(err) => return Err(err),
            }
        }
        Err(last)
    }
}

/// splitmix64-style finalizer: the bit mixer behind rendezvous
/// weights. Stable — changing it remaps every key on every fleet.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Rendezvous weight of worker slot `slot` for `fingerprint`. The
/// request prefers slots in descending weight order. Pure and stable:
/// the weight of a `(fingerprint, slot)` pair never changes, which is
/// what bounds a resize to ~`1/N` remapped keys.
pub fn shard_weight(fingerprint: u64, slot: usize) -> u64 {
    mix64(fingerprint ^ mix64(slot as u64))
}

/// Pure shard routing: the slot with the highest rendezvous weight
/// for `fingerprint` (worker 0 for an empty fleet, so callers need no
/// special case).
///
/// Growing the fleet from `N` to `N+1` slots moves a key only if the
/// new slot out-weighs all existing ones — an expected `1/(N+1)` of
/// keys — and every moved key lands on the new slot; shrinking only
/// redistributes the removed slot's keys.
pub fn shard(fingerprint: u64, workers: usize) -> usize {
    let mut best = 0usize;
    let mut best_weight = 0u64;
    for slot in 0..workers {
        let weight = shard_weight(fingerprint, slot);
        if slot == 0 || weight > best_weight {
            best = slot;
            best_weight = weight;
        }
    }
    best
}

/// All worker slots in descending rendezvous-weight order for
/// `fingerprint`: the key's failover preference list. `shard` is the
/// head; ties (vanishingly rare with 64-bit weights) break toward the
/// lower slot index so the order is total and deterministic.
pub fn shard_order(fingerprint: u64, workers: usize) -> Vec<usize> {
    let mut slots: Vec<usize> = (0..workers).collect();
    slots.sort_by_key(|&slot| (std::cmp::Reverse(shard_weight(fingerprint, slot)), slot));
    slots
}

impl Evaluate for RemoteEvaluator {
    fn evaluate_raw(
        &self,
        pipeline: &Pipeline,
        fraction: f64,
        cancel: &CancelToken,
    ) -> Result<Trial, EvalError> {
        let key = CacheKey::new(pipeline, fraction, &self.config);
        let order = shard_order(key.fingerprint(), self.backend.workers());
        let primary = match order.first() {
            Some(&p) => p,
            None => return Err(EvalError::Transport { detail: "empty fleet".to_string() }),
        };
        let mut last = EvalError::Transport { detail: "no attempt made".to_string() };
        let mut attempted_any = false;
        for &worker in &order {
            if cancel.is_cancelled() {
                return Err(EvalError::DeadlineExceeded);
            }
            if !self.backend.is_routable(worker) {
                continue;
            }
            if worker != primary {
                self.backend.note_failover(primary, worker);
            }
            attempted_any = true;
            match self.try_worker(worker, pipeline, fraction, cancel) {
                Ok(trial) => return Ok(trial),
                Err(err @ EvalError::Transport { .. }) => last = err,
                Err(err) => return Err(err),
            }
        }
        if !attempted_any {
            // Every circuit is open. Forcing the primary is the only
            // way to learn whether the fleet recovered — and keeps the
            // worst case deterministic (same worker on every rerun).
            match self.try_worker(primary, pipeline, fraction, cancel) {
                Ok(trial) => return Ok(trial),
                Err(err @ EvalError::Transport { .. }) => last = err,
                Err(err) => return Err(err),
            }
        }
        Err(last)
    }

    fn config(&self) -> &EvalConfig {
        &self.config
    }

    fn baseline_accuracy(&self) -> f64 {
        self.info.baseline_accuracy
    }

    fn train_rows(&self) -> usize {
        self.info.train_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FailureKind;
    use crate::evaluator::evaluate_or_worst;
    use autofp_preprocess::PreprocKind;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    /// A backend that answers from a table and records which worker
    /// each request hit.
    struct MockBackend {
        workers: usize,
        dead: Vec<usize>,
        unroutable: Vec<usize>,
        calls: Mutex<Vec<usize>>,
        attempts: AtomicU64,
        retries: AtomicU64,
        failovers: AtomicU64,
    }

    impl MockBackend {
        fn new(workers: usize, dead: Vec<usize>) -> MockBackend {
            MockBackend {
                workers,
                dead,
                unroutable: Vec::new(),
                calls: Mutex::new(Vec::new()),
                attempts: AtomicU64::new(0),
                retries: AtomicU64::new(0),
                failovers: AtomicU64::new(0),
            }
        }

        fn unroutable(mut self, slots: Vec<usize>) -> MockBackend {
            self.unroutable = slots;
            self
        }
    }

    impl RemoteBackend for MockBackend {
        fn workers(&self) -> usize {
            self.workers
        }

        fn evaluate(
            &self,
            worker: usize,
            pipeline: &Pipeline,
            fraction: f64,
        ) -> Result<Trial, EvalError> {
            self.attempts.fetch_add(1, Ordering::Relaxed);
            self.calls.lock().unwrap().push(worker);
            if self.dead.contains(&worker) {
                return Err(EvalError::Transport { detail: format!("worker {worker} is down") });
            }
            Ok(Trial {
                pipeline: pipeline.clone(),
                accuracy: 0.5 + worker as f64 / 100.0,
                error: 0.5 - worker as f64 / 100.0,
                prep_time: Duration::ZERO,
                train_time: Duration::ZERO,
                train_fraction: fraction,
                failure: None,
            })
        }

        fn describe(&self, worker: usize) -> Result<RemoteInfo, EvalError> {
            if self.dead.contains(&worker) {
                return Err(EvalError::Transport { detail: format!("worker {worker} is down") });
            }
            Ok(RemoteInfo {
                baseline_accuracy: 0.61,
                train_rows: 80 + worker,
                fleet: FleetStats::default(),
            })
        }

        fn is_routable(&self, worker: usize) -> bool {
            !self.unroutable.contains(&worker)
        }

        fn note_retry(&self, _worker: usize) {
            self.retries.fetch_add(1, Ordering::Relaxed);
        }

        fn note_failover(&self, _from: usize, _to: usize) {
            self.failovers.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn fast_retry() -> RetryPolicy {
        RetryPolicy { attempts: 3, backoff: Duration::from_millis(0) }
    }

    #[test]
    fn routing_is_rendezvous_over_fingerprint() {
        let ev = RemoteEvaluator::with_retry(
            Box::new(MockBackend::new(4, vec![])),
            EvalConfig::default(),
            fast_retry(),
        );
        for kind in PreprocKind::ALL {
            let p = Pipeline::from_kinds(&[kind]);
            let key = CacheKey::new(&p, 1.0, &EvalConfig::default());
            let expect_shard = shard(key.fingerprint(), 4);
            assert_eq!(ev.shard_of(&p, 1.0), expect_shard);
            assert_eq!(shard_order(key.fingerprint(), 4)[0], expect_shard);
            // And the trial actually comes from that worker.
            let t = ev.try_evaluate(&p).expect("live worker");
            let expect = 0.5 + expect_shard as f64 / 100.0;
            assert_eq!(t.accuracy.to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn shard_order_is_a_permutation_headed_by_shard() {
        for fp in [0u64, 1, 7, 0xDEAD_BEEF, u64::MAX] {
            for n in 1..6usize {
                let order = shard_order(fp, n);
                assert_eq!(order.len(), n);
                let mut sorted = order.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "must be a permutation");
                assert_eq!(order[0], shard(fp, n));
            }
        }
    }

    #[test]
    fn resize_remaps_about_one_over_n_and_only_onto_the_new_slot() {
        // Rendezvous property: growing N -> N+1 moves a key iff the
        // new slot out-weighs all old ones (expected 1/(N+1) of keys),
        // and every moved key lands on the new slot.
        let total = 10_000u64;
        for (from, to) in [(2usize, 3usize), (4, 5)] {
            let mut moved = 0u64;
            for fp in 0..total {
                let old = shard(fp, from);
                let new = shard(fp, to);
                if old != new {
                    moved += 1;
                    assert_eq!(new, to - 1, "moved keys must land on the new slot");
                }
            }
            let frac = moved as f64 / total as f64;
            let expect = 1.0 / to as f64;
            assert!(
                (frac - expect).abs() < 0.05,
                "resize {from}->{to} remapped {frac:.3} of keys, expected ~{expect:.3}"
            );
        }
        // The modulo scheme this replaces remaps ~all keys; make sure
        // we are far away from that regime.
        let moved_2_to_3 = (0..total).filter(|&fp| shard(fp, 2) != shard(fp, 3)).count();
        assert!((moved_2_to_3 as f64 / total as f64) < 0.5);
    }

    #[test]
    fn describe_falls_back_across_workers_and_dead_fleet_degrades() {
        let ev = RemoteEvaluator::with_retry(
            Box::new(MockBackend::new(3, vec![0, 1])),
            EvalConfig::default(),
            fast_retry(),
        );
        // Worker 2 answered describe.
        assert_eq!(ev.baseline_accuracy(), 0.61);
        assert_eq!(ev.train_rows(), 82);

        let dead = RemoteEvaluator::with_retry(
            Box::new(MockBackend::new(2, vec![0, 1])),
            EvalConfig::default(),
            fast_retry(),
        );
        assert_eq!(dead.baseline_accuracy(), 0.0);
        assert_eq!(dead.train_rows(), 0);
    }

    #[test]
    fn dead_primary_fails_over_to_rendezvous_successor() {
        let p = Pipeline::from_kinds(&[PreprocKind::StandardScaler]);
        let key = CacheKey::new(&p, 1.0, &EvalConfig::default());
        let order = shard_order(key.fingerprint(), 3);
        let backend = Box::new(MockBackend::new(3, vec![order[0]]));
        let ev = RemoteEvaluator::with_retry(backend, EvalConfig::default(), fast_retry());
        let t = ev.try_evaluate(&p).expect("successor serves the request");
        let expect = 0.5 + order[1] as f64 / 100.0;
        assert_eq!(t.accuracy.to_bits(), expect.to_bits());
        assert_eq!(t.failure, None, "failover must not surface a worst-error trial");
    }

    #[test]
    fn open_circuit_primary_is_skipped_without_an_attempt() {
        let p = Pipeline::from_kinds(&[PreprocKind::MinMaxScaler]);
        let key = CacheKey::new(&p, 1.0, &EvalConfig::default());
        let order = shard_order(key.fingerprint(), 3);
        let backend = MockBackend::new(3, vec![]).unroutable(vec![order[0]]);
        let ev = RemoteEvaluator::with_retry(
            Box::new(backend),
            EvalConfig::default(),
            fast_retry(),
        );
        let t = ev.try_evaluate(&p).expect("successor serves the request");
        let expect = 0.5 + order[1] as f64 / 100.0;
        assert_eq!(t.accuracy.to_bits(), expect.to_bits());
    }

    #[test]
    fn all_circuits_open_forces_the_primary() {
        let p = Pipeline::from_kinds(&[PreprocKind::Normalizer]);
        let key = CacheKey::new(&p, 1.0, &EvalConfig::default());
        let primary = shard(key.fingerprint(), 2);
        let backend = MockBackend::new(2, vec![]).unroutable(vec![0, 1]);
        let ev = RemoteEvaluator::with_retry(
            Box::new(backend),
            EvalConfig::default(),
            fast_retry(),
        );
        let t = ev.try_evaluate(&p).expect("forced primary probe succeeds");
        let expect = 0.5 + primary as f64 / 100.0;
        assert_eq!(t.accuracy.to_bits(), expect.to_bits());
    }

    #[test]
    fn transport_faults_exhaust_the_fleet_then_surface_as_worst_error() {
        let backend = Box::new(MockBackend::new(1, vec![0]));
        let ev = RemoteEvaluator::with_retry(backend, EvalConfig::default(), fast_retry());
        let p = Pipeline::from_kinds(&[PreprocKind::StandardScaler]);
        let err = ev.try_evaluate(&p).unwrap_err();
        assert!(matches!(err, EvalError::Transport { .. }));
        let t = evaluate_or_worst(&ev, &p, 1.0, &CancelToken::new());
        assert_eq!(t.error, 1.0);
        assert_eq!(t.failure, Some(FailureKind::Transport));

        // With the whole fleet dead every worker is tried (attempts x
        // workers calls), then the transport error surfaces.
        let dead = MockBackend::new(2, vec![0, 1]);
        let ev = RemoteEvaluator::with_retry(Box::new(dead), EvalConfig::default(), fast_retry());
        assert!(matches!(ev.try_evaluate(&p).unwrap_err(), EvalError::Transport { .. }));
    }

    #[test]
    fn retries_are_bounded_and_only_for_transport() {
        struct CountThenDiverge(std::sync::Arc<AtomicU64>);
        impl RemoteBackend for CountThenDiverge {
            fn workers(&self) -> usize {
                1
            }
            fn evaluate(&self, _: usize, _: &Pipeline, _: f64) -> Result<Trial, EvalError> {
                self.0.fetch_add(1, Ordering::Relaxed);
                Err(EvalError::TrainerDiverged { detail: "nan".into() })
            }
            fn describe(&self, _: usize) -> Result<RemoteInfo, EvalError> {
                Ok(RemoteInfo {
                    baseline_accuracy: 0.5,
                    train_rows: 1,
                    fleet: FleetStats::default(),
                })
            }
        }
        // Non-transport errors pass through on the first attempt.
        let calls = std::sync::Arc::new(AtomicU64::new(0));
        let ev = RemoteEvaluator::with_retry(
            Box::new(CountThenDiverge(calls.clone())),
            EvalConfig::default(),
            fast_retry(),
        );
        let err = ev.try_evaluate(&Pipeline::empty()).unwrap_err();
        assert!(matches!(err, EvalError::TrainerDiverged { .. }));
        assert_eq!(calls.load(Ordering::Relaxed), 1, "non-transport errors must not retry");

        // Transport errors retry exactly `attempts` times per worker
        // and note each retry through the backend hook.
        let dead = MockBackend::new(1, vec![0]);
        let ev = RemoteEvaluator::with_retry(
            Box::new(dead),
            EvalConfig::default(),
            RetryPolicy { attempts: 4, backoff: Duration::from_millis(0) },
        );
        assert!(ev.try_evaluate(&Pipeline::empty()).is_err());
    }

    #[test]
    fn cancelled_token_short_circuits_to_deadline() {
        let ev = RemoteEvaluator::with_retry(
            Box::new(MockBackend::new(1, vec![])),
            EvalConfig::default(),
            fast_retry(),
        );
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = ev.try_evaluate_cancellable(&Pipeline::empty(), 1.0, &cancel).unwrap_err();
        assert_eq!(err, EvalError::DeadlineExceeded);
    }

    #[test]
    fn shard_handles_empty_fleet() {
        assert_eq!(shard(12345, 0), 0);
        assert_eq!(shard(12345, 1), 0);
        assert!(shard_order(12345, 0).is_empty());
        let ev = RemoteEvaluator::with_retry(
            Box::new(MockBackend::new(0, vec![])),
            EvalConfig::default(),
            fast_retry(),
        );
        let err = ev.try_evaluate(&Pipeline::empty()).unwrap_err();
        assert!(matches!(err, EvalError::Transport { .. }));
    }
}
