//! Sharded remote evaluation: the client half of the evaluation
//! service (the server half lives in the `autofp-evald` crate).
//!
//! [`RemoteEvaluator`] implements [`Evaluate`] over a fleet of worker
//! processes reached through a [`RemoteBackend`]. Each request is
//! routed to worker `CacheKey::fingerprint % N` — the same stable
//! FNV-1a fingerprint the [`crate::EvalCache`] keys on — so one
//! pipeline always lands on one worker, and that worker's process-local
//! cache converges to the shard of the evaluation space it owns.
//!
//! # Failure conversion
//!
//! Transport faults (a dead worker, a timeout, a corrupt frame) are
//! retried with bounded exponential backoff; when the retries are
//! exhausted the error surfaces as [`EvalError::Transport`], which the
//! search framework converts into the established worst-error-trial
//! convention (accuracy 0, error 1, tagged
//! [`crate::FailureKind::Transport`]). Searches therefore run their
//! budgets to completion deterministically even with a worker down:
//! routing is a pure function of the pipeline, so the same requests
//! fail the same way on every rerun. Transport failures are never
//! cached (see [`crate::EvalCache::insert`]) — a worker coming back
//! must not be masked by a memoized worst-error trial.
//!
//! This module is transport-agnostic by design: `autofp-evald` provides
//! the TCP and in-process loopback backends, keeping `autofp-core` free
//! of any wire-format knowledge (and of a dependency cycle).

use crate::cache::CacheKey;
use crate::error::EvalError;
use crate::evaluator::{EvalConfig, Evaluate};
use crate::history::Trial;
use autofp_models::CancelToken;
use autofp_preprocess::Pipeline;
use std::time::Duration;

/// What a worker reports about the evaluation context it serves:
/// the dataset/model facts an [`Evaluate`] implementation must answer
/// locally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteInfo {
    /// Validation accuracy with no preprocessing (the no-FP baseline).
    pub baseline_accuracy: f64,
    /// Number of training rows the worker's evaluator fits on.
    pub train_rows: usize,
}

/// Transport abstraction the [`RemoteEvaluator`] shards over.
///
/// A backend owns the addressing and wire concerns for `workers()`
/// interchangeable workers; the evaluator only decides *which* worker
/// index handles a request. Implementations map every transport-layer
/// fault to [`EvalError::Transport`] (the only retryable kind) and
/// must be deterministic for a fixed fleet state: the same request to
/// the same live worker returns the same trial bits.
pub trait RemoteBackend: Send + Sync {
    /// Number of workers in the fleet (fixed for the backend's life).
    fn workers(&self) -> usize;

    /// Evaluate `pipeline` at training-budget `fraction` on `worker`.
    fn evaluate(&self, worker: usize, pipeline: &Pipeline, fraction: f64)
        -> Result<Trial, EvalError>;

    /// Ask `worker` for the context facts (baseline, train rows).
    fn describe(&self, worker: usize) -> Result<RemoteInfo, EvalError>;
}

/// Bounded retry-with-backoff policy for transport faults.
///
/// Only [`EvalError::Transport`] is retried — every other failure kind
/// is a deterministic property of the pipeline and retrying it would
/// just repeat the failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included); minimum 1.
    pub attempts: u32,
    /// Sleep before the first retry; doubles after each further retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { attempts: 3, backoff: Duration::from_millis(10) }
    }
}

/// An [`Evaluate`] implementation that forwards every request to a
/// sharded fleet of remote workers.
///
/// Construction never fails: if no worker answers `describe`, the
/// baseline falls back to `0.0` / `0` rows and every evaluation will
/// surface as a worst-error transport trial — the search still runs
/// its budget to completion.
pub struct RemoteEvaluator {
    backend: Box<dyn RemoteBackend>,
    config: EvalConfig,
    retry: RetryPolicy,
    info: RemoteInfo,
}

impl RemoteEvaluator {
    /// Build over `backend` with the default [`RetryPolicy`].
    pub fn new(backend: Box<dyn RemoteBackend>, config: EvalConfig) -> RemoteEvaluator {
        Self::with_retry(backend, config, RetryPolicy::default())
    }

    /// Build over `backend` with an explicit retry policy.
    ///
    /// `describe` is asked of each worker in index order until one
    /// answers; a fully dead fleet degrades to a zero baseline rather
    /// than failing construction.
    pub fn with_retry(
        backend: Box<dyn RemoteBackend>,
        config: EvalConfig,
        retry: RetryPolicy,
    ) -> RemoteEvaluator {
        let mut info = RemoteInfo { baseline_accuracy: 0.0, train_rows: 0 };
        for worker in 0..backend.workers() {
            if let Ok(described) = backend.describe(worker) {
                info = described;
                break;
            }
        }
        RemoteEvaluator { backend, config, retry, info }
    }

    /// The worker index `pipeline` @ `fraction` routes to:
    /// `CacheKey::fingerprint % workers`.
    pub fn shard_of(&self, pipeline: &Pipeline, fraction: f64) -> usize {
        let key = CacheKey::new(pipeline, fraction, &self.config);
        shard(key.fingerprint(), self.backend.workers())
    }
}

/// Pure shard routing: `fingerprint % workers` (worker 0 for an empty
/// fleet, so callers need no special case).
pub fn shard(fingerprint: u64, workers: usize) -> usize {
    if workers == 0 {
        0
    } else {
        (fingerprint % workers as u64) as usize
    }
}

impl Evaluate for RemoteEvaluator {
    fn evaluate_raw(
        &self,
        pipeline: &Pipeline,
        fraction: f64,
        cancel: &CancelToken,
    ) -> Result<Trial, EvalError> {
        let worker = self.shard_of(pipeline, fraction);
        let mut delay = self.retry.backoff;
        let mut last = EvalError::Transport { detail: "no attempt made".to_string() };
        for attempt in 0..self.retry.attempts.max(1) {
            if cancel.is_cancelled() {
                return Err(EvalError::DeadlineExceeded);
            }
            match self.backend.evaluate(worker, pipeline, fraction) {
                Ok(trial) => return Ok(trial),
                Err(err @ EvalError::Transport { .. }) => {
                    last = err;
                    if attempt + 1 < self.retry.attempts.max(1) {
                        std::thread::sleep(delay);
                        delay = delay.saturating_mul(2);
                    }
                }
                // Every other kind is a deterministic verdict about the
                // pipeline; pass it through untouched.
                Err(err) => return Err(err),
            }
        }
        Err(last)
    }

    fn config(&self) -> &EvalConfig {
        &self.config
    }

    fn baseline_accuracy(&self) -> f64 {
        self.info.baseline_accuracy
    }

    fn train_rows(&self) -> usize {
        self.info.train_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FailureKind;
    use crate::evaluator::evaluate_or_worst;
    use autofp_preprocess::PreprocKind;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    /// A backend that answers from a table and records which worker
    /// each request hit.
    struct MockBackend {
        workers: usize,
        dead: Vec<usize>,
        calls: Mutex<Vec<usize>>,
        attempts: AtomicU64,
    }

    impl MockBackend {
        fn new(workers: usize, dead: Vec<usize>) -> MockBackend {
            MockBackend { workers, dead, calls: Mutex::new(Vec::new()), attempts: AtomicU64::new(0) }
        }
    }

    impl RemoteBackend for MockBackend {
        fn workers(&self) -> usize {
            self.workers
        }

        fn evaluate(
            &self,
            worker: usize,
            pipeline: &Pipeline,
            fraction: f64,
        ) -> Result<Trial, EvalError> {
            self.attempts.fetch_add(1, Ordering::Relaxed);
            self.calls.lock().unwrap().push(worker);
            if self.dead.contains(&worker) {
                return Err(EvalError::Transport { detail: format!("worker {worker} is down") });
            }
            Ok(Trial {
                pipeline: pipeline.clone(),
                accuracy: 0.5 + worker as f64 / 100.0,
                error: 0.5 - worker as f64 / 100.0,
                prep_time: Duration::ZERO,
                train_time: Duration::ZERO,
                train_fraction: fraction,
                failure: None,
            })
        }

        fn describe(&self, worker: usize) -> Result<RemoteInfo, EvalError> {
            if self.dead.contains(&worker) {
                return Err(EvalError::Transport { detail: format!("worker {worker} is down") });
            }
            Ok(RemoteInfo { baseline_accuracy: 0.61, train_rows: 80 + worker })
        }
    }

    fn fast_retry() -> RetryPolicy {
        RetryPolicy { attempts: 3, backoff: Duration::from_millis(0) }
    }

    #[test]
    fn routing_is_fingerprint_mod_workers() {
        let ev = RemoteEvaluator::with_retry(
            Box::new(MockBackend::new(4, vec![])),
            EvalConfig::default(),
            fast_retry(),
        );
        for kind in PreprocKind::ALL {
            let p = Pipeline::from_kinds(&[kind]);
            let key = CacheKey::new(&p, 1.0, &EvalConfig::default());
            assert_eq!(ev.shard_of(&p, 1.0), (key.fingerprint() % 4) as usize);
            // And the trial actually comes from that worker.
            let t = ev.try_evaluate(&p).expect("live worker");
            let expect = 0.5 + ev.shard_of(&p, 1.0) as f64 / 100.0;
            assert_eq!(t.accuracy.to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn describe_falls_back_across_workers_and_dead_fleet_degrades() {
        let ev = RemoteEvaluator::with_retry(
            Box::new(MockBackend::new(3, vec![0, 1])),
            EvalConfig::default(),
            fast_retry(),
        );
        // Worker 2 answered describe.
        assert_eq!(ev.baseline_accuracy(), 0.61);
        assert_eq!(ev.train_rows(), 82);

        let dead = RemoteEvaluator::with_retry(
            Box::new(MockBackend::new(2, vec![0, 1])),
            EvalConfig::default(),
            fast_retry(),
        );
        assert_eq!(dead.baseline_accuracy(), 0.0);
        assert_eq!(dead.train_rows(), 0);
    }

    #[test]
    fn transport_faults_retry_then_surface_as_worst_error() {
        let backend = Box::new(MockBackend::new(1, vec![0]));
        let ev = RemoteEvaluator::with_retry(backend, EvalConfig::default(), fast_retry());
        let p = Pipeline::from_kinds(&[PreprocKind::StandardScaler]);
        let err = ev.try_evaluate(&p).unwrap_err();
        assert!(matches!(err, EvalError::Transport { .. }));
        let t = evaluate_or_worst(&ev, &p, 1.0, &CancelToken::new());
        assert_eq!(t.error, 1.0);
        assert_eq!(t.failure, Some(FailureKind::Transport));
    }

    #[test]
    fn retries_are_bounded_and_only_for_transport() {
        struct CountThenDiverge(std::sync::Arc<AtomicU64>);
        impl RemoteBackend for CountThenDiverge {
            fn workers(&self) -> usize {
                1
            }
            fn evaluate(&self, _: usize, _: &Pipeline, _: f64) -> Result<Trial, EvalError> {
                self.0.fetch_add(1, Ordering::Relaxed);
                Err(EvalError::TrainerDiverged { detail: "nan".into() })
            }
            fn describe(&self, _: usize) -> Result<RemoteInfo, EvalError> {
                Ok(RemoteInfo { baseline_accuracy: 0.5, train_rows: 1 })
            }
        }
        // Non-transport errors pass through on the first attempt.
        let calls = std::sync::Arc::new(AtomicU64::new(0));
        let ev = RemoteEvaluator::with_retry(
            Box::new(CountThenDiverge(calls.clone())),
            EvalConfig::default(),
            fast_retry(),
        );
        let err = ev.try_evaluate(&Pipeline::empty()).unwrap_err();
        assert!(matches!(err, EvalError::TrainerDiverged { .. }));
        assert_eq!(calls.load(Ordering::Relaxed), 1, "non-transport errors must not retry");

        // Transport errors retry exactly `attempts` times.
        let dead = MockBackend::new(1, vec![0]);
        let ev = RemoteEvaluator::with_retry(
            Box::new(dead),
            EvalConfig::default(),
            RetryPolicy { attempts: 4, backoff: Duration::from_millis(0) },
        );
        assert!(ev.try_evaluate(&Pipeline::empty()).is_err());
    }

    #[test]
    fn cancelled_token_short_circuits_to_deadline() {
        let ev = RemoteEvaluator::with_retry(
            Box::new(MockBackend::new(1, vec![])),
            EvalConfig::default(),
            fast_retry(),
        );
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = ev.try_evaluate_cancellable(&Pipeline::empty(), 1.0, &cancel).unwrap_err();
        assert_eq!(err, EvalError::DeadlineExceeded);
    }

    #[test]
    fn shard_handles_empty_fleet() {
        assert_eq!(shard(12345, 0), 0);
        assert_eq!(shard(12345, 1), 0);
        assert_eq!(shard(7, 3), 1);
    }
}
