//! Parallel batch evaluation (§5 extension).
//!
//! The paper's Figure 6-7 bottleneck analysis shows evaluation (Prep +
//! Train) dwarfs algorithm overhead (Pick), so the straightest path to
//! "fast as the hardware allows" is evaluating *many candidate
//! pipelines at once*. A [`BatchEvaluator`] fans a slice of pipelines
//! out across a scoped worker pool ([`std::thread::scope`]; evaluators
//! are `Send + Sync`, so workers share them by reference), preserving:
//!
//! * **deterministic result ordering** — `results[i]` is always the
//!   trial of `pipelines[i]`, whatever order workers finish in;
//! * **per-trial timing** — each worker measures its own trial's Prep
//!   and Train phases exactly as the sequential path does;
//! * **bit-identical accuracies** — trials are independent and the
//!   evaluator is deterministic, so thread count never changes results;
//! * **panic isolation** — every worker job runs through the shielded
//!   [`Evaluate`] path, so a panicking pipeline yields its own
//!   worst-error trial and the rest of the batch completes normally.
//!
//! With [`BatchEvaluator::with_cache`], duplicate proposals — both
//! repeats across batches and duplicates *within* one batch — are
//! satisfied by a single evaluation through an [`EvalCache`]. With
//! [`BatchEvaluator::with_cancel`], workers stop starting model fits
//! once the token fires (in-flight fits return early at their next
//! epoch boundary), bounding wall-clock overrun per batch.
//!
//! An [`crate::Evaluator`] carrying a prefix-transform cache
//! ([`crate::Evaluator::with_prefix_cache`]) keeps it through this
//! layer automatically: the cache lives *inside* the evaluator, is
//! thread-safe, and workers sharing it only skip redundant transform
//! work — batch results stay bit-identical to the sequential,
//! uncached path at any thread count (pinned by this module's tests).
//!
//! ```
//! use autofp_core::{BatchEvaluator, EvalConfig, Evaluator};
//! use autofp_data::SynthConfig;
//! use autofp_preprocess::{Pipeline, PreprocKind};
//!
//! let dataset = SynthConfig::new("batch-doc", 120, 5, 2, 3).generate();
//! let evaluator = Evaluator::new(&dataset, EvalConfig::default());
//! let pipelines = vec![
//!     Pipeline::empty(),
//!     Pipeline::from_kinds(&[PreprocKind::StandardScaler]),
//!     Pipeline::from_kinds(&[PreprocKind::MinMaxScaler]),
//! ];
//!
//! let batch = BatchEvaluator::new(&evaluator).with_threads(2);
//! let trials = batch.evaluate_batch(&pipelines);
//! assert_eq!(trials.len(), 3);
//! // results[i] corresponds to pipelines[i], and matches sequential:
//! let sequential = evaluator.evaluate(&pipelines[1]);
//! assert_eq!(trials[1].accuracy, sequential.accuracy);
//! ```

use crate::cache::{CacheKey, EvalCache};
use crate::evaluator::{evaluate_or_worst, Evaluate};
use crate::history::Trial;
use autofp_models::CancelToken;
use autofp_preprocess::Pipeline;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Run `n_jobs` independent jobs across a scoped worker pool and
/// return their results in input order: `results[i]` is `job(i)`.
///
/// This is the one worker-pool primitive of the workspace — the
/// [`BatchEvaluator`] fans pipeline evaluations through it, and the
/// bench harness fans whole scenario cells through it — so every layer
/// inherits the same guarantees:
///
/// * **input-order results** — whatever order workers finish in,
///   `results[i]` always belongs to job `i`;
/// * **thread-count invariance** — jobs receive only their index, so a
///   deterministic `job` function yields bit-identical results at any
///   `threads` value (`threads <= 1` runs inline on the caller);
/// * **panic propagation** — a panicking job aborts the pool (scoped
///   threads re-raise on join). Jobs that must survive faults shield
///   themselves, as [`BatchEvaluator`] does via
///   [`evaluate_or_worst`].
pub fn pool_map<T, F>(threads: usize, n_jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.min(n_jobs);
    if workers <= 1 {
        return (0..n_jobs).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_jobs {
                    break;
                }
                let result = job(i);
                // A slot mutex is written once by exactly one worker;
                // recovering from a (theoretical) poison is safe
                // because `Some(result)` is assigned atomically from
                // the worker's point of view.
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                // lint:allow(panic-boundary): the fetch_add loop claims every index below n_jobs exactly once
                // lint:allow(panic-reach): same invariant — reachable from the serve daemon's predict path, and the slot is always filled
                .expect("every job index below n_jobs is claimed by exactly one worker")
        })
        .collect()
}

/// Evaluates batches of candidate pipelines on a worker pool, with
/// optional pipeline-result caching and cooperative cancellation.
///
/// Construct per search run (it is cheap: a few words plus
/// references); the worker pool is scoped to each `evaluate_batch*`
/// call, so no threads linger between batches.
pub struct BatchEvaluator<'a> {
    evaluator: &'a dyn Evaluate,
    threads: usize,
    cache: Option<&'a EvalCache>,
    cancel: CancelToken,
}

impl<'a> BatchEvaluator<'a> {
    /// A batch evaluator over `evaluator`, defaulting to the machine's
    /// available parallelism, no cache, and a token that never fires.
    pub fn new(evaluator: &'a dyn Evaluate) -> BatchEvaluator<'a> {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        BatchEvaluator { evaluator, threads, cache: None, cancel: CancelToken::new() }
    }

    /// Set the worker count (clamped to at least 1). One worker means
    /// plain sequential evaluation on the calling thread.
    pub fn with_threads(mut self, threads: usize) -> BatchEvaluator<'a> {
        self.threads = threads.max(1);
        self
    }

    /// Memoize results in (and serve duplicates from) `cache`.
    pub fn with_cache(mut self, cache: &'a EvalCache) -> BatchEvaluator<'a> {
        self.cache = Some(cache);
        self
    }

    /// Thread `cancel` into every evaluation: jobs not yet started
    /// when it fires become deadline failures, and running model fits
    /// return early at their next iteration boundary.
    pub fn with_cancel(mut self, cancel: CancelToken) -> BatchEvaluator<'a> {
        self.cancel = cancel;
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &dyn Evaluate {
        self.evaluator
    }

    /// Evaluate every pipeline at full training budget. `results[i]`
    /// is the trial of `pipelines[i]`.
    pub fn evaluate_batch(&self, pipelines: &[Pipeline]) -> Vec<Trial> {
        self.evaluate_batch_budgeted(pipelines, 1.0)
    }

    /// Evaluate every pipeline at a fractional training budget
    /// (Hyperband rungs pass `fraction < 1`).
    pub fn evaluate_batch_budgeted(&self, pipelines: &[Pipeline], fraction: f64) -> Vec<Trial> {
        match self.cache {
            Some(cache) => self.run_cached(pipelines, fraction, cache),
            None => {
                let jobs: Vec<&Pipeline> = pipelines.iter().collect();
                self.run_parallel(&jobs, fraction)
            }
        }
    }

    /// Cached path: resolve each slot to a memoized trial or a
    /// deduplicated evaluation job, run the jobs in parallel, then fill
    /// every slot in input order.
    fn run_cached(
        &self,
        pipelines: &[Pipeline],
        fraction: f64,
        cache: &EvalCache,
    ) -> Vec<Trial> {
        let config = self.evaluator.config();
        let keys: Vec<CacheKey> =
            pipelines.iter().map(|p| CacheKey::new(p, fraction, config)).collect();

        // Slot -> either a memoized trial or an index into the job list.
        // Hits satisfied from earlier batches come back immediately;
        // within-batch duplicates share one job and are counted as hits
        // once the shared result exists (their saved time is the shared
        // job's cost).
        enum Slot {
            Ready(Trial),
            Job { job: usize, duplicate: bool },
        }
        // lint:allow(nondet): keyed dedup lookup only — never iterated, so hash order is unobservable
        let mut job_of_key: std::collections::HashMap<&str, usize> = Default::default();
        let mut jobs: Vec<&Pipeline> = Vec::new();
        let mut job_keys: Vec<&CacheKey> = Vec::new();
        let mut slots: Vec<Slot> = Vec::with_capacity(pipelines.len());
        for (p, key) in pipelines.iter().zip(&keys) {
            if let Some(trial) = cache.peek(key) {
                cache.note_hit(&trial);
                slots.push(Slot::Ready(trial));
            } else if let Some(&job) = job_of_key.get(key.canonical()) {
                slots.push(Slot::Job { job, duplicate: true });
            } else {
                cache.note_miss();
                let job = jobs.len();
                job_of_key.insert(key.canonical(), job);
                jobs.push(p);
                job_keys.push(key);
                slots.push(Slot::Job { job, duplicate: false });
            }
        }

        let fresh = self.run_parallel(&jobs, fraction);
        for (key, trial) in job_keys.iter().zip(&fresh) {
            // insert() itself refuses deadline failures, which are a
            // property of this run's clock, not of the pipeline.
            cache.insert(key, trial);
        }
        slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Ready(t) => t,
                Slot::Job { job, duplicate } => {
                    if duplicate {
                        cache.note_hit(&fresh[job]);
                    }
                    fresh[job].clone()
                }
            })
            .collect()
    }

    /// Evaluate `jobs` across the worker pool; `results[i]` belongs to
    /// `jobs[i]`. Every job runs through the shielded evaluation path
    /// ([`evaluate_or_worst`]), so a panic inside one evaluation is
    /// caught at that job's boundary and recorded as its worst-error
    /// trial — the other jobs, and the batch, are unaffected.
    fn run_parallel(&self, jobs: &[&Pipeline], fraction: f64) -> Vec<Trial> {
        if jobs.is_empty() {
            return Vec::new();
        }
        pool_map(self.threads, jobs.len(), |i| {
            evaluate_or_worst(self.evaluator, jobs[i], fraction, &self.cancel)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::EvalCache;
    use crate::error::{EvalError, FailureKind};
    use crate::evaluator::{EvalConfig, Evaluator};
    use autofp_data::SynthConfig;
    use autofp_linalg::rng::rng_from_seed;
    use autofp_preprocess::{ParamSpace, PreprocKind};

    fn evaluator() -> Evaluator {
        let d = SynthConfig::new("batch-test", 150, 5, 2, 3).generate();
        Evaluator::new(&d, EvalConfig::default())
    }

    fn random_batch(n: usize, seed: u64) -> Vec<Pipeline> {
        let space = ParamSpace::default_space();
        let mut rng = rng_from_seed(seed);
        (0..n).map(|_| space.sample_pipeline(&mut rng, 4)).collect()
    }

    #[test]
    fn pool_map_results_are_input_ordered_at_any_thread_count() {
        let job = |i: usize| i * i + 1;
        let expected: Vec<usize> = (0..37).map(job).collect();
        for threads in [0, 1, 2, 5, 16] {
            assert_eq!(pool_map(threads, 37, job), expected, "threads = {threads}");
        }
        assert!(pool_map::<usize, _>(4, 0, job).is_empty());
    }

    #[test]
    fn pool_map_runs_every_job_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let out = pool_map(8, 64, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "job {i} ran a wrong number of times");
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let ev = evaluator();
        let batch = random_batch(24, 11);
        let sequential: Vec<Trial> = batch.iter().map(|p| ev.evaluate(p)).collect();
        for threads in [2, 4, 8] {
            let parallel = BatchEvaluator::new(&ev).with_threads(threads).evaluate_batch(&batch);
            assert_eq!(parallel.len(), sequential.len());
            for (p, s) in parallel.iter().zip(&sequential) {
                assert_eq!(p.pipeline.key(), s.pipeline.key(), "ordering must be stable");
                assert_eq!(
                    p.accuracy.to_bits(),
                    s.accuracy.to_bits(),
                    "accuracy must be bit-identical at {threads} threads"
                );
                assert_eq!(p.train_fraction, s.train_fraction);
            }
        }
    }

    #[test]
    fn prefix_cached_batches_match_uncached_at_any_thread_count() {
        use crate::prefix::SharedPrefixCache;
        let plain = evaluator();
        let batch = random_batch(24, 11);
        let sequential: Vec<Trial> = batch.iter().map(|p| plain.evaluate(p)).collect();
        for threads in [1, 2, 8] {
            // A fresh cache per thread count: workers race to insert
            // and hit prefixes, which must never surface in results.
            let cached = evaluator().with_prefix_cache(SharedPrefixCache::new());
            let parallel =
                BatchEvaluator::new(&cached).with_threads(threads).evaluate_batch(&batch);
            for (p, s) in parallel.iter().zip(&sequential) {
                assert_eq!(p.pipeline.key(), s.pipeline.key());
                assert_eq!(
                    p.accuracy.to_bits(),
                    s.accuracy.to_bits(),
                    "prefix cache leaked into results at {threads} threads"
                );
                assert_eq!(p.failure, s.failure);
            }
            let stats = cached.prefix_stats().expect("cache attached");
            assert_eq!(stats.lookups(), 24, "one probe per non-empty pipeline");
        }
    }

    #[test]
    fn single_thread_is_plain_sequential() {
        let ev = evaluator();
        let batch = random_batch(5, 7);
        let a = BatchEvaluator::new(&ev).with_threads(1).evaluate_batch(&batch);
        let b: Vec<Trial> = batch.iter().map(|p| ev.evaluate(p)).collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.accuracy.to_bits(), y.accuracy.to_bits());
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let ev = evaluator();
        assert!(BatchEvaluator::new(&ev).evaluate_batch(&[]).is_empty());
    }

    #[test]
    fn cache_dedups_within_and_across_batches() {
        let ev = evaluator();
        let cache = EvalCache::new();
        let batch_eval = BatchEvaluator::new(&ev).with_threads(2).with_cache(&cache);
        let p = Pipeline::from_kinds(&[PreprocKind::StandardScaler]);
        let q = Pipeline::from_kinds(&[PreprocKind::MinMaxScaler]);

        // Within-batch duplicates: 4 slots, 2 unique.
        let trials = batch_eval.evaluate_batch(&[p.clone(), q.clone(), p.clone(), p.clone()]);
        assert_eq!(trials.len(), 4);
        assert_eq!(trials[0].accuracy.to_bits(), trials[2].accuracy.to_bits());
        assert_eq!(trials[0].accuracy.to_bits(), trials[3].accuracy.to_bits());
        let s1 = cache.stats();
        assert_eq!(s1.misses, 2, "two unique evaluations");
        assert_eq!(s1.hits, 2, "two duplicate slots shared them");
        assert_eq!(s1.entries, 2);

        // Across batches: everything hits now.
        let again = batch_eval.evaluate_batch(&[q.clone(), p.clone()]);
        assert_eq!(again[1].accuracy.to_bits(), trials[0].accuracy.to_bits());
        let s2 = cache.stats();
        assert_eq!(s2.misses, 2);
        assert_eq!(s2.hits, 4);
        assert!(s2.hit_rate() > 0.6);
        assert!(s2.saved > std::time::Duration::ZERO);
    }

    #[test]
    fn cache_hit_is_bit_identical_to_fresh_eval() {
        let ev = evaluator();
        let cache = EvalCache::new();
        let batch_eval = BatchEvaluator::new(&ev).with_cache(&cache);
        let p = Pipeline::from_kinds(&[PreprocKind::PowerTransformer, PreprocKind::Normalizer]);
        let fresh = batch_eval.evaluate_batch(std::slice::from_ref(&p));
        let hit = batch_eval.evaluate_batch(std::slice::from_ref(&p));
        assert_eq!(fresh[0].accuracy.to_bits(), hit[0].accuracy.to_bits());
        assert_eq!(fresh[0].error.to_bits(), hit[0].error.to_bits());
        assert_eq!(fresh[0].prep_time, hit[0].prep_time);
        assert_eq!(fresh[0].train_time, hit[0].train_time);
        assert_eq!(fresh[0].train_fraction, hit[0].train_fraction);
        assert_eq!(fresh[0].pipeline.key(), hit[0].pipeline.key());
    }

    #[test]
    fn budgeted_fractions_are_cached_separately() {
        let ev = evaluator();
        let cache = EvalCache::new();
        let batch_eval = BatchEvaluator::new(&ev).with_cache(&cache);
        let p = Pipeline::from_kinds(&[PreprocKind::StandardScaler]);
        batch_eval.evaluate_batch_budgeted(std::slice::from_ref(&p), 0.25);
        batch_eval.evaluate_batch_budgeted(std::slice::from_ref(&p), 1.0);
        let s = cache.stats();
        assert_eq!(s.misses, 2, "different fractions are different keys");
        assert_eq!(s.entries, 2);
    }

    /// Delegates to a real evaluator except for one victim pipeline,
    /// whose evaluation panics.
    struct PanicsOnVictim<'a> {
        inner: &'a Evaluator,
        victim: String,
    }

    impl Evaluate for PanicsOnVictim<'_> {
        fn evaluate_raw(
            &self,
            pipeline: &Pipeline,
            fraction: f64,
            cancel: &CancelToken,
        ) -> Result<Trial, EvalError> {
            assert_ne!(pipeline.key(), self.victim, "victim pipeline panics");
            self.inner.evaluate_raw(pipeline, fraction, cancel)
        }
        fn config(&self) -> &EvalConfig {
            self.inner.config()
        }
        fn baseline_accuracy(&self) -> f64 {
            self.inner.baseline_accuracy()
        }
        fn train_rows(&self) -> usize {
            self.inner.train_rows()
        }
    }

    #[test]
    fn one_panicking_pipeline_costs_one_trial_not_the_batch() {
        let ev = evaluator();
        let batch = random_batch(16, 23);
        let victim_idx = 9;
        let wrapped =
            PanicsOnVictim { inner: &ev, victim: batch[victim_idx].key() };
        // Suppress expected assert-panic output from worker threads.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut runs = Vec::new();
        for threads in [1, 2, 8] {
            runs.push(
                BatchEvaluator::new(&wrapped).with_threads(threads).evaluate_batch(&batch),
            );
        }
        std::panic::set_hook(prev);
        let reference: Vec<Trial> = batch.iter().map(|p| ev.evaluate(p)).collect();
        for trials in &runs {
            assert_eq!(trials.len(), batch.len());
            for (i, t) in trials.iter().enumerate() {
                if i == victim_idx {
                    assert_eq!(t.failure, Some(FailureKind::Panic));
                    assert_eq!(t.error, 1.0);
                } else {
                    assert!(t.failure.is_none(), "trial {i} should succeed");
                    assert_eq!(t.accuracy.to_bits(), reference[i].accuracy.to_bits());
                }
            }
        }
        // Bit-identical across thread counts, failures included.
        for trials in &runs[1..] {
            for (a, b) in trials.iter().zip(&runs[0]) {
                assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
                assert_eq!(a.failure, b.failure);
            }
        }
    }

    #[test]
    fn fired_cancel_token_turns_batch_into_deadline_failures() {
        let ev = evaluator();
        let cancel = CancelToken::new();
        cancel.cancel();
        let batch = random_batch(6, 31);
        let trials = BatchEvaluator::new(&ev)
            .with_threads(2)
            .with_cancel(cancel)
            .evaluate_batch(&batch);
        assert_eq!(trials.len(), 6);
        for t in &trials {
            assert_eq!(t.failure, Some(FailureKind::Deadline));
            assert_eq!(t.error, 1.0);
        }
    }
}
