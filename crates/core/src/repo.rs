//! Durable trial repository: the persistence layer under the cache
//! hierarchy.
//!
//! TabRepo-style evaluation persistence (see PAPERS.md): every
//! finished [`Trial`] is appended to an on-disk segment as a
//! checksummed, length-prefixed record, so later runs can warm-start
//! their [`crate::EvalCache`], resume an interrupted bench matrix, or
//! replay a whole search with zero evaluations ("simulated search",
//! via [`ReplayEvaluator`]).
//!
//! # On-disk format
//!
//! A store segment is one append-only file:
//!
//! ```text
//! [8-byte magic "AFPREPO1"]
//! repeated records: [u32 LE payload len][payload][u64 LE FNV-1a of payload]
//! ```
//!
//! Every payload starts with a one-byte record tag (`0` context
//! header, `1` evaluator meta, `2` trial); integers are little-endian,
//! floats travel as IEEE-754 bit patterns (`f64::to_bits`), strings as
//! a `u32` byte length plus UTF-8 — the `evald` wire-format idiom,
//! locked by the golden-bytes tests below. The per-record checksum
//! makes crash recovery exact: an append is a single write of the
//! fully assembled record, so a crash can only tear the *tail*, and
//! [`TrialStore::open`] detects the torn record (short, or checksum
//! mismatch), truncates the file back to the last good record, and
//! reports the dropped byte count in [`OpenReport`] — a torn tail is
//! never silently replayed. A record whose checksum matches but whose
//! payload does not decode is *format drift*, not a torn write, and is
//! a hard [`RepoError::Corrupt`].
//!
//! # Identity
//!
//! Segments are named by the FNV-1a fingerprint of their evaluation
//! context string (`EvalContext::canonical` in `autofp-evald`), and
//! the first record in each segment pins the full context string:
//! opening a segment under a different context is refused. Trial
//! records carry the full [`CacheKey::canonical`] string plus its
//! fingerprint, and the fingerprint is re-verified against the string
//! on load, so a store can never hand back a trial under the wrong key.
//! Invalidation is *by identity*: if the canonical key grammar ever
//! changes, every fingerprint moves, old records simply stop matching
//! new lookups, and the golden-fingerprint tests in `cache.rs` force
//! the migration to be explicit.
//!
//! # The never-persist rule
//!
//! [`FailureKind::Deadline`] and [`FailureKind::Transport`] trials are
//! circumstantial — a property of the run, not the pipeline — and are
//! never persisted, the same rule as [`crate::EvalCache::insert`],
//! enforced here independently so a mis-wired caller cannot poison the
//! durable layer.

use crate::cache::{fnv1a, CacheKey};
use crate::error::{EvalError, FailureKind};
use crate::evaluator::{EvalConfig, Evaluate};
use crate::history::Trial;
use autofp_models::CancelToken;
use autofp_preprocess::{Norm, OutputDist, Pipeline, Preproc, PreprocKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// The 8-byte segment-file magic (format version rides in the name).
pub const MAGIC: [u8; 8] = *b"AFPREPO1";

/// Hard cap on one record's payload size: a corrupt length prefix must
/// not make open() allocate unbounded memory, and any larger length is
/// treated as a torn tail.
pub const MAX_RECORD: u32 = 16 * 1024 * 1024;

/// Hard cap on pipeline length in a decoded record (mirrors the wire
/// protocol's cap; the search space never comes close).
const MAX_STEPS: u32 = 64;

const REC_CONTEXT: u8 = 0;
const REC_META: u8 = 1;
const REC_TRIAL: u8 = 2;

/// Why a store operation failed.
#[derive(Debug)]
pub enum RepoError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file is not a trial store, belongs to a different context,
    /// or holds a checksum-valid record that no longer decodes
    /// (format drift — torn tails are truncated, not reported here).
    Corrupt {
        /// What failed to validate.
        detail: String,
    },
}

impl std::fmt::Display for RepoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepoError::Io(e) => write!(f, "trial store I/O error: {e}"),
            RepoError::Corrupt { detail } => write!(f, "corrupt trial store: {detail}"),
        }
    }
}

impl std::error::Error for RepoError {}

impl From<std::io::Error> for RepoError {
    fn from(e: std::io::Error) -> RepoError {
        RepoError::Io(e)
    }
}

fn corrupt(detail: impl Into<String>) -> RepoError {
    RepoError::Corrupt { detail: detail.into() }
}

// ------------------------------------------------------------- codecs
//
// The store cannot reuse `autofp-evald`'s wire codecs (evald depends
// on core, not the reverse), so the idiom is replicated here and both
// are locked by their own golden-bytes tests.

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(tag: u8) -> Enc {
        Enc { buf: vec![tag] }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], RepoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| corrupt(format!("truncated record reading {what}")))?;
        // lint:allow(panic-reach): checked_add + `end <= buf.len()` above make the range provably in bounds
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self, what: &str) -> Result<u8, RepoError> {
        Ok(self.take(1, what)?[0])
    }
    fn u32(&mut self, what: &str) -> Result<u32, RepoError> {
        let b = self.take(4, what)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }
    fn u64(&mut self, what: &str) -> Result<u64, RepoError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    fn f64(&mut self, what: &str) -> Result<f64, RepoError> {
        Ok(f64::from_bits(self.u64(what)?))
    }
    fn string(&mut self, what: &str) -> Result<String, RepoError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt(format!("invalid UTF-8 in {what}")))
    }
    fn finish(self, what: &str) -> Result<(), RepoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(corrupt(format!("{} trailing bytes after {what}", self.buf.len() - self.pos)))
        }
    }
}

fn enc_pipeline(e: &mut Enc, pipeline: &Pipeline) {
    e.u32(pipeline.len() as u32);
    for step in pipeline.steps() {
        e.u8(step.kind().index() as u8);
        match step {
            Preproc::Binarizer { threshold } => e.f64(*threshold),
            Preproc::MaxAbsScaler | Preproc::MinMaxScaler => {}
            Preproc::Normalizer { norm } => e.u8(match norm {
                Norm::L1 => 0,
                Norm::L2 => 1,
                Norm::Max => 2,
            }),
            Preproc::PowerTransformer { standardize } => e.u8(u8::from(*standardize)),
            Preproc::QuantileTransformer { n_quantiles, output } => {
                e.u64(*n_quantiles as u64);
                e.u8(match output {
                    OutputDist::Uniform => 0,
                    OutputDist::Normal => 1,
                });
            }
            Preproc::StandardScaler { with_mean } => e.u8(u8::from(*with_mean)),
        }
    }
}

fn dec_pipeline(d: &mut Dec) -> Result<Pipeline, RepoError> {
    let n = d.u32("pipeline length")?;
    if n > MAX_STEPS {
        return Err(corrupt(format!("pipeline of {n} steps exceeds MAX_STEPS")));
    }
    let mut steps = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let code = d.u8("step kind")? as usize;
        if code >= PreprocKind::ALL.len() {
            return Err(corrupt(format!("bad preprocessor code {code}")));
        }
        let kind = PreprocKind::from_index(code);
        let step = match kind {
            PreprocKind::Binarizer => {
                Preproc::Binarizer { threshold: d.f64("Binarizer threshold")? }
            }
            PreprocKind::MaxAbsScaler => Preproc::MaxAbsScaler,
            PreprocKind::MinMaxScaler => Preproc::MinMaxScaler,
            PreprocKind::Normalizer => Preproc::Normalizer {
                norm: match d.u8("Normalizer norm")? {
                    0 => Norm::L1,
                    1 => Norm::L2,
                    2 => Norm::Max,
                    v => return Err(corrupt(format!("bad norm code {v}"))),
                },
            },
            PreprocKind::PowerTransformer => Preproc::PowerTransformer {
                standardize: dec_bool(d, "PowerTransformer standardize")?,
            },
            PreprocKind::QuantileTransformer => Preproc::QuantileTransformer {
                n_quantiles: d.u64("QuantileTransformer n_quantiles")? as usize,
                output: match d.u8("QuantileTransformer output")? {
                    0 => OutputDist::Uniform,
                    1 => OutputDist::Normal,
                    v => return Err(corrupt(format!("bad output-dist code {v}"))),
                },
            },
            PreprocKind::StandardScaler => {
                Preproc::StandardScaler { with_mean: dec_bool(d, "StandardScaler with_mean")? }
            }
        };
        steps.push(step);
    }
    Ok(Pipeline::new(steps))
}

fn dec_bool(d: &mut Dec, what: &str) -> Result<bool, RepoError> {
    match d.u8(what)? {
        0 => Ok(false),
        1 => Ok(true),
        v => Err(corrupt(format!("bad bool {v} in {what}"))),
    }
}

fn failure_code(kind: FailureKind) -> u8 {
    FailureKind::ALL.iter().position(|&k| k == kind).map_or(0, |i| i as u8)
}

fn dec_failure(code: u8) -> Result<FailureKind, RepoError> {
    FailureKind::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| corrupt(format!("bad failure code {code}")))
}

fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn enc_trial(e: &mut Enc, t: &Trial) {
    enc_pipeline(e, &t.pipeline);
    e.f64(t.accuracy);
    e.f64(t.error);
    e.u64(duration_nanos(t.prep_time));
    e.u64(duration_nanos(t.train_time));
    e.f64(t.train_fraction);
    match t.failure {
        Some(kind) => {
            e.u8(1);
            e.u8(failure_code(kind));
        }
        None => e.u8(0),
    }
}

fn dec_trial(d: &mut Dec) -> Result<Trial, RepoError> {
    let pipeline = dec_pipeline(d)?;
    let accuracy = d.f64("trial accuracy")?;
    let error = d.f64("trial error")?;
    let prep_time = Duration::from_nanos(d.u64("trial prep_time")?);
    let train_time = Duration::from_nanos(d.u64("trial train_time")?);
    let train_fraction = d.f64("trial train_fraction")?;
    let failure = match d.u8("trial failure flag")? {
        0 => None,
        1 => Some(dec_failure(d.u8("trial failure kind")?)?),
        v => return Err(corrupt(format!("bad failure flag {v}"))),
    };
    Ok(Trial { pipeline, accuracy, error, prep_time, train_time, train_fraction, failure })
}

// ------------------------------------------------------------- records

/// Evaluator identity stored once per segment so a replay can stand in
/// for the live evaluator without touching the dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreMeta {
    /// Validation accuracy of the empty pipeline (the no-FP baseline).
    pub baseline_accuracy: f64,
    /// Training rows the context's evaluator fits on.
    pub train_rows: u64,
}

enum Record {
    Context(String),
    Meta(StoreMeta),
    Trial(CacheKey, Trial),
}

fn encode_record(rec: &Record) -> Vec<u8> {
    match rec {
        Record::Context(canonical) => {
            let mut e = Enc::new(REC_CONTEXT);
            e.string(canonical);
            e.buf
        }
        Record::Meta(meta) => {
            let mut e = Enc::new(REC_META);
            e.f64(meta.baseline_accuracy);
            e.u64(meta.train_rows);
            e.buf
        }
        Record::Trial(key, trial) => {
            let mut e = Enc::new(REC_TRIAL);
            e.string(key.canonical());
            e.u64(key.fingerprint());
            enc_trial(&mut e, trial);
            e.buf
        }
    }
}

fn decode_record(payload: &[u8]) -> Result<Record, RepoError> {
    let mut d = Dec::new(payload);
    let rec = match d.u8("record tag")? {
        REC_CONTEXT => Record::Context(d.string("context canonical")?),
        REC_META => Record::Meta(StoreMeta {
            baseline_accuracy: d.f64("meta baseline")?,
            train_rows: d.u64("meta train_rows")?,
        }),
        REC_TRIAL => {
            let canonical = d.string("trial key")?;
            let fingerprint = d.u64("trial fingerprint")?;
            if fingerprint != fnv1a(canonical.as_bytes()) {
                return Err(corrupt(format!("fingerprint mismatch for key `{canonical}`")));
            }
            let trial = dec_trial(&mut d)?;
            Record::Trial(CacheKey::from_parts(canonical, fingerprint), trial)
        }
        tag => return Err(corrupt(format!("bad record tag {tag}"))),
    };
    d.finish("record")?;
    Ok(rec)
}

/// Frame a record payload: `[u32 LE len][payload][u64 LE checksum]`.
fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out
}

// ---------------------------------------------------------------- scan

/// What [`TrialStore::open`] found in an existing segment file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenReport {
    /// Records decoded (context header and meta included).
    pub records: u64,
    /// Trial records loaded.
    pub trials: u64,
    /// Bytes dropped from a torn tail (`0` for a clean file). When
    /// non-zero the file was truncated back to its last good record.
    pub truncated_bytes: u64,
}

struct Scan {
    records: Vec<Record>,
    /// Byte offset of the first torn record (file is valid up to here).
    valid_len: u64,
    truncated_bytes: u64,
}

/// Scan a whole segment image. Torn tails (short record, checksum
/// mismatch, oversized length) stop the scan and are reported for
/// truncation; checksum-valid payloads that fail to decode are hard
/// corruption errors. Total: never panics on arbitrary bytes.
fn scan(bytes: &[u8]) -> Result<Scan, RepoError> {
    if bytes.len() < MAGIC.len() {
        // A crash while writing the initial magic+context tears even
        // the magic; re-initializing loses nothing.
        return Ok(Scan { records: Vec::new(), valid_len: 0, truncated_bytes: bytes.len() as u64 });
    }
    // lint:allow(panic-reach): the length check above bounds the range
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(corrupt("bad magic (not a trial store segment)"));
    }
    let mut records = Vec::new();
    let mut pos = MAGIC.len();
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok(Scan { records, valid_len: pos as u64, truncated_bytes: 0 });
        }
        if remaining < 4 {
            return Ok(torn_scan(records, pos, bytes.len()));
        }
        let mut len_buf = [0u8; 4];
        // lint:allow(panic-reach): `remaining >= 4` above bounds the range
        len_buf.copy_from_slice(&bytes[pos..pos + 4]);
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_RECORD || (len as usize) > remaining.saturating_sub(4 + 8) {
            return Ok(torn_scan(records, pos, bytes.len()));
        }
        let payload_start = pos + 4;
        let payload_end = payload_start + len as usize;
        // lint:allow(panic-reach): len was bounds-checked against `remaining` above
        let payload = &bytes[payload_start..payload_end];
        let mut sum_buf = [0u8; 8];
        // lint:allow(panic-reach): len + 8 checksum bytes fit in `remaining` by the check above
        sum_buf.copy_from_slice(&bytes[payload_end..payload_end + 8]);
        if u64::from_le_bytes(sum_buf) != fnv1a(payload) {
            return Ok(torn_scan(records, pos, bytes.len()));
        }
        // Checksum-valid payload: decode failures are format drift and
        // must not pass silently.
        records.push(decode_record(payload)?);
        pos = payload_end + 8;
    }
}

/// A scan that stopped at a torn record starting at `pos`.
fn torn_scan(records: Vec<Record>, pos: usize, total: usize) -> Scan {
    Scan { records, valid_len: pos as u64, truncated_bytes: (total - pos) as u64 }
}

// --------------------------------------------------------------- store

/// Cumulative counters of one [`TrialStore`] (or, after
/// [`StoreStats::absorb`], of every segment a run touched).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Trial records appended this process.
    pub appended: u64,
    /// Appends skipped because the key was already persisted.
    pub deduped: u64,
    /// Appends refused by the never-persist rule (deadline/transport).
    pub skipped: u64,
    /// Appends dropped because the filesystem write failed.
    pub io_errors: u64,
    /// Trials warmed into an [`crate::EvalCache`] from this store.
    pub preloaded: u64,
    /// Live trial records (loaded from disk plus appended).
    pub trials: u64,
    /// Torn-tail bytes dropped when the segment was opened.
    pub truncated_bytes: u64,
}

impl StoreStats {
    /// Fold another snapshot into this one (all counters summed).
    /// Sum each distinct segment exactly once.
    pub fn absorb(&mut self, other: &StoreStats) {
        self.appended += other.appended;
        self.deduped += other.deduped;
        self.skipped += other.skipped;
        self.io_errors += other.io_errors;
        self.preloaded += other.preloaded;
        self.trials += other.trials;
        self.truncated_bytes += other.truncated_bytes;
    }
}

struct StoreInner {
    file: File,
    /// Canonical keys already persisted (dedup guard).
    keys: BTreeSet<String>,
    /// Every live trial, in file order (loaded then appended).
    trials: Vec<(CacheKey, Trial)>,
    meta: Option<StoreMeta>,
}

/// One append-only segment of the trial repository, bound to a single
/// evaluation context.
///
/// All methods take `&self` (interior mutex + atomic counters), so one
/// store can back a [`crate::SharedEvalCache`] serving many workers.
/// Appends are deduplicated by canonical key and obey the
/// never-persist rule for deadline/transport failures; I/O failures
/// drop the record and count in [`StoreStats::io_errors`] rather than
/// failing the evaluation that produced it.
#[derive(Debug)]
pub struct TrialStore {
    path: PathBuf,
    context: String,
    report: OpenReport,
    inner: Mutex<StoreInner>,
    appended: AtomicU64,
    deduped: AtomicU64,
    skipped: AtomicU64,
    io_errors: AtomicU64,
    preloaded: AtomicU64,
}

impl std::fmt::Debug for StoreInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreInner")
            .field("keys", &self.keys.len())
            .field("trials", &self.trials.len())
            .field("meta", &self.meta)
            .finish()
    }
}

impl TrialStore {
    /// Open (or create) the segment at `path` for `context`.
    ///
    /// A torn tail — the signature a crash mid-append leaves — is
    /// truncated back to the last good record and reported with a
    /// warning on stderr; it is *not* an error. A segment recorded
    /// under a different context, or a checksum-valid record that no
    /// longer decodes, is [`RepoError::Corrupt`].
    pub fn open(path: impl Into<PathBuf>, context: &str) -> Result<TrialStore, RepoError> {
        let path = path.into();
        let mut file = OpenOptions::new().read(true).append(true).create(true).open(&path)?;
        let mut bytes = Vec::new();
        let _ = file.read_to_end(&mut bytes)?;
        let scan = scan(&bytes)?;
        if scan.truncated_bytes > 0 {
            file.set_len(scan.valid_len)?;
            eprintln!(
                "trial store {}: dropped {} torn tail byte(s) past offset {}",
                path.display(),
                scan.truncated_bytes,
                scan.valid_len,
            );
        }
        let mut keys = BTreeSet::new();
        let mut trials = Vec::new();
        let mut meta = None;
        let mut stored_context = None;
        let records_on_disk = scan.records.len() as u64;
        for rec in scan.records {
            match rec {
                Record::Context(c) => stored_context = Some(c),
                Record::Meta(m) => meta = Some(m),
                Record::Trial(key, trial) => {
                    if keys.insert(key.canonical().to_string()) {
                        trials.push((key, trial));
                    }
                }
            }
        }
        match &stored_context {
            Some(c) if c != context => {
                return Err(corrupt(format!(
                    "segment context `{c}` does not match requested `{context}`"
                )));
            }
            Some(_) => {}
            None => {
                // Fresh (or fully torn) segment: pin magic + context in
                // one write so a crash tears both or neither.
                let mut init = Vec::new();
                if scan.valid_len == 0 {
                    init.extend_from_slice(&MAGIC);
                }
                init.extend_from_slice(&frame_record(&encode_record(&Record::Context(
                    context.to_string(),
                ))));
                file.write_all(&init)?;
                file.flush()?;
            }
        }
        let report = OpenReport {
            records: records_on_disk,
            trials: trials.len() as u64,
            truncated_bytes: scan.truncated_bytes,
        };
        Ok(TrialStore {
            path,
            context: context.to_string(),
            report,
            inner: Mutex::new(StoreInner { file, keys, trials, meta }),
            appended: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            preloaded: AtomicU64::new(0),
        })
    }

    /// See [`EvalCache::lock`]: recovering a poisoned guard is sound
    /// because every mutation holds the lock for its full update.
    ///
    /// [`EvalCache::lock`]: crate::EvalCache
    fn lock(&self) -> MutexGuard<'_, StoreInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The segment file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The evaluation-context string this segment is bound to.
    pub fn context(&self) -> &str {
        &self.context
    }

    /// What [`TrialStore::open`] found on disk.
    pub fn open_report(&self) -> OpenReport {
        self.report
    }

    /// The stored evaluator meta, if one was recorded.
    pub fn meta(&self) -> Option<StoreMeta> {
        self.lock().meta
    }

    /// Record the evaluator meta once per segment. Idempotent for a
    /// bit-identical value; a conflicting value is corruption (two
    /// different evaluators writing into one segment).
    pub fn set_meta(&self, meta: StoreMeta) -> Result<(), RepoError> {
        let mut inner = self.lock();
        match inner.meta {
            Some(have)
                if have.baseline_accuracy.to_bits() == meta.baseline_accuracy.to_bits()
                    && have.train_rows == meta.train_rows =>
            {
                Ok(())
            }
            Some(have) => Err(corrupt(format!(
                "meta conflict: stored {have:?}, asked to record {meta:?}"
            ))),
            None => {
                let bytes = frame_record(&encode_record(&Record::Meta(meta)));
                inner.file.write_all(&bytes)?;
                inner.file.flush()?;
                inner.meta = Some(meta);
                Ok(())
            }
        }
    }

    /// Persist one finished trial.
    ///
    /// Deadline/transport failures are refused (never-persist rule),
    /// already-persisted keys are deduplicated, and an I/O failure
    /// drops the record (counted in [`StoreStats::io_errors`]) instead
    /// of propagating — persistence is best-effort from the evaluation
    /// path's point of view; durability is observable in the stats.
    pub fn append(&self, key: &CacheKey, trial: &Trial) {
        if matches!(trial.failure, Some(FailureKind::Deadline) | Some(FailureKind::Transport)) {
            self.skipped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut inner = self.lock();
        if inner.keys.contains(key.canonical()) {
            drop(inner);
            self.deduped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let bytes = frame_record(&encode_record(&Record::Trial(key.clone(), trial.clone())));
        match inner.file.write_all(&bytes).and_then(|()| inner.file.flush()) {
            Ok(()) => {
                inner.keys.insert(key.canonical().to_string());
                inner.trials.push((key.clone(), trial.clone()));
                drop(inner);
                self.appended.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                drop(inner);
                self.io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// True when `key` is already persisted.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.lock().keys.contains(key.canonical())
    }

    /// Number of live trial records.
    pub fn len(&self) -> usize {
        self.lock().trials.len()
    }

    /// True when no trial is stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every live trial, in file order (loaded, then appended).
    pub fn snapshot(&self) -> Vec<(CacheKey, Trial)> {
        self.lock().trials.clone()
    }

    /// Count trials warmed into a cache from this store (called by
    /// [`crate::EvalCache::preload_from`]).
    pub(crate) fn note_preloaded(&self, n: u64) {
        self.preloaded.fetch_add(n, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            appended: self.appended.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            preloaded: self.preloaded.load(Ordering::Relaxed),
            trials: self.len() as u64,
            truncated_bytes: self.report.truncated_bytes,
        }
    }
}

/// A clonable, `Arc`-backed handle to one [`TrialStore`] (the
/// ownership story mirrors [`crate::SharedEvalCache`]).
#[derive(Debug, Clone)]
pub struct SharedTrialStore {
    inner: Arc<TrialStore>,
}

impl SharedTrialStore {
    /// Wrap a store in a shared handle.
    pub fn new(store: TrialStore) -> SharedTrialStore {
        SharedTrialStore { inner: Arc::new(store) }
    }

    /// True when two handles share one underlying store.
    pub fn same_store(a: &SharedTrialStore, b: &SharedTrialStore) -> bool {
        Arc::ptr_eq(&a.inner, &b.inner)
    }
}

impl std::ops::Deref for SharedTrialStore {
    type Target = TrialStore;

    fn deref(&self) -> &TrialStore {
        &self.inner
    }
}

// ---------------------------------------------------------------- repo

/// A directory of [`TrialStore`] segments, one per evaluation context,
/// with segment handles interned so two opens of the same context
/// share one file handle and one dedup set.
#[derive(Debug)]
pub struct TrialRepo {
    dir: PathBuf,
    segments: Mutex<BTreeMap<String, SharedTrialStore>>,
}

impl TrialRepo {
    /// Open (or create) the repository directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<TrialRepo, RepoError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(TrialRepo { dir, segments: Mutex::new(BTreeMap::new()) })
    }

    /// The repository directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The segment file a context maps to (`ctx-<fingerprint hex>.log`
    /// under the repository directory).
    pub fn segment_path(&self, context: &str) -> PathBuf {
        self.dir.join(format!("ctx-{:016x}.log", fnv1a(context.as_bytes())))
    }

    /// Open (or create) the segment for `context`, interning the
    /// handle: a second open of the same context returns the same
    /// underlying store.
    pub fn open_context(&self, context: &str) -> Result<SharedTrialStore, RepoError> {
        let mut segments = self.segments.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(store) = segments.get(context) {
            return Ok(store.clone());
        }
        let store =
            SharedTrialStore::new(TrialStore::open(self.segment_path(context), context)?);
        segments.insert(context.to_string(), store.clone());
        Ok(store)
    }

    /// Contexts with an interned (opened this process) segment.
    pub fn open_contexts(&self) -> Vec<String> {
        let segments = self.segments.lock().unwrap_or_else(PoisonError::into_inner);
        segments.keys().cloned().collect()
    }

    /// Fold the stats of every interned segment.
    pub fn stats(&self) -> StoreStats {
        let segments = self.segments.lock().unwrap_or_else(PoisonError::into_inner);
        let mut total = StoreStats::default();
        for store in segments.values() {
            total.absorb(&store.stats());
        }
        total
    }

    /// Dead-segment sweep: remove every `ctx-*.log` segment whose
    /// pinned context string is **not** in `keep` (abandoned configs
    /// accumulate dead segments over the life of a repository).
    ///
    /// Conservative by construction: files that do not look like
    /// segment files are ignored entirely; segments that cannot be
    /// read or whose context cannot be decoded are reported in
    /// [`GcReport::skipped`] and never deleted; segments interned by
    /// this process (live file handles) are treated as kept regardless
    /// of the keep-list. With `dry_run` nothing is deleted and the
    /// report describes what a real sweep would remove.
    pub fn gc(&self, keep: &[String], dry_run: bool) -> Result<GcReport, RepoError> {
        let live: Vec<String> = self.open_contexts();
        let mut names: Vec<std::ffi::OsString> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            names.push(entry?.file_name());
        }
        names.sort();
        let mut report = GcReport { dry_run, ..GcReport::default() };
        for name in names {
            let Some(text) = name.to_str() else { continue };
            if !text.starts_with("ctx-") || !text.ends_with(".log") {
                continue;
            }
            let path = self.dir.join(&name);
            let context = match segment_context(&path) {
                Some(c) => c,
                None => {
                    report.skipped.push(path);
                    continue;
                }
            };
            if keep.contains(&context) || live.contains(&context) {
                report.kept.push(context);
                continue;
            }
            let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            if !dry_run {
                std::fs::remove_file(&path)?;
            }
            report.reclaimed_bytes += bytes;
            report.removed.push(GcSegment { context, path, bytes });
        }
        Ok(report)
    }
}

/// Read the pinned context string of a segment file, if any. `None`
/// for unreadable files, non-segment bytes, or a segment torn before
/// its context record.
fn segment_context(path: &Path) -> Option<String> {
    let bytes = std::fs::read(path).ok()?;
    let parsed = scan(&bytes).ok()?;
    parsed.records.into_iter().find_map(|r| match r {
        Record::Context(c) => Some(c),
        _ => None,
    })
}

/// One dead segment found (and, outside dry runs, removed) by
/// [`TrialRepo::gc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcSegment {
    /// The abandoned context the segment was pinned to.
    pub context: String,
    /// The segment file path.
    pub path: PathBuf,
    /// File size at sweep time.
    pub bytes: u64,
}

/// Outcome of a [`TrialRepo::gc`] sweep.
#[derive(Debug, Clone, Default)]
pub struct GcReport {
    /// Contexts whose segments survive (keep-list members plus any
    /// segment interned by this process).
    pub kept: Vec<String>,
    /// Dead segments removed — or, under `dry_run`, that would be.
    pub removed: Vec<GcSegment>,
    /// Segment-like files whose context could not be read; never
    /// deleted.
    pub skipped: Vec<PathBuf>,
    /// Total size of the removed segments.
    pub reclaimed_bytes: u64,
    /// True when this was a report-only sweep.
    pub dry_run: bool,
}

// -------------------------------------------------------------- replay

/// An [`Evaluate`] that answers entirely from a [`TrialStore`]
/// snapshot — TabRepo's "simulated search" with zero evaluations.
///
/// A looked-up pipeline that the store holds returns its persisted
/// trial bit-identically; a miss is an [`EvalError::Transport`] (the
/// trial is genuinely unreachable without an evaluator, and transport
/// errors are the one retryable, never-cached kind). Requires the
/// segment to carry a [`StoreMeta`] record so baseline and row count
/// can stand in for the live evaluator's.
pub struct ReplayEvaluator {
    trials: BTreeMap<String, Trial>,
    config: EvalConfig,
    meta: StoreMeta,
    replayed: AtomicU64,
    missing: AtomicU64,
}

impl ReplayEvaluator {
    /// Build a replay evaluator over `store`'s current snapshot.
    ///
    /// `config` must be the [`EvalConfig`] the trials were evaluated
    /// under (it is part of every [`CacheKey`]); a mismatched config
    /// simply misses on every lookup.
    pub fn from_store(store: &TrialStore, config: EvalConfig) -> Result<ReplayEvaluator, RepoError> {
        let meta = store
            .meta()
            .ok_or_else(|| corrupt(format!("segment {} has no meta record", store.path().display())))?;
        let mut trials = BTreeMap::new();
        for (key, trial) in store.snapshot() {
            trials.insert(key.canonical().to_string(), trial);
        }
        Ok(ReplayEvaluator {
            trials,
            config,
            meta,
            replayed: AtomicU64::new(0),
            missing: AtomicU64::new(0),
        })
    }

    /// Trials served from the store.
    pub fn replayed(&self) -> u64 {
        self.replayed.load(Ordering::Relaxed)
    }

    /// Lookups the store could not answer.
    pub fn missing(&self) -> u64 {
        self.missing.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for ReplayEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayEvaluator")
            .field("trials", &self.trials.len())
            .field("meta", &self.meta)
            .finish()
    }
}

impl Evaluate for ReplayEvaluator {
    fn evaluate_raw(
        &self,
        pipeline: &Pipeline,
        fraction: f64,
        _cancel: &CancelToken,
    ) -> Result<Trial, EvalError> {
        let key = CacheKey::new(pipeline, fraction, &self.config);
        match self.trials.get(key.canonical()) {
            Some(trial) => {
                self.replayed.fetch_add(1, Ordering::Relaxed);
                Ok(trial.clone())
            }
            None => {
                self.missing.fetch_add(1, Ordering::Relaxed);
                Err(EvalError::Transport {
                    detail: format!("trial store holds no record for `{}`", key.canonical()),
                })
            }
        }
    }

    fn config(&self) -> &EvalConfig {
        &self.config
    }

    fn baseline_accuracy(&self) -> f64 {
        self.meta.baseline_accuracy
    }

    fn train_rows(&self) -> usize {
        self.meta.train_rows as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::EvalCache;
    use crate::evaluator::evaluate_or_worst;

    /// Unique per-test scratch directory without touching any clock
    /// (wall-clock is banned in this module's lint span).
    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("autofp-repo-{}-{tag}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn every_step_pipeline() -> Pipeline {
        Pipeline::new(vec![
            Preproc::Binarizer { threshold: 0.25 },
            Preproc::MaxAbsScaler,
            Preproc::MinMaxScaler,
            Preproc::Normalizer { norm: Norm::Max },
            Preproc::PowerTransformer { standardize: false },
            Preproc::QuantileTransformer { n_quantiles: 77, output: OutputDist::Normal },
            Preproc::StandardScaler { with_mean: false },
        ])
    }

    fn trial_for(p: &Pipeline, acc: f64, failure: Option<FailureKind>) -> Trial {
        Trial {
            pipeline: p.clone(),
            accuracy: acc,
            error: 1.0 - acc,
            prep_time: Duration::from_nanos(123_456_789),
            train_time: Duration::from_nanos(987_654_321),
            train_fraction: 1.0,
            failure,
        }
    }

    fn key_for(p: &Pipeline, fraction: f64) -> CacheKey {
        CacheKey::new(p, fraction, &EvalConfig::default())
    }

    /// A store populated with one trial per preprocessor kind plus a
    /// persisted deterministic failure, for recovery tests.
    fn populated(dir: &Path) -> (PathBuf, usize) {
        let path = dir.join("seg.log");
        let store = TrialStore::open(&path, "ctx-test").expect("open");
        store
            .set_meta(StoreMeta { baseline_accuracy: 0.5, train_rows: 193 })
            .expect("meta");
        let mut n = 0;
        for kind in PreprocKind::ALL {
            let p = Pipeline::from_kinds(&[kind]);
            store.append(&key_for(&p, 1.0), &trial_for(&p, 0.7, None));
            n += 1;
        }
        let p = every_step_pipeline();
        store.append(&key_for(&p, 0.5), &trial_for(&p, 0.0, Some(FailureKind::Panic)));
        n += 1;
        assert_eq!(store.len(), n);
        (path, n)
    }

    fn push_record(out: &mut Vec<u8>, payload: &[u8]) {
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(payload);
        out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    }

    /// Golden bytes: the store format is a compatibility surface — a
    /// silent change would strand every persisted repository. Every
    /// tag and field layout is transcribed by hand here.
    #[test]
    fn golden_segment_bytes_are_locked() {
        let dir = temp_dir("golden");
        let path = dir.join("seg.log");
        let store = TrialStore::open(&path, "ctx-golden").expect("open");
        store
            .set_meta(StoreMeta { baseline_accuracy: 0.5, train_rows: 193 })
            .expect("meta");
        let p = Pipeline::from_kinds(&[PreprocKind::StandardScaler]);
        let key = key_for(&p, 1.0);
        let trial = Trial {
            pipeline: p.clone(),
            accuracy: 0.8125,
            error: 0.1875,
            prep_time: Duration::from_nanos(123),
            train_time: Duration::from_nanos(456),
            train_fraction: 1.0,
            failure: None,
        };
        store.append(&key, &trial);
        drop(store);

        let mut expect = Vec::new();
        expect.extend_from_slice(b"AFPREPO1");
        // Context record: tag 0, string.
        let mut ctx = vec![0u8];
        ctx.extend_from_slice(&10u32.to_le_bytes());
        ctx.extend_from_slice(b"ctx-golden");
        push_record(&mut expect, &ctx);
        // Meta record: tag 1, baseline bits, train rows.
        let mut meta = vec![1u8];
        meta.extend_from_slice(&0.5f64.to_bits().to_le_bytes());
        meta.extend_from_slice(&193u64.to_le_bytes());
        push_record(&mut expect, &meta);
        // Trial record: tag 2, key string, fingerprint, pipeline
        // (1 step: StandardScaler = kind 6, with_mean = true), floats
        // as bits, nanos as u64, no-failure flag 0.
        let mut tr = vec![2u8];
        tr.extend_from_slice(&(key.canonical().len() as u32).to_le_bytes());
        tr.extend_from_slice(key.canonical().as_bytes());
        tr.extend_from_slice(&key.fingerprint().to_le_bytes());
        tr.extend_from_slice(&1u32.to_le_bytes());
        tr.push(6);
        tr.push(1);
        tr.extend_from_slice(&0.8125f64.to_bits().to_le_bytes());
        tr.extend_from_slice(&0.1875f64.to_bits().to_le_bytes());
        tr.extend_from_slice(&123u64.to_le_bytes());
        tr.extend_from_slice(&456u64.to_le_bytes());
        tr.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        tr.push(0);
        push_record(&mut expect, &tr);

        let bytes = std::fs::read(&path).expect("read");
        assert_eq!(bytes, expect, "segment bytes drifted from the locked layout");
    }

    #[test]
    fn every_trial_round_trips_bit_exactly_through_reopen() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("seg.log");
        let store = TrialStore::open(&path, "ctx-test").expect("open");
        let mut written = Vec::new();
        // Every step kind, a fractional-budget key, and every
        // persistable failure kind.
        let p = every_step_pipeline();
        for (i, fraction) in [(0, 1.0), (1, 0.25)] {
            let key = key_for(&p, fraction);
            let t = trial_for(&p, 0.5 + 0.1 * i as f64, None);
            store.append(&key, &t);
            written.push((key, t));
        }
        for kind in [
            FailureKind::NonFinite,
            FailureKind::Degenerate,
            FailureKind::Diverged,
            FailureKind::Panic,
        ] {
            let p = Pipeline::from_kinds(&[PreprocKind::Binarizer]);
            let key = CacheKey::new(
                &p,
                1.0,
                &EvalConfig { seed: failure_code(kind) as u64, ..EvalConfig::default() },
            );
            let t = trial_for(&p, 0.0, Some(kind));
            store.append(&key, &t);
            written.push((key, t));
        }
        drop(store);
        let store = TrialStore::open(&path, "ctx-test").expect("reopen");
        assert_eq!(store.open_report().truncated_bytes, 0);
        assert_eq!(store.snapshot(), written, "reload must be bit-identical in file order");
    }

    #[test]
    fn torn_tail_is_truncated_reported_and_appendable() {
        let dir = temp_dir("torn");
        let (path, n) = populated(&dir);
        let clean = std::fs::read(&path).expect("read");
        // Tear mid-way through the last record.
        std::fs::write(&path, &clean[..clean.len() - 5]).expect("tear");
        let store = TrialStore::open(&path, "ctx-test").expect("open torn");
        let report = store.open_report();
        assert_eq!(store.len(), n - 1, "the torn record must be dropped");
        assert!(report.truncated_bytes > 0, "truncation must be reported");
        assert_eq!(report.trials, (n - 1) as u64);
        // The torn trial is gone from the dedup set, so re-appending it
        // persists it again.
        let p = every_step_pipeline();
        store.append(&key_for(&p, 0.5), &trial_for(&p, 0.0, Some(FailureKind::Panic)));
        assert_eq!(store.stats().appended, 1);
        drop(store);
        let store = TrialStore::open(&path, "ctx-test").expect("reopen");
        assert_eq!(store.open_report().truncated_bytes, 0, "truncation is idempotent");
        assert_eq!(store.len(), n);
    }

    #[test]
    fn every_prefix_of_a_segment_opens_without_panic() {
        let dir = temp_dir("prefix");
        let (path, _) = populated(&dir);
        let clean = std::fs::read(&path).expect("read");
        let cut_path = dir.join("cut.log");
        for cut in 0..clean.len() {
            std::fs::write(&cut_path, &clean[..cut]).expect("write cut");
            let store = TrialStore::open(&cut_path, "ctx-test")
                .unwrap_or_else(|e| panic!("prefix at {cut} failed to open: {e}"));
            let report = store.open_report();
            // A cut at a record boundary (or an entirely empty file)
            // drops nothing; anything else is a reported torn tail.
            let clean_open = cut == 0 || record_boundary(&clean, cut);
            assert_eq!(report.truncated_bytes == 0, clean_open, "truncation flag wrong at cut {cut}");
            drop(store);
            // Recovery is stable: a second open of the truncated file
            // must be clean.
            let store = TrialStore::open(&cut_path, "ctx-test").expect("reopen");
            assert_eq!(store.open_report().truncated_bytes, 0, "cut {cut} not idempotent");
            std::fs::remove_file(&cut_path).expect("rm");
        }
    }

    /// True when `cut` lands exactly between records (or at the end of
    /// the magic) in a clean segment image.
    fn record_boundary(bytes: &[u8], cut: usize) -> bool {
        let mut pos = MAGIC.len();
        loop {
            if pos == cut {
                return true;
            }
            if pos + 4 > bytes.len() || pos > cut {
                return false;
            }
            let mut len_buf = [0u8; 4];
            len_buf.copy_from_slice(&bytes[pos..pos + 4]);
            pos += 4 + u32::from_le_bytes(len_buf) as usize + 8;
        }
    }

    #[test]
    fn byte_flips_never_panic_exhaustively() {
        let dir = temp_dir("fuzz");
        let (path, _) = populated(&dir);
        let clean = std::fs::read(&path).expect("read");
        let mut_path = dir.join("mut.log");
        for i in 0..clean.len() {
            for v in [0u8, 1, 2, 127, 255] {
                if clean[i] == v {
                    continue;
                }
                let mut mutated = clean.clone();
                mutated[i] = v;
                std::fs::write(&mut_path, &mutated).expect("write");
                // Total: open is Ok (possibly truncated) or a corrupt
                // error — never a panic.
                let _ = TrialStore::open(&mut_path, "ctx-test");
            }
        }
    }

    #[test]
    fn checksum_valid_garbage_is_hard_corruption() {
        let dir = temp_dir("drift");
        let path = dir.join("seg.log");
        // Magic + context + a record whose checksum matches but whose
        // tag is unknown: format drift, not a torn tail.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        push_record(&mut bytes, &encode_record(&Record::Context("ctx-test".into())));
        push_record(&mut bytes, &[9u8, 1, 2, 3]);
        std::fs::write(&path, &bytes).expect("write");
        let err = TrialStore::open(&path, "ctx-test").expect_err("must refuse");
        assert!(matches!(err, RepoError::Corrupt { .. }), "{err}");

        // Same for a trial record whose fingerprint does not hash its
        // canonical string (a store can never lie about identity).
        let p = Pipeline::from_kinds(&[PreprocKind::Binarizer]);
        let key = key_for(&p, 1.0);
        let mut payload = encode_record(&Record::Trial(key.clone(), trial_for(&p, 0.5, None)));
        let fp_at = 1 + 4 + key.canonical().len();
        payload[fp_at] ^= 0xff;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        push_record(&mut bytes, &encode_record(&Record::Context("ctx-test".into())));
        push_record(&mut bytes, &payload);
        std::fs::write(&path, &bytes).expect("write");
        let err = TrialStore::open(&path, "ctx-test").expect_err("must refuse");
        assert!(
            matches!(&err, RepoError::Corrupt { detail } if detail.contains("fingerprint")),
            "{err}"
        );
    }

    #[test]
    fn context_mismatch_is_refused() {
        let dir = temp_dir("ctx");
        let path = dir.join("seg.log");
        drop(TrialStore::open(&path, "ctx-a").expect("open"));
        let err = TrialStore::open(&path, "ctx-b").expect_err("must refuse");
        assert!(
            matches!(&err, RepoError::Corrupt { detail } if detail.contains("ctx-a")),
            "{err}"
        );
        // Bad magic is corruption too, not truncation.
        std::fs::write(&path, b"NOTASTORE").expect("write");
        assert!(TrialStore::open(&path, "ctx-a").is_err());
    }

    #[test]
    fn deadline_and_transport_are_never_persisted() {
        let dir = temp_dir("never");
        let path = dir.join("seg.log");
        let store = TrialStore::open(&path, "ctx-test").expect("open");
        let p = Pipeline::from_kinds(&[PreprocKind::Binarizer]);
        store.append(&key_for(&p, 1.0), &Trial::failed(p.clone(), FailureKind::Deadline, 1.0));
        store.append(&key_for(&p, 0.5), &Trial::failed(p.clone(), FailureKind::Transport, 0.5));
        assert!(store.is_empty());
        assert_eq!(store.stats().skipped, 2);
        // Deterministic failures persist like successes.
        store.append(&key_for(&p, 1.0), &Trial::failed(p, FailureKind::Panic, 1.0));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn appends_deduplicate_by_canonical_key() {
        let dir = temp_dir("dedup");
        let path = dir.join("seg.log");
        let store = TrialStore::open(&path, "ctx-test").expect("open");
        let p = Pipeline::from_kinds(&[PreprocKind::MinMaxScaler]);
        let key = key_for(&p, 1.0);
        store.append(&key, &trial_for(&p, 0.6, None));
        store.append(&key, &trial_for(&p, 0.9, None));
        assert_eq!(store.len(), 1);
        let stats = store.stats();
        assert_eq!((stats.appended, stats.deduped), (1, 1));
        assert!(store.contains(&key));
        // First write wins (deterministic evaluation makes re-runs
        // bit-identical, so there is nothing to overwrite).
        assert_eq!(store.snapshot()[0].1.accuracy, 0.6);
    }

    #[test]
    fn meta_is_recorded_once_and_conflicts_are_refused() {
        let dir = temp_dir("meta");
        let path = dir.join("seg.log");
        let store = TrialStore::open(&path, "ctx-test").expect("open");
        assert_eq!(store.meta(), None);
        let meta = StoreMeta { baseline_accuracy: 0.625, train_rows: 80 };
        store.set_meta(meta).expect("first");
        store.set_meta(meta).expect("idempotent");
        assert!(store.set_meta(StoreMeta { baseline_accuracy: 0.5, train_rows: 80 }).is_err());
        drop(store);
        let store = TrialStore::open(&path, "ctx-test").expect("reopen");
        let got = store.meta().expect("persisted");
        assert_eq!(got.baseline_accuracy.to_bits(), 0.625f64.to_bits());
        assert_eq!(got.train_rows, 80);
    }

    #[test]
    fn repo_interns_segments_per_context() {
        let dir = temp_dir("repo");
        let repo = TrialRepo::open(&dir).expect("open");
        let a1 = repo.open_context("ctx-a").expect("a1");
        let a2 = repo.open_context("ctx-a").expect("a2");
        let b = repo.open_context("ctx-b").expect("b");
        assert!(SharedTrialStore::same_store(&a1, &a2));
        assert!(!SharedTrialStore::same_store(&a1, &b));
        assert_ne!(a1.path(), b.path());
        assert_eq!(a1.path(), repo.segment_path("ctx-a"));
        assert_eq!(repo.open_contexts(), vec!["ctx-a".to_string(), "ctx-b".to_string()]);
        // A second repo over the same directory maps contexts to the
        // same files (the name is a pure function of the context).
        let repo2 = TrialRepo::open(&dir).expect("open2");
        assert_eq!(repo2.segment_path("ctx-a"), repo.segment_path("ctx-a"));
        let p = Pipeline::from_kinds(&[PreprocKind::Binarizer]);
        a1.append(&key_for(&p, 1.0), &trial_for(&p, 0.7, None));
        assert_eq!(repo.stats().appended, 1);
        assert_eq!(repo.stats().trials, 1);
    }

    #[test]
    fn replay_serves_stored_trials_and_errors_on_misses() {
        let dir = temp_dir("replay");
        let (path, _) = populated(&dir);
        let store = TrialStore::open(&path, "ctx-test").expect("open");
        let replay =
            ReplayEvaluator::from_store(&store, EvalConfig::default()).expect("replay");
        assert_eq!(replay.baseline_accuracy(), 0.5);
        assert_eq!(replay.train_rows(), 193);
        let p = Pipeline::from_kinds(&[PreprocKind::Binarizer]);
        let hit = replay.try_evaluate(&p).expect("stored");
        assert_eq!(hit.accuracy, 0.7);
        // A pipeline the store never saw is unreachable without an
        // evaluator: a transport error, degraded to a worst-error
        // trial by the usual shielding.
        let novel = Pipeline::from_kinds(&[PreprocKind::Binarizer, PreprocKind::Binarizer]);
        let err = replay.try_evaluate(&novel).expect_err("miss");
        assert!(matches!(err, EvalError::Transport { .. }));
        let worst = evaluate_or_worst(&replay, &novel, 1.0, &CancelToken::new());
        assert_eq!(worst.failure, Some(FailureKind::Transport));
        assert_eq!((replay.replayed(), replay.missing()), (1, 2));
    }

    #[test]
    fn replay_requires_a_meta_record() {
        let dir = temp_dir("replay-meta");
        let store = TrialStore::open(dir.join("seg.log"), "ctx-test").expect("open");
        assert!(ReplayEvaluator::from_store(&store, EvalConfig::default()).is_err());
    }

    #[test]
    fn cache_write_through_and_preload_close_the_loop() {
        let dir = temp_dir("cache");
        let path = dir.join("seg.log");
        let store = SharedTrialStore::new(TrialStore::open(&path, "ctx-test").expect("open"));
        let cache = EvalCache::new();
        cache.attach_store(store.clone());
        let p = Pipeline::from_kinds(&[PreprocKind::StandardScaler]);
        let key = key_for(&p, 1.0);
        cache.insert(&key, &trial_for(&p, 0.9, None));
        // Write-through: the insert reached the durable layer...
        assert_eq!(store.len(), 1);
        // ...but the never-persist rule holds at both layers.
        let q = Pipeline::from_kinds(&[PreprocKind::Binarizer]);
        cache.insert(&key_for(&q, 1.0), &Trial::failed(q, FailureKind::Deadline, 1.0));
        assert_eq!(store.len(), 1);
        drop(cache);
        drop(store);

        // Preload a fresh cache from the reopened store: the trial is
        // a hit without any evaluator, counters untouched by warming,
        // and nothing is written back.
        let store = TrialStore::open(&path, "ctx-test").expect("reopen");
        let warm = EvalCache::new();
        assert_eq!(warm.preload_from(&store), 1);
        assert_eq!(store.stats().preloaded, 1);
        assert_eq!(store.stats().appended, 0);
        assert_eq!(warm.len(), 1);
        let hit = warm.lookup(&key).expect("preloaded hit");
        assert_eq!(hit.accuracy.to_bits(), 0.9f64.to_bits());
        let s = warm.stats();
        assert_eq!((s.hits, s.misses), (1, 0));
    }

    #[test]
    fn store_stats_absorb_sums_every_counter() {
        let a = StoreStats {
            appended: 1,
            deduped: 2,
            skipped: 3,
            io_errors: 4,
            preloaded: 5,
            trials: 6,
            truncated_bytes: 7,
        };
        let mut total = StoreStats::default();
        total.absorb(&a);
        total.absorb(&a);
        assert_eq!(
            total,
            StoreStats {
                appended: 2,
                deduped: 4,
                skipped: 6,
                io_errors: 8,
                preloaded: 10,
                trials: 12,
                truncated_bytes: 14,
            }
        );
    }

    #[test]
    fn gc_sweeps_dead_segments_and_keeps_live_ones() {
        let dir = temp_dir("gc");
        let repo = TrialRepo::open(&dir).expect("open repo");
        // Three segments: one live (keep-list), two abandoned.
        for ctx in ["ctx=live", "ctx=dead-a", "ctx=dead-b"] {
            let store = repo.open_context(ctx).expect("open context");
            let p = Pipeline::from_kinds(&[PreprocKind::MinMaxScaler]);
            store.append(&key_for(&p, 1.0), &trial_for(&p, 0.6, None));
        }
        // A non-segment file and an unreadable segment-like file must
        // both survive any sweep.
        std::fs::write(dir.join("notes.txt"), b"not a segment").expect("write");
        std::fs::write(dir.join("ctx-ffffffffffffffff.log"), b"garbage").expect("write");

        // Re-open fresh so no segment is interned (live handles are
        // protected even off the keep-list; that guard is tested below).
        drop(repo);
        let repo = TrialRepo::open(&dir).expect("reopen repo");
        let keep = vec!["ctx=live".to_string()];

        let dry = repo.gc(&keep, true).expect("dry run");
        assert!(dry.dry_run);
        assert_eq!(dry.kept, vec!["ctx=live"]);
        assert_eq!(dry.removed.len(), 2);
        assert!(dry.reclaimed_bytes > 0);
        assert_eq!(dry.skipped, vec![dir.join("ctx-ffffffffffffffff.log")]);
        // Dry run deletes nothing.
        for seg in &dry.removed {
            assert!(seg.path.exists(), "{:?} deleted by dry run", seg.path);
        }

        let swept = repo.gc(&keep, false).expect("sweep");
        assert_eq!(swept.kept, dry.kept);
        assert_eq!(swept.removed, dry.removed);
        assert_eq!(swept.reclaimed_bytes, dry.reclaimed_bytes);
        for seg in &swept.removed {
            assert!(!seg.path.exists(), "{:?} survived the sweep", seg.path);
        }
        let mut contexts: Vec<String> = swept.removed.iter().map(|s| s.context.clone()).collect();
        contexts.sort();
        assert_eq!(contexts, vec!["ctx=dead-a", "ctx=dead-b"]);
        // The kept segment still opens and holds its trial.
        let store = repo.open_context("ctx=live").expect("reopen live");
        assert_eq!(store.len(), 1);
        // The unreadable file is untouched.
        assert!(dir.join("ctx-ffffffffffffffff.log").exists());
        assert!(dir.join("notes.txt").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_protects_interned_segments() {
        let dir = temp_dir("gc-live");
        let repo = TrialRepo::open(&dir).expect("open repo");
        let store = repo.open_context("ctx=open-now").expect("open context");
        let p = Pipeline::from_kinds(&[PreprocKind::MaxAbsScaler]);
        store.append(&key_for(&p, 1.0), &trial_for(&p, 0.6, None));
        // Off the keep-list but interned: must be treated as kept.
        let report = repo.gc(&[], false).expect("sweep");
        assert_eq!(report.kept, vec!["ctx=open-now"]);
        assert!(report.removed.is_empty());
        assert!(repo.segment_path("ctx=open-now").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
