//! Prefix-transform caching: reuse of *partially transformed datasets*
//! across pipelines that share a common prefix.
//!
//! Auto-FP searches over ordered sequences of preprocessors, and every
//! practical searcher proposes families of pipelines with long shared
//! prefixes: beam searchers (PNAS, TEVO) extend surviving prefixes by
//! construction, evolutionary mutation perturbs pipeline *tails*, and
//! Hyperband re-evaluates rung survivors at higher budgets. The
//! whole-pipeline [`crate::EvalCache`] only helps for *exact* duplicate
//! proposals; `[Standard, Power, Quantile]` and `[Standard, Power,
//! Binarizer]` still redo the identical `[Standard, Power]` transform
//! work. A [`PrefixCache`] closes that gap: it memoizes the transformed
//! (train, valid) matrix pair after each pipeline prefix, so evaluating
//! a new pipeline costs only its untouched suffix plus model training.
//!
//! # Key contract
//!
//! A [`PrefixKey`] is content-addressed off the same canonical-string +
//! FNV-1a machinery as [`crate::CacheKey`] (see the module docs of
//! [`crate::cache`] for the full fingerprint contract). Its canonical
//! form is
//!
//! ```text
//! layer=prefix;seed=<u64>;tf=<f64 bits>;sub=<i64>;p=<step 1> -> ... -> <step k>
//! ```
//!
//! Hashed (cache-relevant) dimensions:
//!
//! - `seed` and `tf` (train-fraction bits) — they determine the
//!   stratified split, and therefore the exact input matrices.
//! - `sub` — the optional training-row subsample cap (`-1` when unset),
//!   which changes the training matrix the prefix was fit on.
//! - `p` — the prefix's steps, kinds *and* parameters, rendered by the
//!   same `Display` impl as [`autofp_preprocess::Pipeline::key`].
//!
//! Deliberately **excluded** dimensions (each is an extra reuse axis):
//!
//! - the downstream **model** — transforms run before any trainer
//!   touches the data, so one prefix entry serves LR, XGB and MLP cells
//!   alike (the bench harness shares one cache per dataset across all
//!   model groups for exactly this reason);
//! - the **training-budget fraction** — fractional budgets throttle
//!   trainer iterations, not preprocessing, so Hyperband rungs at 1/9,
//!   1/3 and 1.0 all hit the same prefix entries;
//! - the **dataset identity** — like [`crate::EvalCache`], a prefix
//!   cache is scoped to one dataset by construction (one instance per
//!   dataset); keying the data itself would mean hashing matrices.
//!
//! The `layer=prefix;` namespace tag keeps prefix canonicals disjoint
//! from trial canonicals (which start with `m=`), so the two layers can
//! never alias even if their fingerprints were ever mixed in one index.
//!
//! Like the trial cache, the map keys on the full canonical string, so
//! a 64-bit fingerprint collision between distinct prefixes cannot
//! alias their matrices.
//!
//! # Admission and eviction
//!
//! Entries are admitted only when both transformed matrices are fully
//! finite: a prefix that produced NaN/inf is *poisoned* and must never
//! serve a cached matrix, because downstream suffix steps would fit on
//! garbage (the rejection is counted in [`PrefixStats::poisoned`]; the
//! evaluation itself still fails with the usual
//! [`crate::EvalError::NonFiniteTransform`] at the full-pipeline
//! checks).
//!
//! The cache is byte-budgeted rather than entry-capped — entries are
//! whole dataset copies, so their sizes vary wildly with dataset shape.
//! Every insert charges `8 * (train cells + valid cells) + canonical
//! length` bytes and evicts least-recently-used entries until the
//! budget holds. An entry larger than the entire budget is never
//! admitted (counted as an immediate eviction). Eviction only ever
//! costs recomputation: results are bit-identical with any budget,
//! including zero.
//!
//! # Determinism
//!
//! A prefix hit replays the exact matrices the original transform
//! produced, and the suffix is applied step-by-step with the same
//! `fit_transform` calls the uncached path runs — the same float ops in
//! the same order, so trials are bit-identical with the cache on, off,
//! bounded, or shared across any number of threads. Only wall-clock
//! attribution (`prep_time`) and the cache counters may differ.

use crate::cache::fnv1a;
use crate::evaluator::EvalConfig;
use autofp_linalg::Matrix;
use autofp_preprocess::Pipeline;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// The identity of one pipeline prefix's transform output: split
/// configuration (seed, train fraction, subsample cap) plus the prefix
/// steps. See the module docs for the full canonical-string contract —
/// notably, the downstream model and the training-budget fraction are
/// *excluded*, which is what lets one entry serve every model and every
/// Hyperband rung.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PrefixKey {
    canonical: String,
    fingerprint: u64,
}

impl PrefixKey {
    /// Build the key for the first `len` steps of `pipeline` under
    /// `config`. `len` is clamped to the pipeline length; `len == 0`
    /// identifies the raw (untransformed) split and is never cached.
    pub fn new(pipeline: &Pipeline, len: usize, config: &EvalConfig) -> PrefixKey {
        let len = len.min(pipeline.len());
        let mut steps = String::new();
        for (i, s) in pipeline.steps().iter().take(len).enumerate() {
            if i > 0 {
                steps.push_str(" -> ");
            }
            let _ = write!(steps, "{s}");
        }
        Self::from_steps(&steps, config)
    }

    /// Keys for every non-empty prefix of `pipeline`, shortest first:
    /// index `i` holds the key of the first `i + 1` steps (the last is
    /// the full pipeline). Built incrementally — pipeline keys are
    /// `" -> "`-joined step strings, so each prefix canonical is a
    /// string prefix extension of the previous one.
    pub fn all_prefixes(pipeline: &Pipeline, config: &EvalConfig) -> Vec<PrefixKey> {
        let mut keys = Vec::with_capacity(pipeline.len());
        let mut steps = String::new();
        for (i, s) in pipeline.steps().iter().enumerate() {
            if i > 0 {
                steps.push_str(" -> ");
            }
            let _ = write!(steps, "{s}");
            keys.push(Self::from_steps(&steps, config));
        }
        keys
    }

    fn from_steps(steps: &str, config: &EvalConfig) -> PrefixKey {
        let mut canonical = String::new();
        let _ = write!(
            canonical,
            "layer=prefix;seed={};tf={};sub={};p={}",
            config.seed,
            config.train_fraction.to_bits(),
            config.train_subsample.map_or(-1_i64, |v| v as i64),
            steps,
        );
        let fingerprint = fnv1a(canonical.as_bytes());
        PrefixKey { canonical, fingerprint }
    }

    /// The stable 64-bit fingerprint of this key.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The canonical string the fingerprint hashes.
    pub fn canonical(&self) -> &str {
        &self.canonical
    }
}

/// Counter snapshot of a [`PrefixCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefixStats {
    /// Lookups that found *some* cached prefix (not necessarily the
    /// full pipeline) to resume from.
    pub hits: u64,
    /// Lookups where no prefix of the pipeline was cached.
    pub misses: u64,
    /// Live entries.
    pub entries: usize,
    /// Bytes currently charged against the budget.
    pub bytes: u64,
    /// Entries dropped to satisfy the byte budget (including oversized
    /// entries that were never admitted).
    pub evictions: u64,
    /// Bytes those evictions released.
    pub bytes_evicted: u64,
    /// Insert attempts rejected because the transformed matrices were
    /// non-finite (the poisoned-prefix rule).
    pub poisoned: u64,
    /// Preprocessor `fit_transform` invocations skipped by hits — the
    /// "fewer transform invocations" measure.
    pub steps_saved: u64,
    /// Transform wall-clock the hits would have re-spent.
    pub saved: Duration,
}

impl PrefixStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits over lookups in `[0, 1]` (`0.0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Fold another snapshot into this one (all counters summed). Sum
    /// each distinct cache exactly once — `entries` and `bytes` add up,
    /// so absorbing two snapshots of the *same* cache double-counts.
    pub fn absorb(&mut self, other: &PrefixStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.entries += other.entries;
        self.bytes += other.bytes;
        self.evictions += other.evictions;
        self.bytes_evicted += other.bytes_evicted;
        self.poisoned += other.poisoned;
        self.steps_saved += other.steps_saved;
        self.saved += other.saved;
    }
}

/// A cache hit: the deepest cached prefix of the probed pipeline.
#[derive(Debug, Clone)]
pub struct PrefixHit {
    /// How many leading steps the cached matrices already include.
    pub depth: usize,
    /// The transformed training features after `depth` steps.
    pub train: Matrix,
    /// The transformed validation features after `depth` steps.
    pub valid: Matrix,
    /// Cumulative transform wall-clock the original computation of
    /// this prefix spent (carried so extensions charge honest costs).
    pub cost: Duration,
}

/// One stored prefix state.
#[derive(Debug)]
struct Entry {
    train: Matrix,
    valid: Matrix,
    /// Number of pipeline steps baked into the matrices.
    depth: usize,
    /// Cumulative transform cost of computing this prefix from raw.
    cost: Duration,
    /// Bytes charged against the budget for this entry.
    bytes: u64,
    /// Recency stamp of the last touch.
    stamp: u64,
}

/// Map + recency index + byte ledger guarded by one mutex so the three
/// can never skew.
#[derive(Debug, Default)]
struct PrefixInner {
    /// canonical key -> entry.
    // lint:allow(nondet): keyed lookup only — eviction order comes from the recency BTreeMap, never from map iteration
    entries: HashMap<String, Entry>,
    /// recency stamp -> canonical key; first entry is least recent.
    /// Stamps are unique (monotonic tick), so this is a faithful queue.
    recency: BTreeMap<u64, String>,
    /// Monotonic logical clock for stamps.
    tick: u64,
    /// Bytes currently held, always the sum of live entry sizes.
    bytes: u64,
}

/// A thread-safe, byte-budgeted LRU store of transformed dataset
/// prefixes. See the module docs for the key contract, admission rules
/// (finite matrices only) and eviction semantics.
///
/// All methods take `&self` (mutex-guarded map, atomic counters), so
/// one cache can serve many evaluation workers concurrently — attach a
/// [`SharedPrefixCache`] handle via
/// [`crate::Evaluator::with_prefix_cache`].
#[derive(Debug, Default)]
pub struct PrefixCache {
    inner: Mutex<PrefixInner>,
    /// `None` = unbounded (the default).
    budget: Option<u64>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bytes_evicted: AtomicU64,
    poisoned: AtomicU64,
    steps_saved: AtomicU64,
    saved_nanos: AtomicU64,
}

impl PrefixCache {
    /// The byte budget callers use when they want "bounded, but big
    /// enough to never matter at benchmark scale": 256 MiB. Both the
    /// bench harness (`--prefix-cache`) and evald workers default to
    /// this when the cache is enabled without an explicit budget.
    pub const DEFAULT_BYTE_BUDGET: u64 = 256 << 20;

    /// An empty, unbounded cache.
    pub fn new() -> PrefixCache {
        PrefixCache::default()
    }

    /// An empty cache holding at most `budget` bytes of transformed
    /// matrices, evicting least-recently-used entries on overflow.
    /// Budget 0 disables caching entirely (nothing is ever admitted).
    pub fn with_byte_budget(budget: u64) -> PrefixCache {
        PrefixCache { budget: Some(budget), ..PrefixCache::default() }
    }

    /// The byte budget, if one was set.
    pub fn byte_budget(&self) -> Option<u64> {
        self.budget
    }

    /// Same poisoned-mutex policy as [`crate::EvalCache`]: every
    /// mutation holds the lock for its full map+recency+ledger update,
    /// so recovering the guard after a worker panic is sound.
    fn lock(&self) -> MutexGuard<'_, PrefixInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Probe for the *deepest* cached prefix among `keys` (ordered
    /// shortest first, as produced by [`PrefixKey::all_prefixes`]).
    /// Records one hit (plus the steps and wall-clock it skips) or one
    /// miss per call, and refreshes the winning entry's recency.
    pub fn lookup_longest(&self, keys: &[PrefixKey]) -> Option<PrefixHit> {
        let found = {
            let mut inner = self.lock();
            let mut found = None;
            for key in keys.iter().rev() {
                if let Some(e) = inner.entries.get(key.canonical()) {
                    found = Some(PrefixHit {
                        depth: e.depth,
                        train: e.train.clone(),
                        valid: e.valid.clone(),
                        cost: e.cost,
                    });
                    inner.touch(key.canonical());
                    break;
                }
            }
            found
        };
        match &found {
            Some(hit) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.steps_saved.fetch_add(hit.depth as u64, Ordering::Relaxed);
                self.saved_nanos.fetch_add(hit.cost.as_nanos() as u64, Ordering::Relaxed);
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        found
    }

    /// Store the transformed state after a prefix of `depth` steps.
    /// `cost` is the cumulative transform wall-clock from the raw split
    /// to this state (what a future full-depth hit saves).
    ///
    /// Enforces the poisoned-prefix rule: non-finite matrices are
    /// rejected (counted in [`PrefixStats::poisoned`]) so a poisoned
    /// prefix can never serve a cached matrix. Oversized entries (the
    /// pair alone exceeds the whole budget) are never admitted.
    pub fn insert(&self, key: &PrefixKey, train: &Matrix, valid: &Matrix, depth: usize, cost: Duration) {
        if !train.is_finite() || !valid.is_finite() {
            self.poisoned.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let bytes = entry_bytes(key, train, valid);
        if let Some(budget) = self.budget {
            if bytes > budget {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.bytes_evicted.fetch_add(bytes, Ordering::Relaxed);
                return;
            }
        }
        let mut evicted = 0u64;
        let mut evicted_bytes = 0u64;
        {
            let mut inner = self.lock();
            inner.tick += 1;
            let stamp = inner.tick;
            let entry = Entry {
                train: train.clone(),
                valid: valid.clone(),
                depth,
                cost,
                bytes,
                stamp,
            };
            inner.bytes += bytes;
            if let Some(old) = inner.entries.insert(key.canonical().to_string(), entry) {
                inner.recency.remove(&old.stamp);
                inner.bytes -= old.bytes;
            }
            inner.recency.insert(stamp, key.canonical().to_string());
            if let Some(budget) = self.budget {
                while inner.bytes > budget {
                    let Some((&oldest, _)) = inner.recency.iter().next() else { break };
                    if let Some(victim) = inner.recency.remove(&oldest) {
                        if let Some(dropped) = inner.entries.remove(&victim) {
                            inner.bytes -= dropped.bytes;
                            evicted += 1;
                            evicted_bytes += dropped.bytes;
                        }
                    }
                }
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            self.bytes_evicted.fetch_add(evicted_bytes, Ordering::Relaxed);
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged against the budget.
    pub fn bytes(&self) -> u64 {
        self.lock().bytes
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PrefixStats {
        let (entries, bytes) = {
            let inner = self.lock();
            (inner.entries.len(), inner.bytes)
        };
        PrefixStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            bytes,
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_evicted: self.bytes_evicted.load(Ordering::Relaxed),
            poisoned: self.poisoned.load(Ordering::Relaxed),
            steps_saved: self.steps_saved.load(Ordering::Relaxed),
            saved: Duration::from_nanos(self.saved_nanos.load(Ordering::Relaxed)),
        }
    }
}

impl PrefixInner {
    fn touch(&mut self, canonical: &str) {
        self.tick += 1;
        let stamp = self.tick;
        if let Some(e) = self.entries.get_mut(canonical) {
            self.recency.remove(&e.stamp);
            e.stamp = stamp;
            self.recency.insert(stamp, canonical.to_string());
        }
    }
}

/// What one stored prefix costs against the byte budget: the two f64
/// matrices plus the canonical key string.
fn entry_bytes(key: &PrefixKey, train: &Matrix, valid: &Matrix) -> u64 {
    let (tn, td) = train.shape();
    let (vn, vd) = valid.shape();
    8 * (tn * td + vn * vd) as u64 + key.canonical().len() as u64
}

/// A clonable, `Arc`-backed handle to one [`PrefixCache`] — the same
/// ownership story as [`crate::SharedEvalCache`]: the bench harness
/// creates one handle per dataset and hands clones to every model
/// group's evaluator, and evald workers hold one per evaluation
/// context.
///
/// ```
/// use autofp_core::SharedPrefixCache;
/// let shared = SharedPrefixCache::new();
/// let clone = shared.clone();
/// assert!(clone.is_empty());
/// assert!(SharedPrefixCache::same_cache(&shared, &clone));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedPrefixCache {
    inner: std::sync::Arc<PrefixCache>,
}

impl SharedPrefixCache {
    /// A handle to a fresh, unbounded cache.
    pub fn new() -> SharedPrefixCache {
        SharedPrefixCache::default()
    }

    /// A handle to a fresh cache capped at `budget` bytes (LRU
    /// eviction; see [`PrefixCache::with_byte_budget`]).
    pub fn with_byte_budget(budget: u64) -> SharedPrefixCache {
        SharedPrefixCache { inner: std::sync::Arc::new(PrefixCache::with_byte_budget(budget)) }
    }

    /// True when two handles share one underlying cache.
    pub fn same_cache(a: &SharedPrefixCache, b: &SharedPrefixCache) -> bool {
        std::sync::Arc::ptr_eq(&a.inner, &b.inner)
    }
}

impl std::ops::Deref for SharedPrefixCache {
    type Target = PrefixCache;

    fn deref(&self) -> &PrefixCache {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_preprocess::{Preproc, PreprocKind};
    use std::collections::HashSet;

    fn m(rows: &[Vec<f64>]) -> Matrix {
        Matrix::from_rows(rows)
    }

    fn small() -> (Matrix, Matrix) {
        (m(&[vec![1.0, 2.0], vec![3.0, 4.0]]), m(&[vec![5.0, 6.0]]))
    }

    #[test]
    fn all_prefixes_are_ordered_and_distinct() {
        let p = Pipeline::from_kinds(&[
            PreprocKind::StandardScaler,
            PreprocKind::PowerTransformer,
            PreprocKind::Binarizer,
        ]);
        let cfg = EvalConfig::default();
        let keys = PrefixKey::all_prefixes(&p, &cfg);
        assert_eq!(keys.len(), 3);
        let mut seen = HashSet::new();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(*k, PrefixKey::new(&p, i + 1, &cfg), "incremental != direct at len {}", i + 1);
            assert!(seen.insert(k.fingerprint()), "fingerprint collision at len {}", i + 1);
        }
        assert!(keys[2].canonical().ends_with(&format!("p={}", p.key())));
        assert!(PrefixKey::all_prefixes(&Pipeline::empty(), &cfg).is_empty());
    }

    #[test]
    fn key_excludes_model_and_includes_split_dimensions() {
        use autofp_models::classifier::ModelKind;
        let p = Pipeline::from_kinds(&[PreprocKind::StandardScaler]);
        let base = EvalConfig::default();
        let other_model = EvalConfig { model: ModelKind::Xgb, ..base.clone() };
        assert_eq!(
            PrefixKey::new(&p, 1, &base),
            PrefixKey::new(&p, 1, &other_model),
            "prefix keys must be model-independent (transforms run before any trainer)"
        );
        for cfg in [
            EvalConfig { seed: 7, ..base.clone() },
            EvalConfig { train_fraction: 0.5, ..base.clone() },
            EvalConfig { train_subsample: Some(64), ..base.clone() },
        ] {
            assert_ne!(
                PrefixKey::new(&p, 1, &base),
                PrefixKey::new(&p, 1, &cfg),
                "split-shaping config must move the key"
            );
        }
    }

    #[test]
    fn key_distinguishes_parameters() {
        let cfg = EvalConfig::default();
        let a = Pipeline::new(vec![Preproc::Binarizer { threshold: 0.0 }]);
        let b = Pipeline::new(vec![Preproc::Binarizer { threshold: 0.5 }]);
        assert_ne!(
            PrefixKey::new(&a, 1, &cfg).fingerprint(),
            PrefixKey::new(&b, 1, &cfg).fingerprint()
        );
    }

    #[test]
    fn prefix_namespace_is_disjoint_from_trial_keys() {
        let cfg = EvalConfig::default();
        let p = Pipeline::from_kinds(&[PreprocKind::StandardScaler]);
        let prefix = PrefixKey::new(&p, 1, &cfg);
        let trial = crate::CacheKey::new(&p, 1.0, &cfg);
        assert!(prefix.canonical().starts_with("layer=prefix;"));
        assert!(trial.canonical().starts_with("m="));
        assert_ne!(prefix.fingerprint(), trial.fingerprint());
    }

    /// Prefix fingerprints shard evald requests and would name entries
    /// in a persisted transform store; like the trial-key golden test,
    /// these constants lock the canonical form. If this fails, the
    /// canonical layout (or FNV-1a) changed and consumers must migrate.
    #[test]
    fn golden_prefix_fingerprints_are_locked() {
        let cfg = EvalConfig::default();
        let two = Pipeline::from_kinds(&[PreprocKind::MinMaxScaler, PreprocKind::Normalizer]);
        let cases: [(&Pipeline, usize, u64); 3] = [
            (&Pipeline::from_kinds(&[PreprocKind::StandardScaler]), 1, 0xb53c503c70e51eef),
            (&two, 1, 0x285675f50459b9f4),
            (&two, 2, 0x3ace5f18616e849a),
        ];
        for (pipeline, len, expected) in cases {
            let key = PrefixKey::new(pipeline, len, &cfg);
            assert_eq!(
                key.fingerprint(),
                expected,
                "prefix fingerprint drifted for `{}`[..{len}] (canonical `{}`)",
                pipeline.key(),
                key.canonical(),
            );
        }
    }

    #[test]
    fn lookup_longest_prefers_deeper_prefixes_and_counts() {
        let cache = PrefixCache::new();
        let cfg = EvalConfig::default();
        let p = Pipeline::from_kinds(&[
            PreprocKind::StandardScaler,
            PreprocKind::MinMaxScaler,
            PreprocKind::Normalizer,
        ]);
        let keys = PrefixKey::all_prefixes(&p, &cfg);
        let (t1, v1) = small();
        let t2 = m(&[vec![9.0, 9.0], vec![9.0, 9.0]]);
        cache.insert(&keys[0], &t1, &v1, 1, Duration::from_millis(2));
        cache.insert(&keys[1], &t2, &v1, 2, Duration::from_millis(5));

        assert!(cache.lookup_longest(&[]).is_none());
        let hit = cache.lookup_longest(&keys).expect("hit");
        assert_eq!(hit.depth, 2, "must resume from the deepest cached prefix");
        assert_eq!(hit.train, t2);
        assert_eq!(hit.cost, Duration::from_millis(5));

        let miss_keys = PrefixKey::all_prefixes(
            &Pipeline::from_kinds(&[PreprocKind::Binarizer]),
            &cfg,
        );
        assert!(cache.lookup_longest(&miss_keys).is_none());

        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
        assert_eq!(s.steps_saved, 2);
        assert_eq!(s.saved, Duration::from_millis(5));
        assert_eq!(s.entries, 2);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn poisoned_prefixes_are_never_admitted() {
        let cache = PrefixCache::new();
        let cfg = EvalConfig::default();
        let keys =
            PrefixKey::all_prefixes(&Pipeline::from_kinds(&[PreprocKind::PowerTransformer]), &cfg);
        let (t, v) = small();
        let bad_train = m(&[vec![f64::NAN, 1.0]]);
        let bad_valid = m(&[vec![f64::INFINITY, 1.0]]);
        cache.insert(&keys[0], &bad_train, &v, 1, Duration::ZERO);
        cache.insert(&keys[0], &t, &bad_valid, 1, Duration::ZERO);
        assert!(cache.is_empty(), "non-finite matrices must never be cached");
        assert!(cache.lookup_longest(&keys).is_none());
        let s = cache.stats();
        assert_eq!(s.poisoned, 2);
        assert_eq!(s.bytes, 0);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let cfg = EvalConfig::default();
        let (t, v) = small();
        let per_entry = |k: &PrefixKey| entry_bytes(k, &t, &v);
        let keys: Vec<PrefixKey> = [PreprocKind::StandardScaler, PreprocKind::MinMaxScaler, PreprocKind::Normalizer]
            .into_iter()
            .map(|k| PrefixKey::new(&Pipeline::from_kinds(&[k]), 1, &cfg))
            .collect();
        // Budget fits exactly two of the three (keys have similar sizes).
        let budget = per_entry(&keys[0]) + per_entry(&keys[1]) + per_entry(&keys[2]) / 2;
        let cache = PrefixCache::with_byte_budget(budget);
        assert_eq!(cache.byte_budget(), Some(budget));

        cache.insert(&keys[0], &t, &v, 1, Duration::ZERO);
        cache.insert(&keys[1], &t, &v, 1, Duration::ZERO);
        assert_eq!(cache.stats().evictions, 0);
        // Touch key 0 so key 1 becomes the LRU victim.
        assert!(cache.lookup_longest(&keys[0..1]).is_some());
        cache.insert(&keys[2], &t, &v, 1, Duration::ZERO);

        assert_eq!(cache.len(), 2);
        assert!(cache.lookup_longest(&keys[1..2]).is_none(), "LRU victim must be gone");
        assert!(cache.lookup_longest(&keys[0..1]).is_some());
        assert!(cache.lookup_longest(&keys[2..3]).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.bytes_evicted, per_entry(&keys[1]));
        assert!(s.bytes <= budget);
        assert_eq!(s.bytes, cache.bytes());
    }

    #[test]
    fn oversized_entries_are_never_admitted() {
        let cfg = EvalConfig::default();
        let (t, v) = small();
        let key = PrefixKey::new(&Pipeline::from_kinds(&[PreprocKind::StandardScaler]), 1, &cfg);
        let cache = PrefixCache::with_byte_budget(entry_bytes(&key, &t, &v) - 1);
        cache.insert(&key, &t, &v, 1, Duration::ZERO);
        assert!(cache.is_empty());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.bytes_evicted, entry_bytes(&key, &t, &v));
    }

    #[test]
    fn zero_budget_disables_caching() {
        let cfg = EvalConfig::default();
        let (t, v) = small();
        let key = PrefixKey::new(&Pipeline::from_kinds(&[PreprocKind::StandardScaler]), 1, &cfg);
        let cache = PrefixCache::with_byte_budget(0);
        cache.insert(&key, &t, &v, 1, Duration::ZERO);
        assert!(cache.is_empty());
        assert!(cache.lookup_longest(std::slice::from_ref(&key)).is_none());
    }

    #[test]
    fn reinserting_same_key_does_not_leak_bytes() {
        let cfg = EvalConfig::default();
        let (t, v) = small();
        let key = PrefixKey::new(&Pipeline::from_kinds(&[PreprocKind::StandardScaler]), 1, &cfg);
        let cache = PrefixCache::new();
        cache.insert(&key, &t, &v, 1, Duration::from_millis(1));
        let before = cache.bytes();
        cache.insert(&key, &t, &v, 1, Duration::from_millis(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), before, "re-insert must replace, not accumulate");
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn shared_handles_see_one_store() {
        let shared = SharedPrefixCache::with_byte_budget(1 << 20);
        let clone = shared.clone();
        assert!(SharedPrefixCache::same_cache(&shared, &clone));
        assert_eq!(clone.byte_budget(), Some(1 << 20));
        let cfg = EvalConfig::default();
        let (t, v) = small();
        let key = PrefixKey::new(&Pipeline::from_kinds(&[PreprocKind::StandardScaler]), 1, &cfg);
        shared.insert(&key, &t, &v, 1, Duration::ZERO);
        assert_eq!(clone.len(), 1);
        assert!(clone.lookup_longest(std::slice::from_ref(&key)).is_some());
        assert_eq!(shared.stats().hits, 1);
    }

    #[test]
    fn absorb_sums_every_counter() {
        let a = PrefixStats {
            hits: 3,
            misses: 2,
            entries: 2,
            bytes: 100,
            evictions: 1,
            bytes_evicted: 40,
            poisoned: 1,
            steps_saved: 5,
            saved: Duration::from_millis(10),
        };
        let mut total = PrefixStats::default();
        total.absorb(&a);
        total.absorb(&a);
        assert_eq!(total.hits, 6);
        assert_eq!(total.misses, 4);
        assert_eq!(total.entries, 4);
        assert_eq!(total.bytes, 200);
        assert_eq!(total.evictions, 2);
        assert_eq!(total.bytes_evicted, 80);
        assert_eq!(total.poisoned, 2);
        assert_eq!(total.steps_saved, 10);
        assert_eq!(total.saved, Duration::from_millis(20));
        assert!((total.hit_rate() - 0.6).abs() < 1e-12);
    }
}
