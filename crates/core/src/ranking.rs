//! Average-ranking computation (Table 4 of the paper).
//!
//! The paper ranks the 15 algorithms per *scenario* (dataset × model ×
//! time budget) by best validation accuracy, keeps only scenarios where
//! FP improved over the no-FP baseline by at least 1.5 percentage points,
//! gives tied algorithms the same rank, and averages ranks per algorithm.

use autofp_linalg::stats::average_ranks;

/// Improvement threshold (percentage points) for a scenario to count.
pub const IMPROVEMENT_THRESHOLD: f64 = 0.015;

/// One scenario's results: the no-FP baseline and each algorithm's best
/// validation accuracy (parallel to the caller's algorithm list).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// e.g. "heart/LR/60s".
    pub label: String,
    /// No-FP baseline validation accuracy.
    pub baseline: f64,
    /// Best accuracy per algorithm (same order as the algorithm list).
    pub accuracies: Vec<f64>,
}

impl Scenario {
    /// Whether any algorithm improved on the baseline by the threshold —
    /// the paper's filter for the 501 "improving" scenarios.
    pub fn is_improving(&self, threshold: f64) -> bool {
        self.accuracies.iter().any(|&a| a - self.baseline >= threshold)
    }

    /// Per-algorithm ranks: rank 1 = highest accuracy; ties share the
    /// average rank.
    pub fn ranks(&self) -> Vec<f64> {
        // `average_ranks` ranks ascending; rank by negative accuracy.
        let neg: Vec<f64> = self.accuracies.iter().map(|a| -a).collect();
        average_ranks(&neg)
    }
}

/// Average rank per algorithm over the improving scenarios.
///
/// Returns `(avg_ranks, n_improving)`. Algorithms are positional — the
/// caller owns the name list. If no scenario passes the filter, ranks are
/// all zero.
pub fn average_rankings(scenarios: &[Scenario], threshold: f64) -> (Vec<f64>, usize) {
    let improving: Vec<&Scenario> =
        scenarios.iter().filter(|s| s.is_improving(threshold)).collect();
    if improving.is_empty() {
        return (vec![0.0; scenarios.first().map_or(0, |s| s.accuracies.len())], 0);
    }
    let n_algs = improving[0].accuracies.len();
    let mut sums = vec![0.0; n_algs];
    for s in &improving {
        assert_eq!(s.accuracies.len(), n_algs, "ragged scenario in {}", s.label);
        for (sum, r) in sums.iter_mut().zip(s.ranks()) {
            *sum += r;
        }
    }
    let n = improving.len();
    for s in &mut sums {
        *s /= n as f64;
    }
    (sums, n)
}

/// Order algorithm indices by ascending average rank (best first).
pub fn order_by_rank(avg_ranks: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..avg_ranks.len()).collect();
    // NaN ranks (no data for an algorithm) sort last, not panic.
    idx.sort_by(|&a, &b| crate::order::nan_largest(&avg_ranks[a], &avg_ranks[b]));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_give_one_to_best_and_share_ties() {
        let s = Scenario {
            label: "t".into(),
            baseline: 0.5,
            accuracies: vec![0.9, 0.7, 0.9, 0.6],
        };
        assert_eq!(s.ranks(), vec![1.5, 3.0, 1.5, 4.0]);
    }

    #[test]
    fn improving_filter_uses_threshold() {
        let s = Scenario { label: "t".into(), baseline: 0.80, accuracies: vec![0.81, 0.80] };
        assert!(!s.is_improving(IMPROVEMENT_THRESHOLD));
        let s2 = Scenario { label: "t".into(), baseline: 0.80, accuracies: vec![0.82, 0.80] };
        assert!(s2.is_improving(IMPROVEMENT_THRESHOLD));
    }

    #[test]
    fn averaging_over_scenarios() {
        let scenarios = vec![
            Scenario { label: "a".into(), baseline: 0.5, accuracies: vec![0.9, 0.8] },
            Scenario { label: "b".into(), baseline: 0.5, accuracies: vec![0.7, 0.9] },
            // Non-improving scenario must be excluded:
            Scenario { label: "c".into(), baseline: 0.9, accuracies: vec![0.2, 0.9] },
        ];
        let (ranks, n) = average_rankings(&scenarios, IMPROVEMENT_THRESHOLD);
        assert_eq!(n, 2);
        assert_eq!(ranks, vec![1.5, 1.5]);
    }

    #[test]
    fn no_improving_scenarios() {
        let scenarios =
            vec![Scenario { label: "a".into(), baseline: 0.99, accuracies: vec![0.5, 0.5] }];
        let (ranks, n) = average_rankings(&scenarios, IMPROVEMENT_THRESHOLD);
        assert_eq!(n, 0);
        assert_eq!(ranks, vec![0.0, 0.0]);
    }

    #[test]
    fn ordering_by_rank() {
        assert_eq!(order_by_rank(&[3.0, 1.0, 2.0]), vec![1, 2, 0]);
    }
}
