//! The unified search framework (Algorithm 1 of the paper).
//!
//! Every search algorithm interacts with the benchmark exclusively
//! through a [`SearchContext`]: it asks for evaluations, the context
//! enforces the budget, records trials, and — by timing the gaps
//! *between* evaluations — attributes algorithm-side overhead to the
//! "Pick" phase of the Figure 7 breakdown (Steps 2-3 of Algorithm 1),
//! while the evaluator attributes "Prep" and "Train" (Step 4).

use crate::batch::BatchEvaluator;
use crate::budget::{Budget, BudgetClock};
use crate::cache::{CacheKey, CacheStats, EvalCache};
use crate::error::FailureStats;
use crate::evaluator::{evaluate_or_worst, Evaluate};
use crate::history::{PhaseBreakdown, Trial, TrialHistory};
use autofp_models::CancelToken;
use autofp_preprocess::Pipeline;
use std::time::{Duration, Instant};

/// A pipeline search algorithm (one of the paper's 15, or an extension).
pub trait Searcher {
    /// Display name as used in the paper's tables ("RS", "PBT", ...).
    fn name(&self) -> &'static str;

    /// Run until the context's budget is exhausted.
    ///
    /// Implementations should call [`SearchContext::evaluate`] in a loop
    /// and return when it yields `None` (budget exhausted). Returning
    /// early is allowed (e.g. an exhaustive searcher that finishes).
    fn search(&mut self, ctx: &mut SearchContext);
}

/// Everything a searcher may touch: evaluation, budget state, history.
///
/// Single evaluations go through [`SearchContext::evaluate`]; searchers
/// whose next proposals do not depend on each other's results (random
/// search chunks, PBT generations, GP offspring) should instead submit
/// them together via [`SearchContext::evaluate_batch`], which fans them
/// across a [`BatchEvaluator`] worker pool and — when a cache is
/// attached via [`SearchContext::attach_cache`] — serves duplicate
/// proposals from memory.
pub struct SearchContext<'a> {
    evaluator: &'a dyn Evaluate,
    clock: BudgetClock,
    history: TrialHistory,
    pick_time: Duration,
    last_eval_end: Instant,
    cache: Option<&'a EvalCache>,
    batch_threads: usize,
    /// Armed with the wall-clock deadline (when one is configured):
    /// trainer loops poll it, so a fit in flight when time runs out
    /// returns at its next epoch boundary instead of overrunning.
    cancel: CancelToken,
}

impl<'a> SearchContext<'a> {
    /// Start a context over an evaluator with a budget.
    pub fn new(evaluator: &'a dyn Evaluate, budget: Budget) -> SearchContext<'a> {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let clock = budget.start();
        let cancel = match clock.deadline() {
            Some(deadline) => CancelToken::with_deadline(deadline),
            None => CancelToken::new(),
        };
        SearchContext {
            evaluator,
            clock,
            history: TrialHistory::new(),
            pick_time: Duration::ZERO,
            // lint:allow(nondet): Pick-phase attribution measures algorithm overhead; it never feeds a search decision
            last_eval_end: Instant::now(),
            cache: None,
            batch_threads: threads,
            cancel,
        }
    }

    /// Memoize every evaluation (single and batched) in `cache`; its
    /// hit/miss/saved statistics are snapshotted into
    /// [`SearchOutcome::cache`] at [`SearchContext::finish`]. Cache hits
    /// still count toward eval-count budgets, so a searcher's proposal
    /// sequence — and therefore its result — is identical with and
    /// without a cache; only wall-clock changes.
    ///
    /// The same invariant makes durable warm-starts exact: a cache
    /// preloaded from a [`crate::repo::TrialStore`]
    /// ([`EvalCache::preload_from`]) turns previously persisted
    /// proposals into hits, so a resumed search replays the identical
    /// trajectory while evaluating only what the store is missing, and
    /// a cache with an attached store ([`EvalCache::attach_store`])
    /// persists each insert as it happens.
    pub fn attach_cache(&mut self, cache: &'a EvalCache) {
        self.cache = Some(cache);
    }

    /// Set the worker count used by [`SearchContext::evaluate_batch`]
    /// (default: available parallelism).
    pub fn set_batch_threads(&mut self, threads: usize) {
        self.batch_threads = threads.max(1);
    }

    /// True once the budget is exhausted; searchers should then return.
    pub fn exhausted(&self) -> bool {
        self.clock.exhausted()
    }

    /// Remaining budget fraction in `[0, 1]`.
    pub fn remaining_fraction(&self) -> f64 {
        self.clock.remaining_fraction()
    }

    /// Evaluate a pipeline at full training budget. Returns `None` when
    /// the budget was already exhausted (the trial is *not* run).
    pub fn evaluate(&mut self, pipeline: &Pipeline) -> Option<Trial> {
        self.evaluate_budgeted(pipeline, 1.0)
    }

    /// Evaluate with a fractional training budget (bandit rungs).
    pub fn evaluate_budgeted(&mut self, pipeline: &Pipeline, fraction: f64) -> Option<Trial> {
        if self.clock.exhausted() {
            return None;
        }
        // Time since the previous evaluation ended is algorithm overhead.
        self.pick_time += self.last_eval_end.elapsed();
        // Every path is shielded: a failed or panicking evaluation
        // becomes a worst-error trial and the search continues.
        let trial = match self.cache {
            Some(cache) => {
                let key = CacheKey::new(pipeline, fraction, self.evaluator.config());
                match cache.lookup(&key) {
                    Some(trial) => trial,
                    None => {
                        let trial =
                            evaluate_or_worst(self.evaluator, pipeline, fraction, &self.cancel);
                        cache.insert(&key, &trial);
                        trial
                    }
                }
            }
            None => evaluate_or_worst(self.evaluator, pipeline, fraction, &self.cancel),
        };
        self.clock.note_eval(fraction);
        // lint:allow(nondet): Pick-phase attribution measures algorithm overhead; it never feeds a search decision
        // lint:allow(nondet-flow): reachable from search, but last_eval_end only times the Pick phase for stats output
        self.last_eval_end = Instant::now();
        self.history.push(trial.clone());
        Some(trial)
    }

    /// Evaluate a batch of independent proposals at full training
    /// budget. See [`SearchContext::evaluate_batch_budgeted`].
    pub fn evaluate_batch(&mut self, pipelines: &[Pipeline]) -> Option<Vec<Trial>> {
        self.evaluate_batch_budgeted(pipelines, 1.0)
    }

    /// Evaluate a batch of independent proposals in parallel.
    ///
    /// Returns `None` when the budget was already exhausted. Under an
    /// eval-count budget the batch is truncated to the evaluations that
    /// remain, so the returned vector may be shorter than `pipelines` —
    /// trials still correspond to `pipelines[..len]` in order, and all
    /// of them are appended to the history in that same order, keeping
    /// eval-budget runs identical to the sequential path trial for
    /// trial. Under a pure wall-clock budget the whole batch runs (the
    /// clock is only consulted between batches, exactly as the
    /// sequential path consults it between evaluations).
    pub fn evaluate_batch_budgeted(
        &mut self,
        pipelines: &[Pipeline],
        fraction: f64,
    ) -> Option<Vec<Trial>> {
        if self.clock.exhausted() {
            return None;
        }
        let keep = match self.clock.remaining_evals() {
            Some(n) => pipelines.len().min(n),
            None => pipelines.len(),
        };
        let pipelines = &pipelines[..keep];
        self.pick_time += self.last_eval_end.elapsed();
        let mut batch = BatchEvaluator::new(self.evaluator)
            .with_threads(self.batch_threads)
            .with_cancel(self.cancel.clone());
        if let Some(cache) = self.cache {
            batch = batch.with_cache(cache);
        }
        let trials = batch.evaluate_batch_budgeted(pipelines, fraction);
        for trial in &trials {
            self.clock.note_eval(fraction);
            self.history.push(trial.clone());
        }
        // lint:allow(nondet): Pick-phase attribution measures algorithm overhead; it never feeds a search decision
        // lint:allow(nondet-flow): reachable from search, but last_eval_end only times the Pick phase for stats output
        self.last_eval_end = Instant::now();
        Some(trials)
    }

    /// The evaluator's no-FP baseline accuracy.
    pub fn baseline_accuracy(&self) -> f64 {
        self.evaluator.baseline_accuracy()
    }

    /// Training-set size (rows), available to algorithms that scale
    /// their own parameters (e.g. Hyperband's resource unit).
    pub fn train_rows(&self) -> usize {
        self.evaluator.train_rows()
    }

    /// History so far.
    pub fn history(&self) -> &TrialHistory {
        &self.history
    }

    /// Finish: consume the context, producing the outcome.
    pub fn finish(self, algorithm: &'static str) -> SearchOutcome {
        let (prep, train) = self.history.totals();
        SearchOutcome {
            algorithm,
            breakdown: PhaseBreakdown { pick: self.pick_time, prep, train },
            failures: FailureStats::from_history(&self.history),
            prefix: self.evaluator.prefix_stats(),
            history: self.history,
            elapsed: self.clock.elapsed(),
            cache: self.cache.map(|c| c.stats()),
        }
    }
}

/// Result of one search run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The searcher's display name.
    pub algorithm: &'static str,
    /// Every evaluated trial, in evaluation order.
    pub history: TrialHistory,
    /// Pick/Prep/Train time attribution (Figure 7).
    pub breakdown: PhaseBreakdown,
    /// Count of failed (worst-error) trials, by failure kind.
    pub failures: FailureStats,
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
    /// Snapshot of the attached [`EvalCache`]'s statistics at finish
    /// time; `None` when the run was uncached.
    pub cache: Option<CacheStats>,
    /// Snapshot of the evaluator's prefix-transform cache statistics
    /// ([`crate::PrefixCache`]) at finish time; `None` when the
    /// evaluator holds no prefix cache. When one prefix cache is
    /// shared by several runs, the snapshot covers all of them up to
    /// this finish.
    pub prefix: Option<crate::prefix::PrefixStats>,
}

impl SearchOutcome {
    /// Best trial (fully trained preferred).
    pub fn best(&self) -> Option<&Trial> {
        self.history.best()
    }

    /// Best validation accuracy found (0.0 if no trial ran).
    pub fn best_accuracy(&self) -> f64 {
        self.history.best_accuracy()
    }
}

/// Run a searcher against an evaluator under a budget.
pub fn run_search(
    searcher: &mut dyn Searcher,
    evaluator: &dyn Evaluate,
    budget: Budget,
) -> SearchOutcome {
    let mut ctx = SearchContext::new(evaluator, budget);
    searcher.search(&mut ctx);
    ctx.finish(searcher.name())
}

/// Run a searcher with an attached [`EvalCache`]: duplicate proposals
/// (within this run or from earlier runs sharing the cache) are served
/// from memory, and the outcome carries the cache statistics.
pub fn run_search_cached(
    searcher: &mut dyn Searcher,
    evaluator: &dyn Evaluate,
    budget: Budget,
    cache: &EvalCache,
) -> SearchOutcome {
    run_search_with(searcher, evaluator, budget, None, Some(cache))
}

/// Run a searcher with full control over the context: an explicit
/// batch-evaluation worker count (`None` = available parallelism) and
/// an optional [`EvalCache`].
///
/// This is the bench harness's entry point: matrix cells run their
/// searches single-threaded (`batch_threads = Some(1)`, the paper's
/// `n_jobs = 1`) while the harness parallelizes *across* cells, and
/// every cell of the same (dataset, model) group shares one cache.
pub fn run_search_with(
    searcher: &mut dyn Searcher,
    evaluator: &dyn Evaluate,
    budget: Budget,
    batch_threads: Option<usize>,
    cache: Option<&EvalCache>,
) -> SearchOutcome {
    let mut ctx = SearchContext::new(evaluator, budget);
    if let Some(threads) = batch_threads {
        ctx.set_batch_threads(threads);
    }
    if let Some(cache) = cache {
        ctx.attach_cache(cache);
    }
    searcher.search(&mut ctx);
    ctx.finish(searcher.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{EvalConfig, Evaluator};
    use autofp_data::SynthConfig;
    use autofp_preprocess::{ParamSpace, PreprocKind};

    struct FixedSearcher;
    impl Searcher for FixedSearcher {
        fn name(&self) -> &'static str {
            "FIXED"
        }
        fn search(&mut self, ctx: &mut SearchContext) {
            let space = ParamSpace::default_space();
            let mut rng = autofp_linalg::rng::rng_from_seed(1);
            while ctx.evaluate(&space.sample_pipeline(&mut rng, 4)).is_some() {}
        }
    }

    fn evaluator() -> Evaluator {
        let d = SynthConfig::new("fw", 120, 5, 2, 3).generate();
        Evaluator::new(&d, EvalConfig::default())
    }

    #[test]
    fn budget_limits_evaluations() {
        let ev = evaluator();
        let outcome = run_search(&mut FixedSearcher, &ev, Budget::evals(5));
        assert_eq!(outcome.history.len(), 5);
        assert_eq!(outcome.algorithm, "FIXED");
        assert!(outcome.best_accuracy() > 0.0);
    }

    #[test]
    fn evaluate_returns_none_when_exhausted() {
        let ev = evaluator();
        let mut ctx = SearchContext::new(&ev, Budget::evals(1));
        let p = autofp_preprocess::Pipeline::from_kinds(&[PreprocKind::MinMaxScaler]);
        assert!(ctx.evaluate(&p).is_some());
        assert!(ctx.evaluate(&p).is_none());
        assert!(ctx.exhausted());
    }

    #[test]
    fn breakdown_accounts_all_phases() {
        let ev = evaluator();
        let outcome = run_search(&mut FixedSearcher, &ev, Budget::evals(3));
        let b = outcome.breakdown;
        assert!(b.prep.as_nanos() > 0);
        assert!(b.train.as_nanos() > 0);
        let (pick, prep, train) = b.percentages();
        assert!((pick + prep + train - 100.0).abs() < 1e-6);
    }

    #[test]
    fn batch_truncates_to_eval_budget_and_fills_history_in_order() {
        let ev = evaluator();
        let mut ctx = SearchContext::new(&ev, Budget::evals(3));
        let space = ParamSpace::default_space();
        let mut rng = autofp_linalg::rng::rng_from_seed(5);
        let batch: Vec<_> = (0..5).map(|_| space.sample_pipeline(&mut rng, 4)).collect();
        let trials = ctx.evaluate_batch(&batch).expect("budget not exhausted");
        assert_eq!(trials.len(), 3, "truncated to remaining evals");
        for (t, p) in trials.iter().zip(&batch) {
            assert_eq!(t.pipeline.key(), p.key());
        }
        assert!(ctx.exhausted());
        assert!(ctx.evaluate_batch(&batch).is_none());
        let outcome = ctx.finish("BATCH");
        assert_eq!(outcome.history.len(), 3);
        assert!(outcome.cache.is_none());
    }

    #[test]
    fn cached_run_records_stats_and_hits_on_duplicates() {
        let ev = evaluator();
        let cache = crate::cache::EvalCache::new();
        let mut ctx = SearchContext::new(&ev, Budget::evals(4));
        ctx.attach_cache(&cache);
        let p = autofp_preprocess::Pipeline::from_kinds(&[PreprocKind::MinMaxScaler]);
        let a = ctx.evaluate(&p).expect("first");
        let b = ctx.evaluate(&p).expect("second — a cache hit, still budgeted");
        assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        let outcome = ctx.finish("CACHED");
        assert_eq!(outcome.history.len(), 2, "hits still enter history");
        let stats = outcome.cache.expect("stats snapshotted");
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn cached_search_matches_uncached_trial_for_trial() {
        let ev = evaluator();
        let plain = run_search(&mut FixedSearcher, &ev, Budget::evals(6));
        let cache = crate::cache::EvalCache::new();
        let cached = run_search_cached(&mut FixedSearcher, &ev, Budget::evals(6), &cache);
        assert_eq!(plain.history.len(), cached.history.len());
        for (a, b) in plain.history.trials().iter().zip(cached.history.trials()) {
            assert_eq!(a.pipeline.key(), b.pipeline.key());
            assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        }
        assert!(cached.cache.is_some());
    }

    #[test]
    fn prefix_stats_snapshot_into_outcome_and_preserve_results() {
        let plain_ev = evaluator();
        let prefix_ev = evaluator().with_prefix_cache(crate::prefix::SharedPrefixCache::new());
        let plain = run_search(&mut FixedSearcher, &plain_ev, Budget::evals(6));
        let prefixed = run_search(&mut FixedSearcher, &prefix_ev, Budget::evals(6));
        assert!(plain.prefix.is_none());
        let stats = prefixed.prefix.expect("prefix stats snapshotted");
        assert!(stats.lookups() > 0);
        for (a, b) in plain.history.trials().iter().zip(prefixed.history.trials()) {
            assert_eq!(a.pipeline.key(), b.pipeline.key());
            assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        }
    }

    #[test]
    fn best_accuracy_is_max_over_history() {
        let ev = evaluator();
        let outcome = run_search(&mut FixedSearcher, &ev, Budget::evals(8));
        let max = outcome
            .history
            .trials()
            .iter()
            .map(|t| t.accuracy)
            .fold(0.0_f64, f64::max);
        assert_eq!(outcome.best_accuracy(), max);
    }
}
