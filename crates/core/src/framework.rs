//! The unified search framework (Algorithm 1 of the paper).
//!
//! Every search algorithm interacts with the benchmark exclusively
//! through a [`SearchContext`]: it asks for evaluations, the context
//! enforces the budget, records trials, and — by timing the gaps
//! *between* evaluations — attributes algorithm-side overhead to the
//! "Pick" phase of the Figure 7 breakdown (Steps 2-3 of Algorithm 1),
//! while the evaluator attributes "Prep" and "Train" (Step 4).

use crate::budget::{Budget, BudgetClock};
use crate::evaluator::Evaluator;
use crate::history::{PhaseBreakdown, Trial, TrialHistory};
use autofp_preprocess::Pipeline;
use std::time::{Duration, Instant};

/// A pipeline search algorithm (one of the paper's 15, or an extension).
pub trait Searcher {
    /// Display name as used in the paper's tables ("RS", "PBT", ...).
    fn name(&self) -> &'static str;

    /// Run until the context's budget is exhausted.
    ///
    /// Implementations should call [`SearchContext::evaluate`] in a loop
    /// and return when it yields `None` (budget exhausted). Returning
    /// early is allowed (e.g. an exhaustive searcher that finishes).
    fn search(&mut self, ctx: &mut SearchContext);
}

/// Everything a searcher may touch: evaluation, budget state, history.
pub struct SearchContext<'a> {
    evaluator: &'a Evaluator,
    clock: BudgetClock,
    history: TrialHistory,
    pick_time: Duration,
    last_eval_end: Instant,
}

impl<'a> SearchContext<'a> {
    /// Start a context over an evaluator with a budget.
    pub fn new(evaluator: &'a Evaluator, budget: Budget) -> SearchContext<'a> {
        SearchContext {
            evaluator,
            clock: budget.start(),
            history: TrialHistory::new(),
            pick_time: Duration::ZERO,
            last_eval_end: Instant::now(),
        }
    }

    /// True once the budget is exhausted; searchers should then return.
    pub fn exhausted(&self) -> bool {
        self.clock.exhausted()
    }

    /// Remaining budget fraction in `[0, 1]`.
    pub fn remaining_fraction(&self) -> f64 {
        self.clock.remaining_fraction()
    }

    /// Evaluate a pipeline at full training budget. Returns `None` when
    /// the budget was already exhausted (the trial is *not* run).
    pub fn evaluate(&mut self, pipeline: &Pipeline) -> Option<Trial> {
        self.evaluate_budgeted(pipeline, 1.0)
    }

    /// Evaluate with a fractional training budget (bandit rungs).
    pub fn evaluate_budgeted(&mut self, pipeline: &Pipeline, fraction: f64) -> Option<Trial> {
        if self.clock.exhausted() {
            return None;
        }
        // Time since the previous evaluation ended is algorithm overhead.
        self.pick_time += self.last_eval_end.elapsed();
        let trial = self.evaluator.evaluate_budgeted(pipeline, fraction);
        self.clock.note_eval(fraction);
        self.last_eval_end = Instant::now();
        self.history.push(trial.clone());
        Some(trial)
    }

    /// The evaluator's no-FP baseline accuracy.
    pub fn baseline_accuracy(&self) -> f64 {
        self.evaluator.baseline_accuracy()
    }

    /// Training-set size (rows), available to algorithms that scale
    /// their own parameters (e.g. Hyperband's resource unit).
    pub fn train_rows(&self) -> usize {
        self.evaluator.split().train.n_rows()
    }

    /// History so far.
    pub fn history(&self) -> &TrialHistory {
        &self.history
    }

    /// Finish: consume the context, producing the outcome.
    pub fn finish(self, algorithm: &'static str) -> SearchOutcome {
        let (prep, train) = self.history.totals();
        SearchOutcome {
            algorithm,
            breakdown: PhaseBreakdown { pick: self.pick_time, prep, train },
            history: self.history,
            elapsed: self.clock.elapsed(),
        }
    }
}

/// Result of one search run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The searcher's display name.
    pub algorithm: &'static str,
    /// Every evaluated trial, in evaluation order.
    pub history: TrialHistory,
    /// Pick/Prep/Train time attribution (Figure 7).
    pub breakdown: PhaseBreakdown,
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
}

impl SearchOutcome {
    /// Best trial (fully trained preferred).
    pub fn best(&self) -> Option<&Trial> {
        self.history.best()
    }

    /// Best validation accuracy found (0.0 if no trial ran).
    pub fn best_accuracy(&self) -> f64 {
        self.history.best_accuracy()
    }
}

/// Run a searcher against an evaluator under a budget.
pub fn run_search(
    searcher: &mut dyn Searcher,
    evaluator: &Evaluator,
    budget: Budget,
) -> SearchOutcome {
    let mut ctx = SearchContext::new(evaluator, budget);
    searcher.search(&mut ctx);
    ctx.finish(searcher.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::EvalConfig;
    use autofp_data::SynthConfig;
    use autofp_preprocess::{ParamSpace, PreprocKind};

    struct FixedSearcher;
    impl Searcher for FixedSearcher {
        fn name(&self) -> &'static str {
            "FIXED"
        }
        fn search(&mut self, ctx: &mut SearchContext) {
            let space = ParamSpace::default_space();
            let mut rng = autofp_linalg::rng::rng_from_seed(1);
            while ctx.evaluate(&space.sample_pipeline(&mut rng, 4)).is_some() {}
        }
    }

    fn evaluator() -> Evaluator {
        let d = SynthConfig::new("fw", 120, 5, 2, 3).generate();
        Evaluator::new(&d, EvalConfig::default())
    }

    #[test]
    fn budget_limits_evaluations() {
        let ev = evaluator();
        let outcome = run_search(&mut FixedSearcher, &ev, Budget::evals(5));
        assert_eq!(outcome.history.len(), 5);
        assert_eq!(outcome.algorithm, "FIXED");
        assert!(outcome.best_accuracy() > 0.0);
    }

    #[test]
    fn evaluate_returns_none_when_exhausted() {
        let ev = evaluator();
        let mut ctx = SearchContext::new(&ev, Budget::evals(1));
        let p = autofp_preprocess::Pipeline::from_kinds(&[PreprocKind::MinMaxScaler]);
        assert!(ctx.evaluate(&p).is_some());
        assert!(ctx.evaluate(&p).is_none());
        assert!(ctx.exhausted());
    }

    #[test]
    fn breakdown_accounts_all_phases() {
        let ev = evaluator();
        let outcome = run_search(&mut FixedSearcher, &ev, Budget::evals(3));
        let b = outcome.breakdown;
        assert!(b.prep.as_nanos() > 0);
        assert!(b.train.as_nanos() > 0);
        let (pick, prep, train) = b.percentages();
        assert!((pick + prep + train - 100.0).abs() < 1e-6);
    }

    #[test]
    fn best_accuracy_is_max_over_history() {
        let ev = evaluator();
        let outcome = run_search(&mut FixedSearcher, &ev, Budget::evals(8));
        let max = outcome
            .history
            .trials()
            .iter()
            .map(|t| t.accuracy)
            .fold(0.0_f64, f64::max);
        assert_eq!(outcome.best_accuracy(), max);
    }
}
