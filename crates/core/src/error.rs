//! The evaluation-failure taxonomy.
//!
//! Real AutoML runs hit pathological pipelines constantly — a
//! `PowerTransformer` that maps a heavy-tailed column to infinity, a
//! quantile discretizer handed a single distinct value, a trainer that
//! diverges on unscaled data. Following the scikit-learn
//! `error_score` convention, a failed pipeline is not a crashed run:
//! it is a *worst-error trial* (error = 1.0 per Eq. 2 of the paper)
//! that the searcher sees and steers away from.
//!
//! [`EvalError`] carries the diagnostic detail; [`FailureKind`] is its
//! cheap, copyable discriminant stored on failed [`Trial`]s and
//! tallied by [`FailureStats`].
//!
//! [`Trial`]: crate::history::Trial

use crate::history::TrialHistory;

/// Why a pipeline evaluation failed.
///
/// Each variant corresponds to a distinct fault class observed when
/// running the paper's 7 preprocessors × 3 models over raw tabular
/// data; see the crate-level docs for how each is detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A preprocessor turned finite input into NaN/±inf output.
    ///
    /// Only raised when the *input* was finite: datasets that already
    /// contain NaN columns are the trainers' job to tolerate, not an
    /// evaluation failure.
    NonFiniteTransform {
        /// Which stage produced the non-finite values, and where.
        detail: String,
    },
    /// The training matrix is unusable (zero rows or zero columns).
    DegenerateMatrix {
        /// What about the matrix shape is degenerate.
        detail: String,
    },
    /// The trainer produced a non-finite validation score.
    TrainerDiverged {
        /// Which metric was non-finite.
        detail: String,
    },
    /// The evaluation panicked; the panic was caught at the trial
    /// boundary so it costs one trial, not the run.
    Panic {
        /// Best-effort panic payload rendered as text.
        message: String,
    },
    /// The wall-clock budget deadline passed before or during the
    /// evaluation. Unlike the other kinds this is circumstantial, so
    /// it is never cached.
    DeadlineExceeded,
    /// A remote evaluation could not be completed: the worker died,
    /// the connection timed out, or a wire frame was malformed. Like
    /// [`EvalError::DeadlineExceeded`] this is circumstantial (the
    /// pipeline itself is fine), so it is never cached; unlike every
    /// other kind it is retryable.
    Transport {
        /// What failed at the transport layer.
        detail: String,
    },
}

impl EvalError {
    /// The copyable discriminant for this error.
    pub fn kind(&self) -> FailureKind {
        match self {
            EvalError::NonFiniteTransform { .. } => FailureKind::NonFinite,
            EvalError::DegenerateMatrix { .. } => FailureKind::Degenerate,
            EvalError::TrainerDiverged { .. } => FailureKind::Diverged,
            EvalError::Panic { .. } => FailureKind::Panic,
            EvalError::DeadlineExceeded => FailureKind::Deadline,
            EvalError::Transport { .. } => FailureKind::Transport,
        }
    }
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::NonFiniteTransform { detail } => {
                write!(f, "non-finite transform output: {detail}")
            }
            EvalError::DegenerateMatrix { detail } => {
                write!(f, "degenerate training matrix: {detail}")
            }
            EvalError::TrainerDiverged { detail } => {
                write!(f, "trainer diverged: {detail}")
            }
            EvalError::Panic { message } => write!(f, "evaluation panicked: {message}"),
            EvalError::DeadlineExceeded => write!(f, "wall-clock budget deadline exceeded"),
            EvalError::Transport { detail } => write!(f, "transport failure: {detail}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The discriminant of an [`EvalError`]: what *kind* of failure a
/// trial suffered, without the diagnostic payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// Finite input became NaN/±inf after preprocessing.
    NonFinite,
    /// Training matrix had zero rows or zero columns.
    Degenerate,
    /// Trainer produced a non-finite validation score.
    Diverged,
    /// The evaluation panicked and was caught.
    Panic,
    /// The wall-clock deadline passed.
    Deadline,
    /// A remote evaluation failed at the transport layer (dead worker,
    /// timeout, malformed frame).
    Transport,
}

impl FailureKind {
    /// All kinds, in reporting order.
    pub const ALL: [FailureKind; 6] = [
        FailureKind::NonFinite,
        FailureKind::Degenerate,
        FailureKind::Diverged,
        FailureKind::Panic,
        FailureKind::Deadline,
        FailureKind::Transport,
    ];

    /// Stable short name used in reports and stats tables.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::NonFinite => "non-finite",
            FailureKind::Degenerate => "degenerate",
            FailureKind::Diverged => "diverged",
            FailureKind::Panic => "panic",
            FailureKind::Deadline => "deadline",
            FailureKind::Transport => "transport",
        }
    }

    /// Stable position in [`FailureKind::ALL`] — the wire code the
    /// serve protocol uses for quarantine reasons.
    pub fn index(self) -> usize {
        match self {
            FailureKind::NonFinite => 0,
            FailureKind::Degenerate => 1,
            FailureKind::Diverged => 2,
            FailureKind::Panic => 3,
            FailureKind::Deadline => 4,
            FailureKind::Transport => 5,
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-run tally of evaluation failures, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureStats {
    counts: [u64; FailureKind::ALL.len()],
}

impl FailureStats {
    /// Empty tally.
    pub fn new() -> FailureStats {
        FailureStats::default()
    }

    /// Tally every failed trial in a history.
    pub fn from_history(history: &TrialHistory) -> FailureStats {
        let mut stats = FailureStats::new();
        for trial in history.trials() {
            if let Some(kind) = trial.failure {
                stats.record(kind);
            }
        }
        stats
    }

    /// Count one failure of the given kind.
    pub fn record(&mut self, kind: FailureKind) {
        self.counts[kind.index()] += 1;
    }

    /// Failures of one kind.
    pub fn count(&self, kind: FailureKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Failures of any kind.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fold another tally into this one (counts summed per kind).
    /// Used to aggregate per-cell tallies into matrix-level totals.
    pub fn absorb(&mut self, other: &FailureStats) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_matches_variant() {
        let cases: [(EvalError, FailureKind); 6] = [
            (
                EvalError::NonFiniteTransform { detail: "x".into() },
                FailureKind::NonFinite,
            ),
            (
                EvalError::DegenerateMatrix { detail: "x".into() },
                FailureKind::Degenerate,
            ),
            (
                EvalError::TrainerDiverged { detail: "x".into() },
                FailureKind::Diverged,
            ),
            (EvalError::Panic { message: "x".into() }, FailureKind::Panic),
            (EvalError::DeadlineExceeded, FailureKind::Deadline),
            (
                EvalError::Transport { detail: "x".into() },
                FailureKind::Transport,
            ),
        ];
        for (err, kind) in cases {
            assert_eq!(err.kind(), kind);
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn all_kinds_have_unique_names_and_indices() {
        let names: std::collections::HashSet<_> =
            FailureKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), FailureKind::ALL.len());
        let indices: std::collections::HashSet<_> =
            FailureKind::ALL.iter().map(|k| k.index()).collect();
        assert_eq!(indices.len(), FailureKind::ALL.len());
    }

    #[test]
    fn stats_tally_by_kind() {
        let mut s = FailureStats::new();
        s.record(FailureKind::Panic);
        s.record(FailureKind::Panic);
        s.record(FailureKind::Deadline);
        assert_eq!(s.count(FailureKind::Panic), 2);
        assert_eq!(s.count(FailureKind::Deadline), 1);
        assert_eq!(s.count(FailureKind::NonFinite), 0);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn absorb_sums_counts_per_kind() {
        let mut a = FailureStats::new();
        a.record(FailureKind::Panic);
        let mut b = FailureStats::new();
        b.record(FailureKind::Panic);
        b.record(FailureKind::Deadline);
        a.absorb(&b);
        assert_eq!(a.count(FailureKind::Panic), 2);
        assert_eq!(a.count(FailureKind::Deadline), 1);
        assert_eq!(a.total(), 3);
    }
}
