//! Pipeline-error evaluation (Eq. 2 / Definition 3 of the paper).
//!
//! # Fault tolerance
//!
//! Evaluation is the one place a search run touches numerically
//! hostile code (preprocessor math, trainer loops), so it is the one
//! place failures are contained. The [`Evaluate`] trait splits the
//! path in two:
//!
//! - [`Evaluate::evaluate_raw`] is the *unshielded* required method:
//!   it returns `Result<Trial, EvalError>` for failures it can detect,
//!   but is allowed to panic.
//! - The provided `try_*` methods are the *shielded* entry points:
//!   they wrap `evaluate_raw` in [`std::panic::catch_unwind`], so one
//!   panicking pipeline costs one [`EvalError::Panic`] — never the
//!   run. Searchers and the batch layer only ever call these.
//!
//! A failed evaluation is converted (by [`evaluate_or_worst`], the
//! batch layer, or the search framework) into a worst-error trial:
//! accuracy 0, error 1 per Eq. 2, mirroring scikit-learn's
//! `error_score` convention, so every searcher keeps running
//! deterministically through faults.

use crate::cache::{CacheKey, EvalCache};
use crate::error::EvalError;
use crate::history::Trial;
use crate::prefix::{PrefixKey, PrefixStats, SharedPrefixCache};
use autofp_data::{Dataset, Split};
use autofp_linalg::Matrix;
use autofp_models::classifier::{ModelKind, Trainer};
use autofp_models::metrics::accuracy;
use autofp_models::CancelToken;
use autofp_preprocess::Pipeline;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Configuration of an evaluator.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Downstream model family.
    pub model: ModelKind,
    /// Train fraction for the split (paper: 0.8).
    pub train_fraction: f64,
    /// Split / training seed.
    pub seed: u64,
    /// Cap on training rows used per evaluation (stratified subsample;
    /// validation is untouched). This is the §8 "reduce data size to
    /// mitigate the performance bottleneck" extension: searches explore
    /// more pipelines per second at some fidelity cost.
    pub train_subsample: Option<usize>,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig { model: ModelKind::Lr, train_fraction: 0.8, seed: 0, train_subsample: None }
    }
}

/// Best-effort rendering of a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The pipeline-evaluation interface searchers and the batch layer
/// program against.
///
/// [`Evaluator`] is the real implementation; [`crate::FaultInjector`]
/// wraps any implementation to inject deterministic faults for
/// resilience testing. `&Evaluator` coerces to `&dyn Evaluate` at
/// call sites, so code written against the concrete type keeps
/// compiling.
pub trait Evaluate: Send + Sync {
    /// Evaluate `pipeline` at training-budget `fraction`, polling
    /// `cancel` inside trainer loops.
    ///
    /// This is the unshielded method: it reports detectable failures
    /// as `Err`, but **may panic** (a fault injector does so on
    /// purpose). Callers must go through the shielded `try_*` methods
    /// instead of calling this directly.
    fn evaluate_raw(
        &self,
        pipeline: &Pipeline,
        fraction: f64,
        cancel: &CancelToken,
    ) -> Result<Trial, EvalError>;

    /// The evaluation configuration (used for cache keys).
    fn config(&self) -> &EvalConfig;

    /// Validation accuracy with no preprocessing (the paper's "no-FP"
    /// baseline).
    fn baseline_accuracy(&self) -> f64;

    /// Number of training rows this evaluator fits on.
    fn train_rows(&self) -> usize;

    /// Counter snapshot of the attached prefix-transform cache, if the
    /// implementation holds one ([`Evaluator::with_prefix_cache`]).
    /// Wrappers delegate; implementations without a local cache (e.g.
    /// [`crate::RemoteEvaluator`], whose workers own theirs) keep the
    /// `None` default.
    fn prefix_stats(&self) -> Option<PrefixStats> {
        None
    }

    /// Shielded evaluation with cooperative cancellation: catches any
    /// panic from [`Evaluate::evaluate_raw`] and maps it to
    /// [`EvalError::Panic`], so one pathological pipeline costs one
    /// trial, never the run.
    fn try_evaluate_cancellable(
        &self,
        pipeline: &Pipeline,
        fraction: f64,
        cancel: &CancelToken,
    ) -> Result<Trial, EvalError> {
        if cancel.is_cancelled() {
            return Err(EvalError::DeadlineExceeded);
        }
        match catch_unwind(AssertUnwindSafe(|| self.evaluate_raw(pipeline, fraction, cancel))) {
            Ok(result) => result,
            Err(payload) => Err(EvalError::Panic { message: panic_message(payload.as_ref()) }),
        }
    }

    /// Shielded evaluation without a deadline.
    fn try_evaluate_budgeted(&self, pipeline: &Pipeline, fraction: f64) -> Result<Trial, EvalError> {
        self.try_evaluate_cancellable(pipeline, fraction, &CancelToken::new())
    }

    /// Shielded evaluation at full training budget.
    fn try_evaluate(&self, pipeline: &Pipeline) -> Result<Trial, EvalError> {
        self.try_evaluate_budgeted(pipeline, 1.0)
    }
}

/// Shielded evaluation that never fails: an `Err` becomes the
/// worst-error trial for `pipeline` (accuracy 0, error 1, tagged with
/// the [`crate::FailureKind`]). This is the total function searchers
/// rely on to keep running through faults.
pub fn evaluate_or_worst(
    evaluator: &dyn Evaluate,
    pipeline: &Pipeline,
    fraction: f64,
    cancel: &CancelToken,
) -> Trial {
    evaluator
        .try_evaluate_cancellable(pipeline, fraction, cancel)
        .unwrap_or_else(|err| Trial::failed(pipeline.clone(), err.kind(), fraction.clamp(0.0, 1.0)))
}

/// Evaluates pipelines: transform train+valid, train the downstream
/// model, report validation accuracy — with per-phase timing.
///
/// An `Evaluator` is immutable after construction and `Send + Sync`
/// ([`Trainer`] requires both), so a [`crate::BatchEvaluator`] can
/// share one instance across worker threads by reference.
pub struct Evaluator {
    split: Split,
    trainer: Box<dyn Trainer>,
    config: EvalConfig,
    baseline: f64,
    // Whether the raw train/valid inputs are fully finite. Non-finite
    // *output* of a preprocessor is only an evaluation failure when
    // the input was finite; datasets that arrive with NaN/inf columns
    // are the trainers' job to tolerate (they sanitize), matching the
    // poisoned-dataset tests.
    train_input_finite: bool,
    valid_input_finite: bool,
    // Optional prefix-transform cache (see `crate::prefix`): when
    // attached, `evaluate_raw` resumes from the deepest cached prefix
    // of each pipeline and stores every newly computed prefix state.
    prefix_cache: Option<SharedPrefixCache>,
}

// Compile-time proof of the Sync-friendliness the batch layer relies
// on; fails to build if a future field breaks it.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Evaluator>();
};

fn all_finite(m: &autofp_linalg::Matrix) -> bool {
    m.as_slice().iter().all(|v| v.is_finite())
}

impl Evaluator {
    /// Build from a dataset: performs the stratified 80:20 split, then
    /// measures the no-FP baseline accuracy once.
    pub fn new(dataset: &Dataset, config: EvalConfig) -> Evaluator {
        let split = dataset.stratified_split(config.train_fraction, config.seed);
        Self::from_split(split, config)
    }

    /// Build from a pre-made split.
    pub fn from_split(mut split: Split, config: EvalConfig) -> Evaluator {
        if let Some(cap) = config.train_subsample {
            split.train = split.train.subsample(cap, config.seed);
        }
        let trainer = config.model.trainer(config.seed);
        let train_input_finite = all_finite(&split.train.x);
        let valid_input_finite = all_finite(&split.valid.x);
        let mut ev = Evaluator {
            split,
            trainer,
            config,
            baseline: 0.0,
            train_input_finite,
            valid_input_finite,
            prefix_cache: None,
        };
        ev.baseline = ev.evaluate(&Pipeline::empty()).accuracy;
        ev
    }

    /// The downstream model family.
    pub fn model(&self) -> ModelKind {
        self.config.model
    }

    /// The configuration this evaluator was built with (cache keys
    /// include it, so trials never leak across configurations).
    /// Inherent mirror of [`Evaluate::config`] so callers don't need
    /// the trait in scope.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Validation accuracy with no preprocessing (the paper's "no-FP"
    /// red line in Figure 2 and the baseline of the ranking filter).
    /// Inherent mirror of [`Evaluate::baseline_accuracy`].
    pub fn baseline_accuracy(&self) -> f64 {
        self.baseline
    }

    /// The underlying split.
    pub fn split(&self) -> &Split {
        &self.split
    }

    /// Attach a prefix-transform cache ([`crate::PrefixCache`]): every
    /// evaluation resumes from the deepest cached prefix of its
    /// pipeline and memoizes each newly computed prefix state, so
    /// pipelines sharing a prefix pay only for their suffix. Results
    /// stay bit-identical with or without the cache — only wall-clock
    /// attribution and cache counters change (see `crate::prefix`).
    ///
    /// Prefix keys exclude the model, so one cache may be shared by
    /// evaluators of *different models over the same dataset* — but
    /// never across datasets.
    pub fn with_prefix_cache(mut self, cache: SharedPrefixCache) -> Evaluator {
        self.prefix_cache = Some(cache);
        self
    }

    /// The attached prefix cache, if any.
    pub fn prefix_cache(&self) -> Option<&SharedPrefixCache> {
        self.prefix_cache.as_ref()
    }

    /// Transform train + valid through `pipeline`, resuming from the
    /// deepest cached prefix and caching every prefix state computed
    /// on the way. Applies the suffix step-by-step with the exact
    /// `fit_transform` calls the uncached whole-pipeline path runs, so
    /// outputs are bit-identical to [`Pipeline::fit_transform`] +
    /// `transform_new` on the raw split.
    fn prefix_transform(&self, pipeline: &Pipeline, cache: &SharedPrefixCache) -> (Matrix, Matrix) {
        let keys = PrefixKey::all_prefixes(pipeline, &self.config);
        let (start, mut train, mut valid, mut cost) = match cache.lookup_longest(&keys) {
            Some(hit) => (hit.depth, hit.train, hit.valid, hit.cost),
            None => (0, self.split.train.x.clone(), self.split.valid.x.clone(), Duration::ZERO),
        };
        for (i, step) in pipeline.steps().iter().enumerate().skip(start) {
            // lint:allow(nondet): per-prefix cost attribution feeds CacheStats-style `saved` accounting, never a search decision
            // lint:allow(nondet-flow): reachable from search, but the reading only feeds cost accounting, never scores or proposals
            let step_start = Instant::now();
            let fitted = step.fit_transform(&mut train);
            fitted.transform(&mut valid);
            cost += step_start.elapsed();
            cache.insert(&keys[i], &train, &valid, i + 1, cost);
        }
        (train, valid)
    }

    /// Evaluate a pipeline at full training budget.
    ///
    /// Infallible wrapper: a failed evaluation yields the worst-error
    /// trial rather than an `Err` (use [`Evaluate::try_evaluate`] to
    /// observe the failure itself).
    pub fn evaluate(&self, pipeline: &Pipeline) -> Trial {
        self.evaluate_budgeted(pipeline, 1.0)
    }

    /// Evaluate a pipeline with a fractional training budget (Hyperband
    /// rungs pass `fraction < 1`). Infallible: failures become
    /// worst-error trials.
    pub fn evaluate_budgeted(&self, pipeline: &Pipeline, fraction: f64) -> Trial {
        evaluate_or_worst(self, pipeline, fraction, &CancelToken::new())
    }

    /// Evaluate through a cache: a hit returns the memoized [`Trial`]
    /// bit-identically (including its originally measured prep/train
    /// times, preserving the paper's Figure 7 time attribution); a miss
    /// evaluates and memoizes. Saved wall-clock is tracked in
    /// [`crate::CacheStats::saved`].
    pub fn evaluate_cached(
        &self,
        pipeline: &Pipeline,
        fraction: f64,
        cache: &EvalCache,
    ) -> Trial {
        let key = CacheKey::new(pipeline, fraction, &self.config);
        if let Some(trial) = cache.lookup(&key) {
            return trial;
        }
        let trial = self.evaluate_budgeted(pipeline, fraction);
        cache.insert(&key, &trial);
        trial
    }
}

impl Evaluate for Evaluator {
    fn evaluate_raw(
        &self,
        pipeline: &Pipeline,
        fraction: f64,
        cancel: &CancelToken,
    ) -> Result<Trial, EvalError> {
        // Prep: fit on train, transform train + valid. With a prefix
        // cache attached, resume from the deepest cached prefix; the
        // suffix runs the same per-step float ops in the same order,
        // so the matrices are bit-identical either way. On a hit,
        // `prep_time` records only the suffix work actually done (the
        // skipped share is tracked in `PrefixStats::saved`).
        // lint:allow(nondet): Prep-phase attribution (Figure 7) measures time; it never feeds a search decision
        // lint:allow(nondet-flow): reachable from search, but prep_time is reporting-only; scores stay a pure function of the data
        let prep_start = Instant::now();
        let (train_x, valid_x) = match &self.prefix_cache {
            Some(cache) if !pipeline.is_empty() => self.prefix_transform(pipeline, cache),
            _ => {
                let (fitted, train_x) = pipeline.fit_transform(&self.split.train.x);
                let valid_x = fitted.transform_new(&self.split.valid.x);
                (train_x, valid_x)
            }
        };
        let prep_time = prep_start.elapsed();

        // A preprocessor that maps finite input to NaN/inf has failed
        // (e.g. a power transform overflowing on heavy tails). Inputs
        // that were already non-finite are exempt: trainers sanitize.
        if self.train_input_finite && !all_finite(&train_x) {
            return Err(EvalError::NonFiniteTransform {
                detail: format!("train matrix after `{}`", pipeline.key()),
            });
        }
        if self.valid_input_finite && !all_finite(&valid_x) {
            return Err(EvalError::NonFiniteTransform {
                detail: format!("valid matrix after `{}`", pipeline.key()),
            });
        }

        // Degenerate shapes no trainer can fit. Kept deliberately
        // narrow: constant or low-information features still train
        // (the model falls back toward majority-class behavior).
        let (n, d) = train_x.shape();
        if n == 0 || d == 0 {
            return Err(EvalError::DegenerateMatrix {
                detail: format!("train matrix is {n}x{d}"),
            });
        }

        if cancel.is_cancelled() {
            return Err(EvalError::DeadlineExceeded);
        }

        // Train: fit the downstream model and score validation data.
        // lint:allow(nondet): Train-phase attribution (Figure 7) measures time; it never feeds a search decision
        let train_start = Instant::now();
        let model = self.trainer.fit_cancellable(
            &train_x,
            &self.split.train.y,
            self.split.train.n_classes,
            fraction,
            cancel,
        );
        let preds = model.predict(&valid_x);
        let train_time = train_start.elapsed();

        // The deadline passing *during* the fit means the model above
        // is partially trained by an amount that depends on wall-clock
        // scheduling; recording its score would be nondeterministic.
        if cancel.is_cancelled() {
            return Err(EvalError::DeadlineExceeded);
        }

        let acc = accuracy(&self.split.valid.y, &preds);
        if !acc.is_finite() {
            return Err(EvalError::TrainerDiverged {
                detail: format!("validation accuracy = {acc}"),
            });
        }
        Ok(Trial {
            pipeline: pipeline.clone(),
            accuracy: acc,
            error: 1.0 - acc,
            prep_time,
            train_time,
            train_fraction: fraction.clamp(0.0, 1.0),
            failure: None,
        })
    }

    fn config(&self) -> &EvalConfig {
        &self.config
    }

    fn baseline_accuracy(&self) -> f64 {
        self.baseline
    }

    fn train_rows(&self) -> usize {
        self.split.train.n_rows()
    }

    fn prefix_stats(&self) -> Option<PrefixStats> {
        self.prefix_cache.as_ref().map(|c| c.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_data::{Personality, SynthConfig};
    use autofp_preprocess::PreprocKind;

    fn scale_spread_dataset() -> Dataset {
        let mut p = Personality::default();
        p.scale_spread = 6.0;
        p.skew = 0.4;
        p.class_sep = 2.0;
        p.label_noise = 0.0;
        SynthConfig::new("eval-ds", 400, 8, 2, 41).with_personality(p).generate()
    }

    #[test]
    fn baseline_matches_empty_pipeline() {
        let d = scale_spread_dataset();
        let ev = Evaluator::new(&d, EvalConfig::default());
        let t = ev.evaluate(&Pipeline::empty());
        assert!((t.accuracy - ev.baseline_accuracy()).abs() < 1e-12);
        assert!((t.accuracy + t.error - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standard_scaler_beats_baseline_on_spread_data() {
        let d = scale_spread_dataset();
        let ev = Evaluator::new(&d, EvalConfig::default());
        let t = ev.evaluate(&Pipeline::from_kinds(&[PreprocKind::StandardScaler]));
        assert!(
            t.accuracy > ev.baseline_accuracy() + 0.02,
            "scaled {} vs baseline {}",
            t.accuracy,
            ev.baseline_accuracy()
        );
    }

    #[test]
    fn evaluation_is_deterministic() {
        let d = scale_spread_dataset();
        let ev = Evaluator::new(&d, EvalConfig::default());
        let p = Pipeline::from_kinds(&[PreprocKind::MinMaxScaler, PreprocKind::PowerTransformer]);
        let a = ev.evaluate(&p).accuracy;
        let b = ev.evaluate(&p).accuracy;
        assert_eq!(a, b);
    }

    #[test]
    fn timings_are_recorded() {
        let d = scale_spread_dataset();
        let ev = Evaluator::new(&d, EvalConfig::default());
        let t = ev.evaluate(&Pipeline::from_kinds(&[PreprocKind::PowerTransformer]));
        assert!(t.prep_time.as_nanos() > 0);
        assert!(t.train_time.as_nanos() > 0);
        assert!(!t.is_failed());
    }

    #[test]
    fn budgeted_evaluation_records_fraction() {
        let d = scale_spread_dataset();
        let ev = Evaluator::new(&d, EvalConfig { model: ModelKind::Xgb, ..Default::default() });
        let t = ev.evaluate_budgeted(&Pipeline::empty(), 0.25);
        assert!((t.train_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn train_subsample_caps_training_rows_only() {
        let d = scale_spread_dataset();
        let ev = Evaluator::new(
            &d,
            EvalConfig { train_subsample: Some(50), ..Default::default() },
        );
        assert_eq!(ev.split().train.n_rows(), 50);
        assert_eq!(ev.train_rows(), 50);
        // Validation keeps its full 20%.
        assert_eq!(ev.split().valid.n_rows(), 80);
        let t = ev.evaluate(&Pipeline::from_kinds(&[PreprocKind::StandardScaler]));
        assert!((0.0..=1.0).contains(&t.accuracy));
    }

    #[test]
    fn all_three_model_kinds_evaluate() {
        let d = SynthConfig::new("eval-3m", 150, 5, 3, 7).generate();
        for model in ModelKind::ALL {
            let ev = Evaluator::new(&d, EvalConfig { model, seed: 1, ..Default::default() });
            let t = ev.evaluate(&Pipeline::from_kinds(&[PreprocKind::MinMaxScaler]));
            assert!((0.0..=1.0).contains(&t.accuracy), "{model}: {}", t.accuracy);
        }
    }

    #[test]
    fn prefix_cache_is_bit_identical_and_skips_steps() {
        use crate::prefix::SharedPrefixCache;
        let d = scale_spread_dataset();
        let plain = Evaluator::new(&d, EvalConfig::default());
        let cached = Evaluator::new(&d, EvalConfig::default())
            .with_prefix_cache(SharedPrefixCache::new());

        // Pipelines sharing the [Standard, Power] prefix, evaluated in
        // an order that exercises extension, exact replay, and a
        // diverging suffix.
        let family = [
            Pipeline::from_kinds(&[PreprocKind::StandardScaler]),
            Pipeline::from_kinds(&[PreprocKind::StandardScaler, PreprocKind::PowerTransformer]),
            Pipeline::from_kinds(&[
                PreprocKind::StandardScaler,
                PreprocKind::PowerTransformer,
                PreprocKind::QuantileTransformer,
            ]),
            Pipeline::from_kinds(&[
                PreprocKind::StandardScaler,
                PreprocKind::PowerTransformer,
                PreprocKind::Binarizer,
            ]),
            Pipeline::from_kinds(&[PreprocKind::StandardScaler, PreprocKind::PowerTransformer]),
        ];
        for p in &family {
            let a = plain.evaluate(p);
            let b = cached.evaluate(p);
            assert_eq!(
                a.accuracy.to_bits(),
                b.accuracy.to_bits(),
                "prefix cache changed the result of `{p}`"
            );
            assert_eq!(a.failure, b.failure);
        }
        let stats = cached.prefix_stats().expect("cache attached");
        assert!(plain.prefix_stats().is_none());
        // Evaluations 2-5 all resume from a cached prefix.
        assert_eq!((stats.hits, stats.misses), (4, 1));
        // Saved fit_transform calls: 1 + 2 + 2 + 2 = 7.
        assert_eq!(stats.steps_saved, 7);
        assert!(stats.entries >= 4);

        // Budgeted (fractional) evaluation reuses the same entries:
        // prefix keys exclude the training-budget fraction.
        let before = stats.hits;
        let t = cached.evaluate_budgeted(&family[1], 0.5);
        assert_eq!(t.accuracy.to_bits(), plain.evaluate_budgeted(&family[1], 0.5).accuracy.to_bits());
        assert_eq!(cached.prefix_stats().unwrap().hits, before + 1);
    }

    #[test]
    fn try_evaluate_succeeds_on_healthy_data() {
        let d = scale_spread_dataset();
        let ev = Evaluator::new(&d, EvalConfig::default());
        let t = ev.try_evaluate(&Pipeline::from_kinds(&[PreprocKind::StandardScaler]));
        let t = t.expect("healthy pipeline evaluates");
        assert!(t.accuracy.is_finite());
        assert!(t.failure.is_none());
    }

    #[test]
    fn pre_cancelled_token_is_deadline_error() {
        let d = scale_spread_dataset();
        let ev = Evaluator::new(&d, EvalConfig::default());
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = ev
            .try_evaluate_cancellable(&Pipeline::empty(), 1.0, &cancel)
            .unwrap_err();
        assert_eq!(err, EvalError::DeadlineExceeded);
    }

    #[test]
    fn worst_error_fallback_tags_failure() {
        struct AlwaysPanics(EvalConfig);
        impl Evaluate for AlwaysPanics {
            fn evaluate_raw(
                &self,
                _p: &Pipeline,
                _f: f64,
                _c: &CancelToken,
            ) -> Result<Trial, EvalError> {
                panic!("boom from test evaluator");
            }
            fn config(&self) -> &EvalConfig {
                &self.0
            }
            fn baseline_accuracy(&self) -> f64 {
                0.5
            }
            fn train_rows(&self) -> usize {
                0
            }
        }
        let ev = AlwaysPanics(EvalConfig::default());
        let p = Pipeline::from_kinds(&[PreprocKind::Binarizer]);
        // Silence the expected panic's default hook output.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = ev.try_evaluate(&p).unwrap_err();
        let t = evaluate_or_worst(&ev, &p, 1.0, &CancelToken::new());
        std::panic::set_hook(prev);
        assert!(matches!(err, EvalError::Panic { ref message } if message.contains("boom")));
        assert_eq!(t.error, 1.0);
        assert_eq!(t.failure, Some(crate::error::FailureKind::Panic));
    }
}
