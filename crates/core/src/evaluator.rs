//! Pipeline-error evaluation (Eq. 2 / Definition 3 of the paper).

use crate::cache::{CacheKey, EvalCache};
use crate::history::Trial;
use autofp_data::{Dataset, Split};
use autofp_models::classifier::{ModelKind, Trainer};
use autofp_models::metrics::accuracy;
use autofp_preprocess::Pipeline;
use std::time::Instant;

/// Configuration of an evaluator.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Downstream model family.
    pub model: ModelKind,
    /// Train fraction for the split (paper: 0.8).
    pub train_fraction: f64,
    /// Split / training seed.
    pub seed: u64,
    /// Cap on training rows used per evaluation (stratified subsample;
    /// validation is untouched). This is the §8 "reduce data size to
    /// mitigate the performance bottleneck" extension: searches explore
    /// more pipelines per second at some fidelity cost.
    pub train_subsample: Option<usize>,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig { model: ModelKind::Lr, train_fraction: 0.8, seed: 0, train_subsample: None }
    }
}

/// Evaluates pipelines: transform train+valid, train the downstream
/// model, report validation accuracy — with per-phase timing.
///
/// An `Evaluator` is immutable after construction and `Send + Sync`
/// ([`Trainer`] requires both), so a [`crate::BatchEvaluator`] can
/// share one instance across worker threads by reference.
pub struct Evaluator {
    split: Split,
    trainer: Box<dyn Trainer>,
    config: EvalConfig,
    baseline: f64,
}

// Compile-time proof of the Sync-friendliness the batch layer relies
// on; fails to build if a future field breaks it.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Evaluator>();
};

impl Evaluator {
    /// Build from a dataset: performs the stratified 80:20 split, then
    /// measures the no-FP baseline accuracy once.
    pub fn new(dataset: &Dataset, config: EvalConfig) -> Evaluator {
        let split = dataset.stratified_split(config.train_fraction, config.seed);
        Self::from_split(split, config)
    }

    /// Build from a pre-made split.
    pub fn from_split(mut split: Split, config: EvalConfig) -> Evaluator {
        if let Some(cap) = config.train_subsample {
            split.train = split.train.subsample(cap, config.seed);
        }
        let trainer = config.model.trainer(config.seed);
        let mut ev = Evaluator { split, trainer, config, baseline: 0.0 };
        ev.baseline = ev.evaluate(&Pipeline::empty()).accuracy;
        ev
    }

    /// The downstream model family.
    pub fn model(&self) -> ModelKind {
        self.config.model
    }

    /// The configuration this evaluator was built with (cache keys
    /// include it, so trials never leak across configurations).
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Validation accuracy with no preprocessing (the paper's "no-FP"
    /// red line in Figure 2 and the baseline of the ranking filter).
    pub fn baseline_accuracy(&self) -> f64 {
        self.baseline
    }

    /// The underlying split.
    pub fn split(&self) -> &Split {
        &self.split
    }

    /// Evaluate a pipeline at full training budget.
    pub fn evaluate(&self, pipeline: &Pipeline) -> Trial {
        self.evaluate_budgeted(pipeline, 1.0)
    }

    /// Evaluate a pipeline with a fractional training budget (Hyperband
    /// rungs pass `fraction < 1`).
    pub fn evaluate_budgeted(&self, pipeline: &Pipeline, fraction: f64) -> Trial {
        // Prep: fit on train, transform train + valid.
        let prep_start = Instant::now();
        let (fitted, train_x) = pipeline.fit_transform(&self.split.train.x);
        let valid_x = fitted.transform_new(&self.split.valid.x);
        let prep_time = prep_start.elapsed();

        // Train: fit the downstream model and score validation data.
        let train_start = Instant::now();
        let model = self.trainer.fit_budgeted(
            &train_x,
            &self.split.train.y,
            self.split.train.n_classes,
            fraction,
        );
        let preds = model.predict(&valid_x);
        let train_time = train_start.elapsed();

        let acc = accuracy(&self.split.valid.y, &preds);
        Trial {
            pipeline: pipeline.clone(),
            accuracy: acc,
            error: 1.0 - acc,
            prep_time,
            train_time,
            train_fraction: fraction.clamp(0.0, 1.0),
        }
    }

    /// Evaluate through a cache: a hit returns the memoized [`Trial`]
    /// bit-identically (including its originally measured prep/train
    /// times, preserving the paper's Figure 7 time attribution); a miss
    /// evaluates and memoizes. Saved wall-clock is tracked in
    /// [`crate::CacheStats::saved`].
    pub fn evaluate_cached(
        &self,
        pipeline: &Pipeline,
        fraction: f64,
        cache: &EvalCache,
    ) -> Trial {
        let key = CacheKey::new(pipeline, fraction, &self.config);
        if let Some(trial) = cache.lookup(&key) {
            return trial;
        }
        let trial = self.evaluate_budgeted(pipeline, fraction);
        cache.insert(&key, &trial);
        trial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_data::{Personality, SynthConfig};
    use autofp_preprocess::PreprocKind;

    fn scale_spread_dataset() -> Dataset {
        let mut p = Personality::default();
        p.scale_spread = 6.0;
        p.skew = 0.4;
        p.class_sep = 2.0;
        p.label_noise = 0.0;
        SynthConfig::new("eval-ds", 400, 8, 2, 41).with_personality(p).generate()
    }

    #[test]
    fn baseline_matches_empty_pipeline() {
        let d = scale_spread_dataset();
        let ev = Evaluator::new(&d, EvalConfig::default());
        let t = ev.evaluate(&Pipeline::empty());
        assert!((t.accuracy - ev.baseline_accuracy()).abs() < 1e-12);
        assert!((t.accuracy + t.error - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standard_scaler_beats_baseline_on_spread_data() {
        let d = scale_spread_dataset();
        let ev = Evaluator::new(&d, EvalConfig::default());
        let t = ev.evaluate(&Pipeline::from_kinds(&[PreprocKind::StandardScaler]));
        assert!(
            t.accuracy > ev.baseline_accuracy() + 0.02,
            "scaled {} vs baseline {}",
            t.accuracy,
            ev.baseline_accuracy()
        );
    }

    #[test]
    fn evaluation_is_deterministic() {
        let d = scale_spread_dataset();
        let ev = Evaluator::new(&d, EvalConfig::default());
        let p = Pipeline::from_kinds(&[PreprocKind::MinMaxScaler, PreprocKind::PowerTransformer]);
        let a = ev.evaluate(&p).accuracy;
        let b = ev.evaluate(&p).accuracy;
        assert_eq!(a, b);
    }

    #[test]
    fn timings_are_recorded() {
        let d = scale_spread_dataset();
        let ev = Evaluator::new(&d, EvalConfig::default());
        let t = ev.evaluate(&Pipeline::from_kinds(&[PreprocKind::PowerTransformer]));
        assert!(t.prep_time.as_nanos() > 0);
        assert!(t.train_time.as_nanos() > 0);
    }

    #[test]
    fn budgeted_evaluation_records_fraction() {
        let d = scale_spread_dataset();
        let ev = Evaluator::new(&d, EvalConfig { model: ModelKind::Xgb, ..Default::default() });
        let t = ev.evaluate_budgeted(&Pipeline::empty(), 0.25);
        assert!((t.train_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn train_subsample_caps_training_rows_only() {
        let d = scale_spread_dataset();
        let ev = Evaluator::new(
            &d,
            EvalConfig { train_subsample: Some(50), ..Default::default() },
        );
        assert_eq!(ev.split().train.n_rows(), 50);
        // Validation keeps its full 20%.
        assert_eq!(ev.split().valid.n_rows(), 80);
        let t = ev.evaluate(&Pipeline::from_kinds(&[PreprocKind::StandardScaler]));
        assert!((0.0..=1.0).contains(&t.accuracy));
    }

    #[test]
    fn all_three_model_kinds_evaluate() {
        let d = SynthConfig::new("eval-3m", 150, 5, 3, 7).generate();
        for model in ModelKind::ALL {
            let ev = Evaluator::new(&d, EvalConfig { model, seed: 1, ..Default::default() });
            let t = ev.evaluate(&Pipeline::from_kinds(&[PreprocKind::MinMaxScaler]));
            assert!((0.0..=1.0).contains(&t.accuracy), "{model}: {}", t.accuracy);
        }
    }
}
