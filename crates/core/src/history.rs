//! Trial records and search histories.

use crate::error::FailureKind;
use crate::order::nan_smallest;
use autofp_preprocess::Pipeline;
use std::time::Duration;

/// One evaluated pipeline (one iteration of Algorithm 1's Step 4).
///
/// `PartialEq` compares floats by value (the wire layer's round-trip
/// tests rely on field-for-field equality; all recorded floats are
/// finite in practice).
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// The evaluated pipeline.
    pub pipeline: Pipeline,
    /// Validation accuracy of the downstream model.
    pub accuracy: f64,
    /// Pipeline error = 1 - accuracy (Eq. 2).
    pub error: f64,
    /// Time spent preprocessing train+valid features ("Prep").
    pub prep_time: Duration,
    /// Time spent training and scoring the downstream model ("Train").
    pub train_time: Duration,
    /// Fraction of the trainer's iteration budget spent (1.0 = full).
    pub train_fraction: f64,
    /// `Some(kind)` when the evaluation failed and this trial records
    /// the worst-error placeholder (accuracy 0, error 1) instead of a
    /// real measurement; `None` for a successful evaluation.
    pub failure: Option<FailureKind>,
}

impl Trial {
    /// The worst-error placeholder for a failed evaluation: accuracy
    /// 0.0 and error 1.0 (Eq. 2's maximum), zero timings, tagged with
    /// the failure kind. Mirrors scikit-learn's `error_score=0`
    /// convention so searchers keep running and steer away.
    pub fn failed(pipeline: Pipeline, kind: FailureKind, train_fraction: f64) -> Trial {
        Trial {
            pipeline,
            accuracy: 0.0,
            error: 1.0,
            prep_time: Duration::ZERO,
            train_time: Duration::ZERO,
            train_fraction,
            failure: Some(kind),
        }
    }

    /// True when this trial records a failed evaluation.
    pub fn is_failed(&self) -> bool {
        self.failure.is_some()
    }
}

/// The evaluated-pipeline history of one search run.
#[derive(Debug, Clone, Default)]
pub struct TrialHistory {
    trials: Vec<Trial>,
}

impl TrialHistory {
    /// An empty history.
    pub fn new() -> TrialHistory {
        TrialHistory::default()
    }

    /// Append a trial.
    pub fn push(&mut self, t: Trial) {
        self.trials.push(t);
    }

    /// Number of trials recorded.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// True when no trial has run.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// All trials, in evaluation order.
    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }

    /// Best *fully trained* trial by accuracy (partial Hyperband rungs are
    /// not comparable and are excluded unless nothing else exists).
    /// NaN accuracies rank below every real score, so a corrupted
    /// trial can never be selected as best (and never panics here).
    pub fn best(&self) -> Option<&Trial> {
        let full = self
            .trials
            .iter()
            .filter(|t| t.train_fraction >= 1.0 - 1e-9)
            .max_by(|a, b| nan_smallest(&a.accuracy, &b.accuracy));
        full.or_else(|| {
            self.trials
                .iter()
                .max_by(|a, b| nan_smallest(&a.accuracy, &b.accuracy))
        })
    }

    /// Best accuracy seen (0.0 when empty).
    pub fn best_accuracy(&self) -> f64 {
        self.best().map_or(0.0, |t| t.accuracy)
    }

    /// Total Prep and Train time across all trials.
    pub fn totals(&self) -> (Duration, Duration) {
        let prep = self.trials.iter().map(|t| t.prep_time).sum();
        let train = self.trials.iter().map(|t| t.train_time).sum();
        (prep, train)
    }
}

/// The paper's Figure 7 three-way overhead breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseBreakdown {
    /// Time the algorithm spent choosing pipelines (Steps 2-3).
    pub pick: Duration,
    /// Time spent preprocessing features (Step 4, transform).
    pub prep: Duration,
    /// Time spent training/scoring the downstream model (Step 4).
    pub train: Duration,
}

impl PhaseBreakdown {
    /// Percentages `(pick, prep, train)` summing to ~100.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let total = (self.pick + self.prep + self.train).as_secs_f64();
        if total <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            100.0 * self.pick.as_secs_f64() / total,
            100.0 * self.prep.as_secs_f64() / total,
            100.0 * self.train.as_secs_f64() / total,
        )
    }

    /// The dominant phase: `"Pick"`, `"Prep"` or `"Train"`.
    pub fn bottleneck(&self) -> &'static str {
        if self.train >= self.prep && self.train >= self.pick {
            "Train"
        } else if self.prep >= self.pick {
            "Prep"
        } else {
            "Pick"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_preprocess::{Pipeline, PreprocKind};

    fn trial(acc: f64, frac: f64) -> Trial {
        Trial {
            pipeline: Pipeline::from_kinds(&[PreprocKind::Binarizer]),
            accuracy: acc,
            error: 1.0 - acc,
            prep_time: Duration::from_millis(1),
            train_time: Duration::from_millis(2),
            train_fraction: frac,
            failure: None,
        }
    }

    #[test]
    fn best_prefers_fully_trained() {
        let mut h = TrialHistory::new();
        h.push(trial(0.9, 0.1)); // partial rung, high score
        h.push(trial(0.7, 1.0));
        assert_eq!(h.best().unwrap().accuracy, 0.7);
        assert_eq!(h.best_accuracy(), 0.7);
    }

    #[test]
    fn best_falls_back_to_partial() {
        let mut h = TrialHistory::new();
        h.push(trial(0.6, 0.5));
        assert_eq!(h.best().unwrap().accuracy, 0.6);
    }

    #[test]
    fn best_ranks_nan_last_without_panicking() {
        // Regression: `best()` used to panic on NaN accuracy via
        // `partial_cmp().expect`. NaN must lose to any real score.
        let mut h = TrialHistory::new();
        h.push(trial(f64::NAN, 1.0));
        h.push(trial(0.4, 1.0));
        h.push(trial(f64::NAN, 1.0));
        assert_eq!(h.best().unwrap().accuracy, 0.4);
        // All-NaN history still returns *something* rather than panic.
        let mut all_nan = TrialHistory::new();
        all_nan.push(trial(f64::NAN, 1.0));
        assert!(all_nan.best().unwrap().accuracy.is_nan());
    }

    #[test]
    fn failed_trial_is_worst_error() {
        let t = Trial::failed(
            Pipeline::from_kinds(&[PreprocKind::Binarizer]),
            FailureKind::Panic,
            1.0,
        );
        assert!(t.is_failed());
        assert_eq!(t.accuracy, 0.0);
        assert_eq!(t.error, 1.0);
        assert_eq!(t.prep_time, Duration::ZERO);
        assert_eq!(t.failure, Some(FailureKind::Panic));
    }

    #[test]
    fn empty_history() {
        let h = TrialHistory::new();
        assert!(h.best().is_none());
        assert_eq!(h.best_accuracy(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn totals_sum_durations() {
        let mut h = TrialHistory::new();
        h.push(trial(0.5, 1.0));
        h.push(trial(0.6, 1.0));
        let (prep, train) = h.totals();
        assert_eq!(prep, Duration::from_millis(2));
        assert_eq!(train, Duration::from_millis(4));
    }

    #[test]
    fn breakdown_percentages_and_bottleneck() {
        let b = PhaseBreakdown {
            pick: Duration::from_millis(10),
            prep: Duration::from_millis(30),
            train: Duration::from_millis(60),
        };
        let (pick, prep, train) = b.percentages();
        assert!((pick - 10.0).abs() < 1e-9);
        assert!((prep - 30.0).abs() < 1e-9);
        assert!((train - 60.0).abs() < 1e-9);
        assert_eq!(b.bottleneck(), "Train");
        let b2 = PhaseBreakdown { pick: Duration::ZERO, prep: Duration::from_millis(2), train: Duration::from_millis(1) };
        assert_eq!(b2.bottleneck(), "Prep");
    }

    #[test]
    fn zero_breakdown_is_safe() {
        let b = PhaseBreakdown { pick: Duration::ZERO, prep: Duration::ZERO, train: Duration::ZERO };
        assert_eq!(b.percentages(), (0.0, 0.0, 0.0));
    }
}
