//! Pipeline-result caching (§5 extension).
//!
//! The paper's bottleneck analysis (§5, Figures 6-7) shows that pipeline
//! *evaluation* dominates Auto-FP runtime, and that search algorithms
//! frequently re-propose duplicate pipelines (evolutionary mutation and
//! crossover reproduce parents; TPE/SMAC resample high-density regions).
//! An [`EvalCache`] memoizes finished [`Trial`]s keyed by a stable
//! fingerprint of (pipeline, training-budget fraction, evaluator
//! config), so a duplicate proposal returns its recorded trial instead
//! of paying the full Prep + Train cost again.
//!
//! The cache is thread-safe (`&self` everywhere) so a
//! [`crate::batch::BatchEvaluator`] can share it across workers, and it
//! keeps hit / miss / eviction / saved-wall-clock counters that
//! [`crate::report::cache_stats_markdown`] renders.
//!
//! By default a cache is unbounded; [`EvalCache::with_capacity`] caps
//! the entry count with least-recently-used eviction, for long searches
//! over large pipeline spaces where the memo would otherwise grow
//! without limit.
//!
//! Failed evaluations are memoizable too — a pipeline that produces
//! non-finite output does so deterministically, so its worst-error
//! trial is as reusable as a real score. The exceptions are
//! [`crate::FailureKind::Deadline`] and [`crate::FailureKind::Transport`]:
//! running out of wall-clock, or losing the worker that would have
//! evaluated the pipeline, is a property of the run, not the pipeline,
//! so neither is ever stored.
//!
//! # The canonical-string contract
//!
//! [`CacheKey`] identity is *content-addressed*: the key is a canonical
//! string spelling out every input that can change an evaluation's
//! result, and nothing else. The grammar is fixed:
//!
//! ```text
//! m={model name};seed={u64};tf={f64 bits};sub={rows, or -1};frac={f64 bits};p={pipeline key}
//! ```
//!
//! where `tf` is the train fraction and `frac` the training-budget
//! fraction, both as IEEE-754 bit patterns (`f64::to_bits` — string
//! formatting would collapse distinct values), `sub` is the optional
//! training subsample row count, and `{pipeline key}` is
//! [`Pipeline::key`]'s step list *including every preprocessor
//! parameter*. [`CacheKey::fingerprint`] is the FNV-1a 64-bit hash
//! (offset `0xcbf29ce484222325`, prime `0x100000001b3`) of that string
//! — stable across platforms, processes, and runs, which is why
//! `core::remote` shards requests by it and golden tests pin exact
//! values. Every consumer of this contract must preserve three rules:
//!
//! 1. **Total**: any input that can change the resulting trial must
//!    appear in the canonical string. (Dataset identity rides outside
//!    the key — a cache is scoped to one evaluator's split.)
//! 2. **Pure**: key construction reads nothing but its arguments — no
//!    clock, RNG, or interior mutability (enforced by the xtask
//!    `cache-purity` lint over `impl CacheKey` and `fn fnv1a`).
//! 3. **Collision-safe**: maps key on the full canonical string; the
//!    fingerprint is for sharding and logs only.
//!
//! [`crate::prefix`] builds its prefix-transform keys on the same
//! machinery and contract (same fingerprint, `layer=prefix;` namespace
//! so the two key families can never collide); see its module docs for
//! the fields it deliberately drops and ARCHITECTURE.md "Cache
//! hierarchy" for how the two layers stack.
//!
//! ```
//! use autofp_core::{EvalCache, EvalConfig, Evaluator};
//! use autofp_data::SynthConfig;
//! use autofp_preprocess::{Pipeline, PreprocKind};
//!
//! let dataset = SynthConfig::new("cache-doc", 120, 5, 2, 3).generate();
//! let evaluator = Evaluator::new(&dataset, EvalConfig::default());
//! let cache = EvalCache::new();
//! let pipeline = Pipeline::from_kinds(&[PreprocKind::StandardScaler]);
//!
//! let fresh = evaluator.evaluate_cached(&pipeline, 1.0, &cache); // miss: evaluates
//! let hit = evaluator.evaluate_cached(&pipeline, 1.0, &cache);   // hit: memoized
//! assert_eq!(fresh.accuracy, hit.accuracy);
//! let stats = cache.stats();
//! assert_eq!((stats.hits, stats.misses), (1, 1));
//! ```

use crate::error::FailureKind;
use crate::evaluator::EvalConfig;
use crate::history::Trial;
use autofp_preprocess::Pipeline;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// The identity of one evaluation: pipeline (kinds *and* parameters),
/// training-budget fraction, and the evaluator configuration.
///
/// Two keys are equal exactly when a memoized trial is reusable. The
/// 64-bit [`CacheKey::fingerprint`] is a stable FNV-1a hash of the
/// canonical form — convenient for logs and indexes — while the cache
/// map itself keys on the full canonical string, so even a fingerprint
/// collision between distinct pipelines cannot alias their results.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    canonical: String,
    fingerprint: u64,
}

impl CacheKey {
    /// Build the key for evaluating `pipeline` at `fraction` under
    /// `config`.
    pub fn new(pipeline: &Pipeline, fraction: f64, config: &EvalConfig) -> CacheKey {
        let mut canonical = String::new();
        let _ = write!(
            canonical,
            "m={};seed={};tf={};sub={};frac={};p={}",
            config.model,
            config.seed,
            config.train_fraction.to_bits(),
            config.train_subsample.map_or(-1_i64, |v| v as i64),
            fraction.clamp(0.0, 1.0).to_bits(),
            pipeline.key(),
        );
        let fingerprint = fnv1a(canonical.as_bytes());
        CacheKey { canonical, fingerprint }
    }

    /// The stable 64-bit fingerprint of this key.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The canonical string the fingerprint hashes.
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// Rehydrate a key from its stored parts (`core::repo` load path).
    /// The caller must have verified `fingerprint == fnv1a(canonical)`;
    /// the store's decoder does, so a persisted record can never come
    /// back under the wrong identity.
    pub(crate) fn from_parts(canonical: String, fingerprint: u64) -> CacheKey {
        CacheKey { canonical, fingerprint }
    }
}

/// FNV-1a: tiny, dependency-free, and stable across platforms and
/// compiler versions (unlike `DefaultHasher`, whose algorithm is
/// unspecified). Public because the serve-artifact format checksums
/// its records with the same hash the trial store uses.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Hit / miss / eviction / saved-time counters of an [`EvalCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups satisfied from the cache (including within-batch
    /// duplicate pipelines satisfied by one shared evaluation).
    pub hits: u64,
    /// Lookups that had to run a fresh evaluation.
    pub misses: u64,
    /// Distinct memoized trials.
    pub entries: usize,
    /// Entries dropped by the LRU capacity cap (0 when unbounded).
    pub evictions: u64,
    /// Prep + Train wall-clock the hits would have re-spent.
    pub saved: Duration,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits over lookups in `[0, 1]` (`0.0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Fold another snapshot into this one (all counters summed).
    ///
    /// Used to aggregate per-cache snapshots into matrix-level totals;
    /// sum each distinct cache exactly once — `entries` adds up, so
    /// absorbing two snapshots of the *same* cache double-counts.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.entries += other.entries;
        self.evictions += other.evictions;
        self.saved += other.saved;
    }
}

/// Map + recency index guarded by one mutex so the two can never skew.
#[derive(Debug, Default)]
struct CacheInner {
    /// canonical key -> (trial, recency stamp of last touch).
    // lint:allow(nondet): keyed lookup only — eviction order comes from the recency BTreeMap, never from map iteration
    entries: HashMap<String, (Trial, u64)>,
    /// recency stamp -> canonical key; first entry is least recent.
    /// Stamps are unique (monotonic tick), so this is a faithful queue.
    recency: BTreeMap<u64, String>,
    /// Monotonic logical clock for stamps.
    tick: u64,
}

impl CacheInner {
    fn touch(&mut self, canonical: &str) {
        self.tick += 1;
        let stamp = self.tick;
        if let Some((_, old)) = self.entries.get_mut(canonical) {
            self.recency.remove(old);
            *old = stamp;
            self.recency.insert(stamp, canonical.to_string());
        }
    }
}

/// A thread-safe memo of finished [`Trial`]s.
///
/// All methods take `&self`; internal state is a mutex-guarded map plus
/// atomic counters, so one cache can serve many evaluation workers
/// concurrently (see [`crate::batch::BatchEvaluator::with_cache`]).
///
/// A hit returns a clone of the stored [`Trial`] — bit-identical to the
/// original evaluation, *including* its recorded `prep_time` and
/// `train_time`. Histories therefore keep the paper's attributed-time
/// semantics (Figure 7) while [`CacheStats::saved`] tracks the
/// wall-clock that was actually avoided.
#[derive(Debug, Default)]
pub struct EvalCache {
    inner: Mutex<CacheInner>,
    /// `None` = unbounded (the default).
    capacity: Option<usize>,
    /// Durable layer: when attached, every memoized trial is also
    /// appended to this store (see [`EvalCache::attach_store`]).
    store: Mutex<Option<crate::repo::SharedTrialStore>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    saved_nanos: AtomicU64,
}

impl EvalCache {
    /// An empty, unbounded cache.
    pub fn new() -> EvalCache {
        EvalCache::default()
    }

    /// An empty cache holding at most `capacity` entries, evicting the
    /// least recently used entry on overflow. `capacity` 0 disables
    /// memoization entirely (every insert is immediately evicted).
    pub fn with_capacity(capacity: usize) -> EvalCache {
        EvalCache { capacity: Some(capacity), ..EvalCache::default() }
    }

    /// The entry cap, if one was set.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// A worker thread panicking mid-batch (contained by the batch
    /// layer) may poison this mutex; counter-and-memo state stays
    /// coherent because every mutation holds the lock for its full
    /// map+recency update, so recovering the guard is sound.
    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up a memoized trial. Records a hit (and the saved Prep +
    /// Train time) or a miss, and refreshes the entry's recency.
    pub fn lookup(&self, key: &CacheKey) -> Option<Trial> {
        let found = {
            let mut inner = self.lock();
            let found = inner.entries.get(key.canonical()).map(|(t, _)| t.clone());
            if found.is_some() {
                inner.touch(key.canonical());
            }
            found
        };
        match &found {
            Some(trial) => self.note_hit(trial),
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        found
    }

    /// Peek without touching the hit/miss counters (used by batch
    /// dedup, which does its own accounting). Still refreshes recency —
    /// a peek is a use.
    pub(crate) fn peek(&self, key: &CacheKey) -> Option<Trial> {
        let mut inner = self.lock();
        let found = inner.entries.get(key.canonical()).map(|(t, _)| t.clone());
        if found.is_some() {
            inner.touch(key.canonical());
        }
        found
    }

    /// Record a hit that was satisfied outside [`EvalCache::lookup`]
    /// (within-batch duplicate sharing).
    pub(crate) fn note_hit(&self, trial: &Trial) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        let saved = trial.prep_time + trial.train_time;
        self.saved_nanos.fetch_add(saved.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record a miss that was resolved outside [`EvalCache::lookup`].
    pub(crate) fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Memoize a finished trial, evicting the least recently used
    /// entry when a capacity cap is exceeded.
    ///
    /// Deterministic failures (non-finite, degenerate, diverged,
    /// panic) are cached like successes — re-proposing the pipeline
    /// would fail identically. Deadline and transport failures are
    /// circumstantial and are *not* stored (a worker coming back up
    /// must not be masked by a memoized worst-error trial).
    /// With a durable store attached ([`EvalCache::attach_store`]),
    /// the trial is also appended there (write-through); the store
    /// independently enforces the same never-persist rule and
    /// deduplicates, so the append is unconditional here.
    pub fn insert(&self, key: &CacheKey, trial: &Trial) {
        if let Some(store) = self.store() {
            store.append(key, trial);
        }
        if matches!(trial.failure, Some(FailureKind::Deadline) | Some(FailureKind::Transport)) {
            return;
        }
        self.memoize(key, trial);
    }

    /// Memoize without touching the durable store or hit/miss counters
    /// — the preload path ([`EvalCache::preload_from`]): trials coming
    /// *from* the store must not be written back to it, and warming is
    /// not a lookup. The never-persist kinds are refused here too so a
    /// corrupted store cannot plant a deadline/transport memo.
    pub fn warm(&self, key: &CacheKey, trial: &Trial) {
        if matches!(trial.failure, Some(FailureKind::Deadline) | Some(FailureKind::Transport)) {
            return;
        }
        self.memoize(key, trial);
    }

    fn memoize(&self, key: &CacheKey, trial: &Trial) {
        let mut evicted = 0u64;
        {
            let mut inner = self.lock();
            inner.tick += 1;
            let stamp = inner.tick;
            if let Some((_, old_stamp)) =
                inner.entries.insert(key.canonical().to_string(), (trial.clone(), stamp))
            {
                inner.recency.remove(&old_stamp);
            }
            inner.recency.insert(stamp, key.canonical().to_string());
            if let Some(cap) = self.capacity {
                while inner.entries.len() > cap {
                    let Some((&oldest, _)) = inner.recency.iter().next() else { break };
                    if let Some(victim) = inner.recency.remove(&oldest) {
                        inner.entries.remove(&victim);
                        evicted += 1;
                    }
                }
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Number of memoized trials.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attach the durable trial-store layer: every subsequent
    /// [`EvalCache::insert`] writes through to `store` (ARCHITECTURE.md
    /// "Cache hierarchy", layer 4). Attaching replaces any previous
    /// store; it does not preload — call [`EvalCache::preload_from`]
    /// first when warm-starting.
    pub fn attach_store(&self, store: crate::repo::SharedTrialStore) {
        *self.store.lock().unwrap_or_else(PoisonError::into_inner) = Some(store);
    }

    /// The attached durable store, if any.
    pub fn store(&self) -> Option<crate::repo::SharedTrialStore> {
        self.store.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Warm the memo with every trial persisted in `store` (in file
    /// order, so LRU recency is deterministic across runs). Returns the
    /// number of trials warmed; hit/miss counters are untouched and
    /// nothing is written back to the store.
    pub fn preload_from(&self, store: &crate::repo::TrialStore) -> u64 {
        let mut warmed = 0u64;
        for (key, trial) in store.snapshot() {
            self.warm(&key, &trial);
            warmed += 1;
        }
        store.note_preloaded(warmed);
        warmed
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
            evictions: self.evictions.load(Ordering::Relaxed),
            saved: Duration::from_nanos(self.saved_nanos.load(Ordering::Relaxed)),
        }
    }
}

/// A clonable, `Arc`-backed handle to one [`EvalCache`].
///
/// [`EvalCache`] itself is already thread-safe behind `&self` (interior
/// locking, atomic counters), but it is not clonable — sharing it
/// requires threading one borrow everywhere. `SharedEvalCache` is the
/// ownership story for long-lived sharing: the bench harness hands one
/// handle per (dataset, model) group to every algorithm cell, each
/// clone is a few words, and the memo plus its hit/miss/eviction
/// counters stay exact because every handle operates on the same
/// underlying cache.
///
/// Deref gives `&EvalCache`, so a handle plugs directly into
/// [`crate::BatchEvaluator::with_cache`] and
/// [`crate::SearchContext::attach_cache`].
///
/// ```
/// use autofp_core::SharedEvalCache;
/// let shared = SharedEvalCache::new();
/// let clone = shared.clone();
/// assert_eq!(clone.len(), 0);
/// assert!(SharedEvalCache::same_cache(&shared, &clone));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedEvalCache {
    inner: std::sync::Arc<EvalCache>,
}

impl SharedEvalCache {
    /// A handle to a fresh, unbounded cache.
    pub fn new() -> SharedEvalCache {
        SharedEvalCache::default()
    }

    /// A handle to a fresh cache capped at `capacity` entries (LRU
    /// eviction; see [`EvalCache::with_capacity`]).
    pub fn with_capacity(capacity: usize) -> SharedEvalCache {
        SharedEvalCache { inner: std::sync::Arc::new(EvalCache::with_capacity(capacity)) }
    }

    /// True when two handles share one underlying cache.
    pub fn same_cache(a: &SharedEvalCache, b: &SharedEvalCache) -> bool {
        std::sync::Arc::ptr_eq(&a.inner, &b.inner)
    }
}

impl std::ops::Deref for SharedEvalCache {
    type Target = EvalCache;

    fn deref(&self) -> &EvalCache {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_preprocess::{Preproc, PreprocKind};
    use std::collections::HashSet;

    fn trial_for(p: &Pipeline, acc: f64) -> Trial {
        Trial {
            pipeline: p.clone(),
            accuracy: acc,
            error: 1.0 - acc,
            prep_time: Duration::from_millis(3),
            train_time: Duration::from_millis(5),
            train_fraction: 1.0,
            failure: None,
        }
    }

    fn key_for(kind: PreprocKind) -> CacheKey {
        CacheKey::new(&Pipeline::from_kinds(&[kind]), 1.0, &EvalConfig::default())
    }

    #[test]
    fn distinct_pipelines_get_distinct_fingerprints() {
        let config = EvalConfig::default();
        let mut seen = HashSet::new();
        // Every 1- and 2-step default-parameter pipeline.
        let mut pipelines = Vec::new();
        for a in PreprocKind::ALL {
            pipelines.push(Pipeline::from_kinds(&[a]));
            for b in PreprocKind::ALL {
                pipelines.push(Pipeline::from_kinds(&[a, b]));
            }
        }
        for p in &pipelines {
            assert!(
                seen.insert(CacheKey::new(p, 1.0, &config).fingerprint()),
                "fingerprint collision for {p}"
            );
        }
    }

    #[test]
    fn fingerprint_distinguishes_parameters_fraction_and_config() {
        let config = EvalConfig::default();
        let a = Pipeline::new(vec![Preproc::Binarizer { threshold: 0.0 }]);
        let b = Pipeline::new(vec![Preproc::Binarizer { threshold: 0.5 }]);
        // Same kind sequence, different parameters.
        assert_ne!(
            CacheKey::new(&a, 1.0, &config).fingerprint(),
            CacheKey::new(&b, 1.0, &config).fingerprint()
        );
        // Same pipeline, different training-budget fraction.
        assert_ne!(
            CacheKey::new(&a, 1.0, &config).fingerprint(),
            CacheKey::new(&a, 0.5, &config).fingerprint()
        );
        // Same pipeline, different evaluator config.
        let other = EvalConfig { seed: 99, ..EvalConfig::default() };
        assert_ne!(
            CacheKey::new(&a, 1.0, &config).fingerprint(),
            CacheKey::new(&a, 1.0, &other).fingerprint()
        );
    }

    #[test]
    fn fingerprint_is_stable_across_key_constructions() {
        let config = EvalConfig::default();
        let p = Pipeline::from_kinds(&[PreprocKind::MinMaxScaler, PreprocKind::Normalizer]);
        let k1 = CacheKey::new(&p, 0.25, &config);
        let k2 = CacheKey::new(&p.clone(), 0.25, &config.clone());
        assert_eq!(k1.fingerprint(), k2.fingerprint());
        assert_eq!(k1.canonical(), k2.canonical());
    }

    #[test]
    fn lookup_hit_returns_identical_trial_and_counts() {
        let cache = EvalCache::new();
        let config = EvalConfig::default();
        let p = Pipeline::from_kinds(&[PreprocKind::StandardScaler]);
        let key = CacheKey::new(&p, 1.0, &config);

        assert!(cache.lookup(&key).is_none());
        let t = trial_for(&p, 0.9);
        cache.insert(&key, &t);
        let hit = cache.lookup(&key).expect("hit");
        assert_eq!(hit.accuracy.to_bits(), t.accuracy.to_bits());
        assert_eq!(hit.prep_time, t.prep_time);
        assert_eq!(hit.train_time, t.train_time);
        assert_eq!(hit.pipeline.key(), t.pipeline.key());

        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.saved, Duration::from_millis(8));
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_keys_do_not_alias_entries() {
        let cache = EvalCache::new();
        let config = EvalConfig::default();
        let a = Pipeline::new(vec![Preproc::Binarizer { threshold: 0.0 }]);
        let b = Pipeline::new(vec![Preproc::Binarizer { threshold: 0.5 }]);
        cache.insert(&CacheKey::new(&a, 1.0, &config), &trial_for(&a, 0.7));
        cache.insert(&CacheKey::new(&b, 1.0, &config), &trial_for(&b, 0.8));
        assert_eq!(cache.len(), 2);
        let got_a = cache.lookup(&CacheKey::new(&a, 1.0, &config)).unwrap();
        let got_b = cache.lookup(&CacheKey::new(&b, 1.0, &config)).unwrap();
        assert_eq!(got_a.accuracy, 0.7);
        assert_eq!(got_b.accuracy, 0.8);
    }

    #[test]
    fn empty_cache_stats() {
        let cache = EvalCache::new();
        let s = cache.stats();
        assert_eq!(s.lookups(), 0);
        assert_eq!(s.hit_rate(), 0.0);
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = EvalCache::with_capacity(2);
        assert_eq!(cache.capacity(), Some(2));
        let p = |k| Pipeline::from_kinds(&[k]);
        cache.insert(&key_for(PreprocKind::Binarizer), &trial_for(&p(PreprocKind::Binarizer), 0.1));
        cache.insert(
            &key_for(PreprocKind::Normalizer),
            &trial_for(&p(PreprocKind::Normalizer), 0.2),
        );
        // Touch Binarizer so Normalizer becomes the LRU victim.
        assert!(cache.lookup(&key_for(PreprocKind::Binarizer)).is_some());
        cache.insert(
            &key_for(PreprocKind::MinMaxScaler),
            &trial_for(&p(PreprocKind::MinMaxScaler), 0.3),
        );
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&key_for(PreprocKind::Normalizer)).is_none());
        assert!(cache.lookup(&key_for(PreprocKind::Binarizer)).is_some());
        assert!(cache.lookup(&key_for(PreprocKind::MinMaxScaler)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinserting_same_key_does_not_grow_or_evict() {
        let cache = EvalCache::with_capacity(1);
        let p = Pipeline::from_kinds(&[PreprocKind::Binarizer]);
        let key = key_for(PreprocKind::Binarizer);
        cache.insert(&key, &trial_for(&p, 0.1));
        cache.insert(&key, &trial_for(&p, 0.6));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.lookup(&key).unwrap().accuracy, 0.6);
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let cache = EvalCache::with_capacity(0);
        let p = Pipeline::from_kinds(&[PreprocKind::Binarizer]);
        let key = key_for(PreprocKind::Binarizer);
        cache.insert(&key, &trial_for(&p, 0.4));
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn default_cache_is_unbounded() {
        let cache = EvalCache::new();
        assert_eq!(cache.capacity(), None);
        for (i, a) in PreprocKind::ALL.into_iter().enumerate() {
            for b in PreprocKind::ALL {
                let p = Pipeline::from_kinds(&[a, b]);
                cache.insert(
                    &CacheKey::new(&p, 1.0, &EvalConfig::default()),
                    &trial_for(&p, 0.01 * i as f64),
                );
            }
        }
        assert_eq!(cache.len(), PreprocKind::ALL.len() * PreprocKind::ALL.len());
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn shared_handles_see_one_memo_and_exact_counters() {
        let shared = SharedEvalCache::with_capacity(8);
        let clone = shared.clone();
        assert!(SharedEvalCache::same_cache(&shared, &clone));
        assert_eq!(clone.capacity(), Some(8));

        let p = Pipeline::from_kinds(&[PreprocKind::StandardScaler]);
        let key = key_for(PreprocKind::StandardScaler);
        shared.insert(&key, &trial_for(&p, 0.9));
        // The clone sees the entry and its lookup counts on the shared
        // counters.
        assert_eq!(clone.lookup(&key).map(|t| t.accuracy), Some(0.9));
        let s = shared.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 0, 1));
    }

    #[test]
    fn absorb_sums_every_counter() {
        let a = CacheStats {
            hits: 3,
            misses: 2,
            entries: 2,
            evictions: 1,
            saved: Duration::from_millis(10),
        };
        let mut total = CacheStats::default();
        total.absorb(&a);
        total.absorb(&a);
        assert_eq!(total.hits, 6);
        assert_eq!(total.misses, 4);
        assert_eq!(total.entries, 4);
        assert_eq!(total.evictions, 2);
        assert_eq!(total.saved, Duration::from_millis(20));
        assert!((total.hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn deadline_and_transport_failures_are_never_cached() {
        use crate::error::FailureKind;
        let cache = EvalCache::new();
        let p = Pipeline::from_kinds(&[PreprocKind::Binarizer]);
        let key = key_for(PreprocKind::Binarizer);
        cache.insert(&key, &Trial::failed(p.clone(), FailureKind::Deadline, 1.0));
        assert!(cache.is_empty());
        // A dead worker is a property of the run, not the pipeline:
        // memoizing its worst-error trial would poison later runs.
        cache.insert(&key, &Trial::failed(p.clone(), FailureKind::Transport, 1.0));
        assert!(cache.is_empty());
        // Deterministic failures are memoized like successes.
        cache.insert(&key, &Trial::failed(p, FailureKind::Panic, 1.0));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(&key).unwrap().failure, Some(FailureKind::Panic));
    }

    /// The wire protocol (`autofp-evald`) and shard routing
    /// (`RemoteEvaluator`) both assume `fingerprint` never changes
    /// across refactors: a silent hash change would re-shard every
    /// pipeline and invalidate any persisted evaluation repository.
    /// These constants were computed once from the canonical strings
    /// below; if this test fails, the hash (or the canonical form) has
    /// changed and every consumer of the fingerprint must migrate.
    #[test]
    fn golden_fingerprints_are_locked() {
        let config = EvalConfig::default();
        let cases: [(Pipeline, f64, u64); 4] = [
            (Pipeline::empty(), 1.0, 0xceb94a6360fd8b3e),
            (
                Pipeline::from_kinds(&[PreprocKind::StandardScaler]),
                1.0,
                0xca6dfeff7dbeff12,
            ),
            (
                Pipeline::from_kinds(&[PreprocKind::MinMaxScaler, PreprocKind::Normalizer]),
                0.25,
                0x67ab45321710d1d3,
            ),
            (
                Pipeline::new(vec![Preproc::Binarizer { threshold: 0.5 }]),
                1.0,
                0xef8b7b4497d1cc8f,
            ),
        ];
        for (pipeline, fraction, expected) in cases {
            let key = CacheKey::new(&pipeline, fraction, &config);
            assert_eq!(
                key.fingerprint(),
                expected,
                "fingerprint drifted for `{}` @ {fraction} (canonical `{}`)",
                pipeline.key(),
                key.canonical(),
            );
        }
        // And the seed dimension: a different config must move the hash.
        let other = EvalConfig { seed: 99, ..EvalConfig::default() };
        assert_eq!(
            CacheKey::new(&Pipeline::empty(), 1.0, &other).fingerprint(),
            0x06e1e5f30a337fd8,
        );
    }
}
