//! Deterministic fault injection for resilience testing.
//!
//! [`FaultInjector`] wraps any [`Evaluate`] implementation and makes a
//! configurable fraction of evaluations fail — by returned
//! [`EvalError`], by deliberate panic, or after an injected delay —
//! so the fault-tolerance machinery (panic shielding, worst-error
//! trials, failure accounting) can be exercised end to end.
//!
//! Determinism is the point: whether a given evaluation faults is a
//! pure function of (injector seed, pipeline identity, training
//! fraction), **not** of call order, thread scheduling, or wall
//! clock. A search run over a fault-injecting evaluator therefore
//! produces bit-identical trial histories at any worker thread count,
//! which is exactly what the resilience suite asserts.

use crate::cache::fnv1a;
use crate::error::EvalError;
use crate::evaluator::{Evaluate, EvalConfig};
use crate::history::Trial;
use autofp_models::CancelToken;
use autofp_preprocess::Pipeline;
use std::time::Duration;

/// Panic payload used by injected panics.
///
/// Public so test harnesses can install a panic hook that silences
/// exactly these (expected) panics while leaving real ones loud:
///
/// ```ignore
/// let prev = std::panic::take_hook();
/// std::panic::set_hook(Box::new(move |info| {
///     if info.payload().downcast_ref::<InjectedPanic>().is_none() {
///         prev(info);
///     }
/// }));
/// ```
#[derive(Debug, Clone)]
pub struct InjectedPanic {
    /// The pipeline whose evaluation was made to panic.
    pub pipeline_key: String,
}

/// What mix of faults a [`FaultInjector`] produces.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Fraction of evaluations that fault, in `[0, 1]`.
    pub failure_rate: f64,
    /// Relative weight of deliberate panics among faults.
    pub panic_weight: f64,
    /// Relative weight of returned [`EvalError`]s among faults.
    pub error_weight: f64,
    /// Relative weight of injected delays among faults. A delay sleeps
    /// [`FaultConfig::delay`] and then evaluates normally — it slows a
    /// worker without failing the trial (deadline pressure).
    pub delay_weight: f64,
    /// How long an injected delay sleeps.
    pub delay: Duration,
    /// Seed decorrelating fault patterns across injectors.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            failure_rate: 0.1,
            panic_weight: 1.0,
            error_weight: 1.0,
            delay_weight: 1.0,
            delay: Duration::from_millis(1),
            seed: 0,
        }
    }
}

/// The three fault modes an injector can pick for an evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultMode {
    Panic,
    Error,
    Delay,
}

/// An [`Evaluate`] decorator that deterministically injects faults.
///
/// Wraps the inner evaluator by reference; everything not faulted is
/// delegated unchanged, so baseline/config/cache-key behavior is the
/// inner evaluator's.
pub struct FaultInjector<'a> {
    inner: &'a dyn Evaluate,
    config: FaultConfig,
}

impl<'a> FaultInjector<'a> {
    /// Wrap `inner`, faulting per `config`.
    pub fn new(inner: &'a dyn Evaluate, config: FaultConfig) -> FaultInjector<'a> {
        FaultInjector { inner, config }
    }

    /// The fault configuration.
    pub fn fault_config(&self) -> &FaultConfig {
        &self.config
    }

    /// The fault decision for one evaluation: a pure hash of
    /// (seed, pipeline key, fraction bits). Returns `None` for a clean
    /// evaluation.
    fn decide(&self, pipeline: &Pipeline, fraction: f64) -> Option<FaultMode> {
        let rate = self.config.failure_rate.clamp(0.0, 1.0);
        if rate <= 0.0 {
            return None;
        }
        let ident = format!(
            "fault;seed={};frac={};p={}",
            self.config.seed,
            fraction.clamp(0.0, 1.0).to_bits(),
            pipeline.key()
        );
        let h = fnv1a(ident.as_bytes());
        // Top 53 bits -> uniform in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u >= rate {
            return None;
        }
        let total =
            self.config.panic_weight + self.config.error_weight + self.config.delay_weight;
        if total <= 0.0 {
            return None;
        }
        // Second, independent uniform draw for the mode.
        let h2 = fnv1a(format!("mode;{ident}").as_bytes());
        let v = ((h2 >> 11) as f64 / (1u64 << 53) as f64) * total;
        if v < self.config.panic_weight {
            Some(FaultMode::Panic)
        } else if v < self.config.panic_weight + self.config.error_weight {
            Some(FaultMode::Error)
        } else {
            Some(FaultMode::Delay)
        }
    }

    /// Which error an `Error`-mode fault returns: cycles through the
    /// deterministic kinds by pipeline hash.
    fn injected_error(&self, pipeline: &Pipeline) -> EvalError {
        let h = fnv1a(format!("errkind;{};{}", self.config.seed, pipeline.key()).as_bytes());
        match h % 3 {
            0 => EvalError::NonFiniteTransform {
                detail: format!("injected for `{}`", pipeline.key()),
            },
            1 => EvalError::DegenerateMatrix {
                detail: format!("injected for `{}`", pipeline.key()),
            },
            _ => EvalError::TrainerDiverged {
                detail: format!("injected for `{}`", pipeline.key()),
            },
        }
    }
}

impl Evaluate for FaultInjector<'_> {
    fn evaluate_raw(
        &self,
        pipeline: &Pipeline,
        fraction: f64,
        cancel: &CancelToken,
    ) -> Result<Trial, EvalError> {
        match self.decide(pipeline, fraction) {
            Some(FaultMode::Panic) => std::panic::panic_any(InjectedPanic {
                pipeline_key: pipeline.key(),
            }),
            Some(FaultMode::Error) => Err(self.injected_error(pipeline)),
            Some(FaultMode::Delay) => {
                std::thread::sleep(self.config.delay);
                self.inner.evaluate_raw(pipeline, fraction, cancel)
            }
            None => self.inner.evaluate_raw(pipeline, fraction, cancel),
        }
    }

    fn config(&self) -> &EvalConfig {
        self.inner.config()
    }

    fn baseline_accuracy(&self) -> f64 {
        self.inner.baseline_accuracy()
    }

    fn train_rows(&self) -> usize {
        self.inner.train_rows()
    }

    fn prefix_stats(&self) -> Option<crate::prefix::PrefixStats> {
        self.inner.prefix_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FailureKind;
    use crate::evaluator::{EvalConfig, Evaluator};
    use autofp_data::SynthConfig;
    use autofp_preprocess::PreprocKind;

    fn evaluator() -> Evaluator {
        let d = SynthConfig::new("fault-ds", 160, 5, 2, 11).generate();
        Evaluator::new(&d, EvalConfig::default())
    }

    fn all_pipelines() -> Vec<Pipeline> {
        let mut out = vec![Pipeline::empty()];
        for a in PreprocKind::ALL {
            out.push(Pipeline::from_kinds(&[a]));
            for b in PreprocKind::ALL {
                out.push(Pipeline::from_kinds(&[a, b]));
            }
        }
        out
    }

    /// Replace the panic hook with one that stays quiet for
    /// [`InjectedPanic`] payloads, for the duration of `f`.
    fn with_quiet_injected_panics<T>(f: impl FnOnce() -> T) -> T {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                eprintln!("unexpected panic: {info}");
            }
        }));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn zero_rate_is_transparent() {
        let ev = evaluator();
        let inj =
            FaultInjector::new(&ev, FaultConfig { failure_rate: 0.0, ..FaultConfig::default() });
        let p = Pipeline::from_kinds(&[PreprocKind::StandardScaler]);
        let a = inj.try_evaluate(&p).expect("clean");
        let b = ev.try_evaluate(&p).expect("clean");
        assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        assert_eq!(inj.baseline_accuracy(), ev.baseline_accuracy());
        assert_eq!(inj.train_rows(), ev.train_rows());
    }

    #[test]
    fn fault_decisions_are_deterministic_and_rate_plausible() {
        let ev = evaluator();
        let cfg = FaultConfig { failure_rate: 0.3, seed: 5, ..FaultConfig::default() };
        let inj = FaultInjector::new(&ev, cfg.clone());
        let pipelines = all_pipelines();
        let first: Vec<_> =
            pipelines.iter().map(|p| inj.decide(p, 1.0)).collect();
        let second: Vec<_> =
            pipelines.iter().map(|p| inj.decide(p, 1.0)).collect();
        assert_eq!(first, second, "decisions must not depend on call order");
        let faults = first.iter().flatten().count();
        // 0.3 of 57 pipelines ≈ 17; allow a generous band.
        assert!((5..=30).contains(&faults), "fault count {faults}");
        // A different seed produces a different pattern.
        let other = FaultInjector::new(&ev, FaultConfig { seed: 6, ..cfg });
        let third: Vec<_> = pipelines.iter().map(|p| other.decide(p, 1.0)).collect();
        assert_ne!(first, third);
    }

    #[test]
    fn injected_panics_are_contained_by_try_evaluate() {
        let ev = evaluator();
        // Panic-only mix so every fault is a panic.
        let cfg = FaultConfig {
            failure_rate: 1.0,
            panic_weight: 1.0,
            error_weight: 0.0,
            delay_weight: 0.0,
            ..FaultConfig::default()
        };
        let inj = FaultInjector::new(&ev, cfg);
        let p = Pipeline::from_kinds(&[PreprocKind::MinMaxScaler]);
        let err = with_quiet_injected_panics(|| inj.try_evaluate(&p).unwrap_err());
        assert_eq!(err.kind(), FailureKind::Panic);
    }

    #[test]
    fn error_mode_returns_deterministic_error_kinds() {
        let ev = evaluator();
        let cfg = FaultConfig {
            failure_rate: 1.0,
            panic_weight: 0.0,
            error_weight: 1.0,
            delay_weight: 0.0,
            ..FaultConfig::default()
        };
        let inj = FaultInjector::new(&ev, cfg);
        let mut kinds = std::collections::HashSet::new();
        for p in all_pipelines() {
            let err = inj.try_evaluate(&p).unwrap_err();
            assert_ne!(err.kind(), FailureKind::Panic);
            assert_ne!(err.kind(), FailureKind::Deadline);
            kinds.insert(err.kind());
            // Same pipeline, same error.
            assert_eq!(inj.try_evaluate(&p).unwrap_err(), err);
        }
        assert!(kinds.len() >= 2, "error kinds should vary: {kinds:?}");
    }

    #[test]
    fn delay_mode_still_returns_a_real_trial() {
        let ev = evaluator();
        let cfg = FaultConfig {
            failure_rate: 1.0,
            panic_weight: 0.0,
            error_weight: 0.0,
            delay_weight: 1.0,
            delay: Duration::from_millis(2),
            ..FaultConfig::default()
        };
        let inj = FaultInjector::new(&ev, cfg);
        let p = Pipeline::from_kinds(&[PreprocKind::StandardScaler]);
        let t = inj.try_evaluate(&p).expect("delayed but successful");
        assert!(t.accuracy.is_finite());
        assert!(t.failure.is_none());
    }
}
