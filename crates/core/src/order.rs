//! Total-order comparison helpers that rank NaN deterministically.
//!
//! Search code constantly sorts trials by accuracy or error. With
//! fault-tolerant evaluation, a score can legitimately be NaN (e.g. a
//! diverged surrogate prediction), and the idiomatic
//! `partial_cmp().unwrap()` sort becomes a panic waiting to happen.
//! These helpers give NaN a fixed, *pessimistic* position instead:
//! smallest when larger-is-better, largest when smaller-is-better, so
//! a NaN-scored candidate never wins a selection either way.

use std::cmp::Ordering;

/// Total order on `f64` that places every NaN *below* every number.
///
/// Use in larger-is-better contexts (accuracy): `max_by(nan_smallest)`
/// never selects NaN over a real score, and an ascending sort puts
/// NaNs first / a descending sort puts them last.
pub fn nan_smallest(a: &f64, b: &f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
    }
}

/// Total order on `f64` that places every NaN *above* every number.
///
/// Use in smaller-is-better contexts (error, rank, distance):
/// `min_by(nan_largest)` never selects NaN over a real score, and an
/// ascending sort puts NaNs last.
pub fn nan_largest(a: &f64, b: &f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_smallest_ranks_nan_below_everything() {
        assert_eq!(nan_smallest(&f64::NAN, &f64::NEG_INFINITY), Ordering::Less);
        assert_eq!(nan_smallest(&0.0, &f64::NAN), Ordering::Greater);
        assert_eq!(nan_smallest(&f64::NAN, &f64::NAN), Ordering::Equal);
        assert_eq!(nan_smallest(&1.0, &2.0), Ordering::Less);
    }

    #[test]
    fn nan_largest_ranks_nan_above_everything() {
        assert_eq!(nan_largest(&f64::NAN, &f64::INFINITY), Ordering::Greater);
        assert_eq!(nan_largest(&0.5, &f64::NAN), Ordering::Less);
        assert_eq!(nan_largest(&2.0, &1.0), Ordering::Greater);
    }

    #[test]
    fn max_by_never_picks_nan() {
        let xs = [0.3, f64::NAN, 0.7, f64::NAN];
        let best = xs.iter().copied().max_by(nan_smallest).unwrap();
        assert_eq!(best, 0.7);
        let worst = xs.iter().copied().min_by(nan_largest).unwrap();
        assert_eq!(worst, 0.3);
    }

    #[test]
    fn sort_is_total_and_deterministic() {
        let mut xs = [f64::NAN, 1.0, -1.0, f64::NAN, 0.0];
        xs.sort_by(nan_largest);
        assert_eq!(&xs[..3], &[-1.0, 0.0, 1.0]);
        assert!(xs[3].is_nan() && xs[4].is_nan());
    }
}
