//! Parameter-search extensions (§6.2): One-step and Two-step.
//!
//! *One-step* treats every parameterization of every preprocessor as a
//! distinct symbol and runs an ordinary pipeline search over the
//! enlarged alphabet. *Two-step* alternates: draw a random parameter
//! assignment (one variant per kind), then run a short pipeline search
//! restricted to that assignment; repeat until the budget is exhausted.
//! The paper uses PBT as the underlying searcher for both.

use crate::evolution::Pbt;
use autofp_core::{SearchContext, Searcher};

use autofp_linalg::rng::{derive_seed, rng_from_seed};
use autofp_preprocess::ParamSpace;
use rand::rngs::StdRng;

/// One-step: pipeline + parameter search in a single flattened space.
pub struct OneStep {
    inner: Pbt,
}

impl OneStep {
    /// Build over an extended space (Table 6 or Table 7).
    pub fn new(space: ParamSpace, max_len: usize, seed: u64) -> OneStep {
        OneStep { inner: Pbt::new(space, max_len, seed) }
    }
}

impl Searcher for OneStep {
    fn name(&self) -> &'static str {
        "One-step"
    }

    fn search(&mut self, ctx: &mut SearchContext) {
        self.inner.search(ctx);
    }
}

/// Two-step: random parameter assignment, then a short pipeline search
/// with those parameters fixed; repeat.
pub struct TwoStep {
    space: ParamSpace,
    max_len: usize,
    rng: StdRng,
    seed: u64,
    /// Evaluations per inner pipeline-search phase (the paper uses a
    /// short time limit "like 60s" per phase; under eval budgets this is
    /// the equivalent knob).
    pub inner_evals: usize,
    round: u64,
}

impl TwoStep {
    /// Two-step over an extended space.
    pub fn new(space: ParamSpace, max_len: usize, seed: u64) -> TwoStep {
        TwoStep {
            space,
            max_len,
            rng: rng_from_seed(derive_seed(seed, 0x25)),
            seed,
            inner_evals: 15,
            round: 0,
        }
    }
}

impl Searcher for TwoStep {
    fn name(&self) -> &'static str {
        "Two-step"
    }

    fn search(&mut self, ctx: &mut SearchContext) {
        while !ctx.exhausted() {
            // Step 1: randomly select parameter values for each kind.
            let assignment = self.space.sample_assignment(&mut self.rng);
            let restricted = ParamSpace::fixed_assignment(assignment);
            // Step 2: short pipeline search over the restricted space.
            self.round += 1;
            let mut inner = Pbt::new(restricted, self.max_len, derive_seed(self.seed, self.round));
            inner.population_size = 8;
            inner.stop_after = Some(self.inner_evals);
            inner.search(ctx);
        }
    }
}

/// Adaptive Two-step (§8, research opportunity 3: "allocate pipeline and
/// parameter search time budget reasonably").
///
/// Like [`TwoStep`], but the inner pipeline-search length adapts: if a
/// phase improved the global best, the next phase gets more evaluations
/// (exploit the promising parameter assignment's neighbourhood longer);
/// otherwise the next phase gets fewer (move on to fresh parameters
/// sooner). Bounds keep the allocation sane.
pub struct AdaptiveTwoStep {
    space: ParamSpace,
    max_len: usize,
    rng: StdRng,
    seed: u64,
    /// Starting evaluations per phase.
    pub initial_inner_evals: usize,
    /// Inclusive bounds on the adaptive phase length.
    pub min_inner_evals: usize,
    /// Upper bound on the adaptive phase length.
    pub max_inner_evals: usize,
    round: u64,
}

impl AdaptiveTwoStep {
    /// Adaptive Two-step over an extended space.
    pub fn new(space: ParamSpace, max_len: usize, seed: u64) -> AdaptiveTwoStep {
        AdaptiveTwoStep {
            space,
            max_len,
            rng: rng_from_seed(derive_seed(seed, 0xAD2)),
            seed,
            initial_inner_evals: 12,
            min_inner_evals: 6,
            max_inner_evals: 48,
            round: 0,
        }
    }
}

impl Searcher for AdaptiveTwoStep {
    fn name(&self) -> &'static str {
        "AdaptiveTwoStep"
    }

    fn search(&mut self, ctx: &mut SearchContext) {
        let mut inner_evals = self.initial_inner_evals;
        let mut global_best = 0.0_f64;
        while !ctx.exhausted() {
            let assignment = self.space.sample_assignment(&mut self.rng);
            let restricted = ParamSpace::fixed_assignment(assignment);
            self.round += 1;
            let mut inner =
                Pbt::new(restricted, self.max_len, derive_seed(self.seed, self.round));
            inner.population_size = 8;
            inner.stop_after = Some(inner_evals);
            inner.search(ctx);
            let best_now = ctx.history().best_accuracy();
            if best_now > global_best + 1e-12 {
                global_best = best_now;
                inner_evals = (inner_evals * 2).min(self.max_inner_evals);
            } else {
                inner_evals = (inner_evals / 2).max(self.min_inner_evals);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_core::{run_search, Budget, EvalConfig, Evaluator};
    use autofp_data::SynthConfig;
    use autofp_preprocess::PreprocKind;

    fn evaluator() -> Evaluator {
        let d = SynthConfig::new("ext-test", 120, 5, 2, 3).generate();
        Evaluator::new(&d, EvalConfig::default())
    }

    #[test]
    fn one_step_explores_parameter_variants() {
        let ev = evaluator();
        let mut s = OneStep::new(ParamSpace::low_cardinality(), 4, 3);
        let out = run_search(&mut s, &ev, Budget::evals(25));
        assert_eq!(out.history.len(), 25);
        // With 31 variants, some evaluated step must be non-default.
        let non_default = out.history.trials().iter().any(|t| {
            t.pipeline.steps().iter().any(|s| {
                s != &autofp_preprocess::Preproc::default_for(s.kind())
            })
        });
        assert!(non_default, "One-step never left the default variants");
    }

    #[test]
    fn two_step_phases_share_one_assignment() {
        let ev = evaluator();
        let mut s = TwoStep::new(ParamSpace::low_cardinality(), 4, 5);
        s.inner_evals = 10;
        let out = run_search(&mut s, &ev, Budget::evals(30));
        assert_eq!(out.history.len(), 30);
        // Within one phase, all Binarizer steps share a single threshold.
        for phase in out.history.trials().chunks(10) {
            let mut thresholds: Vec<u64> = phase
                .iter()
                .flat_map(|t| t.pipeline.steps().iter())
                .filter_map(|s| match s {
                    autofp_preprocess::Preproc::Binarizer { threshold } => {
                        Some(threshold.to_bits())
                    }
                    _ => None,
                })
                .collect();
            thresholds.sort_unstable();
            thresholds.dedup();
            assert!(thresholds.len() <= 1, "phase mixed Binarizer thresholds");
        }
    }

    #[test]
    fn adaptive_two_step_runs_and_respects_budget() {
        let ev = evaluator();
        let mut s = AdaptiveTwoStep::new(ParamSpace::low_cardinality(), 4, 9);
        let out = run_search(&mut s, &ev, Budget::evals(40));
        assert_eq!(out.history.len(), 40);
        assert_eq!(out.algorithm, "AdaptiveTwoStep");
    }

    #[test]
    fn one_step_over_high_cardinality_is_quantile_heavy() {
        // The §6.3 degeneracy: One-step over Table 7 mostly samples
        // QuantileTransformer steps.
        let ev = evaluator();
        let mut s = OneStep::new(ParamSpace::high_cardinality(), 4, 7);
        let out = run_search(&mut s, &ev, Budget::evals(15));
        let mut quantile = 0usize;
        let mut total = 0usize;
        for t in out.history.trials() {
            for step in t.pipeline.steps() {
                total += 1;
                if step.kind() == PreprocKind::QuantileTransformer {
                    quantile += 1;
                }
            }
        }
        assert!(
            quantile as f64 / total as f64 > 0.8,
            "quantile steps {quantile}/{total}"
        );
    }
}
