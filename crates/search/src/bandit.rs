//! Bandit-based algorithms (§4.1.5): Hyperband and BOHB.
//!
//! The resource a rung allocates is the downstream trainer's iteration
//! budget (boosting rounds / epochs), expressed in `1..=max_units`
//! units; a pipeline evaluated at `r` units trains with fraction
//! `r / max_units`. The `eta` and `min_budget` knobs reproduce the
//! paper's Figure 6 parameter sweep.

use crate::mutation::Alphabet;
use autofp_core::{nan_smallest, SearchContext, Searcher};
use autofp_linalg::rng::rng_from_seed;
use autofp_preprocess::{ParamSpace, Pipeline};
use autofp_surrogate::tpe::CategoricalTpe;
use rand::rngs::StdRng;
use rand::Rng;

/// Shared successive-halving driver for Hyperband and BOHB.
struct HalvingDriver {
    eta: f64,
    min_units: usize,
    max_units: usize,
}

impl HalvingDriver {
    /// `s_max = floor(log_eta(R))` with `R = max_units / min_units`.
    fn s_max(&self) -> usize {
        let r = self.max_units as f64 / self.min_units as f64;
        (r.ln() / self.eta.ln()).floor().max(0.0) as usize
    }

    /// Initial configs `n` and initial per-config units `r` for bracket `s`.
    fn bracket_params(&self, s: usize) -> (usize, f64) {
        let s_max = self.s_max();
        let r = self.max_units as f64 / self.min_units as f64;
        let n = (((s_max + 1) as f64 / (s + 1) as f64) * self.eta.powi(s as i32)).ceil() as usize;
        let r0 = r * self.eta.powi(-(s as i32));
        (n.max(1), r0 * self.min_units as f64)
    }

    /// Fraction of the trainer's full budget for a rung at `units`.
    fn fraction(&self, units: f64) -> f64 {
        (units / self.max_units as f64).clamp(0.01, 1.0)
    }
}

/// Hyperband (Li et al. 2017).
pub struct Hyperband {
    space: ParamSpace,
    max_len: usize,
    rng: StdRng,
    driver: HalvingDriver,
}

impl Hyperband {
    /// Hyperband with the paper's defaults (eta 3, budgets 1..30).
    pub fn new(space: ParamSpace, max_len: usize, seed: u64) -> Hyperband {
        Hyperband::with_params(space, max_len, seed, 3.0, 1, 30)
    }

    /// Full control over `eta`, `min_budget` and `max_budget` (units),
    /// matching the paper's Figure 6 sweep.
    pub fn with_params(
        space: ParamSpace,
        max_len: usize,
        seed: u64,
        eta: f64,
        min_units: usize,
        max_units: usize,
    ) -> Hyperband {
        Hyperband {
            space,
            max_len,
            rng: rng_from_seed(seed),
            driver: HalvingDriver { eta, min_units: min_units.max(1), max_units: max_units.max(1) },
        }
    }
}

impl Searcher for Hyperband {
    fn name(&self) -> &'static str {
        "HYPERBAND"
    }

    fn search(&mut self, ctx: &mut SearchContext) {
        loop {
            for s in (0..=self.driver.s_max()).rev() {
                let (n, r0) = self.driver.bracket_params(s);
                let configs: Vec<Pipeline> = (0..n)
                    .map(|_| self.space.sample_pipeline(&mut self.rng, self.max_len))
                    .collect();
                if run_bracket(ctx, &self.driver, s, r0, configs, &mut |_, _, _| {}).is_none() {
                    return;
                }
            }
            if ctx.exhausted() {
                return;
            }
        }
    }
}

/// Run one successive-halving bracket. Returns `None` if the budget ran
/// out mid-bracket. `observe` receives `(pipeline, fraction, error)` for
/// every completed rung evaluation (BOHB feeds its TPE model with it).
///
/// A rung's survivor set is fixed *before* any of its evaluations run,
/// so the whole rung is one independent batch: it goes through
/// [`SearchContext::evaluate_batch_budgeted`], which fans it across the
/// `BatchEvaluator` worker pool. Results come back in input order and
/// bit-identical to the sequential path, so promotion decisions — and
/// the recorded history — do not depend on the worker count.
fn run_bracket(
    ctx: &mut SearchContext,
    driver: &HalvingDriver,
    s: usize,
    r0: f64,
    mut configs: Vec<Pipeline>,
    observe: &mut dyn FnMut(&Pipeline, f64, f64),
) -> Option<()> {
    for i in 0..=s {
        let units = r0 * driver.eta.powi(i as i32);
        let frac = driver.fraction(units);
        let trials = ctx.evaluate_batch_budgeted(&configs, frac)?;
        // Under an eval-count budget the batch may be truncated; the
        // returned trials still match `configs[..len]` in order.
        let exhausted_mid_rung = trials.len() < configs.len();
        let mut scored: Vec<(f64, Pipeline)> = Vec::with_capacity(trials.len());
        for (trial, p) in trials.iter().zip(configs.drain(..)) {
            observe(&p, frac, trial.error);
            scored.push((trial.accuracy, p));
        }
        if exhausted_mid_rung {
            return None;
        }
        // Keep the top 1/eta for the next rung.
        // Descending by accuracy; NaN (if a corrupted score ever
        // appears) sorts last and is promoted never.
        scored.sort_by(|a, b| nan_smallest(&b.0, &a.0));
        let keep = ((scored.len() as f64 / driver.eta).floor() as usize).max(1);
        if i < s {
            configs = scored.into_iter().take(keep).map(|(_, p)| p).collect();
        }
    }
    Some(())
}

/// BOHB (Falkner et al. 2018): Hyperband's bracket structure, with new
/// configurations proposed by a TPE model fit on the observations at the
/// highest budget level that has enough of them; a fixed fraction stays
/// random for exploration.
pub struct Bohb {
    space: ParamSpace,
    alphabet: Alphabet,
    max_len: usize,
    rng: StdRng,
    driver: HalvingDriver,
    /// Fraction of configs sampled uniformly at random (BOHB's ρ).
    pub random_fraction: f64,
    /// Minimum observations at a budget level before TPE engages.
    pub min_points: usize,
}

impl Bohb {
    /// BOHB with the paper's defaults (eta 3, budgets 1..30).
    pub fn new(space: ParamSpace, max_len: usize, seed: u64) -> Bohb {
        Bohb::with_params(space, max_len, seed, 3.0, 1, 30)
    }

    /// Full control over `eta`, `min_budget`, `max_budget` (Figure 6).
    pub fn with_params(
        space: ParamSpace,
        max_len: usize,
        seed: u64,
        eta: f64,
        min_units: usize,
        max_units: usize,
    ) -> Bohb {
        let alphabet = Alphabet::new(&space);
        Bohb {
            space,
            alphabet,
            max_len,
            rng: rng_from_seed(seed),
            driver: HalvingDriver { eta, min_units: min_units.max(1), max_units: max_units.max(1) },
            random_fraction: 1.0 / 3.0,
            min_points: 6,
        }
    }

    /// Propose one configuration: random with probability ρ, otherwise
    /// from the TPE model over the best-budget observations.
    fn propose(
        &mut self,
        observations: &[(f64, Vec<usize>, f64)], // (fraction, tokens, error)
    ) -> Pipeline {
        if self.rng.gen::<f64>() >= self.random_fraction {
            // Highest budget level with enough observations.
            let mut fractions: Vec<f64> = observations.iter().map(|(f, _, _)| *f).collect();
            fractions.sort_by(f64::total_cmp);
            fractions.dedup();
            for &frac in fractions.iter().rev() {
                let level: Vec<(Vec<usize>, f64)> = observations
                    .iter()
                    .filter(|(f, _, _)| (*f - frac).abs() < 1e-9)
                    .map(|(_, t, e)| (t.clone(), *e))
                    .collect();
                if level.len() >= self.min_points {
                    let tpe = CategoricalTpe::new(self.alphabet.len(), self.max_len);
                    let model = tpe.fit(&level);
                    let tokens = model.suggest(&mut self.rng, 24);
                    return self.alphabet.decode(&tokens);
                }
            }
        }
        self.space.sample_pipeline(&mut self.rng, self.max_len)
    }
}

impl Searcher for Bohb {
    fn name(&self) -> &'static str {
        "BOHB"
    }

    fn search(&mut self, ctx: &mut SearchContext) {
        let mut observations: Vec<(f64, Vec<usize>, f64)> = Vec::new();
        loop {
            for s in (0..=self.driver.s_max()).rev() {
                let (n, r0) = self.driver.bracket_params(s);
                let configs: Vec<Pipeline> =
                    (0..n).map(|_| self.propose(&observations)).collect();
                let alphabet = &self.alphabet;
                let mut new_obs: Vec<(f64, Vec<usize>, f64)> = Vec::new();
                let done = run_bracket(
                    ctx,
                    &self.driver,
                    s,
                    r0,
                    configs,
                    &mut |p, frac, err| {
                        if let Some(tokens) = alphabet.encode(p) {
                            new_obs.push((frac, tokens, err));
                        }
                    },
                );
                observations.append(&mut new_obs);
                if done.is_none() {
                    return;
                }
            }
            if ctx.exhausted() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_core::{run_search, Budget, EvalConfig, Evaluator};
    use autofp_data::SynthConfig;
    use autofp_models::classifier::ModelKind;

    fn evaluator() -> Evaluator {
        let d = SynthConfig::new("bandit-test", 150, 5, 2, 3).generate();
        Evaluator::new(&d, EvalConfig { model: ModelKind::Xgb, ..Default::default() })
    }

    #[test]
    fn bracket_schedule_matches_hyperband_paper() {
        let driver = HalvingDriver { eta: 3.0, min_units: 1, max_units: 27 };
        assert_eq!(driver.s_max(), 3);
        let (n, r) = driver.bracket_params(3);
        assert_eq!(n, 27);
        assert!((r - 1.0).abs() < 1e-9);
        let (n0, r0) = driver.bracket_params(0);
        assert_eq!(n0, 4);
        assert!((r0 - 27.0).abs() < 1e-9);
    }

    #[test]
    fn hyperband_uses_partial_budgets() {
        let ev = evaluator();
        let mut hb = Hyperband::new(ParamSpace::default_space(), 4, 3);
        let out = run_search(&mut hb, &ev, Budget::evals(30));
        assert!(out.history.len() <= 30);
        let partial = out.history.trials().iter().filter(|t| t.train_fraction < 1.0).count();
        assert!(partial > 0, "no partial-budget rungs observed");
    }

    #[test]
    fn hyperband_param_sweep_configs_run() {
        let ev = evaluator();
        for (eta, minb) in [(3.0, 1), (5.0, 1), (3.0, 8), (3.0, 30)] {
            let mut hb =
                Hyperband::with_params(ParamSpace::default_space(), 4, 3, eta, minb, 30);
            let out = run_search(&mut hb, &ev, Budget::evals(12));
            assert!(!out.history.is_empty(), "eta {eta} min {minb}");
        }
    }

    #[test]
    fn bohb_runs_and_observes() {
        let ev = evaluator();
        let mut bohb = Bohb::new(ParamSpace::default_space(), 4, 5);
        let out = run_search(&mut bohb, &ev, Budget::evals(40));
        assert!(!out.history.is_empty());
        assert_eq!(out.algorithm, "BOHB");
    }

    #[test]
    fn best_reported_is_fully_trained_when_available() {
        let ev = evaluator();
        let mut hb = Hyperband::new(ParamSpace::default_space(), 4, 7);
        let out = run_search(&mut hb, &ev, Budget::evals(50));
        if let Some(best) = out.best() {
            let has_full =
                out.history.trials().iter().any(|t| t.train_fraction >= 1.0 - 1e-9);
            if has_full {
                assert!(best.train_fraction >= 1.0 - 1e-9);
            }
        }
    }

    #[test]
    fn deterministic() {
        let ev = evaluator();
        let run = || {
            let mut hb = Hyperband::new(ParamSpace::default_space(), 4, 9);
            run_search(&mut hb, &ev, Budget::evals(20)).best_accuracy()
        };
        assert_eq!(run(), run());
    }

    /// The batched rung step must not let the worker count leak into
    /// results: the same seeded search on 1 and 4 batch threads has to
    /// produce bit-identical rung evaluations, in the same order.
    #[test]
    fn rung_results_bit_identical_across_worker_counts() {
        use autofp_core::SearchContext;
        let ev = evaluator();
        let run = |threads: usize| {
            let mut hb = Hyperband::new(ParamSpace::default_space(), 4, 11);
            let mut ctx = SearchContext::new(&ev, Budget::evals(40));
            ctx.set_batch_threads(threads);
            hb.search(&mut ctx);
            ctx.finish("HYPERBAND")
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.history.len(), par.history.len());
        assert!(!seq.history.is_empty());
        for (a, b) in seq.history.trials().iter().zip(par.history.trials()) {
            assert_eq!(a.pipeline.key(), b.pipeline.key());
            assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
            assert_eq!(a.error.to_bits(), b.error.to_bits());
            assert_eq!(a.train_fraction.to_bits(), b.train_fraction.to_bits());
            assert_eq!(a.failure, b.failure);
        }
    }

    /// Same invariant for BOHB, whose rungs also feed its TPE model:
    /// observation order must match the sequential path too.
    #[test]
    fn bohb_rungs_bit_identical_across_worker_counts() {
        use autofp_core::SearchContext;
        let ev = evaluator();
        let run = |threads: usize| {
            let mut bohb = Bohb::new(ParamSpace::default_space(), 4, 13);
            let mut ctx = SearchContext::new(&ev, Budget::evals(40));
            ctx.set_batch_threads(threads);
            bohb.search(&mut ctx);
            ctx.finish("BOHB")
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.history.len(), par.history.len());
        for (a, b) in seq.history.trials().iter().zip(par.history.trials()) {
            assert_eq!(a.pipeline.key(), b.pipeline.key());
            assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        }
    }
}
