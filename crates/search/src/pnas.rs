//! Progressive NAS (§4.1.2): beam search over pipeline length with a
//! learned surrogate ranking the expansions — four variants by
//! surrogate (MLP/LSTM, with/without ensemble): PMNE, PME, PLNE, PLE.

use crate::mutation::Alphabet;
use autofp_core::{nan_smallest, SearchContext, Searcher};
use autofp_linalg::rng::{derive_seed, rng_from_seed, sample_indices};
use autofp_linalg::Matrix;
use autofp_preprocess::encoding::encode_pipeline;
use autofp_preprocess::{ParamSpace, Pipeline};
use autofp_surrogate::lstm::{LstmEnsemble, LstmRegParams, LstmRegressor};
use autofp_surrogate::mlp_reg::{MlpEnsemble, MlpRegParams, MlpRegressor};
use rand::rngs::StdRng;
use std::collections::HashSet;

/// Which surrogate a [`ProgressiveNas`] instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurrogateKind {
    /// Single MLP (the paper's PMNE).
    MlpNoEnsemble,
    /// MLP ensemble (PME).
    MlpEnsemble,
    /// Single LSTM (PLNE).
    LstmNoEnsemble,
    /// LSTM ensemble (PLE).
    LstmEnsemble,
}

impl SurrogateKind {
    /// Table 3 display name (PMNE/PME/PLNE/PLE).
    pub fn table_name(self) -> &'static str {
        match self {
            SurrogateKind::MlpNoEnsemble => "PMNE",
            SurrogateKind::MlpEnsemble => "PME",
            SurrogateKind::LstmNoEnsemble => "PLNE",
            SurrogateKind::LstmEnsemble => "PLE",
        }
    }
}

enum Surrogate {
    Mlp(MlpRegressor),
    MlpEns(MlpEnsemble),
    Lstm(LstmRegressor),
    LstmEns(LstmEnsemble),
}

/// Progressive NAS searcher.
pub struct ProgressiveNas {
    #[allow(dead_code)]
    space: ParamSpace,
    alphabet: Alphabet,
    max_len: usize,
    kind: SurrogateKind,
    rng: StdRng,
    /// Beam width (evaluations per level).
    pub beam_size: usize,
    /// Ensemble member count for the ensemble variants.
    pub n_members: usize,
    /// Cap on expansion tokens per beam element for huge alphabets.
    pub max_expand_tokens: usize,
    seed: u64,
}

impl ProgressiveNas {
    /// Progressive NAS with the chosen surrogate kind.
    pub fn new(space: ParamSpace, max_len: usize, kind: SurrogateKind, seed: u64) -> Self {
        let alphabet = Alphabet::new(&space);
        ProgressiveNas {
            space,
            alphabet,
            max_len,
            kind,
            rng: rng_from_seed(seed),
            beam_size: 6,
            n_members: 3,
            max_expand_tokens: 16,
            seed,
        }
    }

    /// Fit the configured surrogate on the full history.
    fn fit_surrogate(&self, history: &[(Vec<usize>, f64)], round: u64) -> Surrogate {
        let seed = derive_seed(self.seed, round);
        match self.kind {
            SurrogateKind::MlpNoEnsemble | SurrogateKind::MlpEnsemble => {
                let rows: Vec<Vec<f64>> = history
                    .iter()
                    .map(|(t, _)| encode_pipeline(&self.alphabet.decode(t), self.max_len))
                    .collect();
                let x = Matrix::from_rows(&rows);
                let y: Vec<f64> = history.iter().map(|(_, a)| *a).collect();
                let params = MlpRegParams { seed, ..Default::default() };
                if self.kind == SurrogateKind::MlpNoEnsemble {
                    Surrogate::Mlp(MlpRegressor::fit(&x, &y, &params))
                } else {
                    Surrogate::MlpEns(MlpEnsemble::fit(&x, &y, &params, self.n_members))
                }
            }
            SurrogateKind::LstmNoEnsemble | SurrogateKind::LstmEnsemble => {
                // LSTM consumes variant tokens shifted by one (0 = start).
                let seqs: Vec<Vec<usize>> =
                    history.iter().map(|(t, _)| t.iter().map(|&v| v + 1).collect()).collect();
                let y: Vec<f64> = history.iter().map(|(_, a)| *a).collect();
                let vocab = self.alphabet.len().min(63) + 1;
                let params = LstmRegParams { seed, ..Default::default() };
                if self.kind == SurrogateKind::LstmNoEnsemble {
                    Surrogate::Lstm(LstmRegressor::fit(&seqs, &y, vocab, &params))
                } else {
                    Surrogate::LstmEns(LstmEnsemble::fit(&seqs, &y, vocab, &params, self.n_members))
                }
            }
        }
    }

    fn predict(&self, s: &Surrogate, tokens: &[usize]) -> f64 {
        match s {
            Surrogate::Mlp(m) => m.predict(&encode_pipeline(&self.alphabet.decode(tokens), self.max_len)),
            Surrogate::MlpEns(m) => {
                m.predict(&encode_pipeline(&self.alphabet.decode(tokens), self.max_len))
            }
            Surrogate::Lstm(m) => {
                let seq: Vec<usize> = tokens.iter().map(|&v| v + 1).collect();
                m.predict(&seq)
            }
            Surrogate::LstmEns(m) => {
                let seq: Vec<usize> = tokens.iter().map(|&v| v + 1).collect();
                m.predict(&seq)
            }
        }
    }

    /// Tokens to consider when expanding (the whole alphabet, or a random
    /// subset for huge One-step alphabets).
    fn expansion_tokens(&mut self) -> Vec<usize> {
        let k = self.alphabet.len();
        if k <= self.max_expand_tokens {
            (0..k).collect()
        } else {
            sample_indices(&mut self.rng, k, self.max_expand_tokens)
        }
    }
}

impl Searcher for ProgressiveNas {
    fn name(&self) -> &'static str {
        self.kind.table_name()
    }

    fn search(&mut self, ctx: &mut SearchContext) {
        let mut history: Vec<(Vec<usize>, f64)> = Vec::new();
        let mut evaluated: HashSet<Vec<usize>> = HashSet::new();

        // Level 1: evaluate single-symbol pipelines (the paper: "initially
        // starts by considering single preprocessors as pipelines"), as
        // one batch — the candidates are result-independent.
        let singles: Vec<Vec<usize>> = self.expansion_tokens().into_iter().map(|t| vec![t]).collect();
        if !record_batch(ctx, &self.alphabet, &singles, &mut evaluated, &mut history) {
            return;
        }

        let mut round: u64 = 0;
        loop {
            // One progressive sweep from length 2 up to max_len.
            let mut beam: Vec<Vec<usize>> = top_k_of_len(&history, 1, self.beam_size);
            for level in 2..=self.max_len {
                if ctx.exhausted() {
                    return;
                }
                round += 1;
                let surrogate = self.fit_surrogate(&history, round);
                let expand = self.expansion_tokens();
                // Candidate expansions, scored by the surrogate.
                let mut scored: Vec<(f64, Vec<usize>)> = Vec::new();
                for b in &beam {
                    for &t in &expand {
                        let mut cand = b.clone();
                        cand.push(t);
                        if evaluated.contains(&cand) {
                            continue;
                        }
                        let score = self.predict(&surrogate, &cand);
                        scored.push((score, cand));
                    }
                }
                // A diverged surrogate can emit NaN scores; rank them last
                // instead of panicking mid-search.
                scored.sort_by(|a, b| nan_smallest(&b.0, &a.0));
                scored.truncate(self.beam_size);
                if scored.is_empty() {
                    break;
                }
                // The surrogate already scored the whole level: the
                // beam_size winners are result-independent, so expand
                // them as one batch.
                let winners: Vec<Vec<usize>> = scored.into_iter().map(|(_, t)| t).collect();
                if !record_batch(ctx, &self.alphabet, &winners, &mut evaluated, &mut history) {
                    return;
                }
                beam = top_k_of_len(&history, level, self.beam_size);
                if beam.is_empty() {
                    break;
                }
            }
            if ctx.exhausted() {
                return;
            }
        }
    }
}

/// Evaluate `candidates` (already deduplicated against `evaluated`) as
/// one batch through the context's worker pool and record them in the
/// searcher's bookkeeping. Returns `false` when the search must stop:
/// the budget was exhausted before (`None`) or during (truncated batch)
/// the evaluations. Trials are appended in candidate order, so the
/// history is bit-identical to the old one-at-a-time loop.
fn record_batch(
    ctx: &mut SearchContext,
    alphabet: &Alphabet,
    candidates: &[Vec<usize>],
    evaluated: &mut HashSet<Vec<usize>>,
    history: &mut Vec<(Vec<usize>, f64)>,
) -> bool {
    let fresh: Vec<&Vec<usize>> =
        candidates.iter().filter(|t| !evaluated.contains(*t)).collect();
    if fresh.is_empty() {
        return true;
    }
    let pipelines: Vec<Pipeline> = fresh.iter().map(|t| alphabet.decode(t)).collect();
    let Some(trials) = ctx.evaluate_batch(&pipelines) else { return false };
    for (tokens, trial) in fresh.iter().zip(&trials) {
        evaluated.insert((*tokens).clone());
        history.push(((*tokens).clone(), trial.accuracy));
    }
    trials.len() == pipelines.len()
}

/// Top-k token sequences of a given length by observed accuracy.
fn top_k_of_len(history: &[(Vec<usize>, f64)], len: usize, k: usize) -> Vec<Vec<usize>> {
    let mut of_len: Vec<&(Vec<usize>, f64)> =
        history.iter().filter(|(t, _)| t.len() == len).collect();
    of_len.sort_by(|a, b| nan_smallest(&b.1, &a.1));
    of_len.into_iter().take(k).map(|(t, _)| t.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_core::{run_search, Budget, EvalConfig, Evaluator};
    use autofp_data::SynthConfig;

    fn evaluator() -> Evaluator {
        let d = SynthConfig::new("pnas-test", 120, 4, 2, 5).generate();
        Evaluator::new(&d, EvalConfig::default())
    }

    #[test]
    fn all_four_variants_run() {
        let ev = evaluator();
        for kind in [
            SurrogateKind::MlpNoEnsemble,
            SurrogateKind::MlpEnsemble,
            SurrogateKind::LstmNoEnsemble,
            SurrogateKind::LstmEnsemble,
        ] {
            let mut pnas = ProgressiveNas::new(ParamSpace::default_space(), 3, kind, 3);
            pnas.beam_size = 3;
            let out = run_search(&mut pnas, &ev, Budget::evals(12));
            assert_eq!(out.history.len(), 12, "{}", kind.table_name());
            assert_eq!(out.algorithm, kind.table_name());
        }
    }

    #[test]
    fn initialization_covers_singles_first() {
        let ev = evaluator();
        let mut pnas =
            ProgressiveNas::new(ParamSpace::default_space(), 3, SurrogateKind::MlpNoEnsemble, 1);
        let out = run_search(&mut pnas, &ev, Budget::evals(7));
        // First 7 evaluations are the 7 single-preprocessor pipelines.
        for t in out.history.trials() {
            assert_eq!(t.pipeline.len(), 1);
        }
    }

    #[test]
    fn no_duplicate_evaluations() {
        let ev = evaluator();
        let mut pnas =
            ProgressiveNas::new(ParamSpace::default_space(), 3, SurrogateKind::MlpNoEnsemble, 7);
        pnas.beam_size = 4;
        let out = run_search(&mut pnas, &ev, Budget::evals(25));
        let mut keys: Vec<String> =
            out.history.trials().iter().map(|t| t.pipeline.key()).collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before, "PNAS re-evaluated a pipeline");
    }

    /// The batched candidate-expansion step must not let the worker
    /// count leak into results: the same seeded search on 1 and 4 batch
    /// threads has to produce bit-identical trials, in the same order
    /// (the invariant the Hyperband/BOHB rung tests pin for bandits).
    #[test]
    fn pnas_history_bit_identical_across_worker_counts() {
        use autofp_core::SearchContext;
        let ev = evaluator();
        let run = |threads: usize| {
            let mut pnas = ProgressiveNas::new(
                ParamSpace::default_space(),
                3,
                SurrogateKind::MlpNoEnsemble,
                7,
            );
            pnas.beam_size = 4;
            let mut ctx = SearchContext::new(&ev, Budget::evals(25));
            ctx.set_batch_threads(threads);
            pnas.search(&mut ctx);
            ctx.finish("PMNE")
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.history.len(), par.history.len());
        assert!(!seq.history.is_empty());
        for (a, b) in seq.history.trials().iter().zip(par.history.trials()) {
            assert_eq!(a.pipeline.key(), b.pipeline.key());
            assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
            assert_eq!(a.error.to_bits(), b.error.to_bits());
            assert_eq!(a.train_fraction.to_bits(), b.train_fraction.to_bits());
            assert_eq!(a.failure, b.failure);
        }
    }

    #[test]
    fn table_names_match_paper() {
        assert_eq!(SurrogateKind::MlpNoEnsemble.table_name(), "PMNE");
        assert_eq!(SurrogateKind::MlpEnsemble.table_name(), "PME");
        assert_eq!(SurrogateKind::LstmNoEnsemble.table_name(), "PLNE");
        assert_eq!(SurrogateKind::LstmEnsemble.table_name(), "PLE");
    }
}
