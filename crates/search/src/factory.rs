//! Name-indexed construction of the 15 search algorithms (Table 3).

use crate::bandit::{Bohb, Hyperband};
use crate::evolution::{KillStrategy, Pbt, TournamentEvolution};
use crate::pnas::{ProgressiveNas, SurrogateKind};
use crate::random::{Anneal, RandomSearch};
use crate::rl::{Enas, Reinforce};
use crate::smac::Smac;
use crate::tpe_search::TpeSearch;
use autofp_core::Searcher;
use autofp_preprocess::ParamSpace;

/// The 15 algorithms of the study, by their Table 3 names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgName {
    /// Random Search.
    Rs,
    /// Anneal (hill climbing with decaying restarts).
    Anneal,
    /// SMAC (random-forest surrogate).
    Smac,
    /// TPE (Parzen estimators).
    Tpe,
    /// Progressive NAS, single MLP surrogate.
    Pmne,
    /// Progressive NAS, MLP ensemble.
    Pme,
    /// Progressive NAS, single LSTM surrogate.
    Plne,
    /// Progressive NAS, LSTM ensemble.
    Ple,
    /// Population-Based Training.
    Pbt,
    /// Tournament evolution, kill-worst.
    TevoH,
    /// Tournament evolution, kill-oldest (regularized evolution).
    TevoY,
    /// REINFORCE policy gradient.
    Reinforce,
    /// ENAS (LSTM controller).
    Enas,
    /// Hyperband successive halving.
    Hyperband,
    /// BOHB (Hyperband + TPE proposals).
    Bohb,
}

impl AlgName {
    /// All 15, in the paper's Table 4 column order.
    pub const ALL: [AlgName; 15] = [
        AlgName::Rs,
        AlgName::Anneal,
        AlgName::Tpe,
        AlgName::Smac,
        AlgName::TevoH,
        AlgName::TevoY,
        AlgName::Pbt,
        AlgName::Reinforce,
        AlgName::Enas,
        AlgName::Hyperband,
        AlgName::Bohb,
        AlgName::Pmne,
        AlgName::Pme,
        AlgName::Plne,
        AlgName::Ple,
    ];

    /// Table 3 display name.
    pub fn as_str(self) -> &'static str {
        match self {
            AlgName::Rs => "RS",
            AlgName::Anneal => "Anneal",
            AlgName::Smac => "SMAC",
            AlgName::Tpe => "TPE",
            AlgName::Pmne => "PMNE",
            AlgName::Pme => "PME",
            AlgName::Plne => "PLNE",
            AlgName::Ple => "PLE",
            AlgName::Pbt => "PBT",
            AlgName::TevoH => "TEVO_H",
            AlgName::TevoY => "TEVO_Y",
            AlgName::Reinforce => "REINFORCE",
            AlgName::Enas => "ENAS",
            AlgName::Hyperband => "HYPERBAND",
            AlgName::Bohb => "BOHB",
        }
    }

    /// Parse a Table 3 name (case-insensitive).
    pub fn parse(s: &str) -> Option<AlgName> {
        Self::ALL.iter().copied().find(|a| a.as_str().eq_ignore_ascii_case(s))
    }

    /// The paper's category of this algorithm.
    pub fn category(self) -> &'static str {
        match self {
            AlgName::Rs | AlgName::Anneal => "Traditional",
            AlgName::Smac | AlgName::Tpe | AlgName::Pmne | AlgName::Pme | AlgName::Plne
            | AlgName::Ple => "Surrogate-model-based",
            AlgName::Pbt | AlgName::TevoH | AlgName::TevoY => "Evolution-based",
            AlgName::Reinforce | AlgName::Enas => "RL-based",
            AlgName::Hyperband | AlgName::Bohb => "Bandit-based",
        }
    }
}

impl std::fmt::Display for AlgName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Construct a searcher by name over a space.
pub fn make_searcher(
    name: AlgName,
    space: ParamSpace,
    max_len: usize,
    seed: u64,
) -> Box<dyn Searcher> {
    match name {
        AlgName::Rs => Box::new(RandomSearch::new(space, max_len, seed)),
        AlgName::Anneal => Box::new(Anneal::new(space, max_len, seed)),
        AlgName::Smac => Box::new(Smac::new(space, max_len, seed)),
        AlgName::Tpe => Box::new(TpeSearch::new(space, max_len, seed)),
        AlgName::Pmne => {
            Box::new(ProgressiveNas::new(space, max_len, SurrogateKind::MlpNoEnsemble, seed))
        }
        AlgName::Pme => {
            Box::new(ProgressiveNas::new(space, max_len, SurrogateKind::MlpEnsemble, seed))
        }
        AlgName::Plne => {
            Box::new(ProgressiveNas::new(space, max_len, SurrogateKind::LstmNoEnsemble, seed))
        }
        AlgName::Ple => {
            Box::new(ProgressiveNas::new(space, max_len, SurrogateKind::LstmEnsemble, seed))
        }
        AlgName::Pbt => Box::new(Pbt::new(space, max_len, seed)),
        AlgName::TevoH => {
            Box::new(TournamentEvolution::new(space, max_len, KillStrategy::Worst, seed))
        }
        AlgName::TevoY => {
            Box::new(TournamentEvolution::new(space, max_len, KillStrategy::Oldest, seed))
        }
        AlgName::Reinforce => Box::new(Reinforce::new(space, max_len, seed)),
        AlgName::Enas => Box::new(Enas::new(space, max_len, seed)),
        AlgName::Hyperband => Box::new(Hyperband::new(space, max_len, seed)),
        AlgName::Bohb => Box::new(Bohb::new(space, max_len, seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_core::{run_search, Budget, EvalConfig, Evaluator};
    use autofp_data::SynthConfig;

    #[test]
    fn all_fifteen_construct_and_run() {
        let d = SynthConfig::new("factory-test", 100, 4, 2, 3).generate();
        let ev = Evaluator::new(&d, EvalConfig::default());
        for name in AlgName::ALL {
            let mut s = make_searcher(name, ParamSpace::default_space(), 3, 7);
            let out = run_search(s.as_mut(), &ev, Budget::evals(8));
            assert!(!out.history.is_empty(), "{name} evaluated nothing");
            assert_eq!(out.algorithm, name.as_str());
        }
    }

    #[test]
    fn names_parse_roundtrip() {
        for name in AlgName::ALL {
            assert_eq!(AlgName::parse(name.as_str()), Some(name));
            assert_eq!(AlgName::parse(&name.as_str().to_lowercase()), Some(name));
        }
        assert_eq!(AlgName::parse("nope"), None);
    }

    #[test]
    fn categories_match_table3() {
        assert_eq!(AlgName::Rs.category(), "Traditional");
        assert_eq!(AlgName::Pme.category(), "Surrogate-model-based");
        assert_eq!(AlgName::Pbt.category(), "Evolution-based");
        assert_eq!(AlgName::Enas.category(), "RL-based");
        assert_eq!(AlgName::Bohb.category(), "Bandit-based");
        let counts: Vec<usize> = ["Traditional", "Surrogate-model-based", "Evolution-based", "RL-based", "Bandit-based"]
            .iter()
            .map(|c| AlgName::ALL.iter().filter(|a| a.category() == *c).count())
            .collect();
        assert_eq!(counts, vec![2, 6, 3, 2, 2]);
    }
}
