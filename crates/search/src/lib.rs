#![warn(missing_docs)]
//! The 15 Auto-FP search algorithms (§4 of the paper) and the §6
//! parameter-search extensions.
//!
//! | Category | Algorithms |
//! |---|---|
//! | Traditional | [`random::RandomSearch`], [`random::Anneal`] |
//! | Surrogate-model-based | [`smac::Smac`], [`tpe_search::TpeSearch`], [`pnas::ProgressiveNas`] (PMNE/PME/PLNE/PLE) |
//! | Evolution-based | [`evolution::Pbt`], [`evolution::TournamentEvolution`] (TEVO_H/TEVO_Y) |
//! | RL-based | [`rl::Reinforce`], [`rl::Enas`] |
//! | Bandit-based | [`bandit::Hyperband`], [`bandit::Bohb`] |
//!
//! All implement [`autofp_core::Searcher`] and interact with the world
//! through [`autofp_core::SearchContext`] (Algorithm 1). The
//! [`factory`] module constructs any of the 15 by name; [`extended`]
//! provides the One-step/Two-step parameter-search strategies.

pub mod bandit;
pub mod evolution;
pub mod extended;
pub mod factory;
pub mod mutation;
pub mod pnas;
pub mod random;
pub mod rl;
pub mod smac;
pub mod tpe_search;

pub use bandit::{Bohb, Hyperband};
pub use evolution::{Pbt, TournamentEvolution};
pub use extended::{AdaptiveTwoStep, OneStep, TwoStep};
pub use factory::{make_searcher, AlgName};
pub use pnas::{ProgressiveNas, SurrogateKind};
pub use random::{Anneal, RandomSearch};
pub use rl::{Enas, Reinforce};
pub use smac::Smac;
pub use tpe_search::TpeSearch;
