#![warn(missing_docs)]
//! The 15 Auto-FP search algorithms (§4 of the paper) and the §6
//! parameter-search extensions.
//!
//! | Category | Algorithms |
//! |---|---|
//! | Traditional | [`random::RandomSearch`], [`random::Anneal`] |
//! | Surrogate-model-based | [`smac::Smac`], [`tpe_search::TpeSearch`], [`pnas::ProgressiveNas`] (PMNE/PME/PLNE/PLE) |
//! | Evolution-based | [`evolution::Pbt`], [`evolution::TournamentEvolution`] (TEVO_H/TEVO_Y) |
//! | RL-based | [`rl::Reinforce`], [`rl::Enas`] |
//! | Bandit-based | [`bandit::Hyperband`], [`bandit::Bohb`] |
//!
//! All implement [`autofp_core::Searcher`] and interact with the world
//! through [`autofp_core::SearchContext`] (Algorithm 1). Searchers
//! whose proposals are result-independent (random search chunks, PBT
//! generations, fixed lists) submit them through
//! [`autofp_core::SearchContext::evaluate_batch`], which parallelizes
//! evaluation and serves duplicates from an attached
//! [`autofp_core::EvalCache`] without changing the trial sequence.
//!
//! Module-to-paper map:
//!
//! | Module | Paper section |
//! |---|---|
//! | [`random`] | §4.1.1 traditional algorithms (RS, Anneal) |
//! | [`smac`], [`tpe_search`], [`pnas`] | §4.1.2 surrogate-model-based |
//! | [`evolution`] | §4.1.3 evolution-based (PBT, TEVO) |
//! | [`rl`] | §4.1.4 RL-based (REINFORCE, ENAS) |
//! | [`bandit`] | §4.1.5 bandit-based (Hyperband, BOHB) |
//! | [`mutation`] | §4.1.3 shared mutation operator |
//! | [`factory`] | §4.2 unified framework: all 15 by name |
//! | [`extended`] | §6 parameter search (One-step, Two-step) |

pub mod bandit;
pub mod evolution;
pub mod extended;
pub mod factory;
pub mod mutation;
pub mod pnas;
pub mod random;
pub mod rl;
pub mod smac;
pub mod tpe_search;

pub use bandit::{Bohb, Hyperband};
pub use evolution::{Pbt, TournamentEvolution};
pub use extended::{AdaptiveTwoStep, OneStep, TwoStep};
pub use factory::{make_searcher, AlgName};
pub use pnas::{ProgressiveNas, SurrogateKind};
pub use random::{Anneal, RandomSearch};
pub use rl::{Enas, Reinforce};
pub use smac::Smac;
pub use tpe_search::TpeSearch;
