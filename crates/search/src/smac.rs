//! SMAC (§4.1.2): sequential model-based optimization with a
//! random-forest surrogate and expected-improvement acquisition.

use crate::mutation::mutate;
use autofp_core::{nan_largest, SearchContext, Searcher};
use autofp_linalg::dist::{norm_cdf, norm_pdf};
use autofp_linalg::rng::rng_from_seed;
use autofp_linalg::Matrix;
use autofp_preprocess::encoding::encode_pipeline;
use autofp_preprocess::{ParamSpace, Pipeline};
use autofp_surrogate::rf::{RandomForestRegressor, RfParams};
use rand::rngs::StdRng;

/// SMAC configuration.
pub struct Smac {
    space: ParamSpace,
    max_len: usize,
    rng: StdRng,
    /// Random-search initialization size (Algorithm 1, Step 1).
    pub n_init: usize,
    /// Candidates scored by the acquisition function per iteration.
    pub n_candidates: usize,
    /// Local-search mutations of the incumbent added to the candidates.
    pub n_local: usize,
    rf_params: RfParams,
}

impl Smac {
    /// SMAC with the defaults used throughout the benchmark.
    pub fn new(space: ParamSpace, max_len: usize, seed: u64) -> Smac {
        Smac {
            space,
            max_len,
            rng: rng_from_seed(seed),
            n_init: 5,
            n_candidates: 50,
            n_local: 10,
            rf_params: RfParams { seed, ..Default::default() },
        }
    }

    /// Expected improvement of predicted error under the incumbent.
    fn expected_improvement(mean: f64, std: f64, best_error: f64) -> f64 {
        if std <= 1e-12 {
            return (best_error - mean).max(0.0);
        }
        let z = (best_error - mean) / std;
        (best_error - mean) * norm_cdf(z) + std * norm_pdf(z)
    }
}

impl Searcher for Smac {
    fn name(&self) -> &'static str {
        "SMAC"
    }

    fn search(&mut self, ctx: &mut SearchContext) {
        let mut observed: Vec<(Pipeline, Vec<f64>, f64)> = Vec::new(); // (pipe, enc, error)

        // Step 1: random initialization.
        for _ in 0..self.n_init {
            let p = self.space.sample_pipeline(&mut self.rng, self.max_len);
            let Some(t) = ctx.evaluate(&p) else { return };
            observed.push((p.clone(), encode_pipeline(&p, self.max_len), t.error));
        }

        loop {
            if ctx.exhausted() {
                return;
            }
            // Step 2: fit the random forest on (encoding -> error).
            let x = Matrix::from_rows(
                &observed.iter().map(|(_, e, _)| e.clone()).collect::<Vec<_>>(),
            );
            let y: Vec<f64> = observed.iter().map(|(_, _, err)| *err).collect();
            let rf = RandomForestRegressor::fit(&x, &y, &self.rf_params);
            let best_error = y.iter().cloned().fold(f64::INFINITY, f64::min);
            let incumbent = observed
                .iter()
                .min_by(|a, b| nan_largest(&a.2, &b.2))
                .expect("non-empty observed")
                .0
                .clone();

            // Step 3: candidates = random samples + incumbent mutations,
            // pick the best acquisition score.
            let mut best_cand: Option<(f64, Pipeline)> = None;
            let total = self.n_candidates + self.n_local;
            for i in 0..total {
                let cand = if i < self.n_candidates {
                    self.space.sample_pipeline(&mut self.rng, self.max_len)
                } else {
                    mutate(&incumbent, &self.space, self.max_len, &mut self.rng)
                };
                let enc = encode_pipeline(&cand, self.max_len);
                let (mean, std) = rf.predict_with_std(&enc);
                let ei = Self::expected_improvement(mean, std, best_error);
                if best_cand.as_ref().is_none_or(|(b, _)| ei > *b) {
                    best_cand = Some((ei, cand));
                }
            }
            let (_, chosen) = best_cand.expect("candidates generated");

            // Step 4: evaluate.
            let Some(t) = ctx.evaluate(&chosen) else { return };
            observed.push((chosen.clone(), encode_pipeline(&chosen, self.max_len), t.error));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_core::{run_search, Budget, EvalConfig, Evaluator};
    use autofp_data::SynthConfig;

    #[test]
    fn smac_runs_and_improves_over_init() {
        let d = SynthConfig::new("smac-test", 200, 6, 2, 7).generate();
        let ev = Evaluator::new(&d, EvalConfig::default());
        let mut smac = Smac::new(ParamSpace::default_space(), 4, 3);
        let out = run_search(&mut smac, &ev, Budget::evals(15));
        assert_eq!(out.history.len(), 15);
        assert!(out.best_accuracy() > 0.0);
    }

    #[test]
    fn ei_is_zero_when_no_improvement_possible() {
        let ei = Smac::expected_improvement(0.9, 0.0, 0.5);
        assert_eq!(ei, 0.0);
        // High uncertainty gives positive EI even with a worse mean.
        let ei2 = Smac::expected_improvement(0.9, 0.5, 0.5);
        assert!(ei2 > 0.0);
        // Better mean dominates.
        assert!(Smac::expected_improvement(0.1, 0.1, 0.5) > ei2);
    }

    #[test]
    fn smac_is_deterministic() {
        let d = SynthConfig::new("smac-det", 120, 4, 2, 9).generate();
        let ev = Evaluator::new(&d, EvalConfig::default());
        let run = || {
            let mut s = Smac::new(ParamSpace::default_space(), 4, 11);
            run_search(&mut s, &ev, Budget::evals(8)).best_accuracy()
        };
        assert_eq!(run(), run());
    }
}
