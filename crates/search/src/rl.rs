//! RL-based algorithms (§4.1.4): REINFORCE with a position-wise
//! parameter-matrix policy, and ENAS with an LSTM controller.

use crate::mutation::Alphabet;
use autofp_core::{SearchContext, Searcher};
use autofp_linalg::dist::softmax_inplace;
use autofp_linalg::rng::{derive_seed, rng_from_seed, weighted_index};
use autofp_preprocess::ParamSpace;
use autofp_surrogate::lstm::SequencePolicy;
use rand::rngs::StdRng;

/// REINFORCE (Williams 1992) with the "parameter matrix" policy of
/// Table 3: independent softmax logits per pipeline position over the
/// preprocessor alphabet plus a STOP action.
pub struct Reinforce {
    alphabet: Alphabet,
    max_len: usize,
    rng: StdRng,
    /// Policy logits, `max_len x (alphabet + 1)`; last column is STOP.
    theta: Vec<Vec<f64>>,
    /// Policy-gradient step size.
    pub learning_rate: f64,
    /// EMA decay for the reward baseline.
    pub baseline_decay: f64,
}

impl Reinforce {
    /// REINFORCE with a zero-initialized policy matrix.
    pub fn new(space: ParamSpace, max_len: usize, seed: u64) -> Reinforce {
        let alphabet = Alphabet::new(&space);
        let k = alphabet.len();
        Reinforce {
            alphabet,
            max_len,
            rng: rng_from_seed(seed),
            theta: vec![vec![0.0; k + 1]; max_len],
            learning_rate: 0.15,
            baseline_decay: 0.8,
        }
    }

    /// Sample an episode: a token sequence plus per-step action probs.
    fn sample_episode(&mut self) -> (Vec<usize>, Vec<Vec<f64>>) {
        let k = self.alphabet.len();
        let mut tokens = Vec::new();
        let mut probs_per_step = Vec::new();
        for pos in 0..self.max_len {
            let mut probs = self.theta[pos].clone();
            softmax_inplace(&mut probs);
            if pos == 0 {
                probs[k] = 0.0; // cannot STOP before emitting a symbol
            }
            let action = weighted_index(&mut self.rng, &probs);
            probs_per_step.push(probs);
            if action == k {
                tokens.push(action); // record STOP for the update
                break;
            }
            tokens.push(action);
        }
        (tokens, probs_per_step)
    }

    /// Policy-gradient update for one episode.
    fn update(&mut self, tokens: &[usize], probs_per_step: &[Vec<f64>], advantage: f64) {
        for (pos, (&action, probs)) in tokens.iter().zip(probs_per_step).enumerate() {
            let row = &mut self.theta[pos];
            for (a, p) in probs.iter().enumerate() {
                let indicator = (a == action) as u8 as f64;
                row[a] += self.learning_rate * advantage * (indicator - p);
            }
        }
    }
}

impl Searcher for Reinforce {
    fn name(&self) -> &'static str {
        "REINFORCE"
    }

    fn search(&mut self, ctx: &mut SearchContext) {
        let k = self.alphabet.len();
        let mut baseline = 0.0;
        let mut have_baseline = false;
        loop {
            if ctx.exhausted() {
                return;
            }
            let (tokens, probs) = self.sample_episode();
            // Strip a trailing STOP for decoding.
            let symbols: Vec<usize> =
                tokens.iter().copied().filter(|&a| a < k).collect();
            let pipeline = self.alphabet.decode(&symbols);
            let Some(trial) = ctx.evaluate(&pipeline) else { return };
            let reward = trial.accuracy;
            if !have_baseline {
                baseline = reward;
                have_baseline = true;
            }
            let advantage = reward - baseline;
            baseline = self.baseline_decay * baseline + (1.0 - self.baseline_decay) * reward;
            self.update(&tokens, &probs, advantage);
        }
    }
}

/// ENAS (§4.1.4): an LSTM controller proposes pipelines token by token;
/// the controller is trained with REINFORCE on the validation accuracy.
pub struct Enas {
    alphabet: Alphabet,
    policy: SequencePolicy,
    rng: StdRng,
    /// EMA decay for the reward baseline.
    pub baseline_decay: f64,
}

impl Enas {
    /// ENAS with a fresh LSTM controller.
    pub fn new(space: ParamSpace, max_len: usize, seed: u64) -> Enas {
        let alphabet = Alphabet::new(&space);
        // For huge One-step alphabets the controller works over the 7
        // kinds; for the default space kinds == variants.
        let n_symbols = alphabet.len().min(64);
        let policy =
            SequencePolicy::new(n_symbols, max_len, 16, 0.02, derive_seed(seed, 0xe7a5));
        Enas { alphabet, policy, rng: rng_from_seed(seed), baseline_decay: 0.8 }
    }
}

impl Searcher for Enas {
    fn name(&self) -> &'static str {
        "ENAS"
    }

    fn search(&mut self, ctx: &mut SearchContext) {
        let mut baseline = 0.0;
        let mut have_baseline = false;
        loop {
            if ctx.exhausted() {
                return;
            }
            let tokens = self.policy.sample(&mut self.rng);
            let pipeline = self.alphabet.decode(&tokens);
            let Some(trial) = ctx.evaluate(&pipeline) else { return };
            let reward = trial.accuracy;
            if !have_baseline {
                baseline = reward;
                have_baseline = true;
            }
            let advantage = reward - baseline;
            baseline = self.baseline_decay * baseline + (1.0 - self.baseline_decay) * reward;
            self.policy.reinforce(&tokens, advantage);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_core::{run_search, Budget, EvalConfig, Evaluator};
    use autofp_data::SynthConfig;

    fn evaluator() -> Evaluator {
        let d = SynthConfig::new("rl-test", 120, 4, 2, 3).generate();
        Evaluator::new(&d, EvalConfig::default())
    }

    #[test]
    fn reinforce_fills_budget_with_valid_pipelines() {
        let ev = evaluator();
        let mut r = Reinforce::new(ParamSpace::default_space(), 5, 3);
        let out = run_search(&mut r, &ev, Budget::evals(15));
        assert_eq!(out.history.len(), 15);
        for t in out.history.trials() {
            assert!(!t.pipeline.is_empty() && t.pipeline.len() <= 5);
        }
    }

    #[test]
    fn reinforce_policy_moves_toward_rewarded_actions() {
        // Synthetic check without an evaluator: reward action 0 at pos 0.
        let mut r = Reinforce::new(ParamSpace::default_space(), 3, 7);
        for _ in 0..400 {
            let (tokens, probs) = r.sample_episode();
            let reward = if tokens[0] == 0 { 1.0 } else { 0.0 };
            r.update(&tokens, &probs, reward - 0.14);
        }
        let mut probs = r.theta[0].clone();
        softmax_inplace(&mut probs);
        assert!(probs[0] > 0.5, "p(action 0) = {}", probs[0]);
    }

    #[test]
    fn enas_fills_budget() {
        let ev = evaluator();
        let mut e = Enas::new(ParamSpace::default_space(), 4, 5);
        let out = run_search(&mut e, &ev, Budget::evals(12));
        assert_eq!(out.history.len(), 12);
        assert_eq!(out.algorithm, "ENAS");
    }

    #[test]
    fn rl_is_deterministic() {
        let ev = evaluator();
        let run = || {
            let mut r = Reinforce::new(ParamSpace::default_space(), 4, 11);
            run_search(&mut r, &ev, Budget::evals(8)).best_accuracy()
        };
        assert_eq!(run(), run());
    }
}
