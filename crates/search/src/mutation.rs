//! Shared pipeline mutation and token encoding/decoding helpers.
//!
//! Evolution-based algorithms mutate pipelines; surrogate algorithms
//! translate between [`Pipeline`]s and flat variant-token sequences over
//! a [`ParamSpace`]'s One-step alphabet.

use autofp_preprocess::{ParamSpace, Pipeline, Preproc};
use rand::rngs::StdRng;
use rand::Rng;

/// The flattened variant alphabet of a space, with token lookup.
pub struct Alphabet {
    variants: Vec<Preproc>,
}

impl Alphabet {
    /// Flatten a space's variants into an alphabet.
    pub fn new(space: &ParamSpace) -> Alphabet {
        Alphabet { variants: space.all_variants() }
    }

    /// Alphabet size.
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// True for an empty alphabet (never happens for real spaces).
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// Variant for a token.
    pub fn variant(&self, token: usize) -> &Preproc {
        &self.variants[token.min(self.variants.len() - 1)]
    }

    /// Token of a variant (linear scan; alphabets are small except the
    /// high-cardinality space, where searches carry tokens alongside
    /// pipelines instead of calling this).
    pub fn token_of(&self, p: &Preproc) -> Option<usize> {
        self.variants.iter().position(|v| v == p)
    }

    /// Decode a token sequence into a pipeline.
    pub fn decode(&self, tokens: &[usize]) -> Pipeline {
        Pipeline::new(tokens.iter().map(|&t| self.variant(t).clone()).collect())
    }

    /// Encode a pipeline into tokens (None if a step is outside the
    /// alphabet).
    pub fn encode(&self, p: &Pipeline) -> Option<Vec<usize>> {
        p.steps().iter().map(|s| self.token_of(s)).collect()
    }

    /// A uniformly random token.
    pub fn random_token(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(0..self.variants.len())
    }
}

/// Mutate a pipeline: replace a random step, insert a step, or drop a
/// step (respecting `1..=max_len`). The three operators are the standard
/// chain-structure NAS mutations used by regularized evolution.
pub fn mutate(p: &Pipeline, space: &ParamSpace, max_len: usize, rng: &mut StdRng) -> Pipeline {
    let mut out = p.clone();
    let len = out.len();
    let op = if len <= 1 {
        // Cannot drop below one step.
        if len < max_len { rng.gen_range(0..2) } else { 0 }
    } else if len >= max_len {
        // Cannot grow.
        if rng.gen_bool(0.5) { 0 } else { 2 }
    } else {
        rng.gen_range(0..3)
    };
    let all = space.all_variants();
    match op {
        0 => {
            // Replace a random position.
            let pos = rng.gen_range(0..len.max(1));
            let v = all[rng.gen_range(0..all.len())].clone();
            if len == 0 {
                out.push(v);
            } else {
                out.set_step(pos, v);
            }
        }
        1 => {
            // Insert at a random position.
            let pos = rng.gen_range(0..=len);
            let v = all[rng.gen_range(0..all.len())].clone();
            let mut steps = out.steps().to_vec();
            steps.insert(pos, v);
            out = Pipeline::new(steps);
        }
        _ => {
            // Remove a random position.
            let pos = rng.gen_range(0..len);
            let mut steps = out.steps().to_vec();
            steps.remove(pos);
            out = Pipeline::new(steps);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_linalg::rng::rng_from_seed;
    use autofp_preprocess::PreprocKind;

    #[test]
    fn alphabet_roundtrip() {
        let space = ParamSpace::default_space();
        let alpha = Alphabet::new(&space);
        assert_eq!(alpha.len(), 7);
        let p = Pipeline::from_kinds(&[PreprocKind::Normalizer, PreprocKind::Binarizer]);
        let tokens = alpha.encode(&p).unwrap();
        assert_eq!(alpha.decode(&tokens), p);
    }

    #[test]
    fn mutation_stays_in_bounds() {
        let space = ParamSpace::default_space();
        let mut rng = rng_from_seed(3);
        let mut p = Pipeline::from_kinds(&[PreprocKind::Binarizer]);
        for _ in 0..500 {
            p = mutate(&p, &space, 4, &mut rng);
            assert!(!p.is_empty() && p.len() <= 4, "{p}");
        }
    }

    #[test]
    fn mutation_changes_something_usually() {
        let space = ParamSpace::low_cardinality();
        let mut rng = rng_from_seed(5);
        let p = Pipeline::from_kinds(&[PreprocKind::Binarizer, PreprocKind::Normalizer]);
        let mut changed = 0;
        for _ in 0..100 {
            if mutate(&p, &space, 7, &mut rng).key() != p.key() {
                changed += 1;
            }
        }
        assert!(changed > 80, "changed {changed}/100");
    }

    #[test]
    fn encode_rejects_foreign_variants() {
        let space = ParamSpace::default_space();
        let alpha = Alphabet::new(&space);
        let p = Pipeline::new(vec![Preproc::Binarizer { threshold: 0.4 }]);
        assert!(alpha.encode(&p).is_none());
    }
}
