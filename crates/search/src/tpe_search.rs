//! TPE (§4.1.2): Tree-structured Parzen Estimator search.

use crate::mutation::Alphabet;
use autofp_core::{SearchContext, Searcher};
use autofp_linalg::rng::rng_from_seed;
use autofp_preprocess::ParamSpace;
use autofp_surrogate::tpe::CategoricalTpe;
use rand::rngs::StdRng;

/// TPE searcher over the categorical pipeline space.
pub struct TpeSearch {
    space: ParamSpace,
    alphabet: Alphabet,
    max_len: usize,
    rng: StdRng,
    /// Random-search initialization size.
    pub n_init: usize,
    /// Candidates drawn from `g` and ranked by `g/b` per iteration.
    pub n_candidates: usize,
    tpe: CategoricalTpe,
}

impl TpeSearch {
    /// TPE over a space.
    pub fn new(space: ParamSpace, max_len: usize, seed: u64) -> TpeSearch {
        let alphabet = Alphabet::new(&space);
        let tpe = CategoricalTpe::new(alphabet.len(), max_len);
        TpeSearch {
            space,
            alphabet,
            max_len,
            rng: rng_from_seed(seed),
            n_init: 5,
            n_candidates: 24,
            tpe,
        }
    }
}

impl Searcher for TpeSearch {
    fn name(&self) -> &'static str {
        "TPE"
    }

    fn search(&mut self, ctx: &mut SearchContext) {
        let mut observed: Vec<(Vec<usize>, f64)> = Vec::new();

        for _ in 0..self.n_init {
            let p = self.space.sample_pipeline(&mut self.rng, self.max_len);
            let tokens = self.alphabet.encode(&p).expect("sampled from own space");
            let Some(t) = ctx.evaluate(&p) else { return };
            observed.push((tokens, t.error));
        }

        loop {
            if ctx.exhausted() {
                return;
            }
            // Refit the Parzen densities and suggest the best g/b candidate.
            let model = self.tpe.fit(&observed);
            let tokens = model.suggest(&mut self.rng, self.n_candidates);
            let p = self.alphabet.decode(&tokens);
            let Some(t) = ctx.evaluate(&p) else { return };
            observed.push((tokens, t.error));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_core::{run_search, Budget, EvalConfig, Evaluator};
    use autofp_data::SynthConfig;

    #[test]
    fn tpe_fills_budget() {
        let d = SynthConfig::new("tpe-test", 180, 5, 2, 5).generate();
        let ev = Evaluator::new(&d, EvalConfig::default());
        let mut tpe = TpeSearch::new(ParamSpace::default_space(), 4, 3);
        let out = run_search(&mut tpe, &ev, Budget::evals(14));
        assert_eq!(out.history.len(), 14);
        assert_eq!(out.algorithm, "TPE");
    }

    #[test]
    fn works_over_extended_space() {
        let d = SynthConfig::new("tpe-ext", 120, 4, 2, 7).generate();
        let ev = Evaluator::new(&d, EvalConfig::default());
        let mut tpe = TpeSearch::new(ParamSpace::low_cardinality(), 4, 3);
        let out = run_search(&mut tpe, &ev, Budget::evals(10));
        assert_eq!(out.history.len(), 10);
    }

    #[test]
    fn deterministic() {
        let d = SynthConfig::new("tpe-det", 100, 4, 2, 9).generate();
        let ev = Evaluator::new(&d, EvalConfig::default());
        let run = || {
            let mut s = TpeSearch::new(ParamSpace::default_space(), 4, 2);
            run_search(&mut s, &ev, Budget::evals(9)).best_accuracy()
        };
        assert_eq!(run(), run());
    }
}
