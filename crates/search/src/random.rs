//! Traditional algorithms: Random Search and Anneal (§4.1.1).

use crate::mutation::mutate;
use autofp_core::{SearchContext, Searcher};
use autofp_linalg::rng::rng_from_seed;
use autofp_preprocess::{ParamSpace, Pipeline};
use rand::rngs::StdRng;
use rand::Rng;

/// Random search: sample pipelines uniformly (the paper's strong
/// baseline).
///
/// Random search's proposal stream is independent of evaluation results,
/// which makes it trivially batchable: proposals are drawn
/// [`RandomSearch::batch_size`] at a time and submitted through
/// [`SearchContext::evaluate_batch`], so they evaluate in parallel (and
/// duplicates hit the context's cache, if one is attached) while the
/// trial sequence stays identical to one-at-a-time evaluation.
pub struct RandomSearch {
    space: ParamSpace,
    max_len: usize,
    rng: StdRng,
    /// Proposals submitted per batch (1 = sequential evaluation).
    pub batch_size: usize,
}

impl RandomSearch {
    /// Random search over a space.
    pub fn new(space: ParamSpace, max_len: usize, seed: u64) -> RandomSearch {
        RandomSearch { space, max_len, rng: rng_from_seed(seed), batch_size: 8 }
    }

    /// Builder-style batch size override.
    pub fn with_batch_size(mut self, batch_size: usize) -> RandomSearch {
        self.batch_size = batch_size.max(1);
        self
    }
}

impl Searcher for RandomSearch {
    fn name(&self) -> &'static str {
        "RS"
    }

    fn search(&mut self, ctx: &mut SearchContext) {
        loop {
            let batch: Vec<Pipeline> = (0..self.batch_size)
                .map(|_| self.space.sample_pipeline(&mut self.rng, self.max_len))
                .collect();
            if ctx.evaluate_batch(&batch).is_none() {
                return;
            }
        }
    }
}

/// Anneal: hill-climbing with a temperature-controlled restart chance.
///
/// Each iteration proposes a neighbour (single mutation) of the current
/// best pipeline; better neighbours are accepted as the new state, worse
/// ones rejected (§4.1.1: "accepts the better neighbourhoods as the new
/// best state and rejects the worse"). Like hyperopt's `anneal`, the
/// probability of jumping to a fresh random pipeline decays over time so
/// early iterations explore and late iterations exploit.
pub struct Anneal {
    space: ParamSpace,
    max_len: usize,
    rng: StdRng,
    /// Initial restart probability (decays as 1/sqrt(iter)).
    pub restart_prob: f64,
}

impl Anneal {
    /// Anneal over a space.
    pub fn new(space: ParamSpace, max_len: usize, seed: u64) -> Anneal {
        Anneal { space, max_len, rng: rng_from_seed(seed), restart_prob: 0.5 }
    }
}

impl Searcher for Anneal {
    fn name(&self) -> &'static str {
        "Anneal"
    }

    fn search(&mut self, ctx: &mut SearchContext) {
        // Initial state.
        let mut current = self.space.sample_pipeline(&mut self.rng, self.max_len);
        let mut current_acc = match ctx.evaluate(&current) {
            Some(t) => t.accuracy,
            None => return,
        };
        let mut iter = 1usize;
        loop {
            iter += 1;
            let jump = self.restart_prob / (iter as f64).sqrt();
            let candidate = if self.rng.gen::<f64>() < jump {
                self.space.sample_pipeline(&mut self.rng, self.max_len)
            } else {
                mutate(&current, &self.space, self.max_len, &mut self.rng)
            };
            let Some(trial) = ctx.evaluate(&candidate) else { return };
            if trial.accuracy >= current_acc {
                current = candidate;
                current_acc = trial.accuracy;
            }
        }
    }
}

/// Exhaustive enumeration searcher (used by the Figure 2 experiment, not
/// one of the 15): evaluates `enumerate_pipelines(max_len)` in order.
pub struct Exhaustive {
    /// Maximum pipeline length to enumerate.
    pub max_len: usize,
}

impl Searcher for Exhaustive {
    fn name(&self) -> &'static str {
        "Exhaustive"
    }

    fn search(&mut self, ctx: &mut SearchContext) {
        // Enumeration order is fixed, so chunks can evaluate in parallel
        // without changing the trial sequence.
        let pipelines = autofp_preprocess::enumerate::enumerate_pipelines(self.max_len);
        for chunk in pipelines.chunks(16) {
            if ctx.evaluate_batch(chunk).is_none() {
                return;
            }
        }
    }
}

/// Evaluate a fixed list of pipelines (baseline comparisons).
pub struct FixedList {
    /// The pipelines to evaluate, in order.
    pub pipelines: Vec<Pipeline>,
}

impl Searcher for FixedList {
    fn name(&self) -> &'static str {
        "Fixed"
    }

    fn search(&mut self, ctx: &mut SearchContext) {
        for chunk in self.pipelines.chunks(16) {
            if ctx.evaluate_batch(chunk).is_none() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_core::{run_search, Budget, EvalConfig, Evaluator};
    use autofp_data::SynthConfig;

    fn evaluator() -> Evaluator {
        let d = SynthConfig::new("rand-test", 150, 5, 2, 3).generate();
        Evaluator::new(&d, EvalConfig::default())
    }

    #[test]
    fn random_search_fills_budget() {
        let ev = evaluator();
        let mut rs = RandomSearch::new(ParamSpace::default_space(), 7, 1);
        let out = run_search(&mut rs, &ev, Budget::evals(10));
        assert_eq!(out.history.len(), 10);
        assert_eq!(out.algorithm, "RS");
    }

    #[test]
    fn random_search_is_deterministic() {
        let ev = evaluator();
        let run = |seed| {
            let mut rs = RandomSearch::new(ParamSpace::default_space(), 7, seed);
            run_search(&mut rs, &ev, Budget::evals(6)).best_accuracy()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn batch_size_never_changes_the_trial_sequence() {
        let ev = evaluator();
        let run = |batch_size| {
            let mut rs =
                RandomSearch::new(ParamSpace::default_space(), 7, 3).with_batch_size(batch_size);
            run_search(&mut rs, &ev, Budget::evals(9))
        };
        let sequential = run(1);
        for batch_size in [2, 4, 16] {
            let batched = run(batch_size);
            assert_eq!(batched.history.len(), sequential.history.len());
            for (a, b) in batched.history.trials().iter().zip(sequential.history.trials()) {
                assert_eq!(a.pipeline.key(), b.pipeline.key());
                assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
            }
        }
    }

    #[test]
    fn cached_random_search_hits_on_duplicate_proposals() {
        use autofp_core::{run_search_cached, EvalCache};
        let ev = evaluator();
        let cache = EvalCache::new();
        // Length-1 default-parameter pipelines: 7 possibilities, so 20
        // proposals must repeat.
        let mut rs = RandomSearch::new(ParamSpace::default_space(), 1, 5);
        let out = run_search_cached(&mut rs, &ev, Budget::evals(20), &cache);
        assert_eq!(out.history.len(), 20);
        let stats = out.cache.expect("stats snapshotted");
        assert!(stats.hits > 0, "duplicate proposals must hit: {stats:?}");
        assert!(stats.entries <= 7);
        assert_eq!(stats.lookups(), 20);
    }

    #[test]
    fn anneal_never_worsens_current_state() {
        let ev = evaluator();
        let mut anneal = Anneal::new(ParamSpace::default_space(), 7, 2);
        let out = run_search(&mut anneal, &ev, Budget::evals(12));
        assert_eq!(out.history.len(), 12);
        // Best accuracy equals running max (search never loses the best).
        let max = out.history.trials().iter().map(|t| t.accuracy).fold(0.0_f64, f64::max);
        assert_eq!(out.best_accuracy(), max);
    }

    #[test]
    fn exhaustive_stops_when_done() {
        let ev = evaluator();
        let mut ex = Exhaustive { max_len: 1 };
        let out = run_search(&mut ex, &ev, Budget::evals(100));
        assert_eq!(out.history.len(), 7); // the 7 single-step pipelines
    }

    #[test]
    fn fixed_list_evaluates_in_order() {
        let ev = evaluator();
        let pipelines = vec![Pipeline::empty(), Pipeline::empty()];
        let mut f = FixedList { pipelines };
        let out = run_search(&mut f, &ev, Budget::evals(10));
        assert_eq!(out.history.len(), 2);
    }
}
