//! Evolution-based algorithms (§4.1.3): PBT and Tournament Evolution
//! (TEVO_H / TEVO_Y) — the paper's top-ranked category.

use crate::mutation::mutate;
use autofp_core::{nan_smallest, SearchContext, Searcher};
use autofp_linalg::rng::rng_from_seed;
use autofp_preprocess::{ParamSpace, Pipeline};
use rand::rngs::StdRng;
use rand::Rng;

/// Which member a tournament-evolution step removes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillStrategy {
    /// Kill the lowest-accuracy member ("TEVO_H": keep the higher).
    Worst,
    /// Kill the oldest member ("TEVO_Y": keep the younger — regularized
    /// evolution's aging rule).
    Oldest,
}

/// Tournament evolution (regularized evolution adapted to pipelines).
pub struct TournamentEvolution {
    space: ParamSpace,
    max_len: usize,
    rng: StdRng,
    strategy: KillStrategy,
    /// Population size.
    pub population_size: usize,
    /// Tournament sample size `S`.
    pub tournament_size: usize,
}

impl TournamentEvolution {
    /// Construct with the given kill strategy.
    pub fn new(
        space: ParamSpace,
        max_len: usize,
        strategy: KillStrategy,
        seed: u64,
    ) -> TournamentEvolution {
        TournamentEvolution {
            space,
            max_len,
            rng: rng_from_seed(seed),
            strategy,
            population_size: 12,
            tournament_size: 4,
        }
    }
}

/// One population member: pipeline, accuracy, birth order.
#[derive(Debug, Clone)]
struct Member {
    pipeline: Pipeline,
    accuracy: f64,
    birth: u64,
}

impl Searcher for TournamentEvolution {
    fn name(&self) -> &'static str {
        match self.strategy {
            KillStrategy::Worst => "TEVO_H",
            KillStrategy::Oldest => "TEVO_Y",
        }
    }

    fn search(&mut self, ctx: &mut SearchContext) {
        let mut population: Vec<Member> = Vec::with_capacity(self.population_size);
        let mut birth: u64 = 0;

        // Step 1: random initial population.
        while population.len() < self.population_size {
            let p = self.space.sample_pipeline(&mut self.rng, self.max_len);
            let Some(t) = ctx.evaluate(&p) else { return };
            population.push(Member { pipeline: p, accuracy: t.accuracy, birth });
            birth += 1;
        }

        loop {
            if ctx.exhausted() {
                return;
            }
            // Tournament: sample S members, mutate the best.
            let mut best_idx = 0;
            let mut best_acc = f64::NEG_INFINITY;
            for _ in 0..self.tournament_size {
                let i = self.rng.gen_range(0..population.len());
                if population[i].accuracy > best_acc {
                    best_acc = population[i].accuracy;
                    best_idx = i;
                }
            }
            let child = mutate(&population[best_idx].pipeline, &self.space, self.max_len, &mut self.rng);
            let Some(t) = ctx.evaluate(&child) else { return };

            // Kill per strategy, then add the child.
            let victim = match self.strategy {
                KillStrategy::Worst => population
                    .iter()
                    .enumerate()
                    .min_by(|a, b| nan_smallest(&a.1.accuracy, &b.1.accuracy))
                    .map(|(i, _)| i)
                    .expect("non-empty population"),
                KillStrategy::Oldest => population
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, m)| m.birth)
                    .map(|(i, _)| i)
                    .expect("non-empty population"),
            };
            population.swap_remove(victim);
            population.push(Member { pipeline: child, accuracy: t.accuracy, birth });
            birth += 1;
        }
    }
}

/// Population-Based Training adapted to pipeline search.
///
/// Maintains a population; each generation, members in the bottom
/// quantile are replaced by exploit-and-explore copies of top-quantile
/// members; with probability [`Pbt::fresh_prob`] a replacement is a
/// fresh random pipeline instead of a mutation (§4.1.3: "injects more
/// exploration by randomly generating FP pipelines with a fixed
/// probability").
///
/// Within one generation the replacements are independent (their
/// mutation sources are the frozen top quantile), so each generation is
/// submitted through [`SearchContext::evaluate_batch`] and evaluates in
/// parallel without changing the trial sequence.
pub struct Pbt {
    space: ParamSpace,
    max_len: usize,
    rng: StdRng,
    /// Population size.
    pub population_size: usize,
    /// Fraction considered top/bottom (PBT's truncation selection).
    pub quantile: f64,
    /// Probability a replacement is a fresh random pipeline.
    pub fresh_prob: f64,
    /// Stop after this many evaluations even if the context's budget is
    /// not exhausted (used by the Two-step strategy's inner phases).
    pub stop_after: Option<usize>,
    /// Pipelines to seed the initial population with before random fill
    /// — the §8 "warm-start search algorithms" extension (populated by
    /// `autofp_automl::warmstart::MetaStore`).
    pub seed_pipelines: Vec<Pipeline>,
}

impl Pbt {
    /// PBT with the defaults used throughout the benchmark.
    pub fn new(space: ParamSpace, max_len: usize, seed: u64) -> Pbt {
        Pbt {
            space,
            max_len,
            rng: rng_from_seed(seed),
            population_size: 12,
            quantile: 0.25,
            fresh_prob: 0.25,
            stop_after: None,
            seed_pipelines: Vec::new(),
        }
    }

    /// Builder-style warm start: seed the initial population.
    pub fn with_seed_pipelines(mut self, seeds: Vec<Pipeline>) -> Pbt {
        self.seed_pipelines = seeds;
        self
    }
}

impl Searcher for Pbt {
    fn name(&self) -> &'static str {
        "PBT"
    }

    fn search(&mut self, ctx: &mut SearchContext) {
        let stop_after = self.stop_after;
        let mut evals = 0usize;
        let done = |evals: usize| stop_after.is_some_and(|n| evals >= n);
        let mut population: Vec<Member> = Vec::with_capacity(self.population_size);
        let mut birth = 0u64;

        // The whole initial population — warm-start seeds (truncated to
        // the population size), then random fill — is proposed up front
        // and evaluated as one parallel batch: no proposal depends on
        // another's result, so the trial sequence matches one-at-a-time
        // evaluation exactly.
        let mut init: Vec<Pipeline> =
            self.seed_pipelines.iter().take(self.population_size).cloned().collect();
        while init.len() < self.population_size {
            init.push(self.space.sample_pipeline(&mut self.rng, self.max_len));
        }
        if let Some(n) = stop_after {
            init.truncate(n.saturating_sub(evals));
        }
        let Some(trials) = ctx.evaluate_batch(&init) else { return };
        for (p, t) in init.iter().zip(&trials) {
            population.push(Member { pipeline: p.clone(), accuracy: t.accuracy, birth });
            birth += 1;
            evals += 1;
        }
        if population.len() < self.population_size || done(evals) {
            // Budget or stop_after tripped before a full population.
            return;
        }

        let k = ((self.population_size as f64 * self.quantile).round() as usize)
            .clamp(1, self.population_size / 2);
        loop {
            if ctx.exhausted() {
                return;
            }
            // Rank descending by accuracy.
            population.sort_by(|a, b| nan_smallest(&b.accuracy, &a.accuracy));
            // Propose all k replacements against the frozen generation
            // ranking (mutation sources are top-k members, which the
            // replacements never touch), then evaluate them as one batch.
            let mut proposals: Vec<Pipeline> = Vec::with_capacity(k);
            for _ in 0..k {
                let replacement = if self.rng.gen::<f64>() < self.fresh_prob {
                    self.space.sample_pipeline(&mut self.rng, self.max_len)
                } else {
                    // Exploit: copy a random top-k member; explore: mutate.
                    let src = self.rng.gen_range(0..k);
                    mutate(&population[src].pipeline, &self.space, self.max_len, &mut self.rng)
                };
                proposals.push(replacement);
            }
            if let Some(n) = stop_after {
                proposals.truncate(n.saturating_sub(evals));
            }
            let Some(trials) = ctx.evaluate_batch(&proposals) else { return };
            for (i, (p, t)) in proposals.iter().zip(&trials).enumerate() {
                population[self.population_size - k + i] =
                    Member { pipeline: p.clone(), accuracy: t.accuracy, birth };
                birth += 1;
                evals += 1;
            }
            if trials.len() < k || done(evals) {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_core::{run_search, Budget, EvalConfig, Evaluator};
    use autofp_data::SynthConfig;

    fn evaluator() -> Evaluator {
        let d = SynthConfig::new("evo-test", 150, 5, 2, 3).generate();
        Evaluator::new(&d, EvalConfig::default())
    }

    #[test]
    fn tevo_variants_run_and_differ_in_name() {
        let ev = evaluator();
        let mut h = TournamentEvolution::new(ParamSpace::default_space(), 4, KillStrategy::Worst, 1);
        let mut y = TournamentEvolution::new(ParamSpace::default_space(), 4, KillStrategy::Oldest, 1);
        let oh = run_search(&mut h, &ev, Budget::evals(20));
        let oy = run_search(&mut y, &ev, Budget::evals(20));
        assert_eq!(oh.algorithm, "TEVO_H");
        assert_eq!(oy.algorithm, "TEVO_Y");
        assert_eq!(oh.history.len(), 20);
        assert_eq!(oy.history.len(), 20);
    }

    #[test]
    fn pbt_runs_and_improves_over_random_start() {
        let ev = evaluator();
        let mut pbt = Pbt::new(ParamSpace::default_space(), 4, 9);
        let out = run_search(&mut pbt, &ev, Budget::evals(30));
        assert_eq!(out.history.len(), 30);
        // Best of the full run is at least the best of the initial
        // population (monotone best).
        let init_best = out.history.trials()[..12]
            .iter()
            .map(|t| t.accuracy)
            .fold(0.0_f64, f64::max);
        assert!(out.best_accuracy() >= init_best);
    }

    #[test]
    fn evolution_exploits_on_contrived_landscape() {
        // On a dataset where scaling clearly helps LR, evolution should
        // find a better-than-baseline pipeline within a modest budget.
        let mut p = autofp_data::Personality::default();
        p.scale_spread = 6.0;
        p.skew = 0.5;
        p.label_noise = 0.0;
        p.class_sep = 2.0;
        let d = SynthConfig::new("evo-landscape", 300, 8, 2, 13).with_personality(p).generate();
        let ev = Evaluator::new(&d, EvalConfig::default());
        let mut tevo =
            TournamentEvolution::new(ParamSpace::default_space(), 4, KillStrategy::Worst, 5);
        let out = run_search(&mut tevo, &ev, Budget::evals(25));
        assert!(
            out.best_accuracy() > ev.baseline_accuracy(),
            "best {} <= baseline {}",
            out.best_accuracy(),
            ev.baseline_accuracy()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let ev = evaluator();
        let run = || {
            let mut pbt = Pbt::new(ParamSpace::default_space(), 4, 13);
            run_search(&mut pbt, &ev, Budget::evals(16)).best_accuracy()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn warm_start_seeds_are_evaluated_first() {
        let ev = evaluator();
        let seeds = vec![
            autofp_preprocess::Pipeline::from_kinds(&[
                autofp_preprocess::PreprocKind::StandardScaler,
            ]),
            autofp_preprocess::Pipeline::from_kinds(&[
                autofp_preprocess::PreprocKind::Normalizer,
            ]),
        ];
        let mut pbt =
            Pbt::new(ParamSpace::default_space(), 4, 3).with_seed_pipelines(seeds.clone());
        let out = run_search(&mut pbt, &ev, Budget::evals(15));
        assert_eq!(out.history.trials()[0].pipeline.key(), seeds[0].key());
        assert_eq!(out.history.trials()[1].pipeline.key(), seeds[1].key());
        assert_eq!(out.history.len(), 15);
    }

    #[test]
    fn small_budget_smaller_than_population_is_safe() {
        let ev = evaluator();
        let mut pbt = Pbt::new(ParamSpace::default_space(), 4, 2);
        let out = run_search(&mut pbt, &ev, Budget::evals(3));
        assert_eq!(out.history.len(), 3);
    }
}
