//! Descriptive statistics over slices.
//!
//! These mirror the NumPy/SciPy definitions the paper's preprocessors and
//! meta-features depend on: population standard deviation (NumPy default,
//! used by `StandardScaler`), Fisher-Pearson skewness and excess kurtosis
//! (SciPy defaults, used by the statistical meta-features), and linearly
//! interpolated quantiles (used by `QuantileTransformer`).

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divide by `n`); `0.0` for an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Sample variance (divide by `n - 1`); `0.0` when fewer than two values.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Fisher-Pearson coefficient of skewness (biased, SciPy `skew` default).
///
/// Returns `0.0` for constant or empty input.
pub fn skewness(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let m = mean(xs);
    let m2 = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64;
    if m2 <= 1e-300 {
        return 0.0;
    }
    let m3 = xs.iter().map(|x| (x - m).powi(3)).sum::<f64>() / n as f64;
    m3 / m2.powf(1.5)
}

/// Excess kurtosis (biased, Fisher definition; SciPy `kurtosis` default).
///
/// Returns `0.0` for constant or empty input (SciPy returns `-3.0` for a
/// constant column, but downstream meta-features only care about spread,
/// and `0.0` keeps constant columns neutral).
pub fn kurtosis(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let m = mean(xs);
    let m2 = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64;
    if m2 <= 1e-300 {
        return 0.0;
    }
    let m4 = xs.iter().map(|x| (x - m).powi(4)).sum::<f64>() / n as f64;
    m4 / (m2 * m2) - 3.0
}

/// Minimum; `f64::NAN` for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::min)
}

/// Maximum; `f64::NAN` for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::max)
}

/// Quantile of **sorted** data with linear interpolation (NumPy
/// `interpolation='linear'`). `q` is clamped to `[0, 1]`.
///
/// # Panics
/// Panics if `sorted` is empty.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Quantile of unsorted data (copies and sorts).
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    let mut v = xs.to_vec();
    // total_cmp: NaN-laden columns (poisoned datasets) must yield a
    // deterministic quantile, not a panic; NaNs sort to the top.
    v.sort_by(|a, b| a.total_cmp(b));
    quantile_sorted(&v, q)
}

/// Median.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Shannon entropy (natural log) of a discrete distribution given as counts.
pub fn entropy_from_counts(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Pearson correlation between two equal-length slices; `0.0` when either
/// side is constant.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let (ma, mb) = (mean(a), mean(b));
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        num += (x - ma) * (y - mb);
        da += (x - ma) * (x - ma);
        db += (y - mb) * (y - mb);
    }
    if da <= 1e-300 || db <= 1e-300 {
        0.0
    } else {
        num / (da * db).sqrt()
    }
}

/// Rank positions (1-based average ranks, ties share the mean rank).
///
/// Smaller values receive smaller ranks. This is the tie rule the paper
/// uses when ranking search algorithms ("if there is a tie, we give the
/// same ranking value").
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // positions i..=j (0-based) share the average of 1-based ranks
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
        assert!(close(sample_variance(&xs), 32.0 / 7.0, 1e-12));
    }

    #[test]
    fn paper_figure1_standard_scaler_stats() {
        // Figure 1 of the paper: mu = 2.21, sigma = 1.98 for this column.
        let col = [-1.5, 1.0, 1.5, 2.5, 3.0, 4.0, 5.0];
        assert!(close(mean(&col), 2.2142857, 1e-6));
        assert!(close(std_dev(&col), 1.98, 5e-3));
    }

    #[test]
    fn skewness_symmetric_is_zero() {
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(close(skewness(&xs), 0.0, 1e-12));
    }

    #[test]
    fn skewness_right_tail_positive() {
        let xs = [1.0, 1.0, 1.0, 1.0, 10.0];
        assert!(skewness(&xs) > 1.0);
    }

    #[test]
    fn kurtosis_normal_like() {
        // Uniform distribution has excess kurtosis -1.2.
        let xs: Vec<f64> = (0..10_000).map(|i| i as f64 / 9_999.0).collect();
        assert!(close(kurtosis(&xs), -1.2, 0.01));
    }

    #[test]
    fn constant_input_is_neutral() {
        let xs = [3.0; 10];
        assert_eq!(skewness(&xs), 0.0);
        assert_eq!(kurtosis(&xs), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        assert!(close(quantile(&xs, 1.0 / 3.0), 2.0, 1e-12));
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn entropy_uniform_binary() {
        assert!(close(entropy_from_counts(&[5, 5]), (2.0_f64).ln(), 1e-12));
        assert_eq!(entropy_from_counts(&[10, 0]), 0.0);
        assert_eq!(entropy_from_counts(&[]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_constant() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!(close(pearson(&a, &b), 1.0, 1e-12));
        let c = [-1.0, -2.0, -3.0];
        assert!(close(pearson(&a, &c), -1.0, 1e-12));
        assert_eq!(pearson(&a, &[7.0, 7.0, 7.0]), 0.0);
    }

    #[test]
    fn ranks_with_ties() {
        // values: smaller is better (rank 1)
        let r = average_ranks(&[0.3, 0.1, 0.3, 0.2]);
        assert_eq!(r, vec![3.5, 1.0, 3.5, 2.0]);
    }

    #[test]
    fn ranks_all_equal() {
        let r = average_ranks(&[1.0, 1.0, 1.0]);
        assert_eq!(r, vec![2.0, 2.0, 2.0]);
    }
}
