#![warn(missing_docs)]
//! Dense linear algebra and statistics kernel for the Auto-FP workspace.
//!
//! The Auto-FP study leans on NumPy/SciPy for its numeric substrate; this
//! crate is the from-scratch Rust replacement. It deliberately stays small:
//! a row-major [`Matrix`], descriptive statistics ([`stats`]), probability
//! helpers ([`dist`]), principal component analysis ([`pca`]), and seeded
//! randomness utilities ([`rng`]). Everything downstream (preprocessors,
//! models, surrogates, meta-features) is built on these primitives.

pub mod dist;
pub mod matrix;
pub mod pca;
pub mod rng;
pub mod stats;

pub use matrix::Matrix;
