//! A minimal dense, row-major `f64` matrix.
//!
//! This is the single tabular container shared by every crate in the
//! workspace: datasets, model weights, and surrogate features all use it.
//! It favours simple, predictable code over BLAS-level performance; the
//! matrices in Auto-FP workloads are tall and skinny (up to ~500k rows but
//! rarely more than a few hundred columns), so row-major layout with
//! per-row slices is the access pattern that matters.

use std::fmt;

/// Dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            for r in 0..self.rows {
                write!(f, "\n  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Build from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n * c);
        for r in rows {
            assert_eq!(r.len(), c, "ragged rows");
            data.extend_from_slice(r);
        }
        Self { rows: n, cols: c, data }
    }

    /// Build a single-column matrix from a vector.
    pub fn column_vector(values: &[f64]) -> Self {
        Self { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Overwrite column `c` from a slice.
    pub fn set_col(&mut self, c: usize, values: &[f64]) {
        assert_eq!(values.len(), self.rows);
        for (r, &v) in values.iter().enumerate() {
            self.set(r, c, v);
        }
    }

    /// Iterate over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The underlying row-major buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let out_row = out.row_mut(r);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (c, &b) in b_row.iter().enumerate() {
                    out_row[c] += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        self.rows_iter().map(|row| dot(row, v)).collect()
    }

    /// Select a subset of rows into a new matrix.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Select a subset of columns into a new matrix.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            for (j, &c) in indices.iter().enumerate() {
                out.set(r, j, self.get(r, c));
            }
        }
        out
    }

    /// Append the rows of `other` below `self`.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Apply a function to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// True if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Column means.
    pub fn col_means(&self) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut means = vec![0.0; self.cols];
        for row in self.rows_iter() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        let n = self.rows as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (`l2`) norm.
#[inline]
pub fn norm_l2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `l1` norm (sum of absolute values).
#[inline]
pub fn norm_l1(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).sum()
}

/// `max` norm (largest absolute value).
#[inline]
pub fn norm_max(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// `a += alpha * b` elementwise.
#[inline]
pub fn axpy(alpha: f64, b: &[f64], a: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, &y) in a.iter_mut().zip(b) {
        *x += alpha * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(2), &[5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn set_and_set_col() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 1, 7.0);
        m.set_col(0, &[1.0, 2.0]);
        assert_eq!(m.row(0), &[1.0, 7.0]);
        assert_eq!(m.row(1), &[2.0, 0.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, -1.0, 2.0], vec![0.5, 0.0, -3.0]]);
        let v = vec![2.0, 3.0, 1.0];
        assert_eq!(a.matvec(&v), vec![1.0, -2.0]);
    }

    #[test]
    fn select_rows_and_cols() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0], vec![7.0, 8.0, 9.0]]);
        let r = m.select_rows(&[2, 0]);
        assert_eq!(r.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(r.row(1), &[1.0, 2.0, 3.0]);
        let c = m.select_cols(&[1]);
        assert_eq!(c.col(0), vec![2.0, 5.0, 8.0]);
    }

    #[test]
    fn vstack_appends() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let c = a.vstack(&b);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn col_means_simple() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0]]);
        assert_eq!(m.col_means(), vec![2.0, 20.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm_l2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_l1(&[-3.0, 4.0]), 7.0);
        assert_eq!(norm_max(&[-3.0, 2.0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_checks_len() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn map_inplace_applies() {
        let mut m = Matrix::from_rows(&[vec![1.0, -2.0]]);
        m.map_inplace(f64::abs);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = Matrix::zeros(1, 2);
        assert!(m.is_finite());
        m.set(0, 1, f64::NAN);
        assert!(!m.is_finite());
    }
}
