//! Seeded randomness helpers shared across the workspace.
//!
//! Every stochastic component in this reproduction takes an explicit seed;
//! these helpers centralize the idioms (seeded RNG construction, stream
//! derivation, shuffling, categorical and weighted choice) so behaviour is
//! identical across crates.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Construct a deterministic RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive an independent child seed from a parent seed and a stream id.
///
/// Uses the splitmix64 finalizer so nearby `(seed, stream)` pairs produce
/// unrelated child seeds.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A random permutation of `0..n`.
pub fn permutation(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx
}

/// Uniformly choose one element of a slice.
///
/// # Panics
/// Panics on an empty slice.
pub fn choose<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    assert!(!items.is_empty(), "choose from empty slice");
    &items[rng.gen_range(0..items.len())]
}

/// Sample an index according to non-negative weights.
///
/// Falls back to uniform if all weights are zero or non-finite.
pub fn weighted_index(rng: &mut StdRng, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weighted choice over empty weights");
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut target = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if w.is_finite() && w > 0.0 {
            if target < w {
                return i;
            }
            target -= w;
        }
    }
    weights.len() - 1
}

/// Sample `k` distinct indices from `0..n` (Floyd's algorithm would be
/// fancier; a partial Fisher-Yates is plenty here).
pub fn sample_indices(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    let k = k.min(n);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// Standard normal sample (Box-Muller; two uniforms per call, second
/// value discarded for simplicity).
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derive_seed_varies_by_stream() {
        let s0 = derive_seed(7, 0);
        let s1 = derive_seed(7, 1);
        assert_ne!(s0, s1);
        assert_eq!(derive_seed(7, 1), s1);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = rng_from_seed(1);
        let mut p = permutation(&mut rng, 100);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = rng_from_seed(3);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[weighted_index(&mut rng, &[1.0, 0.0, 3.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_all_zero_falls_back_to_uniform() {
        let mut rng = rng_from_seed(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[weighted_index(&mut rng, &[0.0; 4])] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = rng_from_seed(5);
        let s = sample_indices(&mut rng, 50, 10);
        assert_eq!(s.len(), 10);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 10);
        // k > n clamps
        assert_eq!(sample_indices(&mut rng, 3, 10).len(), 3);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rng_from_seed(11);
        let xs: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut rng)).collect();
        let m = crate::stats::mean(&xs);
        let v = crate::stats::variance(&xs);
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.05, "var {v}");
    }
}
