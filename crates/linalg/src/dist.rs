//! Probability distribution helpers.
//!
//! The `QuantileTransformer` with normal output needs the inverse standard
//! normal CDF; logistic regression, the MLP, and several surrogates need
//! numerically stable softmax/log-sum-exp. Implemented from scratch:
//! Acklam's rational approximation for the probit (relative error
//! < 1.15e-9) and Abramowitz-Stegun 7.1.26 for `erf`.

/// Error function, Abramowitz & Stegun formula 7.1.26 (max abs error 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal PDF.
pub fn norm_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse standard normal CDF (probit), Acklam's algorithm.
///
/// Input is clamped to `(eps, 1 - eps)` so the tails stay finite — the
/// same guard scikit-learn applies inside `QuantileTransformer`.
pub fn norm_ppf(p: f64) -> f64 {
    const EPS: f64 = 1e-10;
    let p = p.clamp(EPS, 1.0 - EPS);

    // Coefficients for the rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];

    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Numerically stable log-sum-exp.
pub fn logsumexp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// Softmax, computed stably, in place.
pub fn softmax_inplace(xs: &mut [f64]) {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - m).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    } else {
        let u = 1.0 / xs.len() as f64;
        xs.fill(u);
    }
}

/// Softmax into a new vector.
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    let mut out = xs.to_vec();
    softmax_inplace(&mut out);
    out
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn cdf_and_ppf_are_inverses() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = norm_ppf(p);
            assert!((norm_cdf(x) - p).abs() < 1e-6, "p={p} x={x}");
        }
    }

    #[test]
    fn ppf_known_values() {
        assert!(norm_ppf(0.5).abs() < 1e-9);
        assert!((norm_ppf(0.975) - 1.959964).abs() < 1e-5);
        assert!((norm_ppf(0.025) + 1.959964).abs() < 1e-5);
    }

    #[test]
    fn ppf_clamps_extremes() {
        assert!(norm_ppf(0.0).is_finite());
        assert!(norm_ppf(1.0).is_finite());
        assert!(norm_ppf(0.0) < -6.0);
        assert!(norm_ppf(1.0) > 6.0);
    }

    #[test]
    fn softmax_sums_to_one() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
    }

    #[test]
    fn softmax_handles_large_inputs() {
        let s = softmax(&[1000.0, 1000.0]);
        assert!((s[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn logsumexp_stable() {
        let v = logsumexp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + (2.0_f64).ln())).abs() < 1e-9);
        assert_eq!(logsumexp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }

    #[test]
    fn sigmoid_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-1000.0) >= 0.0 && sigmoid(1000.0) <= 1.0);
    }
}
