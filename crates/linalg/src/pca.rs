//! Principal component analysis via power iteration with deflation.
//!
//! The meta-feature extractor needs three PCA-derived quantities
//! (Table 10 of the paper): skewness and kurtosis of the data projected on
//! the first principal component, and the fraction of components required
//! to explain 95% of variance. Power iteration with Hotelling deflation on
//! the covariance matrix is exact enough for those summaries and avoids a
//! full eigendecomposition.

use crate::matrix::{dot, norm_l2, Matrix};
use crate::stats;

/// Result of a (possibly truncated) PCA.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Principal axes, one row per component (unit length).
    pub components: Matrix,
    /// Variance explained by each extracted component.
    pub explained_variance: Vec<f64>,
    /// Total variance of the (centered) input.
    pub total_variance: f64,
    /// Column means used for centering.
    pub means: Vec<f64>,
}

impl Pca {
    /// Fit up to `max_components` principal components.
    ///
    /// `x` is `n_samples x n_features`. Returns fewer components if the
    /// residual variance is exhausted first.
    pub fn fit(x: &Matrix, max_components: usize) -> Pca {
        let (n, d) = x.shape();
        let means = x.col_means();
        // Covariance matrix (population, divide by n) of the centered data.
        let mut cov = Matrix::zeros(d, d);
        if n > 0 {
            for row in x.rows_iter() {
                for i in 0..d {
                    let xi = row[i] - means[i];
                    if xi == 0.0 {
                        continue;
                    }
                    for j in i..d {
                        let v = xi * (row[j] - means[j]);
                        cov.set(i, j, cov.get(i, j) + v);
                    }
                }
            }
            let nf = n as f64;
            for i in 0..d {
                for j in i..d {
                    let v = cov.get(i, j) / nf;
                    cov.set(i, j, v);
                    cov.set(j, i, v);
                }
            }
        }
        let total_variance: f64 = (0..d).map(|i| cov.get(i, i)).sum();

        let k = max_components.min(d);
        let mut components = Vec::with_capacity(k);
        let mut explained = Vec::with_capacity(k);
        let mut remaining = total_variance;
        for comp_idx in 0..k {
            if remaining <= 1e-12 * total_variance.max(1e-12) {
                break;
            }
            let (eigval, eigvec) = power_iteration(&cov, comp_idx as u64);
            if eigval <= 1e-12 {
                break;
            }
            // Hotelling deflation: cov -= lambda * v v^T
            for i in 0..d {
                for j in 0..d {
                    let v = cov.get(i, j) - eigval * eigvec[i] * eigvec[j];
                    cov.set(i, j, v);
                }
            }
            remaining -= eigval;
            components.push(eigvec);
            explained.push(eigval);
        }
        let comp_matrix = if components.is_empty() {
            Matrix::zeros(0, d)
        } else {
            Matrix::from_rows(&components)
        };
        Pca { components: comp_matrix, explained_variance: explained, total_variance, means }
    }

    /// Project the data onto the first principal component.
    pub fn project_first(&self, x: &Matrix) -> Vec<f64> {
        if self.components.nrows() == 0 {
            return vec![0.0; x.nrows()];
        }
        let axis = self.components.row(0);
        x.rows_iter()
            .map(|row| {
                row.iter().zip(axis).zip(&self.means).map(|((&v, &a), &m)| (v - m) * a).sum()
            })
            .collect()
    }

    /// Fraction of extracted components needed to reach `target` (e.g.
    /// 0.95) of total variance, expressed relative to the full feature
    /// count `d`. Mirrors Auto-Sklearn's
    /// `PCAFractionOfComponentsFor95PercentVariance`.
    pub fn fraction_for_variance(&self, target: f64, d: usize) -> f64 {
        if self.total_variance <= 0.0 || d == 0 {
            return 1.0;
        }
        let mut acc = 0.0;
        for (i, ev) in self.explained_variance.iter().enumerate() {
            acc += ev;
            if acc / self.total_variance >= target {
                return (i + 1) as f64 / d as f64;
            }
        }
        // Not reached within the extracted components: everything we have
        // plus the remainder — report pessimistically.
        1.0
    }
}

/// Dominant eigenpair of a symmetric matrix by power iteration.
fn power_iteration(a: &Matrix, seed: u64) -> (f64, Vec<f64>) {
    let d = a.nrows();
    if d == 0 {
        return (0.0, vec![]);
    }
    // Deterministic pseudo-random start vector (splitmix64 stream).
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0x1234_5678);
    let mut v: Vec<f64> = (0..d)
        .map(|_| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) - 0.5
        })
        .collect();
    let nrm = norm_l2(&v).max(1e-12);
    v.iter_mut().for_each(|x| *x /= nrm);

    let mut eigval = 0.0;
    for _ in 0..200 {
        let w = a.matvec(&v);
        let nw = norm_l2(&w);
        if nw <= 1e-300 {
            return (0.0, v);
        }
        let new_v: Vec<f64> = w.iter().map(|x| x / nw).collect();
        let new_eig = dot(&new_v, &a.matvec(&new_v));
        let delta = new_v
            .iter()
            .zip(&v)
            .map(|(a, b)| (a - b).abs().min((a + b).abs()))
            .fold(0.0_f64, f64::max);
        v = new_v;
        eigval = new_eig;
        if delta < 1e-10 {
            break;
        }
    }
    (eigval.max(0.0), v)
}

/// Convenience: skewness and kurtosis of the first-PC projection.
pub fn first_pc_moments(x: &Matrix) -> (f64, f64) {
    let pca = Pca::fit(x, 1);
    let proj = pca.project_first(x);
    (stats::skewness(&proj), stats::kurtosis(&proj))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_axis() {
        // Points spread along the (1, 1) direction with small noise.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let t = i as f64 / 10.0 - 5.0;
                let noise = ((i * 37) % 11) as f64 / 100.0;
                vec![t + noise, t - noise]
            })
            .collect();
        let x = Matrix::from_rows(&rows);
        let pca = Pca::fit(&x, 2);
        let axis = pca.components.row(0);
        let ratio = (axis[0] / axis[1]).abs();
        assert!((ratio - 1.0).abs() < 0.05, "axis {axis:?}");
        assert!(pca.explained_variance[0] > pca.explained_variance.get(1).copied().unwrap_or(0.0));
    }

    #[test]
    fn explained_variance_sums_to_total() {
        let rows: Vec<Vec<f64>> =
            (0..50).map(|i| vec![i as f64, (i * i % 17) as f64, ((i * 7) % 5) as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let pca = Pca::fit(&x, 3);
        let sum: f64 = pca.explained_variance.iter().sum();
        assert!((sum - pca.total_variance).abs() < 1e-6 * pca.total_variance);
    }

    #[test]
    fn fraction_for_variance_single_direction() {
        // All variance on one axis -> one component suffices.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 0.0, 0.0]).collect();
        let x = Matrix::from_rows(&rows);
        let pca = Pca::fit(&x, 3);
        assert!((pca.fraction_for_variance(0.95, 3) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn constant_data_is_safe() {
        let x = Matrix::filled(10, 4, 2.5);
        let pca = Pca::fit(&x, 2);
        assert_eq!(pca.total_variance, 0.0);
        assert_eq!(pca.fraction_for_variance(0.95, 4), 1.0);
        let proj = pca.project_first(&x);
        assert!(proj.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn projection_variance_matches_eigenvalue() {
        let rows: Vec<Vec<f64>> =
            (0..200).map(|i| vec![(i % 13) as f64, (i % 7) as f64 * 2.0]).collect();
        let x = Matrix::from_rows(&rows);
        let pca = Pca::fit(&x, 1);
        let proj = pca.project_first(&x);
        let var = crate::stats::variance(&proj);
        assert!((var - pca.explained_variance[0]).abs() < 1e-6 * var.max(1.0));
    }
}
