//! Fixture suite for the lint engine: every rule family must (a) fire
//! on a seeded violation, (b) stay quiet on the idiomatic alternative,
//! and (c) respect a justified `lint:allow` tag — while malformed or
//! stale tags are themselves violations.
//!
//! Fixtures are synthetic sources handed straight to
//! [`xtask::rules::lint_file`] under paths chosen to land in (or out
//! of) each rule's scope.

use xtask::baseline::Baseline;
use xtask::rules::{lint_file, Violation};

fn rules_fired(violations: &[Violation]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = violations.iter().map(|v| v.rule).collect();
    rules.sort();
    rules.dedup();
    rules
}

// ---------------------------------------------------------------- nan-ord

#[test]
fn nan_ord_fires_on_raw_partial_cmp() {
    let src = "pub fn worst(xs: &mut [f64]) {\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    let vs = lint_file("crates/search/src/seeded.rs", src);
    assert_eq!(rules_fired(&vs), vec!["nan-ord"]);
    assert_eq!(vs[0].line, 2);
}

#[test]
fn nan_ord_exempts_core_order_and_ignores_strings_and_comments() {
    let order = "pub fn cmp(a: &f64, b: &f64) { a.partial_cmp(b); }\n";
    assert!(lint_file("crates/core/src/order.rs", order).is_empty());

    let masked = "// partial_cmp in a comment\nlet s = \"partial_cmp\";\nlet r = r#\"partial_cmp\"#;\n";
    assert!(lint_file("crates/search/src/seeded.rs", masked).is_empty());
}

#[test]
fn nan_ord_respects_justified_allow() {
    let src = "\
// lint:allow(nan-ord): ordering feeds a debug log only, never a selection
let x = a.partial_cmp(&b);
";
    assert!(lint_file("crates/search/src/seeded.rs", src).is_empty());
}

// ----------------------------------------------------------------- nondet

#[test]
fn nondet_fires_on_wall_clock_outside_budget() {
    let src = "pub fn f() { let t = std::time::Instant::now(); }\n";
    let vs = lint_file("crates/search/src/seeded.rs", src);
    assert_eq!(rules_fired(&vs), vec!["nondet"]);
}

#[test]
fn nondet_exempts_budget_bench_and_tests() {
    let src = "pub fn f() { let t = std::time::Instant::now(); }\n";
    assert!(lint_file("crates/core/src/budget.rs", src).is_empty());
    assert!(lint_file("crates/bench/src/lib.rs", src).is_empty());

    let in_tests = "\
#[cfg(test)]
mod tests {
    fn t() { let t = std::time::Instant::now(); }
}
";
    assert!(lint_file("crates/search/src/seeded.rs", in_tests).is_empty());
}

#[test]
fn nondet_fires_on_unseeded_rng_everywhere() {
    let src = "pub fn f() { let mut rng = rand::thread_rng(); }\n";
    let vs = lint_file("crates/core/src/budget.rs", src);
    assert_eq!(rules_fired(&vs), vec!["nondet"]);
    assert!(vs[0].message.contains("unseeded RNG"));
}

#[test]
fn nondet_fires_on_hash_containers_in_det_critical_modules_only() {
    let src = "use std::collections::HashMap;\npub fn f() { let m: HashMap<u8, u8> = HashMap::new(); }\n";
    let vs = lint_file("crates/core/src/history.rs", src);
    assert_eq!(rules_fired(&vs), vec!["nondet"]);
    // Same source outside the determinism-critical list: clean.
    assert!(lint_file("crates/search/src/seeded.rs", src).is_empty());
    // BTreeMap is the sanctioned container.
    let btree = "use std::collections::BTreeMap;\npub fn f() { let m: BTreeMap<u8, u8> = BTreeMap::new(); }\n";
    assert!(lint_file("crates/core/src/history.rs", btree).is_empty());
}

#[test]
fn nondet_respects_justified_allow() {
    let src = "\
pub fn f() {
    // lint:allow(nondet): keyed lookup only; iteration order is never observed
    let m: std::collections::HashMap<u8, u8> = std::collections::HashMap::new();
}
";
    assert!(lint_file("crates/core/src/history.rs", src).is_empty());
}

// --------------------------------------------------------- panic-boundary

#[test]
fn panic_boundary_fires_in_hot_path_modules() {
    let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    for path in [
        "crates/core/src/batch.rs",
        "crates/core/src/evaluator.rs",
        "crates/preprocess/src/seeded.rs",
        "crates/models/src/seeded.rs",
    ] {
        let vs = lint_file(path, src);
        assert_eq!(rules_fired(&vs), vec!["panic-boundary"], "{path}");
    }
    let explicit = "pub fn f() { panic!(\"boom\"); }\n";
    assert_eq!(rules_fired(&lint_file("crates/models/src/seeded.rs", explicit)), vec![
        "panic-boundary"
    ]);
}

#[test]
fn panic_boundary_covers_the_distributed_eval_path() {
    // The wire decoder faces untrusted bytes and the remote evaluator
    // sits inside every distributed search — both are hot-path scoped.
    let src = "pub fn f(x: Option<u8>) -> u8 { x.expect(\"always there\") }\n";
    for path in ["crates/evald/src/wire.rs", "crates/core/src/remote.rs"] {
        let vs = lint_file(path, src);
        assert_eq!(rules_fired(&vs), vec!["panic-boundary"], "{path}");
    }
    // The rest of the evald crate (server loop, CLI) is not hot-path.
    assert!(lint_file("crates/evald/src/server.rs", src).is_empty());
}

#[test]
fn nondet_covers_the_worker_context_map() {
    // The worker's context map feeds aggregated stats; hash containers
    // are banned there like in the other determinism-critical modules.
    let src = "pub fn f() { let m: std::collections::HashMap<u8, u8> = Default::default(); }\n";
    let vs = lint_file("crates/evald/src/service.rs", src);
    assert_eq!(rules_fired(&vs), vec!["nondet"]);
    assert!(lint_file("crates/evald/src/client.rs", src).is_empty());
}

#[test]
fn panic_boundary_ignores_cold_modules_total_fallbacks_and_tests() {
    let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    assert!(lint_file("crates/search/src/seeded.rs", src).is_empty());

    let total = "pub fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
    assert!(lint_file("crates/models/src/seeded.rs", total).is_empty());

    let in_tests = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
";
    assert!(lint_file("crates/models/src/seeded.rs", in_tests).is_empty());
}

#[test]
fn panic_boundary_respects_justified_allow() {
    let src = "\
pub fn f(slots: &[Option<u8>]) -> u8 {
    // lint:allow(panic-boundary): every slot is written exactly once before this read
    slots[0].unwrap()
}
";
    assert!(lint_file("crates/core/src/batch.rs", src).is_empty());
}

// ----------------------------------------------------------- cache-purity

#[test]
fn cache_purity_fires_inside_cache_key_code() {
    let src = "\
pub struct CacheKey;
impl CacheKey {
    pub fn new() -> u64 {
        let t = std::time::Instant::now();
        0
    }
}
";
    let vs = lint_file("crates/core/src/cache.rs", src);
    // The clock read violates cache-purity; the same line also violates
    // the workspace-wide nondet time rule.
    assert!(rules_fired(&vs).contains(&"cache-purity"));

    let interior = "\
pub struct CacheKey;
impl CacheKey {
    fn memo() -> std::cell::RefCell<u64> {
        std::cell::RefCell::new(0)
    }
}
";
    let vs = lint_file("crates/core/src/cache.rs", interior);
    assert_eq!(rules_fired(&vs), vec!["cache-purity"]);
}

#[test]
fn cache_purity_scopes_to_named_spans_only() {
    // RefCell *outside* the CacheKey impl: cache.rs keeps its mutex'd
    // store; purity applies to key/fingerprint computation only.
    let src = "\
pub struct CacheKey;
impl CacheKey {
    pub fn fingerprint() -> u64 { 0 }
}
pub struct Store {
    inner: std::sync::Mutex<u64>,
}
";
    assert!(lint_file("crates/core/src/cache.rs", src).is_empty());
    // fnv1a is covered wherever it appears in cache.rs.
    let fnv = "fn fnv1a(bytes: &[u8]) -> u64 {\n    let h = std::time::SystemTime::now();\n    0\n}\n";
    let vs = lint_file("crates/core/src/cache.rs", fnv);
    assert!(rules_fired(&vs).contains(&"cache-purity"));
}

#[test]
fn cache_purity_respects_justified_allow() {
    let src = "\
pub struct CacheKey;
impl CacheKey {
    pub fn new() -> u64 {
        // lint:allow(cache-purity): fixture — proves the tag machinery, not a real site
        // lint:allow(nondet): fixture — same line trips the workspace time rule too
        let t = std::time::Instant::now();
        0
    }
}
";
    assert!(lint_file("crates/core/src/cache.rs", src).is_empty());
}

// ------------------------------------------------------------ tag hygiene

#[test]
fn bad_tags_are_violations() {
    let empty_reason = "// lint:allow(nan-ord):\nlet x = a.partial_cmp(&b);\n";
    let vs = lint_file("crates/search/src/seeded.rs", empty_reason);
    assert!(rules_fired(&vs).contains(&"bad-tag"));
    // The un-justified violation still fires.
    assert!(rules_fired(&vs).contains(&"nan-ord"));

    let unknown_rule = "// lint:allow(made-up-rule): reason\nlet x = 1;\n";
    let vs = lint_file("crates/search/src/seeded.rs", unknown_rule);
    assert_eq!(rules_fired(&vs), vec!["bad-tag"]);
}

#[test]
fn stale_allows_are_violations() {
    let src = "// lint:allow(nan-ord): nothing here actually violates it\nlet x = 1;\n";
    let vs = lint_file("crates/search/src/seeded.rs", src);
    assert_eq!(rules_fired(&vs), vec!["unused-allow"]);
}

// --------------------------------------------------------------- baseline

#[test]
fn baseline_suppresses_known_violations_and_strict_ignores_it() {
    let src = "pub fn f() { let t = std::time::Instant::now(); }\n";
    let vs = lint_file("crates/search/src/seeded.rs", src);
    assert_eq!(vs.len(), 1);

    let baseline = Baseline::parse(&Baseline::render(&vs));
    let (fresh, known) = baseline.partition(vs.clone());
    assert!(fresh.is_empty(), "baselined violation does not fail the gate");
    assert_eq!(known.len(), 1);

    // Strict mode is modeled as an empty baseline.
    let (fresh, known) = Baseline::default().partition(vs);
    assert_eq!(fresh.len(), 1, "strict mode re-surfaces baselined violations");
    assert!(known.is_empty());
}

// ------------------------------------------------- the workspace itself

/// The repo's own acceptance criterion: the workspace is lint-clean
/// with an *empty* baseline (every exception is an inline justified
/// tag). This is the same check CI runs via `lint --strict`.
#[test]
fn workspace_is_lint_clean_without_baseline() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let report = xtask::lint_workspace(&root, &Baseline::default()).expect("scan workspace");
    assert!(report.files > 60, "expected to scan the whole workspace, saw {}", report.files);
    let rendered: Vec<String> = report.fresh.iter().map(|v| v.render()).collect();
    assert!(
        report.fresh.is_empty(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
}
