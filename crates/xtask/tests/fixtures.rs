//! Fixture suite for the lint engine: every rule family must (a) fire
//! on a seeded violation, (b) stay quiet on the idiomatic alternative,
//! and (c) respect a justified `lint:allow` tag — while malformed or
//! stale tags are themselves violations.
//!
//! Fixtures are synthetic sources handed straight to
//! [`xtask::rules::lint_file`] under paths chosen to land in (or out
//! of) each rule's scope.

use xtask::baseline::Baseline;
use xtask::rules::{lint_file, Violation};

fn rules_fired(violations: &[Violation]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = violations.iter().map(|v| v.rule).collect();
    rules.sort();
    rules.dedup();
    rules
}

// ---------------------------------------------------------------- nan-ord

#[test]
fn nan_ord_fires_on_raw_partial_cmp() {
    let src = "pub fn worst(xs: &mut [f64]) {\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    let vs = lint_file("crates/search/src/seeded.rs", src);
    assert_eq!(rules_fired(&vs), vec!["nan-ord"]);
    assert_eq!(vs[0].line, 2);
}

#[test]
fn nan_ord_exempts_core_order_and_ignores_strings_and_comments() {
    let order = "pub fn cmp(a: &f64, b: &f64) { a.partial_cmp(b); }\n";
    assert!(lint_file("crates/core/src/order.rs", order).is_empty());

    let masked = "// partial_cmp in a comment\nlet s = \"partial_cmp\";\nlet r = r#\"partial_cmp\"#;\n";
    assert!(lint_file("crates/search/src/seeded.rs", masked).is_empty());
}

#[test]
fn nan_ord_respects_justified_allow() {
    let src = "\
// lint:allow(nan-ord): ordering feeds a debug log only, never a selection
let x = a.partial_cmp(&b);
";
    assert!(lint_file("crates/search/src/seeded.rs", src).is_empty());
}

// ----------------------------------------------------------------- nondet

#[test]
fn nondet_fires_on_wall_clock_outside_budget() {
    let src = "pub fn f() { let t = std::time::Instant::now(); }\n";
    let vs = lint_file("crates/search/src/seeded.rs", src);
    assert_eq!(rules_fired(&vs), vec!["nondet"]);
}

#[test]
fn nondet_exempts_budget_bench_and_tests() {
    let src = "pub fn f() { let t = std::time::Instant::now(); }\n";
    assert!(lint_file("crates/core/src/budget.rs", src).is_empty());
    assert!(lint_file("crates/bench/src/lib.rs", src).is_empty());

    let in_tests = "\
#[cfg(test)]
mod tests {
    fn t() { let t = std::time::Instant::now(); }
}
";
    assert!(lint_file("crates/search/src/seeded.rs", in_tests).is_empty());
}

#[test]
fn nondet_fires_on_unseeded_rng_everywhere() {
    let src = "pub fn f() { let mut rng = rand::thread_rng(); }\n";
    let vs = lint_file("crates/core/src/budget.rs", src);
    assert_eq!(rules_fired(&vs), vec!["nondet"]);
    assert!(vs[0].message.contains("unseeded RNG"));
}

#[test]
fn nondet_fires_on_hash_containers_in_det_critical_modules_only() {
    let src = "use std::collections::HashMap;\npub fn f() { let m: HashMap<u8, u8> = HashMap::new(); }\n";
    let vs = lint_file("crates/core/src/history.rs", src);
    assert_eq!(rules_fired(&vs), vec!["nondet"]);
    // Same source outside the determinism-critical list: clean.
    assert!(lint_file("crates/search/src/seeded.rs", src).is_empty());
    // BTreeMap is the sanctioned container.
    let btree = "use std::collections::BTreeMap;\npub fn f() { let m: BTreeMap<u8, u8> = BTreeMap::new(); }\n";
    assert!(lint_file("crates/core/src/history.rs", btree).is_empty());
}

#[test]
fn nondet_respects_justified_allow() {
    let src = "\
pub fn f() {
    // lint:allow(nondet): keyed lookup only; iteration order is never observed
    let m: std::collections::HashMap<u8, u8> = std::collections::HashMap::new();
}
";
    assert!(lint_file("crates/core/src/history.rs", src).is_empty());
}

// --------------------------------------------------------- panic-boundary

#[test]
fn panic_boundary_fires_in_hot_path_modules() {
    let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    for path in [
        "crates/core/src/batch.rs",
        "crates/core/src/evaluator.rs",
        "crates/preprocess/src/seeded.rs",
        "crates/models/src/seeded.rs",
    ] {
        let vs = lint_file(path, src);
        assert_eq!(rules_fired(&vs), vec!["panic-boundary"], "{path}");
    }
    let explicit = "pub fn f() { panic!(\"boom\"); }\n";
    assert_eq!(rules_fired(&lint_file("crates/models/src/seeded.rs", explicit)), vec![
        "panic-boundary"
    ]);
}

#[test]
fn panic_boundary_covers_the_distributed_eval_path() {
    // The wire decoder faces untrusted bytes and the remote evaluator
    // sits inside every distributed search — both are hot-path scoped.
    let src = "pub fn f(x: Option<u8>) -> u8 { x.expect(\"always there\") }\n";
    for path in ["crates/evald/src/wire.rs", "crates/core/src/remote.rs"] {
        let vs = lint_file(path, src);
        assert_eq!(rules_fired(&vs), vec!["panic-boundary"], "{path}");
    }
    // The rest of the evald crate (server loop, CLI) is not hot-path.
    assert!(lint_file("crates/evald/src/server.rs", src).is_empty());
}

#[test]
fn nondet_covers_the_worker_context_map() {
    // The worker's context map feeds aggregated stats; hash containers
    // are banned there like in the other determinism-critical modules.
    let src = "pub fn f() { let m: std::collections::HashMap<u8, u8> = Default::default(); }\n";
    let vs = lint_file("crates/evald/src/service.rs", src);
    assert_eq!(rules_fired(&vs), vec!["nondet"]);
    assert!(lint_file("crates/evald/src/client.rs", src).is_empty());
}

#[test]
fn panic_boundary_ignores_cold_modules_total_fallbacks_and_tests() {
    let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    assert!(lint_file("crates/search/src/seeded.rs", src).is_empty());

    let total = "pub fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
    assert!(lint_file("crates/models/src/seeded.rs", total).is_empty());

    let in_tests = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
";
    assert!(lint_file("crates/models/src/seeded.rs", in_tests).is_empty());
}

#[test]
fn panic_boundary_respects_justified_allow() {
    let src = "\
pub fn f(slots: &[Option<u8>]) -> u8 {
    // lint:allow(panic-boundary): every slot is written exactly once before this read
    slots[0].unwrap()
}
";
    assert!(lint_file("crates/core/src/batch.rs", src).is_empty());
}

// ----------------------------------------------------------- cache-purity

#[test]
fn cache_purity_fires_inside_cache_key_code() {
    let src = "\
pub struct CacheKey;
impl CacheKey {
    pub fn new() -> u64 {
        let t = std::time::Instant::now();
        0
    }
}
";
    let vs = lint_file("crates/core/src/cache.rs", src);
    // The clock read violates cache-purity; the same line also violates
    // the workspace-wide nondet time rule.
    assert!(rules_fired(&vs).contains(&"cache-purity"));

    let interior = "\
pub struct CacheKey;
impl CacheKey {
    fn memo() -> std::cell::RefCell<u64> {
        std::cell::RefCell::new(0)
    }
}
";
    let vs = lint_file("crates/core/src/cache.rs", interior);
    assert_eq!(rules_fired(&vs), vec!["cache-purity"]);
}

#[test]
fn cache_purity_scopes_to_named_spans_only() {
    // RefCell *outside* the CacheKey impl: cache.rs keeps its mutex'd
    // store; purity applies to key/fingerprint computation only.
    let src = "\
pub struct CacheKey;
impl CacheKey {
    pub fn fingerprint() -> u64 { 0 }
}
pub struct Store {
    inner: std::sync::Mutex<u64>,
}
";
    assert!(lint_file("crates/core/src/cache.rs", src).is_empty());
    // fnv1a is covered wherever it appears in cache.rs.
    let fnv = "fn fnv1a(bytes: &[u8]) -> u64 {\n    let h = std::time::SystemTime::now();\n    0\n}\n";
    let vs = lint_file("crates/core/src/cache.rs", fnv);
    assert!(rules_fired(&vs).contains(&"cache-purity"));
}

#[test]
fn cache_purity_respects_justified_allow() {
    let src = "\
pub struct CacheKey;
impl CacheKey {
    pub fn new() -> u64 {
        // lint:allow(cache-purity): fixture — proves the tag machinery, not a real site
        // lint:allow(nondet): fixture — same line trips the workspace time rule too
        // lint:allow(nondet-flow): fixture — CacheKey fns are taint roots, so the graph rule fires here too
        let t = std::time::Instant::now();
        0
    }
}
";
    assert!(lint_file("crates/core/src/cache.rs", src).is_empty());
}

// ------------------------------------------------------------ tag hygiene

#[test]
fn bad_tags_are_violations() {
    let empty_reason = "// lint:allow(nan-ord):\nlet x = a.partial_cmp(&b);\n";
    let vs = lint_file("crates/search/src/seeded.rs", empty_reason);
    assert!(rules_fired(&vs).contains(&"bad-tag"));
    // The un-justified violation still fires.
    assert!(rules_fired(&vs).contains(&"nan-ord"));

    let unknown_rule = "// lint:allow(made-up-rule): reason\nlet x = 1;\n";
    let vs = lint_file("crates/search/src/seeded.rs", unknown_rule);
    assert_eq!(rules_fired(&vs), vec!["bad-tag"]);
}

#[test]
fn stale_allows_are_violations() {
    let src = "// lint:allow(nan-ord): nothing here actually violates it\nlet x = 1;\n";
    let vs = lint_file("crates/search/src/seeded.rs", src);
    assert_eq!(rules_fired(&vs), vec!["unused-allow"]);
}

// --------------------------------------------------------------- baseline

#[test]
fn baseline_suppresses_known_violations_and_strict_ignores_it() {
    let src = "pub fn f() { let t = std::time::Instant::now(); }\n";
    let vs = lint_file("crates/search/src/seeded.rs", src);
    assert_eq!(vs.len(), 1);

    let baseline = Baseline::parse(&Baseline::render(&vs));
    let (fresh, known) = baseline.partition(vs.clone());
    assert!(fresh.is_empty(), "baselined violation does not fail the gate");
    assert_eq!(known.len(), 1);

    // Strict mode is modeled as an empty baseline.
    let (fresh, known) = Baseline::default().partition(vs);
    assert_eq!(fresh.len(), 1, "strict mode re-surfaces baselined violations");
    assert!(known.is_empty());
}

// ------------------------------------------------- the workspace itself

/// The repo's own acceptance criterion: the workspace is lint-clean
/// with an *empty* baseline (every exception is an inline justified
/// tag). This is the same check CI runs via `lint --strict`.
#[test]
fn workspace_is_lint_clean_without_baseline() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let report = xtask::lint_workspace(&root, &Baseline::default()).expect("scan workspace");
    assert!(report.files > 60, "expected to scan the whole workspace, saw {}", report.files);
    let rendered: Vec<String> = report.fresh.iter().map(|v| v.render()).collect();
    assert!(
        report.fresh.is_empty(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
}

// ------------------------------------------------- scanner regressions

/// Raw strings with hash delimiters, nested block comments, and their
/// interactions. Each case seeds an `unwrap` *inside* the masked
/// region and real code after it: the rule token must survive only in
/// the code half.
mod scanner_regressions {
    use xtask::scanner::scan;

    #[test]
    fn raw_string_hash_interior_is_blanked() {
        let s = scan("let a = r#\"x.unwrap()\"#; let b = y.unwrap();\n");
        assert!(!s.lines[0][..24].contains("unwrap"), "raw interior blanked");
        assert!(s.lines[0].contains("let b = y.unwrap();"), "code after raw string intact");
    }

    #[test]
    fn two_hash_raw_string_ignores_single_hash_closer() {
        // Delimiter is two hashes; an interior `"#` must NOT close it.
        let s = scan("let a = r##\"end\"# not yet\"##; let b = y.unwrap();\n");
        assert!(!s.lines[0].contains("not yet"));
        assert!(s.lines[0].contains("let b = y.unwrap();"));
    }

    #[test]
    fn byte_raw_string_is_masked() {
        let s = scan("let a = br#\"x.unwrap()\"#; let b = y.unwrap();\n");
        assert!(!s.lines[0][..25].contains("unwrap"));
        assert!(s.lines[0].contains("let b = y.unwrap();"));
    }

    #[test]
    fn multiline_raw_string_blanks_interior_lines() {
        let s = scan("let a = r#\"line one\nx.unwrap()\nlast\"#;\nlet b = y.unwrap();\n");
        assert!(!s.lines[1].contains("unwrap"), "raw interior line blanked");
        assert!(s.lines[3].contains("let b = y.unwrap();"));
    }

    #[test]
    fn string_containing_comment_markers_stays_a_string() {
        let s = scan("let s = \"/* not a comment\"; let t = y.unwrap(); let u = \"*/\";\n");
        assert!(s.lines[0].contains("let t = y.unwrap();"), "code between strings stays code");
    }

    #[test]
    fn block_comment_closes_at_terminator_even_inside_quotes() {
        // rustc closes a block comment at the first `*/`, quotes or not.
        let s = scan("/* \"*/ let x = y.unwrap();\n");
        assert!(s.lines[0].contains("let x = y.unwrap();"));
    }

    #[test]
    fn nested_block_comments_track_depth() {
        let s = scan("/* outer /* \"inner\" */ tail */ let x = y.unwrap();\n");
        assert!(s.lines[0].contains("let x = y.unwrap();"));
    }

    #[test]
    fn string_with_open_marker_then_real_nested_comment() {
        let s =
            scan("let s = \"a /* b\"; /* real /* nested */ comment */ let c = y.unwrap();\n");
        assert!(s.lines[0].contains("let c = y.unwrap();"));
        assert!(!s.lines[0].contains("real"));
    }

    #[test]
    fn char_literals_do_not_start_raw_strings() {
        let s = scan("let a = 'r'; let h = '#'; let q = b'r'; let b2 = y.unwrap();\n");
        assert!(s.lines[0].contains("let b2 = y.unwrap();"));
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let s = scan("let r#type = 1; let b = y.unwrap();\n");
        assert!(s.lines[0].contains("let b = y.unwrap();"));
    }

    #[test]
    fn format_string_with_hash_brace_and_escaped_quote() {
        let s = scan("write!(f, \"{:#?} r#\\\"\", x); let b = y.unwrap();\n");
        assert!(s.lines[0].contains("let b = y.unwrap();"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan(
            "fn f<'a>(x: &'a str) { let s: &'static str = \"x.unwrap()\"; y.unwrap(); }\n",
        );
        assert!(s.lines[0].contains("&'static str"));
        assert!(s.lines[0].contains("y.unwrap();"));
        assert!(!s.lines[0].contains("x.unwrap"));
    }

    #[test]
    fn raw_string_inside_line_comment_is_comment() {
        let s = scan("// r#\"x.unwrap()\"#\nlet b = y.unwrap();\n");
        assert!(!s.lines[0].contains("unwrap"));
        assert!(s.lines[1].contains("let b = y.unwrap();"));
    }
}

// ------------------------------------------------- graph rule families

/// Multi-file fixtures driven through [`xtask::lint_sources`]: the
/// cross-file families must find seeded chains and render them.
mod graph_rules {
    use xtask::lint_sources;
    use xtask::rules::Violation;

    fn lint(sources: &[(&str, &str)]) -> Vec<Violation> {
        let owned: Vec<(String, String)> =
            sources.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
        lint_sources(&owned)
    }

    fn of<'a>(vs: &'a [Violation], rule: &str) -> Vec<&'a Violation> {
        vs.iter().filter(|v| v.rule == rule).collect()
    }

    #[test]
    fn panic_reach_follows_a_three_hop_chain_across_files() {
        let vs = lint(&[
            ("crates/core/src/evaluator.rs", "pub fn try_evaluate() { mid_hop(); }\n"),
            ("crates/core/src/remote.rs", "pub fn mid_hop() { deep_sink(); }\n"),
            (
                "crates/evald/src/wire.rs",
                "pub fn deep_sink() {\n    let x: Option<u8> = None;\n    x.unwrap();\n}\n",
            ),
        ]);
        let hits = of(&vs, "panic-reach");
        assert_eq!(hits.len(), 1, "{vs:?}");
        let v = hits[0];
        assert_eq!((v.path.as_str(), v.line), ("crates/evald/src/wire.rs", 3));
        assert_eq!(v.chain.len(), 3, "entry, hop, sink: {:?}", v.chain);
        assert!(v.chain[0].starts_with("try_evaluate ("));
        assert!(v.chain[1].starts_with("mid_hop ("));
        assert!(v.chain[2].starts_with("deep_sink ("));
        let rendered = v.render();
        assert!(
            rendered.contains("chain: try_evaluate (crates/core/src/evaluator.rs:1) -> mid_hop"),
            "chain must be rendered: {rendered}"
        );
    }

    #[test]
    fn panic_reach_respects_catch_unwind_shields() {
        let vs = lint(&[
            (
                "crates/core/src/evaluator.rs",
                "pub fn try_evaluate() { let r = std::panic::catch_unwind(|| risky()); }\n",
            ),
            ("crates/core/src/remote.rs", "pub fn risky() { None::<u8>.unwrap(); }\n"),
        ]);
        assert!(of(&vs, "panic-reach").is_empty(), "shielded edge must not be traversed");
    }

    #[test]
    fn panic_reach_honors_a_justified_allow_on_the_sink_line() {
        let vs = lint(&[
            ("crates/core/src/evaluator.rs", "pub fn try_evaluate() { hop(); }\n"),
            (
                "crates/core/src/remote.rs",
                "pub fn hop() {\n    // lint:allow(panic-reach): fixture — sink is statically impossible\n    None::<u8>.unwrap();\n}\n",
            ),
        ]);
        assert!(of(&vs, "panic-reach").is_empty());
    }

    #[test]
    fn panic_reach_covers_the_trial_store_persistence_entry_points() {
        // `TrialRepo::open` decodes untrusted on-disk bytes and `append`
        // runs inside bench/worker write-through paths — both are entry
        // points, so a panic reachable from either must be flagged.
        let vs = lint(&[
            (
                "crates/core/src/repo.rs",
                "pub fn open() { decode_record(); }\npub fn append() { decode_record(); }\n",
            ),
            (
                "crates/core/src/util.rs",
                "pub fn decode_record() {\n    let x: Option<u8> = None;\n    x.unwrap();\n}\n",
            ),
        ]);
        let hits = of(&vs, "panic-reach");
        assert_eq!(hits.len(), 1, "one finding per sink line: {vs:?}");
        let v = hits[0];
        assert_eq!((v.path.as_str(), v.line), ("crates/core/src/util.rs", 3));
        assert!(
            v.chain[0].starts_with("open (") || v.chain[0].starts_with("append ("),
            "chain starts at a persistence entry point: {:?}",
            v.chain
        );
        // A fn named `open` outside repo.rs is not an entry point.
        let vs = lint(&[
            ("crates/core/src/elsewhere.rs", "pub fn open() { None::<u8>.unwrap(); }\n"),
        ]);
        assert!(of(&vs, "panic-reach").is_empty(), "entry is scoped to repo.rs: {vs:?}");
    }

    #[test]
    fn nondet_flow_catches_taint_laundered_through_a_helper_file() {
        let vs = lint(&[
            (
                "crates/search/src/myalg.rs",
                "struct S;\nimpl S {\n    pub fn search(&self) { launder(); }\n}\n",
            ),
            ("crates/core/src/util.rs", "pub fn launder() { tick(); }\n"),
            (
                "crates/core/src/util2.rs",
                "pub fn tick() {\n    let t = std::time::Instant::now();\n}\n",
            ),
        ]);
        let hits = of(&vs, "nondet-flow");
        assert_eq!(hits.len(), 1, "{vs:?}");
        let v = hits[0];
        assert_eq!((v.path.as_str(), v.line), ("crates/core/src/util2.rs", 2));
        let names: Vec<&str> =
            v.chain.iter().map(|c| c.split(' ').next().unwrap_or("")).collect();
        assert_eq!(names, vec!["search", "launder", "tick"], "laundering chain");
        assert!(v.render().contains("chain: search ("));
    }

    #[test]
    fn nondet_flow_blesses_the_budget_layer() {
        let vs = lint(&[
            (
                "crates/search/src/myalg.rs",
                "struct S;\nimpl S {\n    pub fn search(&self) { budget_probe(); }\n}\n",
            ),
            (
                "crates/core/src/budget.rs",
                "pub fn budget_probe() { let t = std::time::Instant::now(); }\n",
            ),
        ]);
        assert!(of(&vs, "nondet-flow").is_empty(), "edges into budget.rs are never traversed");
    }

    #[test]
    fn lock_order_flags_a_two_lock_inversion_in_both_directions() {
        let src = "\
struct S { alpha: std::sync::Mutex<u8>, beta: std::sync::Mutex<u8> }
impl S {
    pub fn ab(&self) {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
    }
    pub fn ba(&self) {
        let b = self.beta.lock().unwrap();
        let a = self.alpha.lock().unwrap();
    }
}
";
        let vs = lint(&[("crates/evald/src/locks.rs", src)]);
        let hits = of(&vs, "lock-order");
        assert_eq!(hits.len(), 2, "one finding per direction: {vs:?}");
        assert_eq!(hits[0].line, 5, "ab's second acquisition");
        assert_eq!(hits[1].line, 9, "ba's second acquisition");
        assert!(hits[0].message.contains("locks.rs:9"), "cross-references the inverse site");
        assert!(hits[1].message.contains("locks.rs:5"));
        assert!(hits[0].render().contains("chain: ab ("));
    }

    #[test]
    fn lock_order_flags_reacquisition_through_a_wrapper_call() {
        let src = "\
struct S { inner: std::sync::Mutex<u8> }
impl S {
    fn lock(&self) -> std::sync::MutexGuard<'_, u8> {
        self.inner.lock().unwrap()
    }
    pub fn outer(&self) {
        let g = self.lock();
        self.reenter();
    }
    pub fn reenter(&self) {
        let h = self.lock();
    }
}
";
        let vs = lint(&[("crates/evald/src/locks.rs", src)]);
        let hits = of(&vs, "lock-order");
        assert_eq!(hits.len(), 1, "{vs:?}");
        let v = hits[0];
        assert_eq!(v.line, 8, "the reentering call site");
        assert!(v.message.contains("`locks::inner`"));
        let names: Vec<&str> =
            v.chain.iter().map(|c| c.split(' ').next().unwrap_or("")).collect();
        assert_eq!(names, vec!["outer", "reenter", "lock"], "witness chain");
    }

    #[test]
    fn lock_order_sees_an_explicit_drop_release() {
        let src = "\
struct S { alpha: std::sync::Mutex<u8> }
impl S {
    pub fn seq(&self) {
        let g = self.alpha.lock().unwrap();
        drop(g);
        let h = self.alpha.lock().unwrap();
    }
}
";
        let vs = lint(&[("crates/evald/src/locks.rs", src)]);
        assert!(of(&vs, "lock-order").is_empty(), "drop(g) releases the guard: {vs:?}");
    }

    #[test]
    fn lock_order_honors_a_justified_allow_on_the_second_acquisition() {
        let src = "\
struct S { alpha: std::sync::Mutex<u8>, beta: std::sync::Mutex<u8> }
impl S {
    pub fn ab(&self) {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
    }
    pub fn ba(&self) {
        let b = self.beta.lock().unwrap();
        // lint:allow(lock-order): fixture — single-threaded caller, inversion is unreachable
        let a = self.alpha.lock().unwrap();
    }
}
";
        let vs = lint(&[("crates/evald/src/locks.rs", src)]);
        let hits = of(&vs, "lock-order");
        assert_eq!(hits.len(), 1, "only the untagged direction fires: {vs:?}");
        assert_eq!(hits[0].line, 5);
    }
}
