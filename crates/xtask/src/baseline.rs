//! Checked-in violation baseline.
//!
//! The baseline lets the lint gate fail CI only on *new* violations: a
//! pre-existing finding whose `rule|path|excerpt` key appears in the
//! baseline is suppressed (count-aware — two identical lines need two
//! entries). `lint --strict` ignores the baseline entirely, and
//! `lint --write-baseline` regenerates it from the current findings.
//!
//! The repo's goal state is an *empty* baseline — every invariant
//! either holds or carries an inline `lint:allow` justification — so
//! the file mostly exists to keep a future mass-migration landable in
//! slices.

use crate::rules::Violation;
use std::collections::BTreeMap;

/// Multiset of baseline keys.
#[derive(Debug, Default)]
pub struct Baseline {
    counts: BTreeMap<String, usize>,
}

impl Baseline {
    /// Parse baseline text: one key per line, `#` comments and blank
    /// lines ignored.
    pub fn parse(text: &str) -> Baseline {
        let mut counts = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            *counts.entry(line.to_string()).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Split `violations` into (new, baselined): each finding consumes
    /// one matching baseline entry if available.
    pub fn partition(&self, violations: Vec<Violation>) -> (Vec<Violation>, Vec<Violation>) {
        let mut remaining = self.counts.clone();
        let mut fresh = Vec::new();
        let mut known = Vec::new();
        for v in violations {
            match remaining.get_mut(&v.baseline_key()) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    known.push(v);
                }
                _ => fresh.push(v),
            }
        }
        (fresh, known)
    }

    /// Serialize the given findings as baseline text.
    pub fn render(violations: &[Violation]) -> String {
        let mut keys: Vec<String> = violations.iter().map(Violation::baseline_key).collect();
        keys.sort();
        let mut out = String::from(
            "# xtask lint baseline — pre-existing violations tolerated by `cargo run -p xtask -- lint`.\n\
             # One `rule|path|excerpt` key per line; regenerate with `lint --write-baseline`.\n\
             # `lint --strict` (CI) ignores this file. Keep it empty: justify sites with\n\
             # `// lint:allow(<rule>): <reason>` instead of parking them here.\n",
        );
        for key in keys {
            out.push_str(&key);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, path: &str, excerpt: &str) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line: 1,
            message: String::new(),
            excerpt: excerpt.to_string(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn partition_consumes_entries_count_aware() {
        let b = Baseline::parse("# comment\nnan-ord|a.rs|x.partial_cmp(y)\n");
        let vs = vec![
            v("nan-ord", "a.rs", "x.partial_cmp(y)"),
            v("nan-ord", "a.rs", "x.partial_cmp(y)"),
        ];
        let (fresh, known) = b.partition(vs);
        assert_eq!(known.len(), 1, "one entry suppresses one occurrence");
        assert_eq!(fresh.len(), 1);
    }

    #[test]
    fn render_roundtrips() {
        let vs = vec![v("nondet", "b.rs", "Instant::now()")];
        let text = Baseline::render(&vs);
        let b = Baseline::parse(&text);
        let (fresh, known) = b.partition(vs);
        assert!(fresh.is_empty());
        assert_eq!(known.len(), 1);
    }
}
