//! Workspace call graph over [`crate::index::Index`] items.
//!
//! Module map (the graph engine's second layer — see ARCHITECTURE.md):
//!
//! - call-site extraction — every `ident(`, `Qual::ident(`, and
//!   `.ident(` in a function body, with macros (`ident!(`) skipped;
//! - name-resolution-lite — same-file candidates first, then the
//!   workspace `by_name`/`by_owner` tables as an over-approximation;
//!   `Self::` resolves through the caller's owner; calls into `std`
//!   resolve to nothing and produce no edge;
//! - lock-acquisition collection — `.lock()` on a *field* receiver is
//!   a direct acquisition (class = `file_stem::field`), `.lock()` on
//!   `self` is a call edge to the file's guard-returning wrapper;
//! - [`Graph::reach_chain`] — BFS with parent tracking, so every rule
//!   finding renders a shortest full call chain.
//!
//! Soundness caveats (documented, deliberate): method calls resolve by
//! name, so a `.helper()` can over-approximate onto every workspace
//! `helper`; names colliding with std collection/iterator vocabulary
//! ([`STD_METHODS`]) are dropped for non-`self` receivers instead —
//! trading that false-positive source for a documented false negative
//! (`self.cache.insert(..)` produces no edge to `Cache::insert`);
//! turbofish calls (`f::<T>(`) and calls through function
//! pointers/closures produce no edge; trait objects fan out to all
//! same-named impls. Rules on top treat the graph as an
//! over-approximation of real control flow.

use crate::index::{FnItem, Index};
use std::collections::BTreeMap;

/// How a call site names its callee.
#[derive(Debug)]
enum Callee {
    /// `ident(` — free-function call.
    Free(String),
    /// `Qual::ident(` — the immediate qualifier segment only.
    Qualified(String, String),
    /// `.ident(` — method call. `recv_self` is true only for a literal
    /// `self.ident(` receiver; field, local, and expression receivers
    /// (including chained `self.field.ident(`) are all `false`.
    Method { name: String, recv_self: bool },
}

/// Method names that collide with std collection/iterator/Option/io
/// vocabulary. A `.insert(` on a `HashMap` local must not resolve onto
/// every workspace `insert`; calls through a non-`self` receiver with
/// one of these names produce no edge. The cost is a documented false
/// negative: a genuine workspace method with a colliding name called
/// via a field receiver (`self.cache.insert(..)`) is invisible to the
/// graph. `self.insert(..)` still resolves normally.
const STD_METHODS: [&str; 41] = [
    "and_then",
    "as_bytes",
    "as_ref",
    "as_str",
    "clear",
    "clone",
    "contains",
    "contains_key",
    "drain",
    "entry",
    "extend",
    "flush",
    "get",
    "get_mut",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "len",
    "map",
    "next",
    "pop",
    "push",
    "push_str",
    "read",
    "recv",
    "remove",
    "replace",
    "retain",
    "send",
    "split_off",
    "take",
    "to_owned",
    "to_string",
    "unwrap_or",
    "values",
    "wait",
    "write",
];

/// One resolved call edge out of a function body.
#[derive(Debug, Clone)]
pub struct CallEdge {
    /// Callee item id.
    pub callee: usize,
    /// 1-based call-site line in the caller's file.
    pub line: usize,
    /// True when the call-site line contains `catch_unwind`: the
    /// callee's panics are contained, so panic-reach does not traverse
    /// this edge (taint and lock analysis still do).
    pub shielded: bool,
}

/// One direct lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// Lock class, `file_stem::field` (e.g. `service::contexts`).
    pub class: String,
    /// 1-based acquisition line.
    pub line: usize,
    /// True when the guard is bound (`let` on the line), i.e. held
    /// past the statement under the conservative hold model.
    pub bound: bool,
    /// The guard's binding name for a simple `let [mut] name = ..`
    /// line — lets an explicit `drop(name)` release it.
    pub binding: Option<String>,
}

/// Body events, in line order, consumed by lock-order.
#[derive(Debug, Clone)]
pub enum Event {
    Call(CallEdge),
    Acquire(Acquire),
    /// `drop(name)` — releases a held guard bound to `name`.
    Release { name: String },
}

/// The workspace call graph: per-item outgoing edges and body events.
pub struct Graph {
    /// `edges[id]` — resolved outgoing calls of item `id`.
    pub edges: Vec<Vec<CallEdge>>,
    /// `events[id]` — calls + direct lock acquisitions in line order.
    pub events: Vec<Vec<Event>>,
}

const KEYWORDS: [&str; 16] = [
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "let", "else", "fn",
    "unsafe", "where", "ref", "box",
];

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Walk back from `end` (exclusive) over one identifier; returns its
/// start, or `None` if the preceding char is not an identifier char.
fn ident_start(bytes: &[u8], end: usize) -> Option<usize> {
    if end == 0 || !is_ident_byte(bytes[end - 1]) {
        return None;
    }
    let mut s = end;
    while s > 0 && is_ident_byte(bytes[s - 1]) {
        s -= 1;
    }
    Some(s)
}

/// Extract raw call sites `(offset_of_ident, callee)` from `cleaned`.
fn call_sites(cleaned: &str) -> Vec<(usize, Callee)> {
    let bytes = cleaned.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'(' {
            continue;
        }
        let Some(s) = ident_start(bytes, i) else { continue };
        let name = &cleaned[s..i];
        if KEYWORDS.contains(&name) || bytes[s].is_ascii_digit() {
            continue;
        }
        // Qualified: `Qual::name(` — capture the immediate qualifier.
        if s >= 2 && &bytes[s - 2..s] == b"::" {
            let qual = match ident_start(bytes, s - 2) {
                Some(qs) => cleaned[qs..s - 2].to_string(),
                None => String::new(), // `<T as Trait>::name(`
            };
            out.push((s, Callee::Qualified(qual, name.to_string())));
        } else if s >= 1 && bytes[s - 1] == b'.' {
            let recv_self = receiver_field(bytes, s).is_some_and(|r| r == "self");
            out.push((s, Callee::Method { name: name.to_string(), recv_self }));
        } else {
            out.push((s, Callee::Free(name.to_string())));
        }
    }
    out
}

/// Lock-acquisition method names. `.read()`/`.write()` are only
/// treated as acquisitions in files that mention `RwLock` at all —
/// `io::Read::read` shares the name.
fn is_lock_method(name: &str, file_has_rwlock: bool) -> bool {
    name == "lock" || (file_has_rwlock && (name == "read" || name == "write"))
}

/// For a method call at ident offset `s` (receiver ends at `s - 1`,
/// which is the `.`), walk back over the receiver chain and return the
/// last field identifier — `self.inner.state.lock()` → `state`;
/// `slots[i].lock()` → `slots`; `self.lock()` → `self`.
/// Binding name for a simple `let [mut] name = ..` line; `None` for
/// pattern bindings (`if let Some(g) = ..`), whose guard lifetime the
/// conservative hold model keeps pessimistic.
pub(crate) fn let_binding(line: &str) -> Option<String> {
    let rest = line.trim_start().strip_prefix("let ")?;
    let rest = rest.trim_start().strip_prefix("mut ").unwrap_or(rest.trim_start());
    let end = rest.find(|c: char| !(c.is_ascii_alphanumeric() || c == '_')).unwrap_or(rest.len());
    if end == 0 || !rest[end..].trim_start().starts_with('=') {
        return None;
    }
    Some(rest[..end].to_string())
}

fn receiver_field(bytes: &[u8], s: usize) -> Option<String> {
    let mut j = s - 1; // the `.`
    // Skip a balanced `[..]` index chain (`slots[i].lock()`).
    while j > 0 && bytes[j - 1] == b']' {
        let mut depth = 0usize;
        while j > 0 {
            j -= 1;
            match bytes[j] {
                b']' => depth += 1,
                b'[' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    let start = ident_start(bytes, j)?;
    Some(String::from_utf8_lossy(&bytes[start..j]).into_owned())
}

impl Graph {
    /// Build edges and events for every indexed item.
    pub fn build(ix: &Index) -> Graph {
        let mut edges: Vec<Vec<CallEdge>> = vec![Vec::new(); ix.fns.len()];
        let mut events: Vec<Vec<Event>> = vec![Vec::new(); ix.fns.len()];
        for (fi, file) in ix.files.iter().enumerate() {
            let bytes = file.cleaned.as_bytes();
            let file_has_rwlock = file.cleaned.contains("RwLock");
            for (off, callee) in call_sites(&file.cleaned) {
                let Some(caller) = ix.fn_at(fi, off) else { continue };
                let line = file.line_of(off);
                let line_text = line_text(file, line);
                // Direct lock acquisition: `.lock()` with a field (not
                // `self`) receiver. Recorded as an event, not an edge.
                if let Callee::Method { name, .. } = &callee {
                    if is_lock_method(name, file_has_rwlock) {
                        if let Some(recv) = receiver_field(bytes, off) {
                            if recv != "self" {
                                let class = format!("{}::{}", file.stem, recv);
                                let bound = line_text.contains("let ");
                                let binding = let_binding(line_text);
                                events[caller].push(Event::Acquire(Acquire {
                                    class,
                                    line,
                                    bound,
                                    binding,
                                }));
                                continue;
                            }
                        }
                    }
                }
                // `drop(guard)` releases a held binding; std's `drop`
                // never resolves to a workspace item.
                if let Callee::Free(name) = &callee {
                    if name == "drop" {
                        let arg_end = off + name.len() + 1;
                        let arg = file.cleaned[arg_end..]
                            .split(')')
                            .next()
                            .unwrap_or("")
                            .trim()
                            .to_string();
                        if !arg.is_empty() && arg.bytes().all(is_ident_byte) {
                            events[caller].push(Event::Release { name: arg });
                        }
                        continue;
                    }
                }
                let targets = resolve(ix, fi, caller, &callee);
                let shielded = line_text.contains("catch_unwind");
                for callee_id in targets {
                    let edge = CallEdge { callee: callee_id, line, shielded };
                    edges[caller].push(edge.clone());
                    events[caller].push(Event::Call(edge));
                }
            }
        }
        Graph { edges, events }
    }

    /// Shortest call chain (item ids, entry first) from any of
    /// `entries` to `target`, traversing unshielded edges only when
    /// `respect_shields` is set. Returns `None` when unreachable.
    pub fn reach_chain(
        &self,
        ix: &Index,
        entries: &[usize],
        target: usize,
        respect_shields: bool,
    ) -> Option<Vec<usize>> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = entries.iter().copied().collect();
        let mut seen: Vec<bool> = vec![false; ix.fns.len()];
        for &e in entries {
            seen[e] = true;
        }
        while let Some(at) = queue.pop_front() {
            if at == target {
                let mut chain = vec![at];
                let mut cur = at;
                while let Some(&p) = parent.get(&cur) {
                    chain.push(p);
                    cur = p;
                }
                chain.reverse();
                return Some(chain);
            }
            for edge in &self.edges[at] {
                if respect_shields && edge.shielded {
                    continue;
                }
                // Test code is out of scope for every graph rule.
                if ix.fns[edge.callee].is_test {
                    continue;
                }
                if !seen[edge.callee] {
                    seen[edge.callee] = true;
                    parent.insert(edge.callee, at);
                    queue.push_back(edge.callee);
                }
            }
        }
        None
    }
}

fn line_text(file: &crate::index::FileView, line: usize) -> &str {
    let start = file.line_starts[line - 1];
    let end = file
        .line_starts
        .get(line)
        .map(|&e| e.saturating_sub(1))
        .unwrap_or(file.cleaned.len());
    &file.cleaned[start..end]
}

/// Name-resolution-lite. Same-file candidates win; otherwise the
/// workspace tables over-approximate. Calls that resolve to nothing
/// (std, vendored deps) produce no edge.
fn resolve(ix: &Index, file: usize, caller: usize, callee: &Callee) -> Vec<usize> {
    let same_file = |pred: &dyn Fn(&FnItem) -> bool| -> Vec<usize> {
        ix.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && pred(f))
            .map(|(id, _)| id)
            .collect()
    };
    match callee {
        Callee::Free(name) => {
            let local = same_file(&|f: &FnItem| f.name == *name && f.owner.is_none());
            if !local.is_empty() {
                return local;
            }
            ix.by_name
                .get(name)
                .map(|ids| {
                    ids.iter().copied().filter(|&id| ix.fns[id].owner.is_none()).collect()
                })
                .unwrap_or_default()
        }
        Callee::Qualified(qual, name) => {
            if qual == "Self" {
                let owner = ix.fns[caller].owner.clone();
                if let Some(owner) = owner {
                    return ix.by_owner.get(&(owner, name.clone())).cloned().unwrap_or_default();
                }
                return Vec::new();
            }
            if qual.is_empty() {
                // `<T as Trait>::name(` — fan out to every impl.
                return ix
                    .by_name
                    .get(name)
                    .map(|ids| {
                        ids.iter().copied().filter(|&id| ix.fns[id].owner.is_some()).collect()
                    })
                    .unwrap_or_default();
            }
            let mut out: Vec<usize> =
                ix.by_owner.get(&(qual.clone(), name.clone())).cloned().unwrap_or_default();
            // Module-qualified free call: `order::nan_largest(`.
            if out.is_empty() {
                out = ix
                    .by_name
                    .get(name)
                    .map(|ids| {
                        ids.iter()
                            .copied()
                            .filter(|&id| {
                                ix.fns[id].owner.is_none()
                                    && ix.files[ix.fns[id].file].stem == *qual
                            })
                            .collect()
                    })
                    .unwrap_or_default();
            }
            out
        }
        Callee::Method { name, recv_self } => {
            // `x.insert(..)` on a collection must not fan out to every
            // workspace `insert`; `self.insert(..)` is never std.
            if !recv_self && STD_METHODS.contains(&name.as_str()) {
                return Vec::new();
            }
            let mut out = {
                let local = same_file(&|f: &FnItem| f.name == *name && f.owner.is_some());
                if !local.is_empty() {
                    local
                } else {
                    ix.by_name
                        .get(name)
                        .map(|ids| {
                            ids.iter().copied().filter(|&id| ix.fns[id].owner.is_some()).collect()
                        })
                        .unwrap_or_default()
                }
            };
            // `slot.breaker.record_success()` inside `fn record_success`
            // names a different receiver's method, not recursion — keep
            // self-edges only for literal `self.f()` calls.
            if !recv_self {
                out.retain(|&id| id != caller);
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn build(sources: &[(&str, &str)]) -> (Index, Graph) {
        let scanned: Vec<(String, crate::scanner::CleanSource)> =
            sources.iter().map(|(p, s)| (p.to_string(), scan(s))).collect();
        let ix = Index::build(&scanned);
        let g = Graph::build(&ix);
        (ix, g)
    }

    fn id(ix: &Index, name: &str) -> usize {
        ix.by_name[name][0]
    }

    #[test]
    fn free_qualified_and_method_calls_resolve() {
        let (ix, g) = build(&[
            ("crates/a/src/one.rs", "pub fn top() { helper(); two::leaf(); }\nfn helper() {}\n"),
            ("crates/a/src/two.rs", "pub fn leaf() {}\nstruct S;\nimpl S { fn m(&self) {} }\n"),
            ("crates/a/src/three.rs", "pub fn call_m(s: &super::two::S) { s.m(); }\n"),
        ]);
        let top = id(&ix, "top");
        let callees: Vec<&str> =
            g.edges[top].iter().map(|e| ix.fns[e.callee].name.as_str()).collect();
        assert_eq!(callees, vec!["helper", "leaf"]);
        let call_m = id(&ix, "call_m");
        assert_eq!(g.edges[call_m].len(), 1);
        assert_eq!(ix.fns[g.edges[call_m][0].callee].name, "m");
    }

    #[test]
    fn macros_and_std_calls_produce_no_edges() {
        let (ix, g) = build(&[(
            "crates/a/src/one.rs",
            "pub fn top() { println!(\"x\"); Vec::new(); format!(\"y\"); }\n",
        )]);
        assert!(g.edges[id(&ix, "top")].is_empty());
    }

    #[test]
    fn shielded_edges_are_marked() {
        let (ix, g) = build(&[(
            "crates/a/src/one.rs",
            "pub fn top() { let r = catch_unwind(|| risky()); }\nfn risky() {}\n",
        )]);
        let top = id(&ix, "top");
        assert_eq!(g.edges[top].len(), 1);
        assert!(g.edges[top][0].shielded);
        assert!(
            g.reach_chain(&ix, &[top], id(&ix, "risky"), true).is_none(),
            "panic-reach must not cross a catch_unwind line"
        );
        assert!(g.reach_chain(&ix, &[top], id(&ix, "risky"), false).is_some());
    }

    #[test]
    fn field_lock_is_acquisition_self_lock_is_wrapper_call() {
        let src = "\
struct S;
impl S {
    fn lock(&self) -> std::sync::MutexGuard<'_, u8> { self.inner.lock().unwrap_or_else(|e| e.into_inner()) }
    fn use_both(&self) {
        let a = self.lock();
        self.other.lock();
    }
}
";
        let (ix, g) = build(&[("crates/a/src/state.rs", src)]);
        let wrapper = id(&ix, "lock");
        let classes: Vec<String> = g.events[wrapper]
            .iter()
            .filter_map(|e| match e {
                Event::Acquire(a) => Some(a.class.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(classes, vec!["state::inner"]);
        let user = id(&ix, "use_both");
        let mut calls = 0;
        let mut acquires = Vec::new();
        for e in &g.events[user] {
            match e {
                Event::Call(c) => {
                    assert_eq!(ix.fns[c.callee].name, "lock");
                    calls += 1;
                }
                Event::Acquire(a) => acquires.push((a.class.clone(), a.bound)),
                Event::Release { .. } => panic!("no drop() in this fixture"),
            }
        }
        assert_eq!(calls, 1, "`self.lock()` resolves to the same-file wrapper");
        assert_eq!(acquires, vec![("state::other".to_string(), false)]);
    }

    #[test]
    fn chains_are_shortest_and_entry_first() {
        let (ix, g) = build(&[(
            "crates/a/src/one.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn a2() { c(); }\n",
        )]);
        let chain = g
            .reach_chain(&ix, &[id(&ix, "a"), id(&ix, "a2")], id(&ix, "c"), true)
            .expect("reachable");
        let names: Vec<&str> = chain.iter().map(|&i| ix.fns[i].name.as_str()).collect();
        assert_eq!(names, vec!["a2", "c"], "BFS finds the 1-hop chain");
    }
}
