//! A minimal Rust source scanner: just enough lexing to blank out
//! comment and string-literal *contents* (so token searches cannot
//! false-positive inside them), while extracting `lint:allow` tags from
//! comments and mapping which lines belong to test code.
//!
//! This is deliberately not a parser. Every rule in [`crate::rules`]
//! works on "cleaned" lines — the original source with comments and
//! string interiors replaced by spaces, newlines preserved — plus a few
//! structural facts recovered by brace matching: `#[cfg(test)]` /
//! `#[test]` spans and named `impl`/`fn` spans.

/// One `// lint:allow(<rule>): <reason>` justification tag.
#[derive(Debug, Clone)]
pub struct AllowTag {
    /// The rule this tag suppresses.
    pub rule: String,
    /// The (non-empty) justification text.
    pub reason: String,
    /// 1-based line the comment starts on.
    pub line: usize,
    /// 1-based line the tag suppresses: the comment's own line when the
    /// comment trails code, otherwise the next line with code on it.
    pub target: usize,
}

/// A `lint:allow` tag that does not follow the convention.
#[derive(Debug, Clone)]
pub struct BadTag {
    /// 1-based line of the offending comment.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

/// The scanner's view of one source file.
#[derive(Debug)]
pub struct CleanSource {
    /// Source lines with comments and string interiors blanked.
    pub lines: Vec<String>,
    /// Well-formed justification tags.
    pub allows: Vec<AllowTag>,
    /// Malformed justification tags (a rule violation in themselves).
    pub bad_tags: Vec<BadTag>,
    /// `is_test[i]` is true when 0-based line `i` is inside a
    /// `#[cfg(test)]` module or a `#[test]` function.
    pub is_test: Vec<bool>,
}

/// Rule names a `lint:allow` tag may reference.
pub const ALLOWABLE_RULES: [&str; 7] = [
    "nan-ord",
    "nondet",
    "panic-boundary",
    "cache-purity",
    "panic-reach",
    "nondet-flow",
    "lock-order",
];

#[derive(Debug)]
struct Comment {
    /// 1-based line the comment starts on.
    line: usize,
    text: String,
}

/// Scan `source` into cleaned lines, tags, and test spans.
pub fn scan(source: &str) -> CleanSource {
    let (cleaned, comments) = strip(source);
    let lines: Vec<String> = cleaned.split('\n').map(str::to_string).collect();
    let mut is_test = vec![false; lines.len()];
    for (start, end) in attribute_spans(&cleaned, "#[cfg(test)]") {
        mark_lines(&cleaned, start, end, &mut is_test);
    }
    for (start, end) in attribute_spans(&cleaned, "#[test]") {
        mark_lines(&cleaned, start, end, &mut is_test);
    }
    let mut allows = Vec::new();
    let mut bad_tags = Vec::new();
    for comment in &comments {
        parse_tag(comment, &lines, &mut allows, &mut bad_tags);
    }
    CleanSource { lines, allows, bad_tags, is_test }
}

/// Replace comments and string-literal interiors with spaces, keeping
/// newlines so line numbers survive. Returns the cleaned text and every
/// comment with its starting line.
fn strip(source: &str) -> (String, Vec<Comment>) {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Push a source char through to the output, tracking lines.
    macro_rules! keep {
        ($c:expr) => {{
            if $c == '\n' {
                line += 1;
            }
            out.push($c);
        }};
    }
    // Blank a source char (newlines still pass through).
    macro_rules! blank {
        ($c:expr) => {{
            if $c == '\n' {
                line += 1;
                out.push('\n');
            } else {
                out.push(' ');
            }
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Line comment.
        if c == '/' && next == Some('/') {
            let start_line = line;
            let mut text = String::new();
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                blank!(chars[i]);
                i += 1;
            }
            comments.push(Comment { line: start_line, text });
            continue;
        }
        // Block comment (Rust block comments nest).
        if c == '/' && next == Some('*') {
            let start_line = line;
            let mut text = String::new();
            let mut depth = 0usize;
            while i < chars.len() {
                let c = chars[i];
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    depth += 1;
                    text.push_str("/*");
                    blank!(c);
                    blank!('*');
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    depth -= 1;
                    text.push_str("*/");
                    blank!(c);
                    blank!('/');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(c);
                    blank!(c);
                    i += 1;
                }
            }
            comments.push(Comment { line: start_line, text });
            continue;
        }

        let prev_is_ident =
            i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');

        // Raw (and raw-byte) string literal: r"..." / r#"..."# / br#"..."#.
        if !prev_is_ident && (c == 'r' || (c == 'b' && next == Some('r'))) {
            let prefix = if c == 'b' { 2 } else { 1 };
            let mut j = i + prefix;
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                // Emit the opening delimiter untouched.
                for k in i..=j {
                    keep!(chars[k]);
                }
                i = j + 1;
                // Blank until `"` followed by `hashes` hashes.
                'raw: while i < chars.len() {
                    if chars[i] == '"' {
                        let mut ok = true;
                        for h in 0..hashes {
                            if chars.get(i + 1 + h) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            for k in i..=(i + hashes) {
                                keep!(chars[k]);
                            }
                            i += hashes + 1;
                            break 'raw;
                        }
                    }
                    blank!(chars[i]);
                    i += 1;
                }
                continue;
            }
        }

        // Plain (and byte) string literal.
        if c == '"' || (c == 'b' && next == Some('"') && !prev_is_ident) {
            if c == 'b' {
                keep!('b');
                i += 1;
            }
            keep!('"');
            i += 1;
            while i < chars.len() {
                let c = chars[i];
                if c == '\\' && i + 1 < chars.len() {
                    blank!(c);
                    blank!(chars[i + 1]);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    keep!(c);
                    i += 1;
                    break;
                }
                blank!(c);
                i += 1;
            }
            continue;
        }

        // Char / byte-char literal vs. lifetime: `'x'` and `'\n'` are
        // literals; `'a` (no closing quote right after) is a lifetime.
        if c == '\'' {
            if next == Some('\\') {
                keep!(c);
                i += 1;
                blank!(chars[i]); // backslash
                i += 1;
                if i < chars.len() {
                    // The escaped char itself — may be `'` (as in '\''),
                    // which must not terminate the literal.
                    blank!(chars[i]);
                    i += 1;
                }
                while i < chars.len() && chars[i] != '\'' {
                    blank!(chars[i]);
                    i += 1;
                }
                if i < chars.len() {
                    keep!('\'');
                    i += 1;
                }
                continue;
            }
            if chars.get(i + 2) == Some(&'\'') {
                keep!(c);
                blank!(chars[i + 1]);
                keep!('\'');
                i += 3;
                continue;
            }
            // Lifetime: pass through.
        }

        keep!(c);
        i += 1;
    }
    (out, comments)
}

/// Byte spans (over the cleaned text) of the brace block following each
/// occurrence of `attr`. An occurrence with a `;` before the block (e.g.
/// `#[cfg(test)] mod tests;`) is skipped.
fn attribute_spans(cleaned: &str, attr: &str) -> Vec<(usize, usize)> {
    let bytes = cleaned.as_bytes();
    let mut spans = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = cleaned[from..].find(attr) {
        let attr_start = from + pos;
        let attr_end = attr_start + attr.len();
        from = attr_end;
        let mut j = attr_end;
        // Find the block this attribute introduces.
        while j < bytes.len() {
            match bytes[j] {
                b'{' => break,
                b';' => {
                    j = bytes.len();
                    break;
                }
                _ => j += 1,
            }
        }
        if j >= bytes.len() {
            continue;
        }
        if let Some(end) = matching_brace(bytes, j) {
            spans.push((attr_start, end));
        }
    }
    spans
}

/// Index of the `}` closing the `{` at `open` (cleaned text, so braces
/// inside strings and comments are already gone).
pub(crate) fn matching_brace(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (off, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(off);
                }
            }
            _ => {}
        }
    }
    None
}

/// Mark every 0-based line intersecting byte span `[start, end]`.
fn mark_lines(cleaned: &str, start: usize, end: usize, mark: &mut [bool]) {
    let mut line = 0usize;
    for (off, b) in cleaned.bytes().enumerate() {
        if off > end {
            break;
        }
        if off >= start {
            if let Some(m) = mark.get_mut(line) {
                *m = true;
            }
        }
        if b == b'\n' {
            line += 1;
        }
    }
}

/// Line spans (1-based, inclusive) of the brace block following each
/// occurrence of `needle` in this file — used to scope rules to `impl
/// CacheKey { .. }` or `fn fnv1a(..) { .. }` regions. `needle` must
/// start at an identifier boundary.
pub fn named_spans(src: &CleanSource, needle: &str) -> Vec<(usize, usize)> {
    let cleaned = src.lines.join("\n");
    let bytes = cleaned.as_bytes();
    let mut spans = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = cleaned[from..].find(needle) {
        let at = from + pos;
        from = at + needle.len();
        let boundary_ok = at == 0
            || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        if !boundary_ok {
            continue;
        }
        let mut j = at + needle.len();
        while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] == b';' {
            continue;
        }
        if let Some(end) = matching_brace(bytes, j) {
            let start_line = 1 + cleaned[..at].bytes().filter(|&b| b == b'\n').count();
            let end_line = 1 + cleaned[..end].bytes().filter(|&b| b == b'\n').count();
            spans.push((start_line, end_line));
        }
    }
    spans
}

/// Parse one comment for a `lint:allow(<rule>): <reason>` tag.
///
/// The tag must be the *start* of the comment body (after the `//`,
/// `//!`, `/*` markers) — `// lint:allow(nondet): why` is a tag, while
/// prose that merely mentions `lint:allow` is not.
fn parse_tag(
    comment: &Comment,
    lines: &[String],
    allows: &mut Vec<AllowTag>,
    bad_tags: &mut Vec<BadTag>,
) {
    let body =
        comment.text.trim_start_matches(['/', '*', '!']).trim_start();
    if !body.starts_with("lint:allow") {
        return;
    }
    let rest = &body["lint:allow".len()..];
    let mut bad = |message: String| {
        bad_tags.push(BadTag { line: comment.line, message });
    };
    let Some(rest) = rest.strip_prefix('(') else {
        return bad("lint:allow must name a rule: `lint:allow(<rule>): <reason>`".into());
    };
    let Some(close) = rest.find(')') else {
        return bad("unclosed rule name in lint:allow tag".into());
    };
    let rule = rest[..close].trim().to_string();
    if !ALLOWABLE_RULES.contains(&rule.as_str()) {
        return bad(format!(
            "unknown rule `{rule}` in lint:allow tag (known: {})",
            ALLOWABLE_RULES.join(", ")
        ));
    }
    let after = &rest[close + 1..];
    let Some(reason) = after.strip_prefix(':') else {
        return bad(format!("lint:allow({rule}) must carry a reason: `lint:allow({rule}): <why>`"));
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return bad(format!("empty reason in lint:allow({rule}) tag"));
    }

    // The tag suppresses its own line when the comment trails code,
    // otherwise the next line that has code on it.
    let own = &lines[comment.line - 1];
    let target = if own.trim().is_empty() {
        lines
            .iter()
            .enumerate()
            .skip(comment.line)
            .find(|(_, l)| !l.trim().is_empty())
            .map(|(idx, _)| idx + 1)
    } else {
        Some(comment.line)
    };
    match target {
        Some(target) => allows.push(AllowTag {
            rule,
            reason: reason.to_string(),
            line: comment.line,
            target,
        }),
        None => bad(format!("lint:allow({rule}) tag at end of file suppresses nothing")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let a = \"Instant::now\"; // Instant::now in comment\nlet b = 1;\n";
        let s = scan(src);
        assert!(!s.lines[0].contains("Instant::now"));
        assert!(s.lines[1].contains("let b"));
    }

    #[test]
    fn raw_strings_and_escapes_are_blanked() {
        let src = "let a = r#\"unwrap() \"quoted\" \"#; let b = \"esc \\\" unwrap()\";\n";
        let s = scan(src);
        assert!(!s.lines[0].contains("unwrap"));
        assert!(s.lines[0].contains("let b"));
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let src = "let q = '\"'; let n = '\\n'; let l: &'static str = \"x.unwrap()\";\n";
        let s = scan(src);
        assert!(!s.lines[0].contains("unwrap"));
        assert!(s.lines[0].contains("&'static str"));
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let src = "/* outer /* inner unwrap() */ still comment */ let x = 1;\n";
        let s = scan(src);
        assert!(!s.lines[0].contains("unwrap"));
        assert!(s.lines[0].contains("let x = 1;"));
    }

    #[test]
    fn cfg_test_spans_are_marked() {
        let src = "fn hot() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn cold() {}\n";
        let s = scan(src);
        assert!(!s.is_test[0]);
        assert!(s.is_test[1] && s.is_test[2] && s.is_test[3] && s.is_test[4]);
        assert!(!s.is_test[5]);
    }

    #[test]
    fn trailing_and_standalone_tags_resolve_targets() {
        let src = "\
let a = x.unwrap(); // lint:allow(panic-boundary): invariant A
// lint:allow(nondet): invariant B
let b = now();
";
        let s = scan(src);
        assert_eq!(s.allows.len(), 2);
        assert_eq!((s.allows[0].rule.as_str(), s.allows[0].target), ("panic-boundary", 1));
        assert_eq!((s.allows[1].rule.as_str(), s.allows[1].target), ("nondet", 3));
        assert!(s.bad_tags.is_empty());
    }

    #[test]
    fn malformed_tags_are_reported() {
        let src = "\
// lint:allow(panic-boundary):
// lint:allow(bogus): some reason
// lint:allow(nondet) missing colon
let a = 1;
";
        let s = scan(src);
        assert!(s.allows.is_empty());
        assert_eq!(s.bad_tags.len(), 3);
        assert!(s.bad_tags[0].message.contains("empty reason"));
        assert!(s.bad_tags[1].message.contains("unknown rule"));
        assert!(s.bad_tags[2].message.contains("must carry a reason"));
    }

    #[test]
    fn named_spans_cover_impl_blocks() {
        let src = "\
struct CacheKey;
impl CacheKey {
    fn f() {}
}
fn fnv1a() {
    let x = 1;
}
";
        let s = scan(src);
        let impl_span = named_spans(&s, "impl CacheKey");
        assert_eq!(impl_span, vec![(2, 4)]);
        let fn_span = named_spans(&s, "fn fnv1a");
        assert_eq!(fn_span, vec![(5, 7)]);
    }
}
