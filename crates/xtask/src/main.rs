//! CLI for the in-repo static analysis tool.
//!
//! ```text
//! cargo run -p xtask -- lint                  # baseline-aware gate
//! cargo run -p xtask -- lint --strict         # ignore the baseline (CI)
//! cargo run -p xtask -- lint --write-baseline # regenerate the baseline
//! cargo run -p xtask -- lint --json           # machine-readable findings
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use xtask::baseline::Baseline;
use xtask::lint_workspace;

/// The baseline lives next to the tool, inside the crate it belongs to.
const BASELINE_REL: &str = "crates/xtask/lint.baseline";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut strict = false;
    let mut write_baseline = false;
    let mut json = false;
    let mut command = None;
    for arg in &args {
        match arg.as_str() {
            "lint" if command.is_none() => command = Some("lint"),
            "--strict" => strict = true,
            "--write-baseline" => write_baseline = true,
            "--json" => json = true,
            "--help" | "-h" | "help" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    if command != Some("lint") {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    }

    // `CARGO_MANIFEST_DIR` is crates/xtask at compile time; the
    // workspace root is two levels up. This keeps the tool working no
    // matter which directory `cargo run -p xtask` is invoked from.
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf();

    let baseline_path = root.join(BASELINE_REL);
    let baseline = if strict {
        Baseline::default()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => Baseline::parse(&text),
            Err(_) => Baseline::default(),
        }
    };

    let report = match lint_workspace(&root, &baseline) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("xtask lint: failed to scan workspace: {err}");
            return ExitCode::FAILURE;
        }
    };

    if write_baseline {
        let mut all = report.fresh.clone();
        all.extend(report.baselined.iter().cloned());
        let text = Baseline::render(&all);
        if let Err(err) = std::fs::write(&baseline_path, text) {
            eprintln!("xtask lint: cannot write {}: {err}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {} with {} entr{}",
            BASELINE_REL,
            all.len(),
            if all.len() == 1 { "y" } else { "ies" }
        );
        return ExitCode::SUCCESS;
    }

    if json {
        println!("{}", render_json(&report.fresh));
        return if report.fresh.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    for v in &report.fresh {
        println!("{}", v.render());
    }
    let mode = if strict { " (strict: baseline ignored)" } else { "" };
    println!(
        "xtask lint: {} file(s), {} violation(s), {} baselined{}",
        report.files,
        report.fresh.len(),
        report.baselined.len(),
        mode
    );
    if report.fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Render findings as a JSON array (schema: rule, path, line, chain,
/// excerpt). Hand-rolled — the workspace carries no serde dependency.
fn render_json(violations: &[xtask::rules::Violation]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let chain: Vec<String> = v.chain.iter().map(|c| format!("\"{}\"", esc(c))).collect();
        out.push_str(&format!(
            "\n  {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"chain\": [{}], \
             \"excerpt\": \"{}\"}}",
            esc(v.rule),
            esc(&v.path),
            v.line,
            chain.join(", "),
            esc(&v.excerpt),
        ));
    }
    out.push_str(if violations.is_empty() { "]" } else { "\n]" });
    out
}

fn usage() -> String {
    "\
xtask — in-repo static analysis for the Auto-FP workspace

USAGE:
    cargo run -p xtask -- lint [--strict] [--write-baseline] [--json]

RULES (justify exceptions with `// lint:allow(<rule>): <reason>`):
    nan-ord         no raw `partial_cmp` outside core::order
    nondet          no wall-clock outside core::budget/bench, no unseeded
                    RNG, no HashMap/HashSet in determinism-critical modules
    panic-boundary  no unwrap/expect/panic! in the evaluation hot path
    cache-purity    no interior mutability / clock / RNG in cache-identity code
    panic-reach     hot-path entry points must not transitively reach
                    unwrap/expect/panic!/fallible indexing (call-graph rule;
                    findings carry the full call chain)
    nondet-flow     wall-clock/unseeded-RNG taint must not reach
                    determinism-critical roots except via core::budget
    lock-order      no same-class Mutex re-acquisition, no pairwise
                    lock-order inversions (transitive, via the call graph)

FLAGS:
    --strict           ignore crates/xtask/lint.baseline (the CI gate)
    --write-baseline   regenerate the baseline from current findings
    --json             emit findings as JSON (rule, path, line, chain, excerpt)
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::render_json;
    use xtask::rules::Violation;

    #[test]
    fn json_escapes_and_carries_the_chain() {
        let v = Violation {
            rule: "panic-reach",
            path: "crates/a/src/one.rs".to_string(),
            line: 7,
            message: String::new(),
            excerpt: "x.expect(\"boom\\n\")".to_string(),
            chain: vec!["entry (crates/a/src/one.rs:1)".to_string()],
        };
        let json = render_json(std::slice::from_ref(&v));
        assert_eq!(
            json,
            "[\n  {\"rule\": \"panic-reach\", \"path\": \"crates/a/src/one.rs\", \
             \"line\": 7, \"chain\": [\"entry (crates/a/src/one.rs:1)\"], \
             \"excerpt\": \"x.expect(\\\"boom\\\\n\\\")\"}\n]"
        );
        assert_eq!(render_json(&[]), "[]");
    }
}
