//! The graph-powered rule families: panic-reach, nondet-flow, and
//! lock-order.
//!
//! Module map (the graph engine's third layer — see ARCHITECTURE.md):
//!
//! - [`panic_reach`] — designated hot-path entry points must not
//!   *transitively* reach a panicking construct through unshielded
//!   edges; findings carry the full call chain to the sink line.
//! - [`nondet_flow`] — wall-clock / unseeded-RNG reads are taint
//!   sources propagated along call edges; determinism-critical roots
//!   must not reach one except through the blessed `core::budget`
//!   layer (edges into `budget.rs` are never traversed, which is
//!   exactly the "clock policy lives in budget" contract).
//! - [`lock_order`] — per-function lock acquisition sequences are
//!   propagated through calls; pairwise inverted orders and
//!   same-class re-acquisition (std `Mutex` is not reentrant) are
//!   flagged with the witness chain.
//!
//! Suppression is line-local like every other rule: the violation is
//! attributed to the *sink* line (panic-reach), the *source* line
//! (nondet-flow), or the second acquisition's line in the witnessing
//! function (lock-order), and a `lint:allow(<rule>): <reason>` tag on
//! that line justifies it.

use crate::graph::{Event, Graph};
use crate::index::{FileView, Index};
use crate::rules::{has_token, is_bench, Violation, PANIC_TOKENS, TIME_TOKENS, UNSEEDED_RNG_TOKENS};
use std::collections::BTreeMap;

/// Hot-path entry points for panic-reach: (file, fn name). Everything
/// transitively callable from these, minus `catch_unwind`-shielded
/// edges, must be panic-free.
const PANIC_REACH_ENTRIES: [(&str, &str); 14] = [
    // The shielded evaluation surface searchers program against.
    ("crates/core/src/evaluator.rs", "try_evaluate"),
    ("crates/core/src/evaluator.rs", "try_evaluate_budgeted"),
    ("crates/core/src/evaluator.rs", "try_evaluate_cancellable"),
    ("crates/core/src/evaluator.rs", "evaluate_or_worst"),
    // The wire decoders face untrusted bytes.
    ("crates/evald/src/wire.rs", "decode_request"),
    ("crates/evald/src/wire.rs", "decode_response"),
    // Distributed routing and the supervisor tick run outside any
    // catch_unwind shield: a panic kills a client thread or the fleet.
    ("crates/core/src/remote.rs", "evaluate_raw"),
    ("crates/evald/src/launch.rs", "supervise_once"),
    // The durable trial store decodes untrusted on-disk bytes (a torn
    // or corrupted segment) on open, and append runs inside worker and
    // bench write-through paths; both must fail with RepoError, never
    // panic.
    ("crates/core/src/repo.rs", "open"),
    ("crates/core/src/repo.rs", "append"),
    // The serving path: its wire decoders face untrusted request
    // frames, the artifact decoder faces untrusted files, and
    // `serve_connection` is the daemon's whole per-connection cone —
    // a panic anywhere under it drops a client (or, via the accept
    // loop, the daemon).
    ("crates/serve/src/wire.rs", "decode_request"),
    ("crates/serve/src/wire.rs", "decode_response"),
    ("crates/serve/src/artifact.rs", "decode"),
    ("crates/serve/src/server.rs", "serve_connection"),
];

/// Files where slice/array indexing counts as a panic-reach sink. The
/// evaluation cone tolerates a panic (catch_unwind burns the trial);
/// the distributed layer does not — an out-of-bounds index takes out a
/// worker, the client pool, or the supervisor — and the trial store
/// decodes arbitrary (possibly torn) on-disk bytes, where an index
/// panic would turn a recoverable corrupt tail into a crash loop.
/// Matrix-shaped indexing in `preprocess`/`models`/`linalg` stays
/// idiomatic and out of scope.
const INDEX_SINK_FILES: [&str; 12] = [
    "crates/evald/src/wire.rs",
    "crates/evald/src/client.rs",
    "crates/evald/src/fleet.rs",
    "crates/evald/src/launch.rs",
    "crates/evald/src/server.rs",
    "crates/evald/src/service.rs",
    "crates/core/src/remote.rs",
    "crates/core/src/repo.rs",
    "crates/serve/src/wire.rs",
    "crates/serve/src/artifact.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/client.rs",
];

/// Panicking constructs beyond [`PANIC_TOKENS`]: `std::panic::panic_any`
/// panics without the `panic!(` spelling (the fault injector uses it).
const EXTRA_PANIC_TOKENS: [&str; 1] = ["panic_any"];

/// Determinism-critical roots for nondet-flow.
const NONDET_FLOW_OWNER_ROOTS: [(&str, &str); 2] = [
    ("crates/core/src/cache.rs", "CacheKey"),
    ("crates/core/src/prefix.rs", "PrefixKey"),
];
const NONDET_FLOW_FN_ROOTS: [(&str, &str); 4] = [
    ("crates/core/src/remote.rs", "shard"),
    ("crates/core/src/remote.rs", "shard_weight"),
    ("crates/core/src/remote.rs", "shard_order"),
    ("crates/preprocess/src/pipeline.rs", "key"),
];
/// Every `Searcher::search` impl is a root: the proposal sequence must
/// be a pure function of the seed and the trial history.
const NONDET_FLOW_SEARCH_PREFIX: &str = "crates/search/src/";

/// The blessed wall-clock layer: taint never propagates through it.
const BLESSED_TIME_FILE: &str = "crates/core/src/budget.rs";

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn line_text(file: &FileView, line: usize) -> &str {
    let start = file.line_starts[line - 1];
    let end = file
        .line_starts
        .get(line)
        .map(|&e| e.saturating_sub(1))
        .unwrap_or(file.cleaned.len());
    &file.cleaned[start..end]
}

fn violation(
    ix: &Index,
    rule: &'static str,
    file: usize,
    line: usize,
    message: String,
    chain: Vec<String>,
) -> Violation {
    let fv = &ix.files[file];
    Violation {
        rule,
        path: fv.path.clone(),
        line,
        message,
        excerpt: line_text(fv, line).trim().to_string(),
        chain,
    }
}

/// Body line range of item `id` (1-based, inclusive).
fn body_lines(ix: &Index, id: usize) -> (usize, usize) {
    let f = &ix.fns[id];
    let fv = &ix.files[f.file];
    (fv.line_of(f.body_open), fv.line_of(f.body_close))
}

/// Does this cleaned line contain a fallible slice/array index
/// expression? `v[i]`, `v[i..]`, `m[r][c]` count; `#[attr]`, `vec![`,
/// type positions (`[u8; 4]`), and the infallible `[..]` do not.
fn has_index_expr(line: &str) -> bool {
    let b = line.as_bytes();
    for i in 0..b.len() {
        if b[i] != b'[' || i == 0 {
            continue;
        }
        let prev = b[i - 1];
        if !(is_ident_byte(prev) || prev == b')' || prev == b']') {
            continue;
        }
        // Matching `]` on the same line (multi-line index exprs are not
        // idiomatic in this codebase).
        let mut depth = 0usize;
        let mut end = None;
        for (j, &c) in b.iter().enumerate().skip(i) {
            match c {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(end) = end else { continue };
        if line[i + 1..end].trim() == ".." {
            continue; // RangeFull never panics
        }
        return true;
    }
    false
}

/// Resolve entry ids for (file, name) pairs. Missing entries are fine:
/// fixture runs hand `lint_sources` a subset of the workspace.
fn entry_ids(ix: &Index, entries: &[(&str, &str)]) -> Vec<usize> {
    ix.fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            !f.is_test
                && entries.iter().any(|(p, n)| ix.files[f.file].path == *p && f.name == *n)
        })
        .map(|(id, _)| id)
        .collect()
}

// ------------------------------------------------------------ panic-reach

pub fn panic_reach(ix: &Index, graph: &Graph, out: &mut Vec<Violation>) {
    let entries = entry_ids(ix, &PANIC_REACH_ENTRIES);
    if entries.is_empty() {
        return;
    }
    // One finding per sink line, with the shortest entry chain.
    let mut seen_sinks: BTreeMap<(usize, usize), ()> = BTreeMap::new();
    for (id, f) in ix.fns.iter().enumerate() {
        if f.is_test || is_bench(&ix.files[f.file].path) {
            continue;
        }
        let sinks = panic_sinks(ix, id);
        if sinks.is_empty() {
            continue;
        }
        let Some(chain) = graph.reach_chain(ix, &entries, id, true) else { continue };
        let labels: Vec<String> = chain.iter().map(|&i| ix.label(i)).collect();
        for (line, what) in sinks {
            if seen_sinks.insert((f.file, line), ()).is_some() {
                continue;
            }
            out.push(violation(
                ix,
                "panic-reach",
                f.file,
                line,
                format!(
                    "{what} reachable from hot-path entry `{}` — a panic here escapes \
                     every catch_unwind shield; return an EvalError instead",
                    ix.fns[chain[0]].name
                ),
                labels.clone(),
            ));
        }
    }
}

/// Panic sink lines inside item `id`'s body.
fn panic_sinks(ix: &Index, id: usize) -> Vec<(usize, String)> {
    let f = &ix.fns[id];
    let fv = &ix.files[f.file];
    let index_sinks = INDEX_SINK_FILES.contains(&fv.path.as_str());
    let (start, end) = body_lines(ix, id);
    let mut out = Vec::new();
    for line in start..=end {
        if fv.is_test.get(line - 1).copied().unwrap_or(false) {
            continue;
        }
        let text = line_text(fv, line);
        let mut hit = None;
        for token in PANIC_TOKENS.iter().chain(EXTRA_PANIC_TOKENS.iter()) {
            if has_token(text, token) {
                hit = Some(format!("`{token}`"));
                break;
            }
        }
        if hit.is_none() && index_sinks && has_index_expr(text) {
            hit = Some("fallible slice/array indexing".to_string());
        }
        if let Some(what) = hit {
            out.push((line, what));
        }
    }
    out
}

// ------------------------------------------------------------ nondet-flow

pub fn nondet_flow(ix: &Index, graph: &Graph, out: &mut Vec<Violation>) {
    let roots: Vec<usize> = ix
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.is_test && is_nondet_root(ix, f))
        .map(|(id, _)| id)
        .collect();
    if roots.is_empty() {
        return;
    }
    // Forward BFS from each root; edges into the blessed budget layer
    // are not traversed. First source fn reached gives the shortest
    // laundering chain. One finding per source line.
    let mut findings: BTreeMap<(usize, usize), (Vec<String>, String)> = BTreeMap::new();
    for &root in &roots {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut seen = vec![false; ix.fns.len()];
        seen[root] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(at) = queue.pop_front() {
            if let Some((line, token)) = own_source(ix, at) {
                let mut chain = vec![at];
                let mut cur = at;
                while let Some(&p) = parent.get(&cur) {
                    chain.push(p);
                    cur = p;
                }
                chain.reverse();
                let labels: Vec<String> = chain.iter().map(|&i| ix.label(i)).collect();
                findings
                    .entry((ix.fns[at].file, line))
                    .or_insert((labels, format!("`{token}`")));
                // Keep exploring: other sources may be reachable too.
            }
            for edge in &graph.edges[at] {
                let callee = &ix.fns[edge.callee];
                if callee.is_test
                    || ix.files[callee.file].path == BLESSED_TIME_FILE
                    || seen[edge.callee]
                {
                    continue;
                }
                seen[edge.callee] = true;
                parent.insert(edge.callee, at);
                queue.push_back(edge.callee);
            }
        }
    }
    for ((file, line), (chain, token)) in findings {
        out.push(violation(
            ix,
            "nondet-flow",
            file,
            line,
            format!(
                "{token} read tainting determinism-critical root `{}` — results must be \
                 a pure function of seed, data, and config; route timing through \
                 core::budget or justify that it never feeds a decision",
                chain.first().map(String::as_str).unwrap_or("?"),
            ),
            chain,
        ));
    }
}

fn is_nondet_root(ix: &Index, f: &crate::index::FnItem) -> bool {
    let path = ix.files[f.file].path.as_str();
    if NONDET_FLOW_OWNER_ROOTS
        .iter()
        .any(|(p, o)| path == *p && f.owner.as_deref() == Some(*o))
    {
        return true;
    }
    if NONDET_FLOW_FN_ROOTS.iter().any(|(p, n)| path == *p && f.name == *n) {
        return true;
    }
    path.starts_with(NONDET_FLOW_SEARCH_PREFIX) && f.name == "search" && f.owner.is_some()
}

/// First wall-clock / unseeded-RNG read inside item `id`'s own body.
fn own_source(ix: &Index, id: usize) -> Option<(usize, &'static str)> {
    let f = &ix.fns[id];
    let fv = &ix.files[f.file];
    if fv.path == BLESSED_TIME_FILE || is_bench(&fv.path) {
        return None;
    }
    let (start, end) = body_lines(ix, id);
    for line in start..=end {
        if fv.is_test.get(line - 1).copied().unwrap_or(false) {
            continue;
        }
        let text = line_text(fv, line);
        for token in TIME_TOKENS.iter().chain(UNSEEDED_RNG_TOKENS.iter()) {
            if has_token(text, token) {
                return Some((line, token));
            }
        }
    }
    None
}

// ------------------------------------------------------------- lock-order

/// A transitive acquisition reachable from some function: the chain of
/// call labels leading to it and the acquisition site itself.
#[derive(Debug, Clone)]
struct AcqPath {
    /// Call-chain labels from the function being summarized (exclusive)
    /// down to the acquiring function (inclusive); empty for a direct
    /// acquisition.
    hops: Vec<String>,
    /// `path:line` of the actual `.lock()` site.
    site: String,
}

pub fn lock_order(ix: &Index, graph: &Graph, out: &mut Vec<Violation>) {
    // Summaries: class -> representative path, per function (memoized
    // DFS; cycles terminate via the in-progress marker).
    let mut memo: Vec<Option<BTreeMap<String, AcqPath>>> = vec![None; ix.fns.len()];
    let mut visiting = vec![false; ix.fns.len()];
    for id in 0..ix.fns.len() {
        summarize(ix, graph, id, &mut memo, &mut visiting);
    }

    // Walk each function's events in order under the conservative hold
    // model: a bound guard is held to the end of the function.
    // pair (held class, acquired class) -> witness.
    struct Witness {
        file: usize,
        line: usize,
        held_line: usize,
        chain: Vec<String>,
        site: String,
    }
    let mut pairs: BTreeMap<(String, String), Witness> = BTreeMap::new();
    for (id, f) in ix.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let fv = &ix.files[f.file];
        // (class, acquisition line, binding name if a simple `let`).
        let mut held: Vec<(String, usize, Option<String>)> = Vec::new();
        for event in &graph.events[id] {
            match event {
                Event::Acquire(a) => {
                    for (h, hl, _) in &held {
                        pairs.entry((h.clone(), a.class.clone())).or_insert(Witness {
                            file: f.file,
                            line: a.line,
                            held_line: *hl,
                            chain: vec![ix.label(id)],
                            site: format!("{}:{}", fv.path, a.line),
                        });
                    }
                    if a.bound {
                        held.push((a.class.clone(), a.line, a.binding.clone()));
                    }
                }
                Event::Call(c) => {
                    if ix.fns[c.callee].is_test {
                        continue;
                    }
                    let summary = memo[c.callee].clone().unwrap_or_default();
                    for (class, path) in &summary {
                        for (h, hl, _) in &held {
                            // Summary hops are exclusive of the callee
                            // itself, so splice its label in.
                            let mut chain = vec![ix.label(id), ix.label(c.callee)];
                            chain.extend(path.hops.iter().cloned());
                            pairs.entry((h.clone(), class.clone())).or_insert(Witness {
                                file: f.file,
                                line: c.line,
                                held_line: *hl,
                                chain,
                                site: path.site.clone(),
                            });
                        }
                    }
                    if ix.fns[c.callee].returns_guard
                        && line_text(fv, c.line).contains("let ")
                    {
                        // The callee's guard outlives the call: its
                        // direct classes become held here.
                        let binding = crate::graph::let_binding(line_text(fv, c.line));
                        for event in &graph.events[c.callee] {
                            if let Event::Acquire(a) = event {
                                held.push((a.class.clone(), c.line, binding.clone()));
                            }
                        }
                    }
                }
                Event::Release { name } => {
                    // `drop(name)` releases the most recent guard bound
                    // to that name (shadowing picks the innermost).
                    if let Some(at) =
                        held.iter().rposition(|(_, _, b)| b.as_deref() == Some(name))
                    {
                        held.remove(at);
                    }
                }
            }
        }
    }

    // Same-class re-acquisition: std::sync::Mutex self-deadlocks.
    for ((h, a), w) in &pairs {
        if h == a {
            out.push(violation(
                ix,
                "lock-order",
                w.file,
                w.line,
                format!(
                    "lock `{a}` acquired at {} while already held since line {} — \
                     std::sync::Mutex is not reentrant, so this self-deadlocks unless \
                     the first guard is provably dropped first",
                    w.site, w.held_line
                ),
                w.chain.clone(),
            ));
        }
    }
    // Pairwise inversion: (A held -> B acquired) and (B held -> A).
    for ((h, a), w) in &pairs {
        if h < a {
            if let Some(rev) = pairs.get(&(a.clone(), h.clone())) {
                let rev_at = format!("{}:{}", ix.files[rev.file].path, rev.line);
                out.push(violation(
                    ix,
                    "lock-order",
                    w.file,
                    w.line,
                    format!(
                        "inconsistent lock order: `{h}` then `{a}` here, but `{a}` then \
                         `{h}` at {rev_at} — a deadlock window under concurrent callers",
                    ),
                    w.chain.clone(),
                ));
                out.push(violation(
                    ix,
                    "lock-order",
                    rev.file,
                    rev.line,
                    format!(
                        "inconsistent lock order: `{a}` then `{h}` here, but `{h}` then \
                         `{a}` at {}:{} — a deadlock window under concurrent callers",
                        ix.files[w.file].path, w.line,
                    ),
                    rev.chain.clone(),
                ));
            }
        }
    }
}

/// Classes (with representative paths) acquired during a call to `id`,
/// including everything its callees acquire.
fn summarize(
    ix: &Index,
    graph: &Graph,
    id: usize,
    memo: &mut Vec<Option<BTreeMap<String, AcqPath>>>,
    visiting: &mut Vec<bool>,
) -> BTreeMap<String, AcqPath> {
    if let Some(done) = &memo[id] {
        return done.clone();
    }
    if visiting[id] {
        return BTreeMap::new(); // recursion: the cycle adds nothing new
    }
    visiting[id] = true;
    let mut out: BTreeMap<String, AcqPath> = BTreeMap::new();
    let fv = &ix.files[ix.fns[id].file];
    for event in &graph.events[id] {
        match event {
            // A transient acquisition still deadlocks a caller holding
            // the same class, so releases don't edit the summary.
            Event::Release { .. } => {}
            Event::Acquire(a) => {
                out.entry(a.class.clone()).or_insert(AcqPath {
                    hops: Vec::new(),
                    site: format!("{}:{}", fv.path, a.line),
                });
            }
            Event::Call(c) => {
                if ix.fns[c.callee].is_test {
                    continue;
                }
                for (class, sub) in summarize(ix, graph, c.callee, memo, visiting) {
                    out.entry(class).or_insert_with(|| {
                        let mut hops = vec![ix.label(c.callee)];
                        hops.extend(sub.hops.iter().cloned());
                        AcqPath { hops, site: sub.site.clone() }
                    });
                }
            }
        }
    }
    visiting[id] = false;
    memo[id] = Some(out.clone());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_expr_detection() {
        assert!(has_index_expr("let x = buf[i];"));
        assert!(has_index_expr("let x = &buf[got..];"));
        assert!(has_index_expr("m[r][c] = 0.0;"));
        assert!(!has_index_expr("let x = &frame[..];"));
        assert!(!has_index_expr("#[derive(Debug)]"));
        assert!(!has_index_expr("let v = vec![1, 2];"));
        assert!(!has_index_expr("let t: [u8; 4] = x;"));
        assert!(!has_index_expr("fn f(xs: &[f64]) {}"));
    }
}
