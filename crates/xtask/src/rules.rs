//! The line-local lint rules, plus the allow-tag machinery every rule
//! family (including the graph rules in [`crate::graphrules`]) shares.
//!
//! Four line-local families guard the invariants the evaluation
//! service rests on (see ARCHITECTURE.md "Static analysis &
//! invariants"; the three call-graph families live in
//! [`crate::graphrules`]):
//!
//! - **nan-ord** — float comparisons must use the total-order helpers
//!   in `core::order`; a raw `partial_cmp` is one NaN away from a panic
//!   or a nondeterministic sort.
//! - **nondet** — wall-clock reads live in `core::budget` and the bench
//!   harness only; RNGs are always seeded; determinism-critical modules
//!   do not use `HashMap`/`HashSet` (iteration order varies per run).
//! - **panic-boundary** — the evaluation hot path (`core::{batch,
//!   evaluator, cache}`, `preprocess`, `models`) returns errors instead
//!   of panicking: a panic there is contained by `catch_unwind`, but it
//!   costs the trial and hides the real failure taxonomy.
//! - **cache-purity** — cache-identity code (`CacheKey`, `fnv1a`,
//!   `Pipeline::key`) is a pure function of its inputs: no interior
//!   mutability, no clock, no RNG.
//!
//! The pipeline split: [`collect_local`] gathers raw line-local
//! findings per file; the graph rules append theirs (attributed to
//! sink/source/acquisition lines); [`apply_allows`] then applies the
//! file's `lint:allow` tags to the combined set, so one suppression
//! mechanism serves all seven families.
//!
//! A violating line can carry `// lint:allow(<rule>): <reason>` (same
//! line, or a comment line directly above) with a non-empty reason.
//! Malformed tags and tags that suppress nothing are violations too
//! (`bad-tag`, `unused-allow`), so the justification record stays
//! honest.

use crate::scanner::{named_spans, CleanSource};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule family (or `bad-tag` / `unused-allow`).
    pub rule: &'static str,
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// Trimmed cleaned source of the line (baseline matching key).
    pub excerpt: String,
    /// For graph rules: the call chain from entry/root to this line,
    /// as `name (path:line)` labels. Empty for line-local rules.
    pub chain: Vec<String>,
}

impl Violation {
    /// The identity used for baseline matching: stable under line-number
    /// drift, invalidated when the flagged code itself changes.
    pub fn baseline_key(&self) -> String {
        format!("{}|{}|{}", self.rule, self.path, self.excerpt)
    }

    /// Human-readable report line; graph rules append the call chain.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}:{}: [{}] {} — `{}`",
            self.path, self.line, self.rule, self.message, self.excerpt
        );
        if !self.chain.is_empty() {
            out.push_str(&format!("\n    chain: {}", self.chain.join(" -> ")));
        }
        out
    }
}

/// Evaluation hot-path modules where panicking constructs are banned.
/// `core/remote.rs` and the evald client/fleet/launch/wire modules sit
/// on the distributed eval path: a panic there takes out a worker, a
/// supervisor, or a whole search; the wire decoder in particular faces
/// untrusted bytes, and the client/supervisor must degrade dead
/// workers to failover or worst-error trials, never to a crash.
/// `core/repo.rs` decodes untrusted on-disk bytes the same way the
/// wire decoder does: open+scan over an arbitrary (possibly torn or
/// corrupted) segment file must be total. The whole `serve` crate is
/// hot path too: its decoders face untrusted artifact files and
/// untrusted request frames, and its engine/server answer live
/// traffic where a panic drops the daemon.
const HOT_PATH: [&str; 10] = [
    "crates/core/src/batch.rs",
    "crates/core/src/evaluator.rs",
    "crates/core/src/cache.rs",
    "crates/core/src/prefix.rs",
    "crates/core/src/remote.rs",
    "crates/core/src/repo.rs",
    "crates/evald/src/wire.rs",
    "crates/evald/src/client.rs",
    "crates/evald/src/fleet.rs",
    "crates/evald/src/launch.rs",
];
const HOT_PATH_PREFIXES: [&str; 3] =
    ["crates/preprocess/src/", "crates/models/src/", "crates/serve/src/"];

/// Modules whose outputs feed `History`, reports, or cache keys: hash
/// containers (nondeterministic iteration order) need justification.
/// `core/repo.rs` is the durable end of that chain: record identity
/// and segment layout must be pure functions of the trial data —
/// no wall clock, no unstable iteration order.
/// The serve codecs and engine join for the same reason: artifact
/// bytes, wire bytes, and served predictions must be pure functions
/// of their inputs (the train/serve skew and thread-invariance
/// guarantees depend on it).
const DET_CRITICAL: [&str; 15] = [
    "crates/core/src/history.rs",
    "crates/core/src/report.rs",
    "crates/core/src/cache.rs",
    "crates/core/src/prefix.rs",
    "crates/core/src/ranking.rs",
    "crates/core/src/patterns.rs",
    "crates/core/src/batch.rs",
    "crates/core/src/framework.rs",
    "crates/core/src/repo.rs",
    "crates/evald/src/service.rs",
    "crates/evald/src/fleet.rs",
    "crates/evald/src/launch.rs",
    "crates/serve/src/artifact.rs",
    "crates/serve/src/engine.rs",
    "crates/serve/src/wire.rs",
];

/// Cache-identity regions: (file, block introducer). The rule applies
/// inside the brace block following the introducer.
const CACHE_PURITY_SPANS: [(&str, &str); 4] = [
    ("crates/core/src/cache.rs", "impl CacheKey"),
    ("crates/core/src/cache.rs", "fn fnv1a"),
    ("crates/core/src/prefix.rs", "impl PrefixKey"),
    ("crates/preprocess/src/pipeline.rs", "fn key"),
];

/// Panicking constructs banned on the hot path. `.unwrap()` is matched
/// with its parens so `unwrap_or` / `unwrap_or_else` (total fallbacks)
/// stay legal.
pub(crate) const PANIC_TOKENS: [&str; 6] =
    [".unwrap()", ".expect(", "panic!(", "unreachable!(", "todo!(", "unimplemented!("];

/// Wall-clock reads.
pub(crate) const TIME_TOKENS: [&str; 3] = ["Instant::now", "SystemTime::now", "UNIX_EPOCH"];

/// Unseeded / OS-entropy RNG constructions. The vendored `rand` shim
/// only offers `seed_from_u64`, so these also guard against someone
/// widening the shim.
pub(crate) const UNSEEDED_RNG_TOKENS: [&str; 4] =
    ["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// Interior mutability, clocks, RNG, and unstable hashers — none of
/// which belong in a pure cache-identity computation.
const CACHE_IMPURE_TOKENS: [&str; 17] = [
    "Cell",
    "RefCell",
    "UnsafeCell",
    "OnceCell",
    "Mutex",
    "RwLock",
    "AtomicBool",
    "AtomicUsize",
    "AtomicU32",
    "AtomicU64",
    "AtomicI64",
    "static mut",
    "Instant::now",
    "SystemTime",
    "DefaultHasher",
    "RandomState",
    "thread_rng",
];

pub(crate) fn is_bench(path: &str) -> bool {
    path.starts_with("crates/bench/")
}

fn in_hot_path(path: &str) -> bool {
    HOT_PATH.contains(&path) || HOT_PATH_PREFIXES.iter().any(|p| path.starts_with(p))
}

/// Substring search requiring identifier boundaries wherever the token
/// itself starts/ends with an identifier character.
pub(crate) fn has_token(line: &str, token: &str) -> bool {
    let bytes = line.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let head_ident = token.bytes().next().is_some_and(is_ident);
    let tail_ident = token.bytes().last().is_some_and(is_ident);
    let mut from = 0usize;
    while let Some(pos) = line[from..].find(token) {
        let at = from + pos;
        let end = at + token.len();
        let left_ok = !head_ident || at == 0 || !is_ident(bytes[at - 1]);
        let right_ok = !tail_ident || end >= bytes.len() || !is_ident(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Run the full engine (line-local *and* graph rules) over one file.
/// `path` must be repo-relative with forward slashes; `source` is the
/// file's text. Single-file convenience wrapper over
/// [`crate::lint_sources`].
pub fn lint_file(path: &str, source: &str) -> Vec<Violation> {
    crate::lint_sources(&[(path.to_string(), source.to_string())])
}

/// Run the line-local rule collectors over one scanned file.
pub(crate) fn collect_local(path: &str, src: &CleanSource, out: &mut Vec<Violation>) {
    collect_nan_ord(path, src, out);
    collect_nondet(path, src, out);
    collect_panic_boundary(path, src, out);
    collect_cache_purity(path, src, out);
}

/// Apply one file's justification tags to its raw findings: a
/// well-formed allow suppresses every finding of its rule on its target
/// line, and must suppress at least one to be considered used.
/// Malformed tags (`bad-tag`) and stale tags (`unused-allow`) are
/// appended as violations of their own.
pub(crate) fn apply_allows(
    path: &str,
    src: &CleanSource,
    raw: Vec<Violation>,
    out: &mut Vec<Violation>,
) {
    let mut used = vec![false; src.allows.len()];
    for v in raw {
        let mut suppressed = false;
        for (i, allow) in src.allows.iter().enumerate() {
            if allow.rule == v.rule && allow.target == v.line {
                used[i] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(v);
        }
    }
    for bad in &src.bad_tags {
        out.push(Violation {
            rule: "bad-tag",
            path: path.to_string(),
            line: bad.line,
            message: bad.message.clone(),
            excerpt: excerpt(src, bad.line),
            chain: Vec::new(),
        });
    }
    for (allow, used) in src.allows.iter().zip(&used) {
        if !used {
            out.push(Violation {
                rule: "unused-allow",
                path: path.to_string(),
                line: allow.line,
                message: format!(
                    "lint:allow({}) suppresses nothing on line {} — remove the stale tag",
                    allow.rule, allow.target
                ),
                excerpt: excerpt(src, allow.line),
                chain: Vec::new(),
            });
        }
    }
}

fn excerpt(src: &CleanSource, line: usize) -> String {
    src.lines.get(line - 1).map(|l| l.trim().to_string()).unwrap_or_default()
}

fn push(
    out: &mut Vec<Violation>,
    src: &CleanSource,
    path: &str,
    rule: &'static str,
    line: usize,
    message: String,
) {
    out.push(Violation {
        rule,
        path: path.to_string(),
        line,
        message,
        excerpt: excerpt(src, line),
        chain: Vec::new(),
    });
}

/// Lines to scan for `rule`: cleaned, with test code skipped.
fn code_lines(src: &CleanSource) -> impl Iterator<Item = (usize, &str)> {
    src.lines
        .iter()
        .enumerate()
        .filter(|(i, _)| !src.is_test.get(*i).copied().unwrap_or(false))
        .map(|(i, l)| (i + 1, l.as_str()))
}

fn collect_nan_ord(path: &str, src: &CleanSource, out: &mut Vec<Violation>) {
    if path == "crates/core/src/order.rs" {
        return;
    }
    for (line, text) in code_lines(src) {
        if has_token(text, "partial_cmp") {
            push(
                out,
                src,
                path,
                "nan-ord",
                line,
                "`partial_cmp` outside core::order — use order::nan_smallest / \
                 order::nan_largest (total, NaN-deterministic) or f64::total_cmp"
                    .to_string(),
            );
        }
    }
}

fn collect_nondet(path: &str, src: &CleanSource, out: &mut Vec<Violation>) {
    let time_exempt = path == "crates/core/src/budget.rs" || is_bench(path);
    let det_critical = DET_CRITICAL.contains(&path);
    for (line, text) in code_lines(src) {
        if !time_exempt {
            for token in TIME_TOKENS {
                if has_token(text, token) {
                    push(
                        out,
                        src,
                        path,
                        "nondet",
                        line,
                        format!(
                            "wall-clock read `{token}` outside core::budget and the bench \
                             harness — results must not depend on when they run"
                        ),
                    );
                }
            }
        }
        for token in UNSEEDED_RNG_TOKENS {
            if has_token(text, token) {
                push(
                    out,
                    src,
                    path,
                    "nondet",
                    line,
                    format!("unseeded RNG `{token}` — every RNG must derive from an explicit seed"),
                );
            }
        }
        // `use` lines don't iterate anything; the rule fires where the
        // container is actually named in code.
        if det_critical && !text.trim_start().starts_with("use ") {
            for token in ["HashMap", "HashSet"] {
                if has_token(text, token) {
                    push(
                        out,
                        src,
                        path,
                        "nondet",
                        line,
                        format!(
                            "`{token}` in a determinism-critical module — iteration order is \
                             nondeterministic; use BTreeMap/BTreeSet, or justify that the \
                             container is never iterated"
                        ),
                    );
                }
            }
        }
    }
}

fn collect_panic_boundary(path: &str, src: &CleanSource, out: &mut Vec<Violation>) {
    if !in_hot_path(path) {
        return;
    }
    for (line, text) in code_lines(src) {
        for token in PANIC_TOKENS {
            if has_token(text, token) {
                push(
                    out,
                    src,
                    path,
                    "panic-boundary",
                    line,
                    format!(
                        "`{token}` in the evaluation hot path — return an EvalError or use a \
                         total fallback (unwrap_or / map_or); a panic here burns the trial"
                    ),
                );
            }
        }
    }
}

fn collect_cache_purity(path: &str, src: &CleanSource, out: &mut Vec<Violation>) {
    let spans: Vec<(usize, usize)> = CACHE_PURITY_SPANS
        .iter()
        .filter(|(p, _)| *p == path)
        .flat_map(|(_, needle)| named_spans(src, needle))
        .collect();
    if spans.is_empty() {
        return;
    }
    for (line, text) in code_lines(src) {
        if !spans.iter().any(|&(s, e)| line >= s && line <= e) {
            continue;
        }
        for token in CACHE_IMPURE_TOKENS {
            if has_token(text, token) {
                push(
                    out,
                    src,
                    path,
                    "cache-purity",
                    line,
                    format!(
                        "`{token}` inside cache-identity code — fingerprints must be pure \
                         functions of the pipeline, fraction, and evaluator config"
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_boundaries_respected() {
        assert!(has_token("a.partial_cmp(b)", "partial_cmp"));
        assert!(!has_token("my_partial_cmp2(b)", "partial_cmp"));
        assert!(has_token("x.unwrap()", ".unwrap()"));
        assert!(!has_token("x.unwrap_or(0)", ".unwrap()"));
        assert!(has_token("HashMap::new()", "HashMap"));
        assert!(!has_token("MyHashMapLike::new()", "HashMap"));
    }
}
