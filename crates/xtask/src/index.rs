//! Workspace item indexer: every `fn` in every scanned file, with its
//! body span, enclosing `impl`/`trait` owner, and lookup tables.
//!
//! Module map (the graph engine's first layer — see ARCHITECTURE.md):
//!
//! - [`FnItem`] — one function: name, owner, file, signature line, body
//!   byte/line span, test-ness, and whether it returns a lock guard.
//! - [`FileView`] — one scanned file: cleaned text, line-start offsets,
//!   and the `impl`/`trait` owner spans recovered by brace matching.
//! - [`Index`] — the workspace: all items plus `by_name` /
//!   `by_owner` resolution tables consumed by [`crate::graph`].
//!
//! Parsing is the same philosophy as [`crate::scanner`]: not a parser.
//! Items are found by scanning the *cleaned* text (comments and string
//! interiors already blanked) for `fn` / `impl` / `trait` tokens at
//! identifier boundaries and brace-matching the blocks that follow.
//! That recovers names, owners, and spans exactly for idiomatic code;
//! soundness caveats live with the resolver in [`crate::graph`].

use crate::scanner::{matching_brace, CleanSource};
use std::collections::BTreeMap;

/// One function item.
#[derive(Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl Type` / `impl Trait for Type` / `trait Type`
    /// block's type name, if any.
    pub owner: Option<String>,
    /// Index into [`Index::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub sig_line: usize,
    /// Byte offset (cleaned text) of the body's `{`.
    pub body_open: usize,
    /// Byte offset (cleaned text) of the body's `}`.
    pub body_close: usize,
    /// True when the item sits inside `#[cfg(test)]` / `#[test]` code.
    pub is_test: bool,
    /// True when the declared return type mentions a lock `Guard`.
    pub returns_guard: bool,
}

/// Per-file view shared by the indexer and the call-graph builder.
pub struct FileView {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// File-stem module name (`crates/core/src/remote.rs` → `remote`).
    pub stem: String,
    /// Cleaned text (lines rejoined with `\n`).
    pub cleaned: String,
    /// Byte offset of the start of each 0-based line.
    pub line_starts: Vec<usize>,
    /// Per 0-based line: inside test code.
    pub is_test: Vec<bool>,
}

impl FileView {
    /// 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }
}

/// The workspace item index.
pub struct Index {
    /// One view per scanned file, same order as the input.
    pub files: Vec<FileView>,
    /// Every function item, all files.
    pub fns: Vec<FnItem>,
    /// fn name → item ids (all files, tests included).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// (owner type name, fn name) → item ids.
    pub by_owner: BTreeMap<(String, String), Vec<usize>>,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Occurrences of keyword `kw` at identifier boundaries in `text`.
fn keyword_sites(text: &str, kw: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = text[from..].find(kw) {
        let at = from + pos;
        from = at + 1;
        let left_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + kw.len();
        let right_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            out.push(at);
        }
    }
    out
}

/// Read the identifier starting at `at` (skipping a leading `r#`).
fn ident_at(bytes: &[u8], mut at: usize) -> Option<(String, usize)> {
    if bytes.get(at) == Some(&b'r') && bytes.get(at + 1) == Some(&b'#') {
        at += 2;
    }
    let start = at;
    while at < bytes.len() && is_ident_byte(bytes[at]) {
        at += 1;
    }
    if at == start || bytes[start].is_ascii_digit() {
        None
    } else {
        Some((String::from_utf8_lossy(&bytes[start..at]).into_owned(), at))
    }
}

fn skip_ws(bytes: &[u8], mut at: usize) -> usize {
    while at < bytes.len() && bytes[at].is_ascii_whitespace() {
        at += 1;
    }
    at
}

/// `impl`/`trait` block owner spans: (type name, block start, block end).
fn owner_spans(cleaned: &str) -> Vec<(String, usize, usize)> {
    let bytes = cleaned.as_bytes();
    let mut spans = Vec::new();
    for kw in ["impl", "trait"] {
        for at in keyword_sites(cleaned, kw) {
            // Header text runs to the block `{` (or a `;`, which means
            // no block: e.g. `impl Trait for T;` never occurs, but a
            // blanked macro could produce one).
            let mut j = at + kw.len();
            while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' {
                j += 1;
            }
            if j >= bytes.len() || bytes[j] == b';' {
                continue;
            }
            let Some(end) = matching_brace(bytes, j) else { continue };
            let header = &cleaned[at + kw.len()..j];
            let Some(name) = owner_name(kw, header) else { continue };
            spans.push((name, at, end));
        }
    }
    spans
}

/// Extract the owning type name from an `impl`/`trait` header:
/// `impl<T> Foo<T>` → `Foo`, `impl Evaluate for Bar<B>` → `Bar`,
/// `trait Evaluate: Send` → `Evaluate`.
fn owner_name(kw: &str, header: &str) -> Option<String> {
    let mut rest = header.trim();
    // Strip a leading generics list.
    if rest.starts_with('<') {
        let mut depth = 0usize;
        let mut cut = rest.len();
        for (i, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = rest[cut..].trim_start();
    }
    // `impl Trait for Type` names the implementing type.
    if kw == "impl" {
        if let Some(pos) = rest.find(" for ") {
            rest = rest[pos + " for ".len()..].trim_start();
        }
    }
    // Skip reference/pointer/dyn noise, then take the *last* path
    // segment's head identifier (`crate::remote::RemoteEvaluator<B>` →
    // `RemoteEvaluator`).
    let rest = rest.trim_start_matches(['&', '*']).trim_start();
    let rest = rest.strip_prefix("dyn ").unwrap_or(rest).trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let head_len = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(rest.len());
    let path = &rest[..head_len];
    let name = path.rsplit("::").next().unwrap_or(path);
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(name.to_string())
    }
}

impl Index {
    /// Build the index over scanned sources (path, scan result).
    pub fn build(scanned: &[(String, CleanSource)]) -> Index {
        let mut files = Vec::with_capacity(scanned.len());
        let mut fns: Vec<FnItem> = Vec::new();
        for (fi, (path, src)) in scanned.iter().enumerate() {
            let cleaned = src.lines.join("\n");
            let mut line_starts = vec![0usize];
            for (off, b) in cleaned.bytes().enumerate() {
                if b == b'\n' {
                    line_starts.push(off + 1);
                }
            }
            let stem = path
                .rsplit('/')
                .next()
                .unwrap_or(path)
                .trim_end_matches(".rs")
                .to_string();
            let owners = owner_spans(&cleaned);
            let bytes = cleaned.as_bytes();
            for at in keyword_sites(&cleaned, "fn") {
                let after = skip_ws(bytes, at + 2);
                let Some((name, name_end)) = ident_at(bytes, after) else {
                    continue; // `fn(..)` pointer type
                };
                // Signature runs to the body `{` or a `;` (declaration).
                let mut j = name_end;
                let mut angle = 0usize;
                while j < bytes.len() {
                    match bytes[j] {
                        b'<' => angle += 1,
                        b'>' => angle = angle.saturating_sub(1),
                        b'{' if angle == 0 => break,
                        b';' if angle == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if j >= bytes.len() || bytes[j] == b';' {
                    continue; // trait method declaration: no body to analyze
                }
                let Some(body_close) = matching_brace(bytes, j) else { continue };
                let sig = &cleaned[name_end..j];
                let returns_guard = sig.contains("Guard");
                let sig_line = {
                    let mut n = 1;
                    for &b in &bytes[..at] {
                        if b == b'\n' {
                            n += 1;
                        }
                    }
                    n
                };
                // Innermost owner block containing this fn.
                let owner = owners
                    .iter()
                    .filter(|(_, s, e)| *s <= at && at <= *e)
                    .min_by_key(|(_, s, e)| e - s)
                    .map(|(n, _, _)| n.clone());
                let is_test = src.is_test.get(sig_line - 1).copied().unwrap_or(false);
                fns.push(FnItem {
                    name,
                    owner,
                    file: fi,
                    sig_line,
                    body_open: j,
                    body_close,
                    is_test,
                    returns_guard,
                });
            }
            files.push(FileView {
                path: path.clone(),
                stem,
                cleaned,
                line_starts,
                is_test: src.is_test.clone(),
            });
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_owner: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(id);
            if let Some(owner) = &f.owner {
                by_owner.entry((owner.clone(), f.name.clone())).or_default().push(id);
            }
        }
        Index { files, fns, by_name, by_owner }
    }

    /// The innermost non-excluded fn whose body contains byte `offset`
    /// of file `file`.
    pub fn fn_at(&self, file: usize, offset: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.file == file && f.body_open < offset && offset < f.body_close
            })
            .min_by_key(|(_, f)| f.body_close - f.body_open)
            .map(|(id, _)| id)
    }

    /// Display label for chain traces: `name (path:line)`.
    pub fn label(&self, id: usize) -> String {
        let f = &self.fns[id];
        format!("{} ({}:{})", f.name, self.files[f.file].path, f.sig_line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn build(path: &str, src: &str) -> Index {
        Index::build(&[(path.to_string(), scan(src))])
    }

    #[test]
    fn indexes_free_impl_and_trait_fns() {
        let src = "\
pub fn free() {}
struct Foo;
impl Foo {
    fn method(&self) {}
}
impl Clone for Foo {
    fn clone(&self) -> Foo { Foo }
}
trait Eval {
    fn go(&self) { self.run() }
    fn run(&self);
}
";
        let ix = build("crates/core/src/x.rs", src);
        let names: Vec<(&str, Option<&str>)> =
            ix.fns.iter().map(|f| (f.name.as_str(), f.owner.as_deref())).collect();
        assert_eq!(
            names,
            vec![
                ("free", None),
                ("method", Some("Foo")),
                ("clone", Some("Foo")),
                ("go", Some("Eval")),
            ],
            "trait method declarations without bodies are skipped"
        );
    }

    #[test]
    fn generic_impls_resolve_owner() {
        let src = "\
impl<'a, B: Backend> RemoteEvaluator<'a, B> {
    fn shard(&self) {}
}
impl<T> std::fmt::Display for Wrapper<T> {
    fn fmt(&self) {}
}
";
        let ix = build("crates/core/src/x.rs", src);
        assert_eq!(ix.fns[0].owner.as_deref(), Some("RemoteEvaluator"));
        assert_eq!(ix.fns[1].owner.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn guard_returns_and_test_flags() {
        let src = "\
struct S;
impl S {
    fn lock(&self) -> std::sync::MutexGuard<'_, u8> { self.m.lock().unwrap() }
}
#[cfg(test)]
mod tests {
    fn helper() {}
}
";
        let ix = build("crates/core/src/x.rs", src);
        assert!(ix.fns[0].returns_guard);
        assert!(!ix.fns[0].is_test);
        assert!(ix.fns[1].is_test);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn real(cb: fn(u8) -> u8) -> u8 { cb(1) }\n";
        let ix = build("crates/core/src/x.rs", src);
        assert_eq!(ix.fns.len(), 1);
        assert_eq!(ix.fns[0].name, "real");
    }
}
