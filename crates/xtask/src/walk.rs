//! Workspace file discovery: `crates/*/src/**/*.rs`, the root crate's
//! `src/**/*.rs`, and the integration suites in `tests/*.rs`. Paths are
//! returned repo-relative with forward slashes, sorted, so reports and
//! baselines are stable across machines.

use std::fs;
use std::path::{Path, PathBuf};

/// Collect every lintable source file under `root`.
pub fn lintable_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    let tests = root.join("tests");
    if tests.is_dir() {
        for entry in fs::read_dir(&tests)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .map(|f| f.strip_prefix(root).map(Path::to_path_buf).unwrap_or(f))
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Repo-relative display form with forward slashes.
pub fn display_path(path: &Path) -> String {
    path.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
