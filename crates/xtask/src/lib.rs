//! `xtask` — in-repo static analysis for the Auto-FP workspace.
//!
//! Run as `cargo run -p xtask -- lint` (see `main.rs` for the CLI).
//! The library surface exists so the fixture suites in `tests/` can
//! drive the engine on synthetic sources.
//!
//! Why an in-repo tool instead of clippy: the rules encode *this*
//! repository's invariants — where wall-clock reads are allowed, which
//! modules form the panic-shielded evaluation hot path, what counts as
//! cache-identity code, which entry points must never transitively
//! reach a panic. Clippy has no vocabulary for any of that, and the
//! offline build environment rules out external lint frameworks
//! (dylint, custom rustc drivers).
//!
//! Pipeline (each stage a module):
//!
//! 1. [`scanner`] — blank comments/strings, extract `lint:allow` tags
//!    and test spans (per file);
//! 2. [`rules`] — line-local rule families (nan-ord, nondet,
//!    panic-boundary, cache-purity);
//! 3. [`index`] — workspace item index: every `fn` with its body span
//!    and `impl`/`trait` owner;
//! 4. [`graph`] — call-graph via name-resolution-lite, plus lock
//!    acquisition events;
//! 5. [`graphrules`] — cross-file families (panic-reach, nondet-flow,
//!    lock-order) whose findings carry full call-chain traces;
//! 6. [`baseline`] — checked-in suppression for incremental adoption.

pub mod baseline;
pub mod graph;
pub mod graphrules;
pub mod index;
pub mod rules;
pub mod scanner;
pub mod walk;

use baseline::Baseline;
use rules::Violation;
use scanner::CleanSource;
use std::path::Path;

/// Outcome of linting a whole workspace.
#[derive(Debug)]
pub struct LintReport {
    /// Findings not covered by the baseline (failures).
    pub fresh: Vec<Violation>,
    /// Findings suppressed by the baseline.
    pub baselined: Vec<Violation>,
    /// Number of files scanned.
    pub files: usize,
}

/// Run the full engine — line-local rules, then the cross-file graph
/// rules over the item index and call graph — on a set of sources
/// (repo-relative path, file text). This is the whole pipeline as a
/// pure function, which is what the fixture suites drive directly.
pub fn lint_sources(sources: &[(String, String)]) -> Vec<Violation> {
    let scanned: Vec<(String, CleanSource)> =
        sources.iter().map(|(p, s)| (p.clone(), scanner::scan(s))).collect();

    let mut raw: Vec<Violation> = Vec::new();
    for (path, src) in &scanned {
        rules::collect_local(path, src, &mut raw);
    }

    let ix = index::Index::build(&scanned);
    let g = graph::Graph::build(&ix);
    graphrules::panic_reach(&ix, &g, &mut raw);
    graphrules::nondet_flow(&ix, &g, &mut raw);
    graphrules::lock_order(&ix, &g, &mut raw);

    // Justification tags are line-local, so apply them per file.
    // Graph rules only attribute findings to scanned files, so every
    // path groups back to its own scan.
    let mut by_path: std::collections::BTreeMap<String, Vec<Violation>> = Default::default();
    for v in raw {
        by_path.entry(v.path.clone()).or_default().push(v);
    }
    let mut out: Vec<Violation> = Vec::new();
    for (path, src) in &scanned {
        let mine = by_path.remove(path).unwrap_or_default();
        rules::apply_allows(path, src, mine, &mut out);
    }
    out.sort_by(|a, b| {
        a.path.cmp(&b.path).then_with(|| a.line.cmp(&b.line)).then_with(|| a.rule.cmp(b.rule))
    });
    out
}

/// Lint every workspace source file under `root`. `baseline` is the
/// parsed baseline to subtract; pass an empty one for `--strict`.
pub fn lint_workspace(root: &Path, baseline: &Baseline) -> std::io::Result<LintReport> {
    let files = walk::lintable_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        let source = std::fs::read_to_string(root.join(rel))?;
        sources.push((walk::display_path(rel), source));
    }
    let all = lint_sources(&sources);
    let (fresh, baselined) = baseline.partition(all);
    Ok(LintReport { fresh, baselined, files: files.len() })
}
