//! `xtask` — in-repo static analysis for the Auto-FP workspace.
//!
//! Run as `cargo run -p xtask -- lint` (see `main.rs` for the CLI).
//! The library surface exists so the fixture suite in `tests/` can
//! drive the rule engine on synthetic sources.
//!
//! Why an in-repo tool instead of clippy: the rules encode *this*
//! repository's invariants — where wall-clock reads are allowed, which
//! modules form the panic-shielded evaluation hot path, what counts as
//! cache-identity code. Clippy has no vocabulary for any of that, and
//! the offline build environment rules out external lint frameworks
//! (dylint, custom rustc drivers). The scanner underneath is a ~300
//! line lexer that blanks comments and string literals; that is enough
//! for token-level rules to be exact, with `lint:allow` tags as the
//! escape hatch for the (audited, justified) exceptions.

pub mod baseline;
pub mod rules;
pub mod scanner;
pub mod walk;

use baseline::Baseline;
use rules::Violation;
use std::path::Path;

/// Outcome of linting a whole workspace.
#[derive(Debug)]
pub struct LintReport {
    /// Findings not covered by the baseline (failures).
    pub fresh: Vec<Violation>,
    /// Findings suppressed by the baseline.
    pub baselined: Vec<Violation>,
    /// Number of files scanned.
    pub files: usize,
}

/// Lint every workspace source file under `root`. `baseline` is the
/// parsed baseline to subtract; pass an empty one for `--strict`.
pub fn lint_workspace(root: &Path, baseline: &Baseline) -> std::io::Result<LintReport> {
    let files = walk::lintable_files(root)?;
    let mut all = Vec::new();
    for rel in &files {
        let source = std::fs::read_to_string(root.join(rel))?;
        all.extend(rules::lint_file(&walk::display_path(rel), &source));
    }
    let (fresh, baselined) = baseline.partition(all);
    Ok(LintReport { fresh, baselined, files: files.len() })
}
