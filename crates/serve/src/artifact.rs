//! The self-describing serve artifact: `fit once, serve many`.
//!
//! An artifact file freezes everything needed to reproduce the
//! in-search evaluation of one (pipeline, model) winner on new rows:
//! the dataset/search provenance, the fitted preprocessing parameters,
//! and the trained model weights. The layout follows the trial-store
//! idiom (`core::repo`): an 8-byte magic, then length-prefixed
//! FNV-1a-checksummed records —
//!
//! ```text
//! [AFPSERV1][u32 len][meta][u64 fnv1a][u32 len][pipeline][u64 fnv1a]
//!           [u32 len][model][u64 fnv1a]
//! ```
//!
//! Unlike a trial-store segment (an append-only log that tolerates a
//! torn tail), an artifact is written whole: exactly three records in
//! fixed order, and *any* deviation — truncation, checksum mismatch,
//! trailing bytes — is a hard [`ArtifactError::Corrupt`]. Decoding is
//! total (arbitrary bytes never panic) and canonical (decode → encode
//! reproduces the input byte-for-byte).

use autofp_core::fnv1a;
use autofp_models::{ModelKind, TrainedModel};
use autofp_preprocess::artifact as preproc_codec;
use autofp_preprocess::FittedPipeline;
use std::fmt;
use std::path::Path;

/// Artifact file magic (format version 1).
pub const MAGIC: [u8; 8] = *b"AFPSERV1";

/// Hard cap on a single artifact record (matches the wire frame cap).
pub const MAX_RECORD: u32 = 16 * 1024 * 1024;

const REC_META: u8 = 0;
const REC_PIPELINE: u8 = 1;
const REC_MODEL: u8 = 2;

/// An artifact failed to load or decode.
#[derive(Debug)]
pub enum ArtifactError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The bytes are not a valid artifact.
    Corrupt {
        /// What was wrong, for the operator.
        detail: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O error: {e}"),
            ArtifactError::Corrupt { detail } => write!(f, "corrupt artifact: {detail}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> ArtifactError {
        ArtifactError::Io(e)
    }
}

fn corrupt(detail: impl Into<String>) -> ArtifactError {
    ArtifactError::Corrupt { detail: detail.into() }
}

/// Provenance and shape metadata pinned into every artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactMeta {
    /// Dataset the pipeline+model were fitted on.
    pub dataset: String,
    /// Human-readable pipeline description (`Pipeline::key` form).
    pub pipeline_key: String,
    /// Downstream model family.
    pub model: ModelKind,
    /// Seed the split/subsample/trainer all derived from.
    pub seed: u64,
    /// Train fraction of the stratified split.
    pub train_fraction: f64,
    /// Training-row cap applied before fitting (0 = uncapped).
    pub train_subsample: u64,
    /// Feature arity every served row must match.
    pub n_features: u64,
    /// Number of classes the model predicts over.
    pub n_classes: u64,
    /// Rows the model was trained on (after split + subsample).
    pub train_rows: u64,
    /// Validation accuracy at export time (the in-search number).
    pub accuracy: f64,
}

/// A loaded (or freshly fitted) serve artifact.
pub struct ServeArtifact {
    /// Provenance + shape metadata.
    pub meta: ArtifactMeta,
    /// The fitted preprocessing chain.
    pub pipeline: FittedPipeline,
    /// The trained model.
    pub model: TrainedModel,
}

fn model_code(kind: ModelKind) -> u8 {
    match kind {
        ModelKind::Lr => 0,
        ModelKind::Xgb => 1,
        ModelKind::Mlp => 2,
    }
}

fn model_from_code(c: u8) -> Result<ModelKind, ArtifactError> {
    match c {
        0 => Ok(ModelKind::Lr),
        1 => Ok(ModelKind::Xgb),
        2 => Ok(ModelKind::Mlp),
        _ => Err(corrupt(format!("invalid model code {c}"))),
    }
}

fn enc_string(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn encode_meta(meta: &ArtifactMeta) -> Vec<u8> {
    let mut b = vec![REC_META];
    enc_string(&mut b, &meta.dataset);
    enc_string(&mut b, &meta.pipeline_key);
    b.push(model_code(meta.model));
    b.extend_from_slice(&meta.seed.to_le_bytes());
    b.extend_from_slice(&meta.train_fraction.to_bits().to_le_bytes());
    b.extend_from_slice(&meta.train_subsample.to_le_bytes());
    b.extend_from_slice(&meta.n_features.to_le_bytes());
    b.extend_from_slice(&meta.n_classes.to_le_bytes());
    b.extend_from_slice(&meta.train_rows.to_le_bytes());
    b.extend_from_slice(&meta.accuracy.to_bits().to_le_bytes());
    b
}

struct MetaDec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> MetaDec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        let end = self.pos.checked_add(n).ok_or_else(|| corrupt("meta length overflow"))?;
        if end > self.buf.len() {
            return Err(corrupt("truncated meta record"));
        }
        // lint:allow(panic-reach): checked_add + `end <= buf.len()` above make the range provably in bounds
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64, ArtifactError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, ArtifactError> {
        let b = self.take(4)?;
        // lint:allow(panic-reach): take(4) returned exactly four bytes
        let n = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| corrupt("meta string is not UTF-8"))
    }
}

fn decode_meta(payload: &[u8]) -> Result<ArtifactMeta, ArtifactError> {
    let mut d = MetaDec { buf: payload, pos: 0 };
    if d.u8()? != REC_META {
        return Err(corrupt("first record is not the meta record"));
    }
    let meta = ArtifactMeta {
        dataset: d.string()?,
        pipeline_key: d.string()?,
        model: model_from_code(d.u8()?)?,
        seed: d.u64()?,
        train_fraction: d.f64()?,
        train_subsample: d.u64()?,
        n_features: d.u64()?,
        n_classes: d.u64()?,
        train_rows: d.u64()?,
        accuracy: d.f64()?,
    };
    if d.pos != d.buf.len() {
        return Err(corrupt("trailing bytes in meta record"));
    }
    Ok(meta)
}

/// Frame a record payload: `[u32 LE len][payload][u64 LE fnv1a]`.
fn frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
}

/// Unframe the record at `pos`; advances `pos` past it.
fn unframe<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a [u8], ArtifactError> {
    let remaining = bytes.len() - *pos;
    if remaining < 4 {
        return Err(corrupt("truncated record length"));
    }
    let mut len_buf = [0u8; 4];
    // lint:allow(panic-reach): `remaining >= 4` above bounds the range
    len_buf.copy_from_slice(&bytes[*pos..*pos + 4]);
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_RECORD || (len as usize) > remaining.saturating_sub(4 + 8) {
        return Err(corrupt("record length exceeds file"));
    }
    let start = *pos + 4;
    let end = start + len as usize;
    // lint:allow(panic-reach): len was bounds-checked against `remaining` above
    let payload = &bytes[start..end];
    let mut sum_buf = [0u8; 8];
    // lint:allow(panic-reach): len + 8 checksum bytes fit in `remaining` by the check above
    sum_buf.copy_from_slice(&bytes[end..end + 8]);
    if u64::from_le_bytes(sum_buf) != fnv1a(payload) {
        return Err(corrupt("record checksum mismatch"));
    }
    *pos = end + 8;
    Ok(payload)
}

impl ServeArtifact {
    /// Serialize to the canonical artifact bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        frame(&mut out, &encode_meta(&self.meta));
        let mut pipeline = vec![REC_PIPELINE];
        pipeline.extend_from_slice(&preproc_codec::encode_pipeline(&self.pipeline));
        frame(&mut out, &pipeline);
        let mut model = vec![REC_MODEL];
        model.extend_from_slice(&self.model.encode());
        frame(&mut out, &model);
        out
    }

    /// Decode artifact bytes. Total and strict: exactly three
    /// checksummed records in fixed order, no trailing bytes, and the
    /// cross-record invariants (model family and class count match the
    /// meta) must hold.
    pub fn decode(bytes: &[u8]) -> Result<ServeArtifact, ArtifactError> {
        // lint:allow(panic-reach): the `len < MAGIC.len()` guard short-circuits before the slice
        if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
            return Err(corrupt("bad magic (not a serve artifact)"));
        }
        let mut pos = MAGIC.len();
        let meta = decode_meta(unframe(bytes, &mut pos)?)?;
        let pipeline_rec = unframe(bytes, &mut pos)?;
        if pipeline_rec.first() != Some(&REC_PIPELINE) {
            return Err(corrupt("second record is not the pipeline record"));
        }
        // lint:allow(panic-reach): `first() == Some(..)` above proves the record is non-empty
        let pipeline = preproc_codec::decode_pipeline(&pipeline_rec[1..])
            .map_err(|e| corrupt(e.detail))?;
        let model_rec = unframe(bytes, &mut pos)?;
        if model_rec.first() != Some(&REC_MODEL) {
            return Err(corrupt("third record is not the model record"));
        }
        // lint:allow(panic-reach): `first() == Some(..)` above proves the record is non-empty
        let model = TrainedModel::decode(&model_rec[1..]).map_err(|e| corrupt(e.detail))?;
        if pos != bytes.len() {
            return Err(corrupt(format!("{} trailing bytes", bytes.len() - pos)));
        }
        if model.kind() != meta.model {
            return Err(corrupt("model record family disagrees with meta"));
        }
        if model.n_classes() as u64 != meta.n_classes {
            return Err(corrupt("model class count disagrees with meta"));
        }
        Ok(ServeArtifact { meta, pipeline, model })
    }

    /// Write the artifact to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Read and decode an artifact file.
    pub fn load(path: impl AsRef<Path>) -> Result<ServeArtifact, ArtifactError> {
        let bytes = std::fs::read(path)?;
        ServeArtifact::decode(&bytes)
    }

    /// Feature arity every served row must match.
    pub fn n_features(&self) -> usize {
        self.meta.n_features as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_data::SynthConfig;
    use autofp_linalg::Matrix;
    use autofp_models::CancelToken;
    use autofp_preprocess::{Pipeline, PreprocKind};

    fn sample_artifact(kind: ModelKind) -> ServeArtifact {
        let d = SynthConfig::new("artifact-serve", 90, 4, 2, 5).generate();
        let pipeline = Pipeline::from_kinds(&[
            PreprocKind::StandardScaler,
            PreprocKind::QuantileTransformer,
        ]);
        let (fitted, train_x) = pipeline.fit_transform(&d.x);
        let model =
            TrainedModel::train(kind, 3, &train_x, &d.y, d.n_classes, 1.0, &CancelToken::new());
        ServeArtifact {
            meta: ArtifactMeta {
                dataset: "artifact-serve".into(),
                pipeline_key: pipeline.key(),
                model: kind,
                seed: 3,
                train_fraction: 0.8,
                train_subsample: 0,
                n_features: 4,
                n_classes: d.n_classes as u64,
                train_rows: d.x.nrows() as u64,
                accuracy: 0.875,
            },
            pipeline: fitted,
            model,
        }
    }

    #[test]
    fn round_trip_is_byte_stable_for_every_family() {
        for kind in ModelKind::ALL {
            let art = sample_artifact(kind);
            let bytes = art.encode();
            let back = ServeArtifact::decode(&bytes).expect("decode");
            assert_eq!(back.encode(), bytes, "{kind}");
            assert_eq!(back.meta, art.meta, "{kind}");
        }
    }

    #[test]
    fn save_load_round_trips() {
        let art = sample_artifact(ModelKind::Lr);
        let path = std::env::temp_dir()
            .join(format!("autofp-artifact-{}.bin", std::process::id()));
        art.save(&path).expect("save");
        let back = ServeArtifact::load(&path).expect("load");
        assert_eq!(back.encode(), art.encode());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn golden_header_bytes_are_locked() {
        // Magic + the meta record framing are a compatibility surface.
        let art = ServeArtifact {
            meta: ArtifactMeta {
                dataset: "d".into(),
                pipeline_key: "(identity)".into(),
                model: ModelKind::Lr,
                seed: 7,
                train_fraction: 0.8,
                train_subsample: 0,
                n_features: 1,
                n_classes: 2,
                train_rows: 4,
                accuracy: 0.5,
            },
            pipeline: Pipeline::empty().fit_transform(&Matrix::zeros(1, 1)).0,
            model: TrainedModel::train(
                ModelKind::Lr,
                7,
                &Matrix::from_vec(4, 1, vec![0.0, 1.0, 0.0, 1.0]),
                &[0, 1, 0, 1],
                2,
                1.0,
                &CancelToken::new(),
            ),
        };
        let bytes = art.encode();
        assert_eq!(&bytes[..8], b"AFPSERV1");
        // Meta payload, transcribed by hand.
        let mut meta = vec![0u8]; // REC_META
        meta.extend_from_slice(&1u32.to_le_bytes());
        meta.extend_from_slice(b"d");
        meta.extend_from_slice(&10u32.to_le_bytes());
        meta.extend_from_slice(b"(identity)");
        meta.push(0); // ModelKind::Lr
        meta.extend_from_slice(&7u64.to_le_bytes());
        meta.extend_from_slice(&0.8f64.to_bits().to_le_bytes());
        meta.extend_from_slice(&0u64.to_le_bytes());
        meta.extend_from_slice(&1u64.to_le_bytes());
        meta.extend_from_slice(&2u64.to_le_bytes());
        meta.extend_from_slice(&4u64.to_le_bytes());
        meta.extend_from_slice(&0.5f64.to_bits().to_le_bytes());
        let mut want = Vec::new();
        want.extend_from_slice(&(meta.len() as u32).to_le_bytes());
        want.extend_from_slice(&meta);
        want.extend_from_slice(&fnv1a(&meta).to_le_bytes());
        assert_eq!(&bytes[8..8 + want.len()], &want[..]);
    }

    #[test]
    fn every_truncation_errors() {
        let bytes = sample_artifact(ModelKind::Lr).encode();
        for len in 0..bytes.len() {
            assert!(
                ServeArtifact::decode(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(ServeArtifact::decode(&trailing).is_err());
    }

    #[test]
    fn byte_flips_never_panic() {
        // LR keeps the artifact small enough to fuzz every position.
        let bytes = sample_artifact(ModelKind::Lr).encode();
        for i in 0..bytes.len() {
            for v in [0u8, 1, 2, 127, 255] {
                let mut m = bytes.clone();
                if m[i] == v {
                    continue;
                }
                m[i] = v;
                let _ = ServeArtifact::decode(&m);
            }
        }
    }

    #[test]
    fn cross_record_disagreements_rejected() {
        // Meta says MLP but the model record holds an LR: corrupt.
        let mut art = sample_artifact(ModelKind::Lr);
        art.meta.model = ModelKind::Mlp;
        assert!(ServeArtifact::decode(&art.encode()).is_err());
        let mut art = sample_artifact(ModelKind::Lr);
        art.meta.n_classes = 99;
        assert!(ServeArtifact::decode(&art.encode()).is_err());
    }
}
