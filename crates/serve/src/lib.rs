//! Fit-once / serve-many inference for Auto-FP winners.
//!
//! A search finds a (pipeline, model) winner; this crate freezes that
//! winner into a self-describing artifact file and serves it:
//!
//! - [`artifact`]: the `AFPSERV1` on-disk format — fitted preprocessing
//!   parameters + trained model weights, length-prefixed and
//!   FNV-1a-checksummed, with total + canonical decoding.
//! - [`export`]: [`export::fit_artifact`] refits the winner exactly the
//!   way the in-search [`autofp_core::Evaluator`] does, so serving has
//!   zero train/serve skew (pinned bit-for-bit by the test suite).
//! - [`engine`]: batched row prediction with a malformed-row quarantine
//!   path (arity mismatch → `degenerate`, NaN/±inf → `non-finite`) and
//!   thread-count-invariant chunked parallelism.
//! - [`wire`] / [`server`] / [`client`]: a `Predict`/`PredictAck`
//!   protocol over the evald frame format, an accept loop with the
//!   worker daemon's shutdown/robustness semantics, and a blocking
//!   client for the CLI and tests.

#![warn(missing_docs)]

pub mod artifact;
pub mod client;
pub mod engine;
pub mod export;
pub mod server;
pub mod wire;

pub use artifact::{ArtifactError, ArtifactMeta, ServeArtifact};
pub use client::ServeClient;
pub use engine::{parse_feature_rows, BatchReport, EngineStats, RowOutcome, ServeEngine};
pub use export::fit_artifact;
pub use server::ServeServer;
pub use wire::{ServeInfo, ServeRequest, ServeResponse};
