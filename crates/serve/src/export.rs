//! The skew-free export fit: produce a [`ServeArtifact`] whose served
//! predictions are bit-identical to the in-search evaluation.
//!
//! [`fit_artifact`] replicates [`autofp_core::Evaluator`]'s fit path
//! *exactly*, in the same order: stratified split at
//! (`train_fraction`, `seed`), optional training-row subsample at the
//! same seed, `Pipeline::fit_transform` on the training features,
//! `FittedPipeline::transform_new` on the validation features, and a
//! model trained through the same concrete code the boxed
//! [`autofp_models::classifier::Trainer`] runs (see
//! [`TrainedModel::train`]). Any divergence here would be train/serve
//! skew — the integration suite pins the equivalence bit-for-bit.

use crate::artifact::{ArtifactMeta, ServeArtifact};
use autofp_core::{EvalConfig, EvalError};
use autofp_data::Dataset;
use autofp_models::metrics::accuracy;
use autofp_models::{CancelToken, Classifier, TrainedModel};
use autofp_preprocess::Pipeline;

/// Fit `pipeline` + the configured model on `dataset` the way the
/// evaluator would, and package the result as a serve artifact.
///
/// Returns the evaluator's failure taxonomy on the same conditions it
/// would fail: a degenerate (empty) train matrix, or a transform that
/// maps finite input to NaN/inf.
pub fn fit_artifact(
    dataset: &Dataset,
    pipeline: &Pipeline,
    config: &EvalConfig,
) -> Result<ServeArtifact, EvalError> {
    // Mirror of Evaluator::new + from_split: split, then subsample.
    let mut split = dataset.stratified_split(config.train_fraction, config.seed);
    if let Some(cap) = config.train_subsample {
        split.train = split.train.subsample(cap, config.seed);
    }
    let train_input_finite = split.train.x.as_slice().iter().all(|v| v.is_finite());

    // Mirror of Evaluator::evaluate_raw at full budget.
    let (fitted, train_x) = pipeline.fit_transform(&split.train.x);
    let valid_x = fitted.transform_new(&split.valid.x);
    if train_input_finite && !train_x.as_slice().iter().all(|v| v.is_finite()) {
        return Err(EvalError::NonFiniteTransform {
            detail: format!("train matrix after `{}`", pipeline.key()),
        });
    }
    let (n, d) = train_x.shape();
    if n == 0 || d == 0 {
        return Err(EvalError::DegenerateMatrix { detail: format!("train matrix is {n}x{d}") });
    }

    let model = TrainedModel::train(
        config.model,
        config.seed,
        &train_x,
        &split.train.y,
        split.train.n_classes,
        1.0,
        &CancelToken::new(),
    );
    let acc = accuracy(&split.valid.y, &model.predict(&valid_x));

    Ok(ServeArtifact {
        meta: ArtifactMeta {
            dataset: dataset.name.clone(),
            pipeline_key: pipeline.key(),
            model: config.model,
            seed: config.seed,
            train_fraction: config.train_fraction,
            train_subsample: config.train_subsample.unwrap_or(0) as u64,
            n_features: d as u64,
            n_classes: split.train.n_classes as u64,
            train_rows: n as u64,
            accuracy: acc,
        },
        pipeline: fitted,
        model,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_core::Evaluate;
    use autofp_data::SynthConfig;
    use autofp_models::ModelKind;
    use autofp_preprocess::PreprocKind;

    #[test]
    fn exported_accuracy_matches_the_evaluator() {
        let d = SynthConfig::new("export-ds", 240, 6, 3, 13).generate();
        let p = Pipeline::from_kinds(&[PreprocKind::StandardScaler, PreprocKind::MinMaxScaler]);
        for model in ModelKind::ALL {
            let config = EvalConfig { model, seed: 5, ..Default::default() };
            let art = fit_artifact(&d, &p, &config).expect("fit");
            let ev = autofp_core::Evaluator::new(&d, config);
            let trial = ev.evaluate(&p);
            assert_eq!(
                art.meta.accuracy.to_bits(),
                trial.accuracy.to_bits(),
                "{model}: export accuracy skewed from in-search accuracy"
            );
            assert_eq!(art.meta.train_rows as usize, ev.train_rows());
        }
    }

    #[test]
    fn degenerate_train_matrix_is_refused() {
        let d = Dataset::new(
            "export-empty",
            autofp_linalg::Matrix::zeros(10, 0),
            vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1],
            2,
        );
        let Err(err) = fit_artifact(&d, &Pipeline::empty(), &EvalConfig::default()) else {
            panic!("expected a degenerate-matrix failure");
        };
        assert!(matches!(err, EvalError::DegenerateMatrix { .. }), "{err:?}");
    }
}
