//! The batched prediction engine with a malformed-row quarantine path.
//!
//! Every row of a batch is validated before it touches the fitted
//! pipeline: a row whose arity disagrees with the artifact is rejected
//! as [`FailureKind::Degenerate`] (the shape failure of the `EvalError`
//! taxonomy), and a row containing NaN/±inf is rejected as
//! [`FailureKind::NonFinite`]. Rejected rows land in the outcome
//! stream as [`RowOutcome::Rejected`] with per-reason counters —
//! they never poison the clean rows around them, which are transformed
//! and predicted exactly as the in-search evaluator would.
//!
//! Because every fitted transform is row-independent (column transforms
//! use only frozen fit statistics; the normalizer uses only the row
//! itself), per-row transformation is bit-identical to whole-matrix
//! transformation, and the chunked [`pool_map`] parallel path is
//! bit-identical to the sequential one at any thread count.

use crate::artifact::ServeArtifact;
use autofp_core::{pool_map, FailureKind};
use autofp_linalg::Matrix;
use autofp_models::Classifier;
use std::sync::atomic::{AtomicU64, Ordering};

/// Rows per parallel work unit. Fixed (not derived from the thread
/// count) so the chunking — and therefore every per-row float op —
/// is identical at any parallelism.
const CHUNK_ROWS: usize = 256;

/// What the engine did with one input row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The row was clean; the predicted class index.
    Predicted(usize),
    /// The row was quarantined, with the taxonomy reason.
    Rejected(FailureKind),
}

/// Per-batch outcome: one entry per input row, in input order, plus
/// the quarantine tallies for this batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReport {
    /// Outcome per row, in input order.
    pub outcomes: Vec<RowOutcome>,
    /// Clean rows predicted.
    pub predicted: u64,
    /// Rows rejected for NaN/±inf values.
    pub rejected_non_finite: u64,
    /// Rows rejected for arity mismatch.
    pub rejected_arity: u64,
}

/// Cumulative serving counters (process lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Total rows received.
    pub rows: u64,
    /// Rows predicted.
    pub predicted: u64,
    /// Rows quarantined as non-finite.
    pub rejected_non_finite: u64,
    /// Rows quarantined for arity mismatch.
    pub rejected_arity: u64,
}

/// A loaded artifact plus lifetime counters: the serving hot path.
pub struct ServeEngine {
    artifact: ServeArtifact,
    rows: AtomicU64,
    predicted: AtomicU64,
    rejected_non_finite: AtomicU64,
    rejected_arity: AtomicU64,
}

impl ServeEngine {
    /// Wrap a loaded artifact.
    pub fn new(artifact: ServeArtifact) -> ServeEngine {
        ServeEngine {
            artifact,
            rows: AtomicU64::new(0),
            predicted: AtomicU64::new(0),
            rejected_non_finite: AtomicU64::new(0),
            rejected_arity: AtomicU64::new(0),
        }
    }

    /// The artifact being served.
    pub fn artifact(&self) -> &ServeArtifact {
        &self.artifact
    }

    /// Validate + transform + predict one chunk of rows.
    ///
    /// Clean rows are packed into a single matrix and transformed
    /// together: every fitted transform is row-independent, so the
    /// packed transform is bit-identical to transforming each row
    /// alone (or the whole validation matrix at once, which is what
    /// the train/serve skew test pins), while paying one allocation
    /// per chunk instead of one per row. Quarantined rows are excluded
    /// from the matrix for the same reason — their absence cannot
    /// change a clean row's floats.
    fn predict_chunk(&self, rows: &[Vec<f64>]) -> Vec<RowOutcome> {
        let d = self.artifact.n_features();
        let mut outcomes = Vec::with_capacity(rows.len());
        let mut clean = Vec::with_capacity(rows.len());
        let mut data = Vec::with_capacity(rows.len() * d);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != d {
                outcomes.push(RowOutcome::Rejected(FailureKind::Degenerate));
            } else if !row.iter().all(|v| v.is_finite()) {
                outcomes.push(RowOutcome::Rejected(FailureKind::NonFinite));
            } else {
                clean.push(i);
                data.extend_from_slice(row);
                outcomes.push(RowOutcome::Predicted(0)); // overwritten below
            }
        }
        if !clean.is_empty() {
            let mut m = Matrix::from_vec(clean.len(), d, data);
            self.artifact.pipeline.transform(&mut m);
            for (k, &i) in clean.iter().enumerate() {
                outcomes[i] = RowOutcome::Predicted(self.artifact.model.predict_row(m.row(k)));
            }
        }
        outcomes
    }

    /// Predict a batch. Outcomes are in input order and bit-identical
    /// at any `threads` value; the lifetime counters absorb the batch.
    pub fn predict_batch(&self, rows: &[Vec<f64>], threads: usize) -> BatchReport {
        let n_chunks = rows.len().div_ceil(CHUNK_ROWS);
        let chunked: Vec<Vec<RowOutcome>> = pool_map(threads.max(1), n_chunks, |c| {
            let lo = c * CHUNK_ROWS;
            let hi = (lo + CHUNK_ROWS).min(rows.len());
            self.predict_chunk(&rows[lo..hi])
        });
        let outcomes: Vec<RowOutcome> = chunked.into_iter().flatten().collect();
        let mut report = BatchReport {
            outcomes,
            predicted: 0,
            rejected_non_finite: 0,
            rejected_arity: 0,
        };
        for o in &report.outcomes {
            match o {
                RowOutcome::Predicted(_) => report.predicted += 1,
                RowOutcome::Rejected(FailureKind::NonFinite) => report.rejected_non_finite += 1,
                RowOutcome::Rejected(_) => report.rejected_arity += 1,
            }
        }
        self.rows.fetch_add(report.outcomes.len() as u64, Ordering::Relaxed);
        self.predicted.fetch_add(report.predicted, Ordering::Relaxed);
        self.rejected_non_finite.fetch_add(report.rejected_non_finite, Ordering::Relaxed);
        self.rejected_arity.fetch_add(report.rejected_arity, Ordering::Relaxed);
        report
    }

    /// Snapshot the lifetime counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            rows: self.rows.load(Ordering::Relaxed),
            predicted: self.predicted.load(Ordering::Relaxed),
            rejected_non_finite: self.rejected_non_finite.load(Ordering::Relaxed),
            rejected_arity: self.rejected_arity.load(Ordering::Relaxed),
        }
    }
}

/// Parse feature rows from CSV text for the predict path.
///
/// Deliberately forgiving where the training-data parser is strict:
/// an unparsable cell becomes NaN and a short/long row is kept as-is,
/// so malformed input flows into the engine's quarantine path (with
/// its taxonomy reason) instead of aborting the whole file.
pub fn parse_feature_rows(text: &str, has_header: bool) -> Vec<Vec<f64>> {
    text.lines()
        .skip(usize::from(has_header))
        .filter(|line| !line.trim().is_empty())
        .map(|line| {
            line.split(',')
                .map(|cell| cell.trim().parse::<f64>().unwrap_or(f64::NAN))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_rows_parse_forgivingly() {
        let rows = parse_feature_rows("a,b\n1,2\n3,oops\n\n4,5,6\n", true);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![1.0, 2.0]);
        assert!(rows[1][1].is_nan());
        assert_eq!(rows[2], vec![4.0, 5.0, 6.0]);
        let with_header = parse_feature_rows("7,8\n", false);
        assert_eq!(with_header, vec![vec![7.0, 8.0]]);
    }
}
