//! A thin blocking client for the serve endpoint (CLI + tests).

use crate::engine::{EngineStats, RowOutcome};
use crate::wire::{recv_response, send_request, ServeInfo, ServeRequest, ServeResponse};
use autofp_core::EvalError;
use std::net::{TcpStream, ToSocketAddrs};

fn transport(detail: impl Into<String>) -> EvalError {
    EvalError::Transport { detail: detail.into() }
}

/// One TCP connection to a serve daemon.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connect to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServeClient, EvalError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| transport(format!("connect failed: {e}")))?;
        let _ = stream.set_nodelay(true);
        Ok(ServeClient { stream })
    }

    fn call(&mut self, req: &ServeRequest) -> Result<ServeResponse, EvalError> {
        send_request(&mut self.stream, req)?;
        match recv_response(&mut self.stream)? {
            Some(ServeResponse::Error(err)) => Err(err),
            Some(resp) => Ok(resp),
            None => Err(transport("connection closed before response")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), EvalError> {
        match self.call(&ServeRequest::Ping)? {
            ServeResponse::Pong => Ok(()),
            other => Err(transport(format!("unexpected response {other:?}"))),
        }
    }

    /// Describe the artifact behind the endpoint.
    pub fn info(&mut self) -> Result<ServeInfo, EvalError> {
        match self.call(&ServeRequest::Info)? {
            ServeResponse::Info(info) => Ok(info),
            other => Err(transport(format!("unexpected response {other:?}"))),
        }
    }

    /// Predict a batch; outcomes come back in input order.
    pub fn predict(
        &mut self,
        rows: Vec<Vec<f64>>,
    ) -> Result<(Vec<RowOutcome>, EngineStats), EvalError> {
        match self.call(&ServeRequest::Predict { rows })? {
            ServeResponse::PredictAck { outcomes, stats } => Ok((outcomes, stats)),
            other => Err(transport(format!("unexpected response {other:?}"))),
        }
    }

    /// Snapshot the daemon's lifetime counters.
    pub fn stats(&mut self) -> Result<EngineStats, EvalError> {
        match self.call(&ServeRequest::Stats)? {
            ServeResponse::Stats(stats) => Ok(stats),
            other => Err(transport(format!("unexpected response {other:?}"))),
        }
    }

    /// Ask the daemon to stop accepting connections.
    pub fn shutdown(&mut self) -> Result<(), EvalError> {
        match self.call(&ServeRequest::Shutdown)? {
            ServeResponse::ShutdownAck => Ok(()),
            other => Err(transport(format!("unexpected response {other:?}"))),
        }
    }
}
