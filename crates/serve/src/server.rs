//! The inference daemon's TCP accept loop.
//!
//! Mirrors the evald worker loop: one thread per connection, frames in
//! / frames out, cooperative shutdown (a [`ServeRequest::Shutdown`]
//! frame flips the stop flag and pokes the listener awake with a
//! self-connection), and a malformed frame is answered with
//! [`ServeResponse::Error`] before the connection is dropped — a
//! hostile or torn client never takes the daemon down.

use crate::engine::ServeEngine;
use crate::wire::{
    decode_request, encode_response, read_frame, write_frame, ServeInfo, ServeRequest,
    ServeResponse,
};
use std::io;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A bound, not-yet-running inference server.
pub struct ServeServer {
    listener: TcpListener,
    engine: Arc<ServeEngine>,
    threads: usize,
    stop: Arc<AtomicBool>,
}

impl ServeServer {
    /// Bind to `addr` (use port 0 to let the OS pick a free port).
    /// `threads` is the per-batch prediction parallelism.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: Arc<ServeEngine>,
        threads: usize,
    ) -> io::Result<ServeServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(ServeServer {
            listener,
            engine,
            threads: threads.max(1),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The engine behind this server (counters stay visible to the
    /// caller while the server runs).
    pub fn engine(&self) -> Arc<ServeEngine> {
        Arc::clone(&self.engine)
    }

    /// Serve until shut down. Each connection gets its own detached
    /// thread; a `Shutdown` request stops the accept loop after
    /// answering.
    pub fn run(self) -> io::Result<()> {
        let local = self.listener.local_addr()?;
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                // A single torn accept is not fatal to the daemon.
                Err(_) => continue,
            };
            let engine = Arc::clone(&self.engine);
            let stop = Arc::clone(&self.stop);
            let threads = self.threads;
            std::thread::spawn(move || {
                let shutdown = serve_connection(stream, &engine, threads);
                if shutdown {
                    stop.store(true, Ordering::SeqCst);
                    // Poke the accept loop awake so it observes `stop`.
                    let _ = TcpStream::connect_timeout(&local, Duration::from_secs(1));
                }
            });
        }
        Ok(())
    }
}

/// Answer one decoded request against the engine.
pub fn handle_request(engine: &ServeEngine, threads: usize, req: &ServeRequest) -> ServeResponse {
    match req {
        ServeRequest::Ping => ServeResponse::Pong,
        ServeRequest::Info => {
            let meta = &engine.artifact().meta;
            ServeResponse::Info(ServeInfo {
                dataset: meta.dataset.clone(),
                pipeline_key: meta.pipeline_key.clone(),
                model: meta.model.name().to_string(),
                n_features: meta.n_features,
                n_classes: meta.n_classes,
                accuracy: meta.accuracy,
            })
        }
        ServeRequest::Predict { rows } => {
            let report = engine.predict_batch(rows, threads);
            ServeResponse::PredictAck { outcomes: report.outcomes, stats: engine.stats() }
        }
        ServeRequest::Stats => ServeResponse::Stats(engine.stats()),
        ServeRequest::Shutdown => ServeResponse::ShutdownAck,
    }
}

/// Serve one connection to completion; returns whether a `Shutdown`
/// request was received.
fn serve_connection(mut stream: TcpStream, engine: &ServeEngine, threads: usize) -> bool {
    let _ = stream.set_nodelay(true);
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            // Clean EOF: the client is done with this connection.
            Ok(None) => return false,
            // Torn frame: nothing sane to answer on this stream.
            Err(_) => return false,
        };
        let response = match decode_request(&payload) {
            Ok(req) => {
                let resp = handle_request(engine, threads, &req);
                if matches!(req, ServeRequest::Shutdown) {
                    let _ = write_frame(&mut stream, &encode_response(&resp));
                    return true;
                }
                resp
            }
            // Reflect the decode failure back, then drop the
            // connection: after a corrupt frame the stream's framing
            // can no longer be trusted.
            Err(err) => {
                let _ = write_frame(&mut stream, &encode_response(&ServeResponse::Error(err)));
                return false;
            }
        };
        if write_frame(&mut stream, &encode_response(&response)).is_err() {
            return false;
        }
    }
}
