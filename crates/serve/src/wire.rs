//! The serve wire protocol: `Predict`/`PredictAck` over evald framing.
//!
//! Messages ride the same `[u32 LE length][payload]` frames as the
//! evaluation service (`evald::wire::read_frame`/`write_frame` are
//! reused directly), with the same conventions: a one-byte tag,
//! little-endian integers, `f64` as IEEE-754 bit patterns, canonical
//! encoding, and total decoding — a malformed payload is an
//! `EvalError::Transport`, never a panic.

use crate::engine::{EngineStats, RowOutcome};
use autofp_core::{EvalError, FailureKind};
use std::io::{Read, Write};

pub use autofp_evald::wire::{read_frame, write_frame, MAX_FRAME};

/// Cap on rows per `Predict` request (the 16 MiB frame cap bounds the
/// payload anyway; this bounds the row-vector allocation up front).
pub const MAX_BATCH: u32 = 1 << 20;

const REQ_PING: u8 = 0;
const REQ_INFO: u8 = 1;
const REQ_PREDICT: u8 = 2;
const REQ_STATS: u8 = 3;
const REQ_SHUTDOWN: u8 = 4;

const RESP_PONG: u8 = 0;
const RESP_INFO: u8 = 1;
const RESP_PREDICT_ACK: u8 = 2;
const RESP_STATS: u8 = 3;
const RESP_SHUTDOWN_ACK: u8 = 4;
const RESP_ERROR: u8 = 5;

/// What the artifact behind a serve endpoint looks like.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeInfo {
    /// Dataset the artifact was fitted on.
    pub dataset: String,
    /// Human-readable pipeline description.
    pub pipeline_key: String,
    /// Model family report name ("LR", "XGB", "MLP").
    pub model: String,
    /// Feature arity every row must match.
    pub n_features: u64,
    /// Classes the model predicts over.
    pub n_classes: u64,
    /// Validation accuracy recorded at export time.
    pub accuracy: f64,
}

/// A client request to the serve endpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeRequest {
    /// Liveness probe.
    Ping,
    /// Describe the loaded artifact.
    Info,
    /// Predict a batch of feature rows.
    Predict {
        /// Feature rows; arity is validated per row (quarantine path).
        rows: Vec<Vec<f64>>,
    },
    /// Snapshot the lifetime serving counters.
    Stats,
    /// Stop the server loop.
    Shutdown,
}

/// The server's answer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeResponse {
    /// Ping acknowledged.
    Pong,
    /// Artifact description.
    Info(ServeInfo),
    /// Per-row outcomes (input order) plus post-batch counters.
    PredictAck {
        /// One outcome per request row, in input order.
        outcomes: Vec<RowOutcome>,
        /// Lifetime counters after absorbing this batch.
        stats: EngineStats,
    },
    /// Counter snapshot.
    Stats(EngineStats),
    /// Shutdown acknowledged.
    ShutdownAck,
    /// The request failed server-side.
    Error(EvalError),
}

fn transport(detail: impl Into<String>) -> EvalError {
    EvalError::Transport { detail: detail.into() }
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(tag: u8) -> Enc {
        Enc { buf: vec![tag] }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn stats(&mut self, s: &EngineStats) {
        self.u64(s.rows);
        self.u64(s.predicted);
        self.u64(s.rejected_non_finite);
        self.u64(s.rejected_arity);
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], EvalError> {
        let end = self.pos.checked_add(n).ok_or_else(|| transport("length overflow"))?;
        if end > self.buf.len() {
            return Err(transport("truncated payload"));
        }
        // lint:allow(panic-reach): checked_add + `end <= buf.len()` above make the range provably in bounds
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, EvalError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, EvalError> {
        let b = self.take(4)?;
        // lint:allow(panic-reach): take(4) returned exactly four bytes
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, EvalError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64, EvalError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, EvalError> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| transport("string is not UTF-8"))
    }

    fn stats(&mut self) -> Result<EngineStats, EvalError> {
        Ok(EngineStats {
            rows: self.u64()?,
            predicted: self.u64()?,
            rejected_non_finite: self.u64()?,
            rejected_arity: self.u64()?,
        })
    }

    fn finish(self) -> Result<(), EvalError> {
        if self.pos != self.buf.len() {
            return Err(transport(format!("{} trailing bytes", self.buf.len() - self.pos)));
        }
        Ok(())
    }
}

fn enc_rows(e: &mut Enc, rows: &[Vec<f64>]) {
    e.u32(rows.len() as u32);
    for row in rows {
        e.u32(row.len() as u32);
        for &v in row {
            e.f64(v);
        }
    }
}

fn dec_rows(d: &mut Dec<'_>) -> Result<Vec<Vec<f64>>, EvalError> {
    let n = d.u32()?;
    if n > MAX_BATCH {
        return Err(transport(format!("batch of {n} rows exceeds cap {MAX_BATCH}")));
    }
    let mut rows = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let len = d.u32()? as usize;
        let bytes = len.checked_mul(8).ok_or_else(|| transport("row length overflow"))?;
        let raw = d.take(bytes)?;
        let mut row = Vec::with_capacity(len);
        for chunk in raw.chunks_exact(8) {
            let mut a = [0u8; 8];
            a.copy_from_slice(chunk);
            row.push(f64::from_bits(u64::from_le_bytes(a)));
        }
        rows.push(row);
    }
    Ok(rows)
}

fn enc_outcomes(e: &mut Enc, outcomes: &[RowOutcome]) {
    e.u32(outcomes.len() as u32);
    for o in outcomes {
        match o {
            RowOutcome::Predicted(class) => {
                e.u8(0);
                e.u32(*class as u32);
            }
            RowOutcome::Rejected(kind) => {
                e.u8(1);
                e.u8(kind.index() as u8);
            }
        }
    }
}

fn dec_outcomes(d: &mut Dec<'_>) -> Result<Vec<RowOutcome>, EvalError> {
    let n = d.u32()?;
    if n > MAX_BATCH {
        return Err(transport(format!("ack of {n} outcomes exceeds cap {MAX_BATCH}")));
    }
    // Each outcome is at least 2 bytes.
    if n as usize > self_remaining(d) / 2 + 1 {
        return Err(transport("outcome count exceeds payload"));
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        match d.u8()? {
            0 => out.push(RowOutcome::Predicted(d.u32()? as usize)),
            1 => {
                let code = d.u8()? as usize;
                let kind = *FailureKind::ALL
                    .get(code)
                    .ok_or_else(|| transport(format!("bad failure code {code}")))?;
                out.push(RowOutcome::Rejected(kind));
            }
            t => return Err(transport(format!("bad outcome tag {t}"))),
        }
    }
    Ok(out)
}

fn self_remaining(d: &Dec<'_>) -> usize {
    d.buf.len() - d.pos
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Encode a request payload (framing is the caller's concern).
pub fn encode_request(req: &ServeRequest) -> Vec<u8> {
    match req {
        ServeRequest::Ping => Enc::new(REQ_PING).buf,
        ServeRequest::Info => Enc::new(REQ_INFO).buf,
        ServeRequest::Predict { rows } => {
            let mut e = Enc::new(REQ_PREDICT);
            enc_rows(&mut e, rows);
            e.buf
        }
        ServeRequest::Stats => Enc::new(REQ_STATS).buf,
        ServeRequest::Shutdown => Enc::new(REQ_SHUTDOWN).buf,
    }
}

/// Decode a request payload. Total; rejects trailing bytes.
pub fn decode_request(payload: &[u8]) -> Result<ServeRequest, EvalError> {
    let mut d = Dec::new(payload);
    let req = match d.u8()? {
        REQ_PING => ServeRequest::Ping,
        REQ_INFO => ServeRequest::Info,
        REQ_PREDICT => ServeRequest::Predict { rows: dec_rows(&mut d)? },
        REQ_STATS => ServeRequest::Stats,
        REQ_SHUTDOWN => ServeRequest::Shutdown,
        tag => return Err(transport(format!("bad request tag {tag}"))),
    };
    d.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Encode a response payload.
pub fn encode_response(resp: &ServeResponse) -> Vec<u8> {
    match resp {
        ServeResponse::Pong => Enc::new(RESP_PONG).buf,
        ServeResponse::Info(info) => {
            let mut e = Enc::new(RESP_INFO);
            e.string(&info.dataset);
            e.string(&info.pipeline_key);
            e.string(&info.model);
            e.u64(info.n_features);
            e.u64(info.n_classes);
            e.f64(info.accuracy);
            e.buf
        }
        ServeResponse::PredictAck { outcomes, stats } => {
            let mut e = Enc::new(RESP_PREDICT_ACK);
            enc_outcomes(&mut e, outcomes);
            e.stats(stats);
            e.buf
        }
        ServeResponse::Stats(stats) => {
            let mut e = Enc::new(RESP_STATS);
            e.stats(stats);
            e.buf
        }
        ServeResponse::ShutdownAck => Enc::new(RESP_SHUTDOWN_ACK).buf,
        ServeResponse::Error(err) => {
            let mut e = Enc::new(RESP_ERROR);
            e.string(&format!("{err}"));
            e.buf
        }
    }
}

/// Decode a response payload. Total; rejects trailing bytes.
pub fn decode_response(payload: &[u8]) -> Result<ServeResponse, EvalError> {
    let mut d = Dec::new(payload);
    let resp = match d.u8()? {
        RESP_PONG => ServeResponse::Pong,
        RESP_INFO => ServeResponse::Info(ServeInfo {
            dataset: d.string()?,
            pipeline_key: d.string()?,
            model: d.string()?,
            n_features: d.u64()?,
            n_classes: d.u64()?,
            accuracy: d.f64()?,
        }),
        RESP_PREDICT_ACK => {
            let outcomes = dec_outcomes(&mut d)?;
            let stats = d.stats()?;
            ServeResponse::PredictAck { outcomes, stats }
        }
        RESP_STATS => ServeResponse::Stats(d.stats()?),
        RESP_SHUTDOWN_ACK => ServeResponse::ShutdownAck,
        RESP_ERROR => ServeResponse::Error(transport(d.string()?)),
        tag => return Err(transport(format!("bad response tag {tag}"))),
    };
    d.finish()?;
    Ok(resp)
}

/// Write one framed request.
pub fn send_request(w: &mut impl Write, req: &ServeRequest) -> Result<(), EvalError> {
    write_frame(w, &encode_request(req))
}

/// Read one framed response (`None` on clean EOF).
pub fn recv_response(r: &mut impl Read) -> Result<Option<ServeResponse>, EvalError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(payload) => Ok(Some(decode_response(&payload)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<ServeRequest> {
        vec![
            ServeRequest::Ping,
            ServeRequest::Info,
            ServeRequest::Predict {
                rows: vec![vec![1.0, f64::NAN, -3.5], vec![], vec![f64::INFINITY]],
            },
            ServeRequest::Stats,
            ServeRequest::Shutdown,
        ]
    }

    fn all_responses() -> Vec<ServeResponse> {
        let stats = EngineStats {
            rows: 10,
            predicted: 7,
            rejected_non_finite: 2,
            rejected_arity: 1,
        };
        vec![
            ServeResponse::Pong,
            ServeResponse::Info(ServeInfo {
                dataset: "ds".into(),
                pipeline_key: "StandardScaler".into(),
                model: "LR".into(),
                n_features: 5,
                n_classes: 3,
                accuracy: 0.875,
            }),
            ServeResponse::PredictAck {
                outcomes: vec![
                    RowOutcome::Predicted(2),
                    RowOutcome::Rejected(FailureKind::NonFinite),
                    RowOutcome::Rejected(FailureKind::Degenerate),
                ],
                stats,
            },
            ServeResponse::Stats(stats),
            ServeResponse::ShutdownAck,
            ServeResponse::Error(transport("boom")),
        ]
    }

    #[test]
    fn round_trips_are_canonical() {
        for req in all_requests() {
            let bytes = encode_request(&req);
            let back = decode_request(&bytes).expect("request");
            // Byte-level round trip is the canonical property: it is
            // bit-exact even through the NaN payloads `PartialEq`
            // cannot compare.
            assert_eq!(encode_request(&back), bytes);
        }
        for resp in all_responses() {
            let bytes = encode_response(&resp);
            let back = decode_response(&bytes).expect("response");
            // An `Error` decodes to Transport carrying the display
            // text, so only the non-error responses re-encode to the
            // original bytes.
            if !matches!(resp, ServeResponse::Error(_)) {
                assert_eq!(back, resp);
                assert_eq!(encode_response(&back), bytes);
            }
        }
    }

    #[test]
    fn golden_bytes_are_locked() {
        assert_eq!(encode_request(&ServeRequest::Ping), vec![0]);
        let mut want = vec![2u8]; // Predict tag
        want.extend_from_slice(&1u32.to_le_bytes()); // one row
        want.extend_from_slice(&2u32.to_le_bytes()); // two values
        want.extend_from_slice(&1.5f64.to_bits().to_le_bytes());
        want.extend_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert_eq!(
            encode_request(&ServeRequest::Predict { rows: vec![vec![1.5, f64::NAN]] }),
            want
        );
        let mut want = vec![2u8]; // PredictAck tag
        want.extend_from_slice(&2u32.to_le_bytes()); // two outcomes
        want.push(0); // predicted
        want.extend_from_slice(&4u32.to_le_bytes());
        want.push(1); // rejected
        want.push(0); // NonFinite code
        for v in [9u64, 8, 0, 1] {
            want.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(
            encode_response(&ServeResponse::PredictAck {
                outcomes: vec![
                    RowOutcome::Predicted(4),
                    RowOutcome::Rejected(FailureKind::NonFinite),
                ],
                stats: EngineStats {
                    rows: 9,
                    predicted: 8,
                    rejected_non_finite: 0,
                    rejected_arity: 1,
                },
            }),
            want
        );
    }

    #[test]
    fn truncations_and_trailing_bytes_error() {
        for req in all_requests() {
            let bytes = encode_request(&req);
            for len in 0..bytes.len() {
                assert!(decode_request(&bytes[..len]).is_err(), "{req:?} prefix {len}");
            }
            let mut trailing = bytes.clone();
            trailing.push(0);
            assert!(decode_request(&trailing).is_err());
        }
        for resp in all_responses() {
            let bytes = encode_response(&resp);
            for len in 0..bytes.len() {
                assert!(decode_response(&bytes[..len]).is_err(), "prefix {len}");
            }
        }
    }

    #[test]
    fn byte_flips_never_panic() {
        for bytes in all_requests()
            .iter()
            .map(encode_request)
            .chain(all_responses().iter().map(encode_response))
        {
            for i in 0..bytes.len() {
                for v in [0u8, 1, 2, 127, 255] {
                    let mut m = bytes.clone();
                    if m[i] == v {
                        continue;
                    }
                    m[i] = v;
                    let _ = decode_request(&m);
                    let _ = decode_response(&m);
                }
            }
        }
    }

    #[test]
    fn oversized_batch_rejected() {
        let mut e = vec![2u8];
        e.extend_from_slice(&(MAX_BATCH + 1).to_le_bytes());
        assert!(decode_request(&e).is_err());
    }
}
