//! A minimal Adam optimizer over flat parameter buffers, shared by the
//! gradient-trained surrogates (MLP regressor, LSTM regressor/policy).

/// Adam state for one flat parameter vector.
#[derive(Debug, Clone)]
pub struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: f64,
    /// Step size.
    pub lr: f64,
}

impl Adam {
    /// Fresh optimizer state for `n_params` parameters.
    pub fn new(n_params: usize, lr: f64) -> Adam {
        Adam { m: vec![0.0; n_params], v: vec![0.0; n_params], t: 0.0, lr }
    }

    /// Apply one update: `params -= lr * mhat / (sqrt(vhat) + eps)`.
    /// Non-finite gradient entries are treated as zero.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len());
        assert_eq!(params.len(), self.m.len());
        self.t += 1.0;
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let bc1 = 1.0 - b1.powf(self.t);
        let bc2 = 1.0 - b2.powf(self.t);
        for i in 0..params.len() {
            let g = if grads[i].is_finite() { grads[i] } else { 0.0 };
            self.m[i] = b1 * self.m[i] + (1.0 - b1) * g;
            self.v[i] = b2 * self.v[i] + (1.0 - b2) * g * g;
            params[i] -= self.lr * (self.m[i] / bc1) / ((self.v[i] / bc2).sqrt() + eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // f(x) = (x - 3)^2, gradient 2(x - 3).
        let mut x = vec![0.0];
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 0.01, "x {}", x[0]);
    }

    #[test]
    fn ignores_non_finite_gradients() {
        let mut x = vec![1.0];
        let mut opt = Adam::new(1, 0.1);
        opt.step(&mut x, &[f64::NAN]);
        assert!(x[0].is_finite());
    }
}
