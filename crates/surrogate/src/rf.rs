//! Random-forest *regressor* — SMAC's surrogate model.
//!
//! Bagged variance-reduction regression trees with per-node feature
//! subsampling. SMAC also uses the across-tree variance of predictions
//! for its acquisition function (expected improvement); [`
//! RandomForestRegressor::predict_with_std`] exposes it.

use autofp_linalg::rng::{derive_seed, rng_from_seed, sample_indices};
use autofp_linalg::Matrix;
use rand::Rng;

/// Hyperparameters for the random-forest regressor.
#[derive(Debug, Clone)]
pub struct RfParams {
    /// Number of bagged trees.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Features considered per split; `None` = sqrt(d).
    pub max_features: Option<usize>,
    /// Bootstrap/feature-subsampling seed.
    pub seed: u64,
}

impl Default for RfParams {
    fn default() -> Self {
        RfParams { n_trees: 10, max_depth: 12, min_samples_split: 4, max_features: None, seed: 0 }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { value: f64 },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

#[derive(Debug, Clone)]
struct RegTree {
    nodes: Vec<Node>,
}

impl RegTree {
    fn predict(&self, row: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    let v = row.get(*feature).copied().unwrap_or(0.0);
                    i = if v <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

/// A trained random-forest regressor.
#[derive(Debug, Clone)]
pub struct RandomForestRegressor {
    trees: Vec<RegTree>,
}

impl RandomForestRegressor {
    /// Fit on rows `x` with targets `y`.
    pub fn fit(x: &Matrix, y: &[f64], params: &RfParams) -> RandomForestRegressor {
        assert_eq!(x.nrows(), y.len());
        assert!(!y.is_empty(), "cannot fit on empty data");
        let n = x.nrows();
        let d = x.ncols();
        let max_features = params.max_features.unwrap_or_else(|| (d as f64).sqrt().ceil() as usize).clamp(1, d.max(1));
        let mut trees = Vec::with_capacity(params.n_trees);
        for t in 0..params.n_trees {
            let mut rng = rng_from_seed(derive_seed(params.seed, t as u64));
            // Bootstrap sample.
            let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let mut builder = TreeBuilder {
                x,
                y,
                params,
                max_features,
                nodes: Vec::new(),
                rng_seed: derive_seed(params.seed, 1000 + t as u64),
                counter: 0,
            };
            builder.grow(&rows, 0);
            trees.push(RegTree { nodes: builder.nodes });
        }
        RandomForestRegressor { trees }
    }

    /// Mean prediction across trees.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict(row)).sum();
        sum / self.trees.len() as f64
    }

    /// Mean and across-tree standard deviation (SMAC's uncertainty).
    pub fn predict_with_std(&self, row: &[f64]) -> (f64, f64) {
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(row)).collect();
        let mean = autofp_linalg::stats::mean(&preds);
        let std = autofp_linalg::stats::std_dev(&preds);
        (mean, std)
    }
}

struct TreeBuilder<'a> {
    x: &'a Matrix,
    y: &'a [f64],
    params: &'a RfParams,
    max_features: usize,
    nodes: Vec<Node>,
    rng_seed: u64,
    counter: u64,
}

impl TreeBuilder<'_> {
    fn grow(&mut self, rows: &[usize], depth: usize) -> usize {
        let mean = rows.iter().map(|&i| self.y[i]).sum::<f64>() / rows.len().max(1) as f64;
        if depth >= self.params.max_depth || rows.len() < self.params.min_samples_split {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        match self.best_split(rows) {
            None => {
                self.nodes.push(Node::Leaf { value: mean });
                self.nodes.len() - 1
            }
            Some((feature, threshold)) => {
                let (l, r): (Vec<usize>, Vec<usize>) =
                    rows.iter().partition(|&&i| self.x.get(i, feature) <= threshold);
                if l.is_empty() || r.is_empty() {
                    self.nodes.push(Node::Leaf { value: mean });
                    return self.nodes.len() - 1;
                }
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf { value: 0.0 });
                let left = self.grow(&l, depth + 1);
                let right = self.grow(&r, depth + 1);
                self.nodes[id] = Node::Split { feature, threshold, left, right };
                id
            }
        }
    }

    /// Best split by squared-error reduction over a random feature subset.
    fn best_split(&mut self, rows: &[usize]) -> Option<(usize, f64)> {
        self.counter += 1;
        let mut rng = rng_from_seed(derive_seed(self.rng_seed, self.counter));
        let d = self.x.ncols();
        let features = sample_indices(&mut rng, d, self.max_features);

        let n = rows.len() as f64;
        let total_sum: f64 = rows.iter().map(|&i| self.y[i]).sum();
        let total_sq: f64 = rows.iter().map(|&i| self.y[i] * self.y[i]).sum();
        let parent_sse = total_sq - total_sum * total_sum / n;

        let mut best: Option<(f64, usize, f64)> = None;
        let mut sorted = rows.to_vec();
        for &f in &features {
            sorted.sort_by(|&a, &b| self.x.get(a, f).total_cmp(&self.x.get(b, f)));
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for w in 0..sorted.len() - 1 {
                let i = sorted[w];
                left_sum += self.y[i];
                left_sq += self.y[i] * self.y[i];
                let v = self.x.get(i, f);
                let v_next = self.x.get(sorted[w + 1], f);
                if v == v_next {
                    continue;
                }
                let nl = (w + 1) as f64;
                let nr = n - nl;
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse = (left_sq - left_sum * left_sum / nl)
                    + (right_sq - right_sum * right_sum / nr);
                let gain = parent_sse - sse;
                if gain > 1e-12 && best.is_none_or(|(g, _, _)| gain > g) {
                    best = Some((gain, f, (v + v_next) / 2.0));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_data() -> (Matrix, Vec<f64>) {
        // y = x0 * 2 + step(x1 > 0.5)
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 20) as f64 / 20.0, ((i * 7) % 20) as f64 / 20.0])
            .collect();
        let y: Vec<f64> =
            rows.iter().map(|r| 2.0 * r[0] + if r[1] > 0.5 { 1.0 } else { 0.0 }).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn fits_piecewise_function() {
        let (x, y) = grid_data();
        let rf = RandomForestRegressor::fit(&x, &y, &RfParams::default());
        let mut sse = 0.0;
        for (i, row) in x.rows_iter().enumerate() {
            let p = rf.predict(row);
            sse += (p - y[i]).powi(2);
        }
        let mse = sse / y.len() as f64;
        assert!(mse < 0.05, "mse {mse}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = grid_data();
        let a = RandomForestRegressor::fit(&x, &y, &RfParams::default());
        let b = RandomForestRegressor::fit(&x, &y, &RfParams::default());
        assert_eq!(a.predict(&[0.3, 0.7]), b.predict(&[0.3, 0.7]));
    }

    #[test]
    fn uncertainty_higher_off_manifold() {
        let (x, y) = grid_data();
        let rf = RandomForestRegressor::fit(&x, &y, &RfParams::default());
        let (_, std_in) = rf.predict_with_std(&[0.5, 0.5]);
        let (_, std_out) = rf.predict_with_std(&[50.0, -50.0]);
        // Both are finite; extrapolation shouldn't crash.
        assert!(std_in.is_finite() && std_out.is_finite());
    }

    #[test]
    fn constant_target_predicts_constant() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![5.0; 4];
        let rf = RandomForestRegressor::fit(&x, &y, &RfParams::default());
        assert!((rf.predict(&[1.5]) - 5.0).abs() < 1e-9);
        let (_, std) = rf.predict_with_std(&[1.5]);
        assert!(std.abs() < 1e-9);
    }

    #[test]
    fn single_sample_is_safe() {
        let x = Matrix::from_rows(&[vec![1.0]]);
        let rf = RandomForestRegressor::fit(&x, &[0.7], &RfParams::default());
        assert!((rf.predict(&[1.0]) - 0.7).abs() < 1e-9);
    }
}
