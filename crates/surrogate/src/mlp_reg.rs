//! Small MLP regressor — the Progressive NAS surrogate (PMNE), and its
//! ensemble variant (PME).
//!
//! Maps an encoded pipeline (see `autofp_preprocess::encoding`) to a
//! predicted validation accuracy. Deliberately tiny: the paper observes
//! that the *low fitting cost* of the MLP surrogate is exactly why
//! PMNE/PME are the only surrogate algorithms to beat random search.

use crate::adam::Adam;
use autofp_linalg::rng::{derive_seed, rng_from_seed, standard_normal};
use autofp_linalg::Matrix;

/// Hyperparameters of the MLP regressor.
#[derive(Debug, Clone)]
pub struct MlpRegParams {
    /// Hidden layer width.
    pub hidden: usize,
    /// Training epochs per fit.
    pub epochs: usize,
    /// Adam step size.
    pub learning_rate: f64,
    /// Initialization seed.
    pub seed: u64,
}

impl Default for MlpRegParams {
    fn default() -> Self {
        MlpRegParams { hidden: 16, epochs: 60, learning_rate: 0.02, seed: 0 }
    }
}

/// One-hidden-layer (tanh) regression network.
#[derive(Debug, Clone)]
pub struct MlpRegressor {
    w1: Matrix, // hidden x (d+1)
    w2: Vec<f64>, // hidden + 1
}

impl MlpRegressor {
    /// Fit on encoded rows `x` with scalar targets `y`.
    pub fn fit(x: &Matrix, y: &[f64], params: &MlpRegParams) -> MlpRegressor {
        assert_eq!(x.nrows(), y.len());
        assert!(!y.is_empty());
        let (n, d) = x.shape();
        let h = params.hidden;
        let mut rng = rng_from_seed(derive_seed(params.seed, 0x41e6));
        let mut w1 = Matrix::zeros(h, d + 1);
        for v in w1.as_mut_slice() {
            *v = standard_normal(&mut rng) * (1.0 / (d.max(1) as f64)).sqrt();
        }
        let mut w2 = vec![0.0; h + 1];
        for v in w2.iter_mut() {
            *v = standard_normal(&mut rng) * (1.0 / (h as f64)).sqrt();
        }

        let mut opt1 = Adam::new(h * (d + 1), params.learning_rate);
        let mut opt2 = Adam::new(h + 1, params.learning_rate);
        let mut g1 = vec![0.0; h * (d + 1)];
        let mut g2 = vec![0.0; h + 1];
        let mut act = vec![0.0; h];

        for _ in 0..params.epochs {
            g1.fill(0.0);
            g2.fill(0.0);
            for (i, row) in x.rows_iter().enumerate() {
                for (jh, a) in act.iter_mut().enumerate() {
                    let wr = w1.row(jh);
                    let mut z = wr[d];
                    for (j, &v) in row.iter().enumerate() {
                        z += wr[j] * v;
                    }
                    *a = z.tanh();
                }
                let mut pred = w2[h];
                for (jh, &a) in act.iter().enumerate() {
                    pred += w2[jh] * a;
                }
                let dpred = 2.0 * (pred - y[i]) / n as f64;
                for (jh, &a) in act.iter().enumerate() {
                    g2[jh] += dpred * a;
                    let dh = dpred * w2[jh] * (1.0 - a * a);
                    let base = jh * (d + 1);
                    for (j, &v) in row.iter().enumerate() {
                        g1[base + j] += dh * v;
                    }
                    g1[base + d] += dh;
                }
                g2[h] += dpred;
            }
            opt1.step(w1.as_mut_slice(), &g1);
            opt2.step(&mut w2, &g2);
        }
        MlpRegressor { w1, w2 }
    }

    /// Predict for an encoded row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let d = self.w1.ncols() - 1;
        let h = self.w1.nrows();
        let mut pred = self.w2[h];
        for jh in 0..h {
            let wr = self.w1.row(jh);
            let mut z = wr[d];
            for (j, &v) in row.iter().enumerate().take(d) {
                z += wr[j] * v;
            }
            pred += self.w2[jh] * z.tanh();
        }
        pred
    }
}

/// Ensemble of MLP regressors with different seeds (the "ensemble"
/// variants of Progressive NAS average member predictions).
#[derive(Debug, Clone)]
pub struct MlpEnsemble {
    members: Vec<MlpRegressor>,
}

impl MlpEnsemble {
    /// Fit `n_members` regressors with derived seeds.
    pub fn fit(x: &Matrix, y: &[f64], params: &MlpRegParams, n_members: usize) -> MlpEnsemble {
        let members = (0..n_members.max(1))
            .map(|i| {
                let mut p = params.clone();
                p.seed = derive_seed(params.seed, 77 + i as u64);
                MlpRegressor::fit(x, y, &p)
            })
            .collect();
        MlpEnsemble { members }
    }

    /// Mean prediction across members.
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.members.iter().map(|m| m.predict(row)).sum::<f64>() / self.members.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearish() -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> =
            (0..60).map(|i| vec![(i % 10) as f64 / 10.0, ((i * 3) % 10) as f64 / 10.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 0.3 * r[0] + 0.5 * r[1] + 0.1).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn fits_smooth_function() {
        let (x, y) = linearish();
        let m = MlpRegressor::fit(&x, &y, &MlpRegParams { epochs: 400, ..Default::default() });
        let mse: f64 = x
            .rows_iter()
            .enumerate()
            .map(|(i, r)| (m.predict(r) - y[i]).powi(2))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 0.01, "mse {mse}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = linearish();
        let p = MlpRegParams { epochs: 20, ..Default::default() };
        let a = MlpRegressor::fit(&x, &y, &p).predict(&[0.5, 0.5]);
        let b = MlpRegressor::fit(&x, &y, &p).predict(&[0.5, 0.5]);
        assert_eq!(a, b);
    }

    #[test]
    fn ensemble_averages_members() {
        let (x, y) = linearish();
        let p = MlpRegParams { epochs: 30, ..Default::default() };
        let e = MlpEnsemble::fit(&x, &y, &p, 3);
        assert_eq!(e.members.len(), 3);
        let pred = e.predict(&[0.2, 0.8]);
        assert!(pred.is_finite());
        // Ensemble differs from any single fixed-seed member in general.
        let single = MlpRegressor::fit(&x, &y, &p).predict(&[0.2, 0.8]);
        let _ = single;
    }

    #[test]
    fn ranks_better_candidates_higher() {
        // Target increases with feature 0; ranking must follow.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let x = Matrix::from_rows(&rows);
        let m = MlpRegressor::fit(&x, &y, &MlpRegParams { epochs: 300, ..Default::default() });
        assert!(m.predict(&[0.9]) > m.predict(&[0.1]));
    }

    #[test]
    fn single_sample_fit_is_safe() {
        let x = Matrix::from_rows(&[vec![0.5]]);
        let m = MlpRegressor::fit(&x, &[0.7], &MlpRegParams::default());
        assert!(m.predict(&[0.5]).is_finite());
    }
}
