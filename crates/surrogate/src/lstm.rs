//! A from-scratch LSTM: sequence regressor (Progressive NAS surrogates
//! PLNE/PLE) and autoregressive policy (the ENAS controller).
//!
//! The cell is a standard LSTM (gates i, f, g, o) with full
//! backpropagation-through-time, trained with Adam. Pipelines enter as
//! one-hot token sequences over the preprocessor vocabulary (token 0 is
//! the start/padding symbol).

use crate::adam::Adam;
use autofp_linalg::dist::softmax_inplace;
use autofp_linalg::rng::{derive_seed, rng_from_seed, standard_normal, weighted_index};
use rand::rngs::StdRng;

/// One LSTM cell with a flat parameter buffer.
///
/// Layout: `wx` (`4h x dim_in`), then `wh` (`4h x h`), then `b` (`4h`).
/// Gate order within the `4h` axis: input, forget, cell, output.
#[derive(Debug, Clone)]
pub struct LstmCell {
    dim_in: usize,
    dim_h: usize,
    params: Vec<f64>,
}

/// Per-timestep forward cache needed by the backward pass.
#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    c: Vec<f64>,
}

impl LstmCell {
    /// A cell with seeded Xavier-style initialization.
    pub fn new(dim_in: usize, dim_h: usize, seed: u64) -> LstmCell {
        let n = 4 * dim_h * dim_in + 4 * dim_h * dim_h + 4 * dim_h;
        let mut rng = rng_from_seed(derive_seed(seed, 0x157a));
        let scale = (1.0 / (dim_in + dim_h) as f64).sqrt();
        let mut params: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng) * scale).collect();
        // Forget-gate bias starts at 1 (standard trick for gradient flow).
        let b_off = 4 * dim_h * dim_in + 4 * dim_h * dim_h;
        for j in 0..dim_h {
            params[b_off + dim_h + j] = 1.0;
        }
        LstmCell { dim_in, dim_h, params }
    }

    /// Total parameter count.
    pub fn n_params(&self) -> usize {
        self.params.len()
    }

    fn wx(&self, gate_row: usize, col: usize) -> f64 {
        self.params[gate_row * self.dim_in + col]
    }

    fn wh(&self, gate_row: usize, col: usize) -> f64 {
        self.params[4 * self.dim_h * self.dim_in + gate_row * self.dim_h + col]
    }

    fn b(&self, gate_row: usize) -> f64 {
        self.params[4 * self.dim_h * (self.dim_in + self.dim_h) + gate_row]
    }

    /// One forward step.
    fn step(&self, x: &[f64], h_prev: &[f64], c_prev: &[f64]) -> (Vec<f64>, Vec<f64>, StepCache) {
        let h = self.dim_h;
        let mut z = vec![0.0; 4 * h];
        for (r, zr) in z.iter_mut().enumerate() {
            let mut s = self.b(r);
            for (j, &xv) in x.iter().enumerate() {
                if xv != 0.0 {
                    s += self.wx(r, j) * xv;
                }
            }
            for (j, &hv) in h_prev.iter().enumerate() {
                s += self.wh(r, j) * hv;
            }
            *zr = s;
        }
        let sig = |v: f64| 1.0 / (1.0 + (-v).exp());
        let i: Vec<f64> = (0..h).map(|j| sig(z[j])).collect();
        let f: Vec<f64> = (0..h).map(|j| sig(z[h + j])).collect();
        let g: Vec<f64> = (0..h).map(|j| z[2 * h + j].tanh()).collect();
        let o: Vec<f64> = (0..h).map(|j| sig(z[3 * h + j])).collect();
        let c: Vec<f64> = (0..h).map(|j| f[j] * c_prev[j] + i[j] * g[j]).collect();
        let h_new: Vec<f64> = (0..h).map(|j| o[j] * c[j].tanh()).collect();
        let cache = StepCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            i,
            f,
            g,
            o,
            c: c.clone(),
        };
        (h_new, c, cache)
    }

    /// One backward step: consumes `dh`/`dc` for this timestep, adds
    /// parameter gradients into `grads`, returns `(dh_prev, dc_prev)`.
    fn step_backward(
        &self,
        cache: &StepCache,
        dh: &[f64],
        dc_in: &[f64],
        grads: &mut [f64],
    ) -> (Vec<f64>, Vec<f64>) {
        let h = self.dim_h;
        let mut dz = vec![0.0; 4 * h];
        let mut dc_prev = vec![0.0; h];
        for j in 0..h {
            let tc = cache.c[j].tanh();
            let dc = dh[j] * cache.o[j] * (1.0 - tc * tc) + dc_in[j];
            let d_o = dh[j] * tc;
            let d_i = dc * cache.g[j];
            let d_f = dc * cache.c_prev[j];
            let d_g = dc * cache.i[j];
            dz[j] = d_i * cache.i[j] * (1.0 - cache.i[j]);
            dz[h + j] = d_f * cache.f[j] * (1.0 - cache.f[j]);
            dz[2 * h + j] = d_g * (1.0 - cache.g[j] * cache.g[j]);
            dz[3 * h + j] = d_o * cache.o[j] * (1.0 - cache.o[j]);
            dc_prev[j] = dc * cache.f[j];
        }
        // Parameter gradients.
        let wx_off = 0;
        let wh_off = 4 * h * self.dim_in;
        let b_off = wh_off + 4 * h * h;
        for r in 0..4 * h {
            let d = dz[r];
            if d == 0.0 {
                continue;
            }
            for (j, &xv) in cache.x.iter().enumerate() {
                if xv != 0.0 {
                    grads[wx_off + r * self.dim_in + j] += d * xv;
                }
            }
            for (j, &hv) in cache.h_prev.iter().enumerate() {
                grads[wh_off + r * h + j] += d * hv;
            }
            grads[b_off + r] += d;
        }
        // dh_prev = Wh^T dz.
        let mut dh_prev = vec![0.0; h];
        for r in 0..4 * h {
            let d = dz[r];
            if d == 0.0 {
                continue;
            }
            for (j, dhp) in dh_prev.iter_mut().enumerate() {
                *dhp += self.wh(r, j) * d;
            }
        }
        (dh_prev, dc_prev)
    }
}

/// Token vocabulary: 0 = start/padding, `1..=alphabet` = symbols.
fn one_hot(token: usize, vocab: usize) -> Vec<f64> {
    let mut x = vec![0.0; vocab];
    x[token.min(vocab - 1)] = 1.0;
    x
}

/// Hyperparameters of the LSTM regressor.
#[derive(Debug, Clone)]
pub struct LstmRegParams {
    /// Hidden state width.
    pub hidden: usize,
    /// Training epochs per fit.
    pub epochs: usize,
    /// Adam step size.
    pub learning_rate: f64,
    /// Initialization seed.
    pub seed: u64,
}

impl Default for LstmRegParams {
    fn default() -> Self {
        LstmRegParams { hidden: 16, epochs: 40, learning_rate: 0.02, seed: 0 }
    }
}

/// Sequence-to-scalar LSTM regressor: final hidden state -> linear head.
#[derive(Debug, Clone)]
pub struct LstmRegressor {
    cell: LstmCell,
    head: Vec<f64>, // hidden + 1 (bias)
    vocab: usize,
}

impl LstmRegressor {
    /// Fit on token sequences (`1..=vocab-1` symbols) with scalar targets.
    pub fn fit(
        sequences: &[Vec<usize>],
        y: &[f64],
        vocab: usize,
        params: &LstmRegParams,
    ) -> LstmRegressor {
        assert_eq!(sequences.len(), y.len());
        assert!(!y.is_empty());
        let h = params.hidden;
        let mut cell = LstmCell::new(vocab, h, params.seed);
        let mut rng = rng_from_seed(derive_seed(params.seed, 0x4ead));
        let mut head: Vec<f64> =
            (0..=h).map(|_| standard_normal(&mut rng) * (1.0 / h as f64).sqrt()).collect();

        let mut opt_cell = Adam::new(cell.n_params(), params.learning_rate);
        let mut opt_head = Adam::new(h + 1, params.learning_rate);
        let n = sequences.len() as f64;

        for _ in 0..params.epochs {
            let mut gcell = vec![0.0; cell.n_params()];
            let mut ghead = vec![0.0; h + 1];
            for (seq, &target) in sequences.iter().zip(y) {
                // Forward.
                let mut hs = vec![0.0; h];
                let mut cs = vec![0.0; h];
                let mut caches = Vec::with_capacity(seq.len());
                for &tok in seq {
                    let x = one_hot(tok, vocab);
                    let (h2, c2, cache) = cell.step(&x, &hs, &cs);
                    hs = h2;
                    cs = c2;
                    caches.push(cache);
                }
                let mut pred = head[h];
                for j in 0..h {
                    pred += head[j] * hs[j];
                }
                let dpred = 2.0 * (pred - target) / n;
                // Head gradient + dh for the last step.
                let mut dh: Vec<f64> = (0..h).map(|j| dpred * head[j]).collect();
                for j in 0..h {
                    ghead[j] += dpred * hs[j];
                }
                ghead[h] += dpred;
                // BPTT.
                let mut dc = vec![0.0; h];
                for cache in caches.iter().rev() {
                    let (dhp, dcp) = cell.step_backward(cache, &dh, &dc, &mut gcell);
                    dh = dhp;
                    dc = dcp;
                }
            }
            opt_cell.step(&mut cell.params, &gcell);
            opt_head.step(&mut head, &ghead);
        }
        LstmRegressor { cell, head, vocab }
    }

    /// Predict for a token sequence.
    pub fn predict(&self, seq: &[usize]) -> f64 {
        let h = self.cell.dim_h;
        let mut hs = vec![0.0; h];
        let mut cs = vec![0.0; h];
        for &tok in seq {
            let x = one_hot(tok, self.vocab);
            let (h2, c2, _) = self.cell.step(&x, &hs, &cs);
            hs = h2;
            cs = c2;
        }
        let mut pred = self.head[h];
        for j in 0..h {
            pred += self.head[j] * hs[j];
        }
        pred
    }
}

/// Ensemble of LSTM regressors (PLE).
#[derive(Debug, Clone)]
pub struct LstmEnsemble {
    members: Vec<LstmRegressor>,
}

impl LstmEnsemble {
    /// Fit `n_members` regressors with derived seeds.
    pub fn fit(
        sequences: &[Vec<usize>],
        y: &[f64],
        vocab: usize,
        params: &LstmRegParams,
        n_members: usize,
    ) -> LstmEnsemble {
        let members = (0..n_members.max(1))
            .map(|i| {
                let mut p = params.clone();
                p.seed = derive_seed(params.seed, 31 + i as u64);
                LstmRegressor::fit(sequences, y, vocab, &p)
            })
            .collect();
        LstmEnsemble { members }
    }

    /// Mean prediction across members.
    pub fn predict(&self, seq: &[usize]) -> f64 {
        self.members.iter().map(|m| m.predict(seq)).sum::<f64>() / self.members.len() as f64
    }
}

/// Autoregressive LSTM policy over symbol sequences — the ENAS
/// controller. At each step it consumes the previous token and emits a
/// distribution over `alphabet + 1` actions (the symbols plus STOP).
#[derive(Debug, Clone)]
pub struct SequencePolicy {
    cell: LstmCell,
    /// Action head: `(alphabet + 1) x (hidden + 1)`.
    head: Vec<f64>,
    alphabet: usize,
    hidden: usize,
    max_len: usize,
    opt_cell: Adam,
    opt_head: Adam,
}

impl SequencePolicy {
    /// A policy with seeded initialization.
    pub fn new(alphabet: usize, max_len: usize, hidden: usize, lr: f64, seed: u64) -> SequencePolicy {
        let vocab = alphabet + 1; // input tokens: 0 start, 1..=alphabet
        let n_actions = alphabet + 1; // actions: 0..alphabet-1 symbols, alphabet = STOP
        let cell = LstmCell::new(vocab, hidden, seed);
        let mut rng = rng_from_seed(derive_seed(seed, 0x9011c4));
        let head: Vec<f64> = (0..n_actions * (hidden + 1))
            .map(|_| standard_normal(&mut rng) * (1.0 / hidden as f64).sqrt())
            .collect();
        let n_cell = cell.n_params();
        SequencePolicy {
            cell,
            head,
            alphabet,
            hidden,
            max_len,
            opt_cell: Adam::new(n_cell, lr),
            opt_head: Adam::new(n_actions * (hidden + 1), lr),
        }
    }

    fn logits(&self, hs: &[f64]) -> Vec<f64> {
        let h = self.hidden;
        (0..=self.alphabet)
            .map(|a| {
                let base = a * (h + 1);
                let mut z = self.head[base + h];
                for j in 0..h {
                    z += self.head[base + j] * hs[j];
                }
                z
            })
            .collect()
    }

    /// Sample a symbol sequence (kind indices in `0..alphabet`).
    /// A STOP action (or reaching `max_len`) ends the episode; at least
    /// one symbol is always emitted.
    pub fn sample(&self, rng: &mut StdRng) -> Vec<usize> {
        let h = self.hidden;
        let mut hs = vec![0.0; h];
        let mut cs = vec![0.0; h];
        let mut prev_token = 0usize;
        let mut seq = Vec::new();
        for step in 0..self.max_len {
            let x = one_hot(prev_token, self.alphabet + 1);
            let (h2, c2, _) = self.cell.step(&x, &hs, &cs);
            hs = h2;
            cs = c2;
            let mut probs = self.logits(&hs);
            softmax_inplace(&mut probs);
            if step == 0 {
                probs[self.alphabet] = 0.0; // cannot STOP before emitting
            }
            let action = weighted_index(rng, &probs);
            if action == self.alphabet {
                break;
            }
            seq.push(action);
            prev_token = action + 1;
        }
        if seq.is_empty() {
            seq.push(0);
        }
        seq
    }

    /// REINFORCE update: increase the log-probability of the episode that
    /// produced `seq` in proportion to `advantage` (reward - baseline).
    pub fn reinforce(&mut self, seq: &[usize], advantage: f64) {
        if advantage == 0.0 || seq.is_empty() {
            return;
        }
        let h = self.hidden;
        let n_actions = self.alphabet + 1;
        // Reconstruct the action sequence: symbols then STOP (if short).
        let mut actions: Vec<usize> = seq.to_vec();
        if seq.len() < self.max_len {
            actions.push(self.alphabet);
        }
        // Forward, caching.
        let mut hs = vec![0.0; h];
        let mut cs = vec![0.0; h];
        let mut prev_token = 0usize;
        let mut caches = Vec::with_capacity(actions.len());
        let mut step_h = Vec::with_capacity(actions.len());
        let mut step_probs = Vec::with_capacity(actions.len());
        for (step, &a) in actions.iter().enumerate() {
            let x = one_hot(prev_token, self.alphabet + 1);
            let (h2, c2, cache) = self.cell.step(&x, &hs, &cs);
            hs = h2;
            cs = c2;
            let mut probs = self.logits(&hs);
            softmax_inplace(&mut probs);
            if step == 0 {
                // Renormalize without STOP, matching sampling.
                probs[self.alphabet] = 0.0;
                let s: f64 = probs.iter().sum();
                if s > 0.0 {
                    for p in probs.iter_mut() {
                        *p /= s;
                    }
                }
            }
            caches.push(cache);
            step_h.push(hs.clone());
            step_probs.push(probs);
            if a < self.alphabet {
                prev_token = a + 1;
            }
        }
        // Backward: loss = -advantage * sum_t log pi(a_t).
        let mut gcell = vec![0.0; self.cell.n_params()];
        let mut ghead = vec![0.0; n_actions * (h + 1)];
        let mut dh_next = vec![0.0; h];
        let mut dc_next = vec![0.0; h];
        for t in (0..actions.len()).rev() {
            let probs = &step_probs[t];
            let hst = &step_h[t];
            // dlogits = -advantage * (onehot(a) - probs) = advantage * (probs - onehot).
            let mut dh = dh_next.clone();
            for a in 0..n_actions {
                let dlogit = advantage * (probs[a] - (a == actions[t]) as u8 as f64);
                if dlogit == 0.0 {
                    continue;
                }
                let base = a * (h + 1);
                for j in 0..h {
                    ghead[base + j] += dlogit * hst[j];
                    dh[j] += dlogit * self.head[base + j];
                }
                ghead[base + h] += dlogit;
            }
            let (dhp, dcp) = self.cell.step_backward(&caches[t], &dh, &dc_next, &mut gcell);
            dh_next = dhp;
            dc_next = dcp;
        }
        let mut cell_params = std::mem::take(&mut self.cell.params);
        self.opt_cell.step(&mut cell_params, &gcell);
        self.cell.params = cell_params;
        let mut head = std::mem::take(&mut self.head);
        self.opt_head.step(&mut head, &ghead);
        self.head = head;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerical gradient check for the LSTM cell + linear head.
    #[test]
    fn bptt_gradients_match_numerical() {
        let vocab = 4;
        let h = 3;
        let mut cell = LstmCell::new(vocab, h, 42);
        let head: Vec<f64> = (0..=h).map(|j| 0.1 * (j as f64 + 1.0)).collect();
        let seq = [1usize, 3, 2];
        let target = 0.7;

        let loss = |cell: &LstmCell| -> f64 {
            let mut hs = vec![0.0; h];
            let mut cs = vec![0.0; h];
            for &tok in &seq {
                let x = one_hot(tok, vocab);
                let (h2, c2, _) = cell.step(&x, &hs, &cs);
                hs = h2;
                cs = c2;
            }
            let mut pred = head[h];
            for j in 0..h {
                pred += head[j] * hs[j];
            }
            (pred - target) * (pred - target)
        };

        // Analytic gradient.
        let mut grads = vec![0.0; cell.n_params()];
        {
            let mut hs = vec![0.0; h];
            let mut cs = vec![0.0; h];
            let mut caches = Vec::new();
            for &tok in &seq {
                let x = one_hot(tok, vocab);
                let (h2, c2, cache) = cell.step(&x, &hs, &cs);
                hs = h2;
                cs = c2;
                caches.push(cache);
            }
            let mut pred = head[h];
            for j in 0..h {
                pred += head[j] * hs[j];
            }
            let dpred = 2.0 * (pred - target);
            let mut dh: Vec<f64> = (0..h).map(|j| dpred * head[j]).collect();
            let mut dc = vec![0.0; h];
            for cache in caches.iter().rev() {
                let (dhp, dcp) = cell.step_backward(cache, &dh, &dc, &mut grads);
                dh = dhp;
                dc = dcp;
            }
        }

        // Numerical gradient on a sample of parameters.
        let eps = 1e-6;
        for idx in (0..cell.n_params()).step_by(cell.n_params() / 17 + 1) {
            let orig = cell.params[idx];
            cell.params[idx] = orig + eps;
            let lp = loss(&cell);
            cell.params[idx] = orig - eps;
            let lm = loss(&cell);
            cell.params[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grads[idx]).abs() < 1e-5 * (1.0 + num.abs()),
                "param {idx}: numerical {num} vs analytic {}",
                grads[idx]
            );
        }
    }

    #[test]
    fn regressor_learns_sequence_scores() {
        // Sequences starting with token 1 score high, token 2 low.
        let mut seqs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..30 {
            seqs.push(vec![1, 1 + (i % 3)]);
            ys.push(0.9);
            seqs.push(vec![2, 1 + (i % 3)]);
            ys.push(0.1);
        }
        let params = LstmRegParams { epochs: 150, ..Default::default() };
        let m = LstmRegressor::fit(&seqs, &ys, 4, &params);
        assert!(m.predict(&[1, 2]) > m.predict(&[2, 2]) + 0.3);
    }

    #[test]
    fn regressor_is_deterministic() {
        let seqs = vec![vec![1, 2], vec![2, 1], vec![3]];
        let ys = vec![0.3, 0.6, 0.9];
        let p = LstmRegParams { epochs: 10, ..Default::default() };
        let a = LstmRegressor::fit(&seqs, &ys, 4, &p).predict(&[1, 3]);
        let b = LstmRegressor::fit(&seqs, &ys, 4, &p).predict(&[1, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn ensemble_prediction_finite() {
        let seqs = vec![vec![1], vec![2], vec![3]];
        let ys = vec![0.2, 0.5, 0.8];
        let p = LstmRegParams { epochs: 10, ..Default::default() };
        let e = LstmEnsemble::fit(&seqs, &ys, 4, &p, 3);
        assert!(e.predict(&[2, 3]).is_finite());
    }

    #[test]
    fn policy_samples_valid_sequences() {
        let policy = SequencePolicy::new(7, 7, 12, 0.01, 5);
        let mut rng = rng_from_seed(3);
        for _ in 0..50 {
            let s = policy.sample(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.iter().all(|&a| a < 7));
        }
    }

    #[test]
    fn reinforce_shifts_policy_toward_rewarded_symbol() {
        let mut policy = SequencePolicy::new(3, 4, 10, 0.05, 7);
        let mut rng = rng_from_seed(11);
        // Reward sequences containing symbol 0; punish others.
        for _ in 0..300 {
            let s = policy.sample(&mut rng);
            let reward = s.iter().filter(|&&a| a == 0).count() as f64 / s.len() as f64;
            policy.reinforce(&s, reward - 0.33);
        }
        let mut zero_fraction = 0.0;
        let mut total = 0.0;
        for _ in 0..200 {
            let s = policy.sample(&mut rng);
            zero_fraction += s.iter().filter(|&&a| a == 0).count() as f64;
            total += s.len() as f64;
        }
        let frac = zero_fraction / total;
        assert!(frac > 0.55, "zero-symbol fraction {frac}");
    }
}
