#![warn(missing_docs)]
//! Surrogate models powering the surrogate-model-based, RL-based and
//! bandit-based Auto-FP search algorithms (§4.1 of the paper).
//!
//! * [`rf::RandomForestRegressor`] — SMAC's random-forest surrogate.
//! * [`tpe::CategoricalTpe`] — the Parzen-estimator machinery of TPE and
//!   BOHB, specialized to the categorical pipeline space.
//! * [`mlp_reg::MlpRegressor`] (+ ensembles) — Progressive NAS with MLP
//!   surrogates (PMNE/PME).
//! * [`lstm::LstmRegressor`] (+ ensembles) — Progressive NAS with LSTM
//!   surrogates (PLNE/PLE).
//! * [`lstm::SequencePolicy`] — the LSTM controller used by ENAS.
//!
//! All gradient-trained surrogates share the [`adam`] optimizer and take
//! explicit seeds.
//!
//! Module-to-paper map:
//!
//! | Module | Paper section |
//! |---|---|
//! | [`rf`] | §4.1.2 SMAC's random-forest surrogate |
//! | [`tpe`] | §4.1.2 TPE / §4.1.5 BOHB density models |
//! | [`mlp_reg`] | §4.1.2 PNAS with MLP surrogates (PMNE, PME) |
//! | [`lstm`] | §4.1.2 PNAS with LSTM surrogates (PLNE, PLE); §4.1.4 ENAS controller |
//! | [`adam`] | shared optimizer (implementation detail, no section) |

pub mod adam;
pub mod lstm;
pub mod mlp_reg;
pub mod rf;
pub mod tpe;

pub use lstm::{LstmRegressor, SequencePolicy};
pub use mlp_reg::MlpRegressor;
pub use rf::RandomForestRegressor;
pub use tpe::CategoricalTpe;
