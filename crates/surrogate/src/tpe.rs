//! Tree-structured Parzen Estimator (TPE) machinery, specialized to the
//! categorical pipeline space.
//!
//! TPE splits the observed trials into a *good* set (lowest-error γ
//! quantile) and a *bad* set, fits a density to each, and suggests the
//! candidate maximizing `g(x)/b(x)`. In the Auto-FP space a pipeline is
//! a variable-length sequence of categorical symbols, so the "kernel
//! density" degenerates to smoothed categorical distributions: one over
//! pipeline lengths and one per position over the preprocessor alphabet
//! — exactly how hyperopt handles categorical hyperparameters.

use autofp_linalg::rng::weighted_index;
use rand::rngs::StdRng;

/// Configuration of the categorical TPE density pair.
#[derive(Debug, Clone)]
pub struct CategoricalTpe {
    /// Alphabet size (number of distinct preprocessor variants).
    pub alphabet: usize,
    /// Maximum pipeline length.
    pub max_len: usize,
    /// Fraction of observations considered "good" (hyperopt default 0.25).
    pub gamma: f64,
    /// Additive smoothing weight for the categorical counts.
    pub prior_weight: f64,
}

impl CategoricalTpe {
    /// TPE with hyperopt-style defaults (gamma 0.25).
    pub fn new(alphabet: usize, max_len: usize) -> CategoricalTpe {
        CategoricalTpe { alphabet, max_len, gamma: 0.25, prior_weight: 1.0 }
    }

    /// Fit good/bad densities from `(sequence, error)` observations
    /// (lower error = better). Sequences are variant indices in
    /// `0..alphabet`, length `1..=max_len`.
    ///
    /// # Panics
    /// Panics if `observations` is empty.
    pub fn fit(&self, observations: &[(Vec<usize>, f64)]) -> TpeModel {
        assert!(!observations.is_empty(), "TPE needs at least one observation");
        let mut idx: Vec<usize> = (0..observations.len()).collect();
        idx.sort_by(|&a, &b| {
            // total_cmp: worst-error trials can carry error exactly 1.0
            // and a corrupted observation must rank, not panic.
            observations[a].1.total_cmp(&observations[b].1)
        });
        // hyperopt: n_good = ceil(gamma * n), at least 1.
        let n_good = ((self.gamma * observations.len() as f64).ceil() as usize)
            .clamp(1, observations.len());
        let (good_idx, bad_idx) = idx.split_at(n_good);

        let build = |ids: &[usize]| -> Density {
            let mut len_counts = vec![self.prior_weight; self.max_len];
            let mut pos_counts =
                vec![vec![self.prior_weight; self.alphabet]; self.max_len];
            for &i in ids {
                let seq = &observations[i].0;
                let len = seq.len().clamp(1, self.max_len);
                len_counts[len - 1] += 1.0;
                for (p, &sym) in seq.iter().enumerate().take(self.max_len) {
                    pos_counts[p][sym.min(self.alphabet - 1)] += 1.0;
                }
            }
            Density { len_probs: normalize(&len_counts), pos_probs: pos_counts.iter().map(|c| normalize(c)).collect() }
        };

        TpeModel { good: build(good_idx), bad: build(bad_idx) }
    }
}

#[derive(Debug, Clone)]
struct Density {
    len_probs: Vec<f64>,
    pos_probs: Vec<Vec<f64>>,
}

impl Density {
    fn log_prob(&self, seq: &[usize]) -> f64 {
        let len = seq.len().clamp(1, self.len_probs.len());
        let mut lp = self.len_probs[len - 1].ln();
        for (p, &sym) in seq.iter().enumerate().take(self.pos_probs.len()) {
            lp += self.pos_probs[p][sym.min(self.pos_probs[p].len() - 1)].ln();
        }
        lp
    }

    fn sample(&self, rng: &mut StdRng) -> Vec<usize> {
        let len = weighted_index(rng, &self.len_probs) + 1;
        (0..len).map(|p| weighted_index(rng, &self.pos_probs[p])).collect()
    }
}

/// Fitted good/bad density pair.
#[derive(Debug, Clone)]
pub struct TpeModel {
    good: Density,
    bad: Density,
}

impl TpeModel {
    /// Sample one candidate from the good density.
    pub fn sample_good(&self, rng: &mut StdRng) -> Vec<usize> {
        self.good.sample(rng)
    }

    /// Acquisition score `log g(x) - log b(x)`; higher is better.
    pub fn score(&self, seq: &[usize]) -> f64 {
        self.good.log_prob(seq) - self.bad.log_prob(seq)
    }

    /// hyperopt's suggest step: draw `n_candidates` from the good
    /// density, return the one with the best `g/b` ratio.
    pub fn suggest(&self, rng: &mut StdRng, n_candidates: usize) -> Vec<usize> {
        let mut best: Option<(f64, Vec<usize>)> = None;
        for _ in 0..n_candidates.max(1) {
            let cand = self.sample_good(rng);
            let s = self.score(&cand);
            if best.as_ref().is_none_or(|(bs, _)| s > *bs) {
                best = Some((s, cand));
            }
        }
        best.expect("at least one candidate").1
    }
}

fn normalize(counts: &[f64]) -> Vec<f64> {
    let total: f64 = counts.iter().sum();
    counts.iter().map(|c| c / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_linalg::rng::rng_from_seed;

    /// Observations where symbol 0 in position 0 is always good and
    /// symbol 1 is always bad.
    fn polarized() -> Vec<(Vec<usize>, f64)> {
        let mut obs = Vec::new();
        for i in 0..20 {
            obs.push((vec![0, i % 3], 0.1)); // good
            obs.push((vec![1, i % 3], 0.9)); // bad
        }
        obs
    }

    #[test]
    fn good_density_prefers_good_symbols() {
        let tpe = CategoricalTpe::new(3, 4);
        let model = tpe.fit(&polarized());
        assert!(model.score(&[0, 0]) > model.score(&[1, 0]));
    }

    #[test]
    fn suggestions_concentrate_on_good_region() {
        let tpe = CategoricalTpe::new(3, 4);
        let model = tpe.fit(&polarized());
        let mut rng = rng_from_seed(5);
        let mut first_symbol_zero = 0;
        for _ in 0..100 {
            let s = model.suggest(&mut rng, 10);
            if s[0] == 0 {
                first_symbol_zero += 1;
            }
        }
        assert!(first_symbol_zero > 80, "only {first_symbol_zero}/100 good suggestions");
    }

    #[test]
    fn sampled_sequences_are_valid() {
        let tpe = CategoricalTpe::new(7, 7);
        let obs: Vec<(Vec<usize>, f64)> =
            (0..10).map(|i| (vec![i % 7; (i % 7) + 1], i as f64 / 10.0)).collect();
        let model = tpe.fit(&obs);
        let mut rng = rng_from_seed(1);
        for _ in 0..50 {
            let s = model.sample_good(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7);
            assert!(s.iter().all(|&sym| sym < 7));
        }
    }

    #[test]
    fn single_observation_does_not_panic() {
        let tpe = CategoricalTpe::new(7, 7);
        let model = tpe.fit(&[(vec![3, 2], 0.5)]);
        let mut rng = rng_from_seed(2);
        let s = model.suggest(&mut rng, 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn length_preference_is_learned() {
        // Good observations are all length 1; bad are length 7.
        let mut obs = Vec::new();
        for _ in 0..30 {
            obs.push((vec![2], 0.05));
            obs.push((vec![2; 7], 0.95));
        }
        let tpe = CategoricalTpe::new(7, 7);
        let model = tpe.fit(&obs);
        let mut rng = rng_from_seed(3);
        let short = (0..100).filter(|_| model.sample_good(&mut rng).len() <= 2).count();
        assert!(short > 70, "short {short}/100");
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn empty_observations_panic() {
        let _ = CategoricalTpe::new(7, 7).fit(&[]);
    }
}
