#![warn(missing_docs)]
//! `autofp-evald` — the sharded multi-process evaluation service.
//!
//! The bench harness's Table 4 matrix re-evaluates heavily overlapping
//! pipeline sets across 15 algorithms; this crate turns that workload
//! into a service: worker daemons own a process-local
//! [`autofp_core::SharedEvalCache`] and execute evaluation requests
//! over a dependency-free wire protocol, while
//! [`autofp_core::RemoteEvaluator`] on the client side shards requests
//! across the fleet by the stable `CacheKey` fingerprint.
//!
//! Module map:
//!
//! * [`wire`] — length-prefixed frames with hand-rolled canonical
//!   serialization for every request/response; malformed input decodes
//!   to [`autofp_core::EvalError::Transport`], never a panic.
//! * [`service`] — [`service::WorkerService`], the transport-agnostic
//!   request handler: one evaluator + cache per evaluation context,
//!   built lazily from the dataset registry.
//! * [`server`] — the TCP accept loop (`evald serve`), one thread per
//!   connection, cooperative shutdown.
//! * [`fleet`] — fleet membership ([`fleet::SharedFleetSpec`], the
//!   epoch-stamped spec the supervisor publishes and every backend
//!   routes over) and per-worker [`fleet::CircuitBreaker`]s.
//! * [`client`] — [`client::TcpBackend`] (persistent pooled
//!   connections with reconnect-on-failure and per-slot circuit
//!   breakers, shared through [`client::TcpPool`]) and
//!   [`client::LoopbackBackend`] (in-process transport that still
//!   round-trips every byte through [`wire`]), both implementing
//!   [`autofp_core::RemoteBackend`].
//! * [`launch`] — spawning and supervising local worker processes:
//!   [`launch::WorkerFleet`] (fixed fleet) and
//!   [`launch::FleetSupervisor`] (health-checked respawn with capped
//!   restarts and seeded-jitter backoff), used by the bench harness's
//!   `--workers N` flag and the distributed test suite.
//! * [`cli`] — the `evald` binary's command surface
//!   (`serve`/`ping`/`health`/`stats`/`shutdown`).

pub mod cli;
pub mod client;
pub mod fleet;
pub mod launch;
pub mod server;
pub mod service;
pub mod wire;

pub use client::{
    health, ping, set_fleet, shutdown, stats, HealthReport, LoopbackBackend, TcpBackend, TcpPool,
};
pub use fleet::{CircuitBreaker, SharedFleetSpec};
pub use launch::{spawn_worker, FleetSupervisor, SupervisorConfig, Worker, WorkerFleet};
pub use server::Server;
pub use service::WorkerService;
pub use wire::{EvalContext, FleetSpec, Request, Response, WorkerStats};
