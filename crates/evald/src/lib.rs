#![warn(missing_docs)]
//! `autofp-evald` — the sharded multi-process evaluation service.
//!
//! The bench harness's Table 4 matrix re-evaluates heavily overlapping
//! pipeline sets across 15 algorithms; this crate turns that workload
//! into a service: worker daemons own a process-local
//! [`autofp_core::SharedEvalCache`] and execute evaluation requests
//! over a dependency-free wire protocol, while
//! [`autofp_core::RemoteEvaluator`] on the client side shards requests
//! across the fleet by the stable `CacheKey` fingerprint.
//!
//! Module map:
//!
//! * [`wire`] — length-prefixed frames with hand-rolled canonical
//!   serialization for every request/response; malformed input decodes
//!   to [`autofp_core::EvalError::Transport`], never a panic.
//! * [`service`] — [`service::WorkerService`], the transport-agnostic
//!   request handler: one evaluator + cache per evaluation context,
//!   built lazily from the dataset registry.
//! * [`server`] — the TCP accept loop (`evald serve`), one thread per
//!   connection, cooperative shutdown.
//! * [`client`] — [`client::TcpBackend`] (connect-per-request with
//!   timeouts) and [`client::LoopbackBackend`] (in-process transport
//!   that still round-trips every byte through [`wire`]), both
//!   implementing [`autofp_core::RemoteBackend`].
//! * [`launch`] — spawning and supervising local worker processes
//!   (used by the bench harness's `--workers N` flag and the
//!   distributed test suite).
//! * [`cli`] — the `evald` binary's command surface
//!   (`serve`/`ping`/`stats`/`shutdown`).

pub mod cli;
pub mod client;
pub mod launch;
pub mod server;
pub mod service;
pub mod wire;

pub use client::{ping, shutdown, stats, LoopbackBackend, TcpBackend};
pub use launch::{spawn_worker, Worker, WorkerFleet};
pub use server::Server;
pub use service::WorkerService;
pub use wire::{EvalContext, Request, Response, WorkerStats};
