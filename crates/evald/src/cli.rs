//! The `evald` binary's command surface.
//!
//! * `evald serve [--bind ADDR] [--port P] [--cache-cap N]
//!   [--prefix-cache-bytes B] [--trial-store DIR]` — run a worker
//!   daemon (default `127.0.0.1`, port 0 = OS-assigned) and print
//!   `evald listening on <addr>` once bound, which supervisors parse. The prefix-transform cache defaults to
//!   on at 256 MiB per context; `--prefix-cache-bytes 0` turns it off.
//!   With `--trial-store`, each context's cache preloads from the
//!   durable trial repository at materialization and writes finished
//!   trials through to it, so a respawned worker resumes warm.
//! * `evald ping <addr>` / `evald health <addr>` / `evald stats
//!   <addr>` / `evald shutdown <addr>` — operator utilities against a
//!   running worker.

use crate::client;
use crate::launch::READY_PREFIX;
use crate::server::Server;
use crate::service::WorkerService;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
usage: evald <command>

commands:
  serve [--bind ADDR] [--port P] [--cache-cap N] [--prefix-cache-bytes B]
        [--trial-store DIR]
                                     run a worker daemon (bind defaults to
                                     127.0.0.1; port 0 = OS-assigned;
                                     cache-cap bounds each context's trial LRU;
                                     prefix-cache-bytes bounds each context's
                                     prefix-transform cache, 0 = off,
                                     default 256 MiB; trial-store preloads each
                                     context cache from the durable repository
                                     at DIR and persists finished trials to it)
  ping <addr>                        check a worker is alive
  health <addr>                      print a worker's fleet epoch and load
  stats <addr>                       print a worker's cumulative counters
  shutdown <addr>                    ask a worker to exit
";

const RPC_TIMEOUT: Duration = Duration::from_secs(10);

/// Run the CLI on `args` (binary name already stripped); returns the
/// process exit code.
pub fn run(args: Vec<String>) -> i32 {
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("ping") => rpc(&args[1..], "ping", |addr| {
            client::ping(addr, RPC_TIMEOUT)?;
            println!("{addr}: alive");
            Ok(())
        }),
        Some("health") => rpc(&args[1..], "health", |addr| {
            let h = client::health(addr, RPC_TIMEOUT)?;
            println!("{addr}: epoch={} served={} contexts={}", h.epoch, h.served, h.contexts);
            Ok(())
        }),
        Some("stats") => rpc(&args[1..], "stats", |addr| {
            let s = client::stats(addr, RPC_TIMEOUT)?;
            println!(
                "{addr}: served={} contexts={} hits={} misses={} entries={} evictions={} saved={:?} \
                 prefix_hits={} prefix_misses={} prefix_evictions={} prefix_steps_saved={} \
                 preloaded={}",
                s.served,
                s.contexts,
                s.hits,
                s.misses,
                s.entries,
                s.evictions,
                Duration::from_nanos(s.saved_nanos),
                s.prefix_hits,
                s.prefix_misses,
                s.prefix_evictions,
                s.prefix_steps_saved,
                s.preloaded,
            );
            Ok(())
        }),
        Some("shutdown") => rpc(&args[1..], "shutdown", |addr| {
            client::shutdown(addr, RPC_TIMEOUT)?;
            println!("{addr}: shutting down");
            Ok(())
        }),
        Some("--help") | Some("-h") | Some("help") => {
            print!("{USAGE}");
            0
        }
        Some(other) => {
            eprintln!("evald: unknown command `{other}`\n{USAGE}");
            2
        }
        None => {
            eprint!("{USAGE}");
            2
        }
    }
}

fn serve(args: &[String]) -> i32 {
    let mut bind: std::net::IpAddr = std::net::Ipv4Addr::LOCALHOST.into();
    let mut port: u16 = 0;
    let mut cache_cap: Option<usize> = None;
    let mut prefix_bytes: Option<u64> = Some(autofp_core::PrefixCache::DEFAULT_BYTE_BUDGET);
    let mut trial_store: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bind" => match it.next().map(|v| v.parse::<std::net::IpAddr>()) {
                Some(Ok(ip)) => bind = ip,
                _ => {
                    eprintln!("evald: --bind needs an IP address (e.g. 127.0.0.1 or ::1)");
                    return 2;
                }
            },
            "--port" => match it.next().map(|v| v.parse::<u16>()) {
                Some(Ok(p)) => port = p,
                _ => {
                    eprintln!("evald: --port needs an integer in 0..=65535");
                    return 2;
                }
            },
            "--cache-cap" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => cache_cap = Some(n),
                _ => {
                    eprintln!("evald: --cache-cap needs a non-negative integer");
                    return 2;
                }
            },
            "--prefix-cache-bytes" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(b)) => prefix_bytes = Some(b), // 0 = off (filtered by the service)
                _ => {
                    eprintln!("evald: --prefix-cache-bytes needs a non-negative integer");
                    return 2;
                }
            },
            "--trial-store" => match it.next() {
                Some(dir) if !dir.is_empty() => trial_store = Some(dir.into()),
                _ => {
                    eprintln!("evald: --trial-store needs a directory path");
                    return 2;
                }
            },
            other => {
                eprintln!("evald: unknown serve flag `{other}`\n{USAGE}");
                return 2;
            }
        }
    }
    let mut service = WorkerService::with_caches(cache_cap, prefix_bytes);
    if let Some(dir) = trial_store {
        match autofp_core::TrialRepo::open(&dir) {
            Ok(repo) => service = service.with_trial_repo(repo),
            Err(e) => {
                eprintln!("evald: --trial-store {}: {e}", dir.display());
                return 1;
            }
        }
    }
    let service = Arc::new(service);
    let server = match Server::bind((bind, port), service) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
            eprintln!(
                "evald: port {port} is already in use on {bind} — pick another \
                 --port or use 0 for an OS-assigned one"
            );
            return 1;
        }
        Err(e) => {
            eprintln!("evald: bind {bind}:{port}: {e}");
            return 1;
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("evald: local_addr: {e}");
            return 1;
        }
    };
    // Supervisors block on this exact line; flush so a piped stdout
    // delivers it before the first request arrives.
    println!("{READY_PREFIX}{addr}");
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("evald: serve: {e}");
            1
        }
    }
}

fn rpc(
    args: &[String],
    name: &str,
    f: impl Fn(&str) -> Result<(), autofp_core::EvalError>,
) -> i32 {
    let Some(addr) = args.first() else {
        eprintln!("evald: {name} needs a worker address\n{USAGE}");
        return 2;
    };
    match f(addr) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("evald: {name} {addr}: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_command_and_missing_args_exit_nonzero() {
        assert_eq!(run(argv(&["frobnicate"])), 2);
        assert_eq!(run(argv(&[])), 2);
        assert_eq!(run(argv(&["ping"])), 2);
        assert_eq!(run(argv(&["health"])), 2);
        assert_eq!(run(argv(&["serve", "--port", "notanumber"])), 2);
        assert_eq!(run(argv(&["serve", "--cache-cap"])), 2);
        assert_eq!(run(argv(&["serve", "--prefix-cache-bytes"])), 2);
        assert_eq!(run(argv(&["serve", "--prefix-cache-bytes", "lots"])), 2);
        assert_eq!(run(argv(&["serve", "--trial-store"])), 2);
        assert_eq!(run(argv(&["serve", "--trial-store", ""])), 2);
        assert_eq!(run(argv(&["serve", "--bogus"])), 2);
    }

    #[test]
    fn serve_bind_rejects_malformed_addresses() {
        assert_eq!(run(argv(&["serve", "--bind"])), 2);
        assert_eq!(run(argv(&["serve", "--bind", ""])), 2);
        assert_eq!(run(argv(&["serve", "--bind", "localhost"])), 2);
        assert_eq!(run(argv(&["serve", "--bind", "256.0.0.1"])), 2);
        assert_eq!(run(argv(&["serve", "--bind", "127.0.0.1:9"])), 2);
        assert_eq!(run(argv(&["serve", "--bind", "not an ip"])), 2);
    }

    #[test]
    fn serve_bind_accepts_a_valid_address() {
        // Bind to loopback with an OS-assigned port, then shut the
        // daemon down over its own protocol.
        let holder = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        let port = holder.local_addr().expect("addr").port();
        drop(holder);
        let handle = std::thread::spawn(move || {
            run(argv(&["serve", "--bind", "127.0.0.1", "--port", &port.to_string()]))
        });
        let addr = format!("127.0.0.1:{port}");
        // The daemon needs a beat to bind; retry until it answers.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            if client::ping(&addr, Duration::from_millis(200)).is_ok() {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "daemon never came up");
            std::thread::sleep(Duration::from_millis(20));
        }
        client::shutdown(&addr, RPC_TIMEOUT).expect("shutdown");
        assert_eq!(handle.join().expect("serve thread"), 0);
    }

    #[test]
    fn help_exits_zero() {
        assert_eq!(run(argv(&["--help"])), 0);
        assert_eq!(run(argv(&["help"])), 0);
    }

    #[test]
    fn rpc_against_a_dead_address_exits_one() {
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        };
        // Quick failure: connect to a closed port is immediate on loopback.
        assert_eq!(run(argv(&["ping", &addr])), 1);
        assert_eq!(run(argv(&["health", &addr])), 1);
    }

    #[test]
    fn serve_on_an_already_bound_port_exits_one() {
        let holder = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let port = holder.local_addr().expect("addr").port();
        assert_eq!(run(argv(&["serve", "--port", &port.to_string()])), 1);
    }
}
