//! Client-side transports implementing [`autofp_core::RemoteBackend`].
//!
//! [`TcpBackend`] talks to real worker daemons over persistent pooled
//! connections (checked out per request, checked back in on success,
//! transparently re-dialed when a pooled connection has gone stale),
//! with hard timeouts on every socket operation and all I/O failures
//! mapped to [`EvalError::Transport`] so core's retry/failover policy
//! applies. Each worker slot carries a [`CircuitBreaker`]; once a slot
//! has failed [`crate::fleet::OPEN_AFTER`] consecutive exchanges the
//! backend reports it unroutable and `RemoteEvaluator` routes its keys
//! to their rendezvous successors instead of paying connect timeouts.
//!
//! The backend routes over a [`SharedFleetSpec`]: when a supervisor
//! bumps the epoch (respawn on a new port, resize), every clone of the
//! backend notices at its next request, drops connections to replaced
//! addresses, and resets the affected breakers.
//!
//! [`LoopbackBackend`] runs the same requests against in-process
//! [`WorkerService`]s while still round-tripping every byte through
//! [`crate::wire`] — tests get full protocol coverage without sockets
//! or child processes.

use crate::fleet::{CircuitBreaker, SharedFleetSpec};
use crate::service::WorkerService;
use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, EvalContext, FleetSpec, Request,
    Response, WorkerStats,
};
use autofp_core::{EvalError, FleetStats, RemoteBackend, RemoteInfo, Trial};
use autofp_preprocess::Pipeline;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Idle connections kept per worker slot; checkins beyond this are
/// dropped (the pool only needs to cover the harness's thread count).
const MAX_IDLE_PER_SLOT: usize = 8;

fn transport(detail: impl Into<String>) -> EvalError {
    EvalError::Transport { detail: detail.into() }
}

/// Resolve `addr` to a socket address, mapping failures to transport
/// errors.
fn resolve(addr: &str) -> Result<SocketAddr, EvalError> {
    addr.to_socket_addrs()
        .map_err(|e| transport(format!("resolve `{addr}`: {e}")))?
        .next()
        .ok_or_else(|| transport(format!("`{addr}` resolved to no addresses")))
}

fn dial(addr: &str, timeout: Duration) -> Result<TcpStream, EvalError> {
    let sock = resolve(addr)?;
    let stream = TcpStream::connect_timeout(&sock, timeout)
        .map_err(|e| transport(format!("connect `{addr}`: {e}")))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| transport(format!("set timeouts on `{addr}`: {e}")))?;
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

/// One request/response exchange on an established stream.
fn roundtrip(stream: &mut TcpStream, addr: &str, req: &Request) -> Result<Response, EvalError> {
    write_frame(stream, &encode_request(req))?;
    let payload = read_frame(stream)?
        .ok_or_else(|| transport(format!("`{addr}` closed without answering")))?;
    decode_response(&payload)
}

/// Send one request to `addr` on a fresh connection and wait for the
/// single response frame (the connect-per-request path used by the
/// free helper functions below; the pooled path lives in [`TcpPool`]).
fn call(addr: &str, timeout: Duration, req: &Request) -> Result<Response, EvalError> {
    let mut stream = dial(addr, timeout)?;
    roundtrip(&mut stream, addr, req)
}

fn trial_from(resp: Response, addr: &str) -> Result<Trial, EvalError> {
    match resp {
        Response::Trial { trial, .. } => Ok(trial),
        Response::Error(err) => Err(err),
        other => Err(transport(format!("`{addr}` answered Eval with {other:?}"))),
    }
}

fn info_from(resp: Response, addr: &str) -> Result<RemoteInfo, EvalError> {
    match resp {
        Response::Described { baseline_accuracy, train_rows } => Ok(RemoteInfo {
            baseline_accuracy,
            train_rows: usize::try_from(train_rows).unwrap_or(usize::MAX),
            fleet: FleetStats::default(),
        }),
        Response::Error(err) => Err(err),
        other => Err(transport(format!("`{addr}` answered Describe with {other:?}"))),
    }
}

/// One worker slot's pooled state: its current address, idle
/// connections to that address, and its circuit breaker.
struct SlotState {
    addr: String,
    idle: Vec<TcpStream>,
    breaker: CircuitBreaker,
}

impl SlotState {
    fn new(addr: String) -> SlotState {
        SlotState { addr, idle: Vec::new(), breaker: CircuitBreaker::new() }
    }
}

/// Pool state guarded by one mutex: the epoch it was built against
/// plus per-slot connections and breakers. I/O never happens under
/// the lock — streams are checked out, used, and checked back in.
struct PoolState {
    epoch: u64,
    slots: Vec<SlotState>,
}

struct PoolInner {
    fleet: SharedFleetSpec,
    timeout: Duration,
    state: Mutex<PoolState>,
    reconnects: AtomicU64,
    retries: AtomicU64,
    failovers: AtomicU64,
    circuit_opens: AtomicU64,
}

/// A shareable pool of persistent worker connections over a
/// [`SharedFleetSpec`].
///
/// Clones share connections, breakers and counters; call
/// [`TcpPool::backend`] to bind an evaluation context and get a
/// [`TcpBackend`] for `RemoteEvaluator`. The bench harness builds one
/// pool per run and one backend per (dataset, model) group, so fleet
/// counters aggregate across the whole matrix.
#[derive(Clone)]
pub struct TcpPool {
    inner: Arc<PoolInner>,
}

impl TcpPool {
    /// A pool routing over `fleet`, with `timeout` applied to connect,
    /// read and write individually.
    pub fn new(fleet: SharedFleetSpec, timeout: Duration) -> TcpPool {
        let spec = fleet.snapshot();
        let inner = PoolInner {
            fleet,
            timeout,
            state: Mutex::new(PoolState {
                epoch: spec.epoch,
                slots: spec.addrs.into_iter().map(SlotState::new).collect(),
            }),
            reconnects: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            circuit_opens: AtomicU64::new(0),
        };
        TcpPool { inner: Arc::new(inner) }
    }

    /// A pool over a fixed address list (epoch 1, no supervisor).
    pub fn fixed(addrs: Vec<String>, timeout: Duration) -> TcpPool {
        TcpPool::new(SharedFleetSpec::fixed(addrs), timeout)
    }

    /// Bind an evaluation context, yielding a [`RemoteBackend`] that
    /// shares this pool's connections and counters.
    pub fn backend(&self, ctx: EvalContext) -> TcpBackend {
        TcpBackend { ctx, pool: self.clone() }
    }

    /// The fleet spec handle this pool routes over.
    pub fn fleet(&self) -> SharedFleetSpec {
        self.inner.fleet.clone()
    }

    /// Snapshot of the pool's robustness counters plus the fleet's
    /// epoch/size/respawn bookkeeping.
    pub fn fleet_stats(&self) -> FleetStats {
        let spec = self.inner.fleet.snapshot();
        FleetStats {
            epoch: spec.epoch,
            workers: spec.addrs.len() as u64,
            reconnects: self.inner.reconnects.load(Ordering::Relaxed),
            retries: self.inner.retries.load(Ordering::Relaxed),
            failovers: self.inner.failovers.load(Ordering::Relaxed),
            circuit_opens: self.inner.circuit_opens.load(Ordering::Relaxed),
            respawns: self.inner.fleet.respawns(),
        }
    }

    /// Lock the pool state, first resynchronizing it with the shared
    /// fleet spec: on an epoch change, slots whose address survived
    /// keep their connections and breaker; replaced slots start fresh
    /// (empty pool, closed breaker).
    fn sync(&self) -> std::sync::MutexGuard<'_, PoolState> {
        let mut state = self.inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        let spec = self.inner.fleet.snapshot();
        if spec.epoch != state.epoch {
            let mut old: Vec<SlotState> = state.slots.drain(..).collect();
            state.slots = spec
                .addrs
                .into_iter()
                .enumerate()
                .map(|(i, addr)| {
                    if old.get(i).is_some_and(|s| s.addr == addr) {
                        std::mem::replace(&mut old[i], SlotState::new(String::new()))
                    } else {
                        SlotState::new(addr)
                    }
                })
                .collect();
            state.epoch = spec.epoch;
        }
        state
    }

    fn slot_addr(&self, worker: usize) -> Result<String, EvalError> {
        let state = self.sync();
        state
            .slots
            .get(worker)
            .map(|s| s.addr.clone())
            .ok_or_else(|| transport(format!("no worker {worker}")))
    }

    fn checkout(&self, worker: usize) -> Result<(String, Option<TcpStream>), EvalError> {
        let mut state = self.sync();
        let slot =
            state.slots.get_mut(worker).ok_or_else(|| transport(format!("no worker {worker}")))?;
        Ok((slot.addr.clone(), slot.idle.pop()))
    }

    /// Return a healthy stream to `worker`'s pool — unless the fleet
    /// moved or the pool is full, in which case the stream is dropped.
    fn checkin(&self, worker: usize, addr: &str, stream: TcpStream) {
        let mut state = self.sync();
        if let Some(slot) = state.slots.get_mut(worker) {
            if slot.addr == addr && slot.idle.len() < MAX_IDLE_PER_SLOT {
                slot.idle.push(stream);
            }
        }
    }

    fn record_success(&self, worker: usize) {
        let mut state = self.sync();
        if let Some(slot) = state.slots.get_mut(worker) {
            slot.breaker.record_success();
        }
    }

    fn record_failure(&self, worker: usize) {
        let mut state = self.sync();
        if let Some(slot) = state.slots.get_mut(worker) {
            if slot.breaker.record_failure() {
                self.inner.circuit_opens.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// One request to `worker` over a pooled connection.
    ///
    /// A pooled (previously used) connection that fails mid-exchange
    /// is dropped and the exchange retried once on a fresh dial —
    /// requests are pure evaluations, so a resend is safe. Failures on
    /// a fresh connection are final for this exchange and feed the
    /// slot's breaker.
    fn exchange(&self, worker: usize, req: &Request) -> Result<Response, EvalError> {
        let (addr, pooled) = self.checkout(worker)?;
        if let Some(mut stream) = pooled {
            match roundtrip(&mut stream, &addr, req) {
                Ok(resp) => {
                    self.record_success(worker);
                    self.checkin(worker, &addr, stream);
                    return Ok(resp);
                }
                Err(_) => {
                    // The pooled connection went stale (worker
                    // restarted, idle timeout, half-closed socket).
                    // Re-dial once, transparently.
                    self.inner.reconnects.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let fresh = (|| {
            let mut stream = dial(&addr, self.inner.timeout)?;
            let resp = roundtrip(&mut stream, &addr, req)?;
            Ok((stream, resp))
        })();
        match fresh {
            Ok((stream, resp)) => {
                self.record_success(worker);
                self.checkin(worker, &addr, stream);
                Ok(resp)
            }
            Err(err) => {
                self.record_failure(worker);
                Err(err)
            }
        }
    }
}

/// [`RemoteBackend`] over TCP: one worker daemon per fleet slot,
/// persistent pooled connections, per-slot circuit breakers.
pub struct TcpBackend {
    ctx: EvalContext,
    pool: TcpPool,
}

impl TcpBackend {
    /// A backend over a fixed fleet of `addrs` (one worker daemon
    /// each), evaluating under `ctx`, with `timeout` applied to
    /// connect, read and write individually.
    pub fn new(addrs: Vec<String>, ctx: EvalContext, timeout: Duration) -> TcpBackend {
        TcpPool::fixed(addrs, timeout).backend(ctx)
    }

    /// The same pool bound to a different evaluation context
    /// (connections, breakers and counters are shared).
    pub fn with_context(&self, ctx: EvalContext) -> TcpBackend {
        self.pool.backend(ctx)
    }

    /// The pool this backend exchanges over.
    pub fn pool(&self) -> &TcpPool {
        &self.pool
    }
}

impl RemoteBackend for TcpBackend {
    fn workers(&self) -> usize {
        self.pool.sync().slots.len()
    }

    fn evaluate(&self, worker: usize, pipeline: &Pipeline, fraction: f64) -> Result<Trial, EvalError> {
        let req = Request::Eval { ctx: self.ctx.clone(), pipeline: pipeline.clone(), fraction };
        let addr = self.pool.slot_addr(worker)?;
        trial_from(self.pool.exchange(worker, &req)?, &addr)
    }

    fn describe(&self, worker: usize) -> Result<RemoteInfo, EvalError> {
        let addr = self.pool.slot_addr(worker)?;
        info_from(self.pool.exchange(worker, &Request::Describe(self.ctx.clone()))?, &addr)
    }

    fn epoch(&self) -> u64 {
        self.pool.inner.fleet.epoch()
    }

    fn is_routable(&self, worker: usize) -> bool {
        let mut state = self.pool.sync();
        match state.slots.get_mut(worker) {
            Some(slot) => slot.breaker.should_route(),
            None => false,
        }
    }

    fn note_retry(&self, _worker: usize) {
        self.pool.inner.retries.fetch_add(1, Ordering::Relaxed);
    }

    fn note_failover(&self, _from: usize, _to: usize) {
        self.pool.inner.failovers.fetch_add(1, Ordering::Relaxed);
    }

    fn fleet_stats(&self) -> FleetStats {
        self.pool.fleet_stats()
    }
}

/// [`RemoteBackend`] over in-process services: every request is still
/// encoded, framed, decoded, handled, re-encoded and re-decoded, so a
/// loopback run exercises the exact byte path of a TCP run.
pub struct LoopbackBackend {
    workers: Vec<Arc<WorkerService>>,
    ctx: EvalContext,
}

impl LoopbackBackend {
    /// A backend sharding over in-process `workers` under `ctx`.
    pub fn new(workers: Vec<Arc<WorkerService>>, ctx: EvalContext) -> LoopbackBackend {
        LoopbackBackend { workers, ctx }
    }

    fn call(&self, worker: usize, req: &Request) -> Result<Response, EvalError> {
        let service = self
            .workers
            .get(worker)
            .ok_or_else(|| transport(format!("no worker {worker}")))?;
        // Full wire round-trip in memory.
        let mut frame = Vec::new();
        write_frame(&mut frame, &encode_request(req))?;
        let mut r = &frame[..];
        let payload =
            read_frame(&mut r)?.ok_or_else(|| transport("loopback produced no frame"))?;
        let resp = service.handle(&crate::wire::decode_request(&payload)?);
        let mut frame = Vec::new();
        write_frame(&mut frame, &crate::wire::encode_response(&resp))?;
        let mut r = &frame[..];
        let payload =
            read_frame(&mut r)?.ok_or_else(|| transport("loopback produced no response"))?;
        decode_response(&payload)
    }
}

impl RemoteBackend for LoopbackBackend {
    fn workers(&self) -> usize {
        self.workers.len()
    }

    fn evaluate(&self, worker: usize, pipeline: &Pipeline, fraction: f64) -> Result<Trial, EvalError> {
        let req = Request::Eval { ctx: self.ctx.clone(), pipeline: pipeline.clone(), fraction };
        trial_from(self.call(worker, &req)?, "loopback")
    }

    fn describe(&self, worker: usize) -> Result<RemoteInfo, EvalError> {
        info_from(self.call(worker, &Request::Describe(self.ctx.clone()))?, "loopback")
    }
}

/// Ping the worker at `addr`; `Ok` means it answered `Pong` in time.
pub fn ping(addr: &str, timeout: Duration) -> Result<(), EvalError> {
    match call(addr, timeout, &Request::Ping)? {
        Response::Pong => Ok(()),
        other => Err(transport(format!("`{addr}` answered Ping with {other:?}"))),
    }
}

/// Fetch the worker's cumulative [`WorkerStats`].
pub fn stats(addr: &str, timeout: Duration) -> Result<WorkerStats, EvalError> {
    match call(addr, timeout, &Request::Stats)? {
        Response::Stats(s) => Ok(s),
        other => Err(transport(format!("`{addr}` answered Stats with {other:?}"))),
    }
}

/// A worker's answer to a [`Request::Health`] probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthReport {
    /// Fleet-spec epoch the worker holds (0 until told).
    pub epoch: u64,
    /// Evaluation requests the worker has served.
    pub served: u64,
    /// Distinct evaluation contexts the worker has materialized.
    pub contexts: u64,
}

/// Probe the worker's health (fleet epoch + load counters).
pub fn health(addr: &str, timeout: Duration) -> Result<HealthReport, EvalError> {
    match call(addr, timeout, &Request::Health)? {
        Response::Health { epoch, served, contexts } => {
            Ok(HealthReport { epoch, served, contexts })
        }
        other => Err(transport(format!("`{addr}` answered Health with {other:?}"))),
    }
}

/// Publish `spec` to the worker at `addr`; returns the epoch the
/// worker holds afterwards (== `spec.epoch` when adopted).
pub fn set_fleet(addr: &str, spec: &FleetSpec, timeout: Duration) -> Result<u64, EvalError> {
    match call(addr, timeout, &Request::SetFleet(spec.clone()))? {
        Response::FleetAck { epoch } => Ok(epoch),
        other => Err(transport(format!("`{addr}` answered SetFleet with {other:?}"))),
    }
}

/// Ask the worker at `addr` to exit.
pub fn shutdown(addr: &str, timeout: Duration) -> Result<(), EvalError> {
    match call(addr, timeout, &Request::Shutdown)? {
        Response::Pong => Ok(()),
        other => Err(transport(format!("`{addr}` answered Shutdown with {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::OPEN_AFTER;
    use crate::server::Server;
    use autofp_core::{Evaluate, Evaluator, RemoteEvaluator};
    use autofp_data::spec_by_name;
    use autofp_models::classifier::ModelKind;
    use autofp_preprocess::PreprocKind;

    fn ctx() -> EvalContext {
        EvalContext {
            dataset: "blood".to_string(),
            scale: 0.2,
            model: ModelKind::Lr,
            train_fraction: 0.8,
            seed: 3,
            train_subsample: None,
        }
    }

    fn local_evaluator() -> Evaluator {
        let spec = spec_by_name("blood").expect("blood in registry");
        Evaluator::new(&spec.generate(0.2), ctx().eval_config())
    }

    #[test]
    fn loopback_matches_local_evaluation_bit_exactly() {
        let backend = LoopbackBackend::new(
            vec![Arc::new(WorkerService::new()), Arc::new(WorkerService::new())],
            ctx(),
        );
        let remote = RemoteEvaluator::new(Box::new(backend), ctx().eval_config());
        let local = local_evaluator();
        assert_eq!(remote.baseline_accuracy().to_bits(), local.baseline_accuracy().to_bits());
        assert_eq!(remote.train_rows(), local.train_rows());
        for kinds in [
            vec![],
            vec![PreprocKind::StandardScaler],
            vec![PreprocKind::MinMaxScaler, PreprocKind::PowerTransformer],
            vec![PreprocKind::Normalizer, PreprocKind::QuantileTransformer],
        ] {
            let p = Pipeline::from_kinds(&kinds);
            let r = remote.try_evaluate(&p).expect("remote evaluates");
            let l = local.evaluate(&p);
            assert_eq!(r.accuracy.to_bits(), l.accuracy.to_bits(), "{p}");
            assert_eq!(r.error.to_bits(), l.error.to_bits(), "{p}");
            assert_eq!(r.failure, l.failure, "{p}");
        }
    }

    #[test]
    fn tcp_backend_round_trips_and_reuses_pooled_connections() {
        let server = Server::bind("127.0.0.1:0", Arc::new(WorkerService::new())).expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let handle = std::thread::spawn(move || server.run());

        ping(&addr, Duration::from_secs(5)).expect("ping");
        let backend = TcpBackend::new(vec![addr.clone()], ctx(), Duration::from_secs(30));
        let remote = RemoteEvaluator::new(Box::new(backend), ctx().eval_config());
        let local = local_evaluator();
        let p = Pipeline::from_kinds(&[PreprocKind::StandardScaler]);
        let r = remote.try_evaluate(&p).expect("remote evaluates");
        assert_eq!(r.accuracy.to_bits(), local.evaluate(&p).accuracy.to_bits());
        // A second request reuses the pooled connection without any
        // reconnect being recorded.
        let p2 = Pipeline::from_kinds(&[PreprocKind::MinMaxScaler]);
        let _ = remote.try_evaluate(&p2).expect("remote evaluates again");
        let fleet = remote.remote_info().fleet;
        assert_eq!(fleet.reconnects, 0);
        assert_eq!(fleet.workers, 1);
        assert_eq!(fleet.epoch, 1);

        let s = stats(&addr, Duration::from_secs(5)).expect("stats");
        // Describe (baseline probe) built the context; two evals served.
        assert_eq!(s.served, 2);
        assert_eq!(s.contexts, 1);

        let h = health(&addr, Duration::from_secs(5)).expect("health");
        assert_eq!(h, HealthReport { epoch: 0, served: 2, contexts: 1 });

        shutdown(&addr, Duration::from_secs(5)).expect("shutdown");
        handle.join().expect("server thread").expect("server run");
    }

    /// A minimal TCP server that answers exactly one request per
    /// connection, then closes it — which makes every pooled
    /// connection stale on its second use.
    fn one_shot_server() -> (String, std::thread::JoinHandle<()>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let svc = WorkerService::new();
        let handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { return };
                let Ok(Some(payload)) = read_frame(&mut stream) else { return };
                let Ok(req) = crate::wire::decode_request(&payload) else { return };
                if matches!(req, Request::Shutdown) {
                    let _ = write_frame(&mut stream, &crate::wire::encode_response(&Response::Pong));
                    return;
                }
                let resp = svc.handle(&req);
                let _ = write_frame(&mut stream, &crate::wire::encode_response(&resp));
                // Connection dropped here: one request per connection.
            }
        });
        (addr, handle)
    }

    #[test]
    fn stale_pooled_connection_reconnects_transparently() {
        let (addr, handle) = one_shot_server();
        let pool = TcpPool::fixed(vec![addr.clone()], Duration::from_secs(5));
        let backend = pool.backend(ctx());
        let p = Pipeline::empty();
        // First evaluate dials fresh; the server closes after
        // answering, so the checked-in connection is stale.
        backend.evaluate(0, &p, 1.0).expect("first evaluate");
        // Second evaluate finds the stale connection, re-dials, and
        // still succeeds — counted as exactly one reconnect.
        backend.evaluate(0, &p, 1.0).expect("second evaluate (reconnected)");
        assert_eq!(pool.fleet_stats().reconnects, 1);
        assert_eq!(pool.fleet_stats().circuit_opens, 0);
        shutdown(&addr, Duration::from_secs(5)).expect("stop one-shot server");
        handle.join().expect("server thread");
    }

    #[test]
    fn dead_worker_opens_its_circuit_and_reports_unroutable() {
        // Bind-then-drop guarantees a port with no listener.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        };
        let pool = TcpPool::fixed(vec![addr], Duration::from_millis(200));
        let backend = pool.backend(ctx());
        let p = Pipeline::empty();
        for _ in 0..OPEN_AFTER {
            assert!(backend.evaluate(0, &p, 1.0).is_err());
        }
        let stats = pool.fleet_stats();
        assert_eq!(stats.circuit_opens, 1, "one closed->open edge");
        assert!(!backend.is_routable(0), "open circuit reports unroutable");
    }

    #[test]
    fn epoch_bump_resynchronizes_the_pool() {
        let fleet = SharedFleetSpec::fixed(vec!["127.0.0.1:1".into()]);
        let pool = TcpPool::new(fleet.clone(), Duration::from_millis(200));
        let backend = pool.backend(ctx());
        assert_eq!(backend.workers(), 1);
        assert_eq!(backend.epoch(), 1);
        // Open the dead slot's circuit.
        for _ in 0..OPEN_AFTER {
            assert!(backend.evaluate(0, &Pipeline::empty(), 1.0).is_err());
        }
        assert!(!backend.is_routable(0));
        // A supervisor publishes a new spec: the slot's address
        // changed, so its breaker resets and the fleet grows.
        fleet.publish(FleetSpec {
            epoch: 2,
            addrs: vec!["127.0.0.1:2".into(), "127.0.0.1:3".into()],
        });
        assert_eq!(backend.workers(), 2);
        assert_eq!(backend.epoch(), 2);
        assert!(backend.is_routable(0), "replaced slot starts with a closed breaker");
        assert_eq!(pool.fleet_stats().epoch, 2);
        assert_eq!(pool.fleet_stats().workers, 2);
    }

    #[test]
    fn dead_address_is_a_transport_error() {
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        };
        let err = ping(&addr, Duration::from_millis(300)).expect_err("dead worker");
        assert!(matches!(err, EvalError::Transport { .. }), "{err:?}");
        let backend = TcpBackend::new(vec![addr], ctx(), Duration::from_millis(300));
        let err = backend
            .evaluate(0, &Pipeline::empty(), 1.0)
            .expect_err("dead worker evaluate");
        assert!(matches!(err, EvalError::Transport { .. }), "{err:?}");
    }

    #[test]
    fn out_of_range_worker_index_is_a_transport_error() {
        let backend = LoopbackBackend::new(vec![Arc::new(WorkerService::new())], ctx());
        let err = backend.evaluate(5, &Pipeline::empty(), 1.0).expect_err("bad index");
        assert!(matches!(err, EvalError::Transport { .. }), "{err:?}");
        let tcp = TcpBackend::new(vec![], ctx(), Duration::from_millis(100));
        let err = tcp.evaluate(0, &Pipeline::empty(), 1.0).expect_err("no slots");
        assert!(matches!(err, EvalError::Transport { .. }), "{err:?}");
        assert!(!tcp.is_routable(0));
    }

    #[test]
    fn server_side_failure_comes_back_as_the_original_error() {
        let bad = EvalContext { dataset: "nope".into(), ..ctx() };
        let backend = LoopbackBackend::new(vec![Arc::new(WorkerService::new())], bad);
        let err = backend.evaluate(0, &Pipeline::empty(), 1.0).expect_err("unknown dataset");
        assert!(
            matches!(err, EvalError::Transport { ref detail } if detail.contains("unknown dataset")),
            "{err:?}"
        );
    }
}
