//! Client-side transports implementing [`autofp_core::RemoteBackend`].
//!
//! [`TcpBackend`] talks to real worker daemons (connect-per-request,
//! hard timeouts on every socket operation, all I/O failures mapped to
//! [`EvalError::Transport`] so core's retry/worst-error policy
//! applies). [`LoopbackBackend`] runs the same request against
//! in-process [`WorkerService`]s while still round-tripping every byte
//! through [`crate::wire`] — tests get full protocol coverage without
//! sockets or child processes.

use crate::service::WorkerService;
use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, EvalContext, Request, Response,
    WorkerStats,
};
use autofp_core::{EvalError, RemoteBackend, RemoteInfo, Trial};
use autofp_preprocess::Pipeline;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

fn transport(detail: impl Into<String>) -> EvalError {
    EvalError::Transport { detail: detail.into() }
}

/// Resolve `addr` to a socket address, mapping failures to transport
/// errors.
fn resolve(addr: &str) -> Result<SocketAddr, EvalError> {
    addr.to_socket_addrs()
        .map_err(|e| transport(format!("resolve `{addr}`: {e}")))?
        .next()
        .ok_or_else(|| transport(format!("`{addr}` resolved to no addresses")))
}

/// Send one request to `addr` and wait for the single response frame.
fn call(addr: &str, timeout: Duration, req: &Request) -> Result<Response, EvalError> {
    let sock = resolve(addr)?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)
        .map_err(|e| transport(format!("connect `{addr}`: {e}")))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| transport(format!("set timeouts on `{addr}`: {e}")))?;
    let _ = stream.set_nodelay(true);
    write_frame(&mut stream, &encode_request(req))?;
    let payload = read_frame(&mut stream)?
        .ok_or_else(|| transport(format!("`{addr}` closed without answering")))?;
    decode_response(&payload)
}

fn trial_from(resp: Response, addr: &str) -> Result<Trial, EvalError> {
    match resp {
        Response::Trial { trial, .. } => Ok(trial),
        Response::Error(err) => Err(err),
        other => Err(transport(format!("`{addr}` answered Eval with {other:?}"))),
    }
}

fn info_from(resp: Response, addr: &str) -> Result<RemoteInfo, EvalError> {
    match resp {
        Response::Described { baseline_accuracy, train_rows } => Ok(RemoteInfo {
            baseline_accuracy,
            train_rows: usize::try_from(train_rows).unwrap_or(usize::MAX),
        }),
        Response::Error(err) => Err(err),
        other => Err(transport(format!("`{addr}` answered Describe with {other:?}"))),
    }
}

/// [`RemoteBackend`] over TCP: one worker daemon per address, one
/// connection per request.
///
/// Connect-per-request keeps the failure model simple (a dead worker is
/// a connection error on exactly the requests routed to it, never a
/// wedged persistent stream) at a per-request cost that is negligible
/// next to an evaluation.
pub struct TcpBackend {
    addrs: Vec<String>,
    ctx: EvalContext,
    timeout: Duration,
}

impl TcpBackend {
    /// A backend sharding over `addrs` (one worker daemon each),
    /// evaluating under `ctx`, with `timeout` applied to connect, read
    /// and write individually.
    pub fn new(addrs: Vec<String>, ctx: EvalContext, timeout: Duration) -> TcpBackend {
        TcpBackend { addrs, ctx, timeout }
    }
}

impl RemoteBackend for TcpBackend {
    fn workers(&self) -> usize {
        self.addrs.len()
    }

    fn evaluate(&self, worker: usize, pipeline: &Pipeline, fraction: f64) -> Result<Trial, EvalError> {
        let addr = self
            .addrs
            .get(worker)
            .ok_or_else(|| transport(format!("no worker {worker}")))?;
        let req = Request::Eval { ctx: self.ctx.clone(), pipeline: pipeline.clone(), fraction };
        trial_from(call(addr, self.timeout, &req)?, addr)
    }

    fn describe(&self, worker: usize) -> Result<RemoteInfo, EvalError> {
        let addr = self
            .addrs
            .get(worker)
            .ok_or_else(|| transport(format!("no worker {worker}")))?;
        info_from(call(addr, self.timeout, &Request::Describe(self.ctx.clone()))?, addr)
    }
}

/// [`RemoteBackend`] over in-process services: every request is still
/// encoded, framed, decoded, handled, re-encoded and re-decoded, so a
/// loopback run exercises the exact byte path of a TCP run.
pub struct LoopbackBackend {
    workers: Vec<Arc<WorkerService>>,
    ctx: EvalContext,
}

impl LoopbackBackend {
    /// A backend sharding over in-process `workers` under `ctx`.
    pub fn new(workers: Vec<Arc<WorkerService>>, ctx: EvalContext) -> LoopbackBackend {
        LoopbackBackend { workers, ctx }
    }

    fn call(&self, worker: usize, req: &Request) -> Result<Response, EvalError> {
        let service = self
            .workers
            .get(worker)
            .ok_or_else(|| transport(format!("no worker {worker}")))?;
        // Full wire round-trip in memory.
        let mut frame = Vec::new();
        write_frame(&mut frame, &encode_request(req))?;
        let mut r = &frame[..];
        let payload =
            read_frame(&mut r)?.ok_or_else(|| transport("loopback produced no frame"))?;
        let resp = service.handle(&crate::wire::decode_request(&payload)?);
        let mut frame = Vec::new();
        write_frame(&mut frame, &crate::wire::encode_response(&resp))?;
        let mut r = &frame[..];
        let payload =
            read_frame(&mut r)?.ok_or_else(|| transport("loopback produced no response"))?;
        decode_response(&payload)
    }
}

impl RemoteBackend for LoopbackBackend {
    fn workers(&self) -> usize {
        self.workers.len()
    }

    fn evaluate(&self, worker: usize, pipeline: &Pipeline, fraction: f64) -> Result<Trial, EvalError> {
        let req = Request::Eval { ctx: self.ctx.clone(), pipeline: pipeline.clone(), fraction };
        trial_from(self.call(worker, &req)?, "loopback")
    }

    fn describe(&self, worker: usize) -> Result<RemoteInfo, EvalError> {
        info_from(self.call(worker, &Request::Describe(self.ctx.clone()))?, "loopback")
    }
}

/// Ping the worker at `addr`; `Ok` means it answered `Pong` in time.
pub fn ping(addr: &str, timeout: Duration) -> Result<(), EvalError> {
    match call(addr, timeout, &Request::Ping)? {
        Response::Pong => Ok(()),
        other => Err(transport(format!("`{addr}` answered Ping with {other:?}"))),
    }
}

/// Fetch the worker's cumulative [`WorkerStats`].
pub fn stats(addr: &str, timeout: Duration) -> Result<WorkerStats, EvalError> {
    match call(addr, timeout, &Request::Stats)? {
        Response::Stats(s) => Ok(s),
        other => Err(transport(format!("`{addr}` answered Stats with {other:?}"))),
    }
}

/// Ask the worker at `addr` to exit.
pub fn shutdown(addr: &str, timeout: Duration) -> Result<(), EvalError> {
    match call(addr, timeout, &Request::Shutdown)? {
        Response::Pong => Ok(()),
        other => Err(transport(format!("`{addr}` answered Shutdown with {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use autofp_core::{Evaluate, Evaluator, RemoteEvaluator};
    use autofp_data::spec_by_name;
    use autofp_models::classifier::ModelKind;
    use autofp_preprocess::PreprocKind;

    fn ctx() -> EvalContext {
        EvalContext {
            dataset: "blood".to_string(),
            scale: 0.2,
            model: ModelKind::Lr,
            train_fraction: 0.8,
            seed: 3,
            train_subsample: None,
        }
    }

    fn local_evaluator() -> Evaluator {
        let spec = spec_by_name("blood").expect("blood in registry");
        Evaluator::new(&spec.generate(0.2), ctx().eval_config())
    }

    #[test]
    fn loopback_matches_local_evaluation_bit_exactly() {
        let backend = LoopbackBackend::new(
            vec![Arc::new(WorkerService::new()), Arc::new(WorkerService::new())],
            ctx(),
        );
        let remote = RemoteEvaluator::new(Box::new(backend), ctx().eval_config());
        let local = local_evaluator();
        assert_eq!(remote.baseline_accuracy().to_bits(), local.baseline_accuracy().to_bits());
        assert_eq!(remote.train_rows(), local.train_rows());
        for kinds in [
            vec![],
            vec![PreprocKind::StandardScaler],
            vec![PreprocKind::MinMaxScaler, PreprocKind::PowerTransformer],
            vec![PreprocKind::Normalizer, PreprocKind::QuantileTransformer],
        ] {
            let p = Pipeline::from_kinds(&kinds);
            let r = remote.try_evaluate(&p).expect("remote evaluates");
            let l = local.evaluate(&p);
            assert_eq!(r.accuracy.to_bits(), l.accuracy.to_bits(), "{p}");
            assert_eq!(r.error.to_bits(), l.error.to_bits(), "{p}");
            assert_eq!(r.failure, l.failure, "{p}");
        }
    }

    #[test]
    fn tcp_backend_round_trips_against_a_real_server() {
        let server = Server::bind("127.0.0.1:0", Arc::new(WorkerService::new())).expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let handle = std::thread::spawn(move || server.run());

        ping(&addr, Duration::from_secs(5)).expect("ping");
        let backend = TcpBackend::new(vec![addr.clone()], ctx(), Duration::from_secs(30));
        let remote = RemoteEvaluator::new(Box::new(backend), ctx().eval_config());
        let local = local_evaluator();
        let p = Pipeline::from_kinds(&[PreprocKind::StandardScaler]);
        let r = remote.try_evaluate(&p).expect("remote evaluates");
        assert_eq!(r.accuracy.to_bits(), local.evaluate(&p).accuracy.to_bits());

        let s = stats(&addr, Duration::from_secs(5)).expect("stats");
        // Describe (baseline probe) built the context; one eval served.
        assert_eq!(s.served, 1);
        assert_eq!(s.contexts, 1);

        shutdown(&addr, Duration::from_secs(5)).expect("shutdown");
        handle.join().expect("server thread").expect("server run");
    }

    #[test]
    fn dead_address_is_a_transport_error() {
        // Bind-then-drop guarantees a port with no listener.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        };
        let err = ping(&addr, Duration::from_millis(300)).expect_err("dead worker");
        assert!(matches!(err, EvalError::Transport { .. }), "{err:?}");
        let backend = TcpBackend::new(vec![addr], ctx(), Duration::from_millis(300));
        let err = backend
            .evaluate(0, &Pipeline::empty(), 1.0)
            .expect_err("dead worker evaluate");
        assert!(matches!(err, EvalError::Transport { .. }), "{err:?}");
    }

    #[test]
    fn out_of_range_worker_index_is_a_transport_error() {
        let backend = LoopbackBackend::new(vec![Arc::new(WorkerService::new())], ctx());
        let err = backend.evaluate(5, &Pipeline::empty(), 1.0).expect_err("bad index");
        assert!(matches!(err, EvalError::Transport { .. }), "{err:?}");
    }

    #[test]
    fn server_side_failure_comes_back_as_the_original_error() {
        let bad = EvalContext { dataset: "nope".into(), ..ctx() };
        let backend = LoopbackBackend::new(vec![Arc::new(WorkerService::new())], bad);
        let err = backend.evaluate(0, &Pipeline::empty(), 1.0).expect_err("unknown dataset");
        assert!(
            matches!(err, EvalError::Transport { ref detail } if detail.contains("unknown dataset")),
            "{err:?}"
        );
    }
}
