//! The worker's transport-agnostic request handler.
//!
//! A [`WorkerService`] owns one [`Evaluator`] + [`SharedEvalCache`]
//! pair per distinct [`EvalContext`] it has been asked about, built
//! lazily by regenerating the named dataset from the registry — dataset
//! generation is seeded purely by the dataset name, so every worker
//! process materializes bit-identical data and its trials match an
//! in-process evaluation exactly.
//!
//! Each context's evaluator also carries its own prefix-transform
//! cache ([`autofp_core::PrefixCache`], on by default at
//! [`PrefixCache::DEFAULT_BYTE_BUDGET`]): a remote worker sees the
//! same long shared pipeline prefixes the searchers generate, and
//! serving the transform suffix instead of the whole pipeline is
//! bit-identical to the uncached path, so the per-worker cache never
//! threatens cross-process reproducibility.
//!
//! The service is deliberately transport-free: [`crate::server`] feeds
//! it decoded frames from TCP, [`crate::client::LoopbackBackend`] feeds
//! it the same frames in memory, and both get byte-identical responses.

use crate::wire::{EvalContext, FleetSpec, Request, Response, WorkerStats};
use autofp_core::{
    EvalError, Evaluator, PrefixCache, SharedEvalCache, SharedPrefixCache, SharedTrialStore,
    StoreMeta, TrialRepo,
};
use autofp_data::spec_by_name;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One materialized evaluation context: the evaluator (dataset split,
/// trainer, baseline) plus its process-local trial cache and, when the
/// worker runs with a trial repository, the durable segment the cache
/// preloaded from and writes through to.
struct ContextState {
    evaluator: Evaluator,
    cache: SharedEvalCache,
    store: Option<SharedTrialStore>,
}

/// The worker daemon's brain: maps requests to responses.
///
/// Thread-safe behind `&self` — the TCP server handles each connection
/// on its own thread against one shared `Arc<WorkerService>`.
pub struct WorkerService {
    /// LRU capacity for each context's cache (`None` = unbounded).
    cache_capacity: Option<usize>,
    /// Byte budget for each context's prefix-transform cache
    /// (`None` = disabled, `Some(b)` = on, LRU-bounded at `b` bytes).
    prefix_bytes: Option<u64>,
    /// Durable trial repository: when set, every context's cache is
    /// preloaded from its on-disk segment at materialization and
    /// writes finished trials through to it, so a respawned worker
    /// resumes with everything its predecessors evaluated.
    repo: Option<TrialRepo>,
    /// Context canonical string -> materialized state. A `BTreeMap`
    /// keeps stats aggregation in deterministic order.
    contexts: Mutex<BTreeMap<String, Arc<ContextState>>>,
    /// Evaluation requests handled (cache hits included).
    served: AtomicU64,
    /// The fleet spec this worker last adopted (epoch 0, empty until a
    /// supervisor publishes one via [`Request::SetFleet`]).
    fleet: Mutex<FleetSpec>,
}

impl WorkerService {
    /// A service whose per-context trial caches are unbounded and
    /// whose prefix caches run at the default byte budget.
    pub fn new() -> WorkerService {
        WorkerService::with_cache_capacity(None)
    }

    /// A service whose per-context caches are LRU-capped at `capacity`
    /// entries (`None` = unbounded, `Some(0)` = effectively disabled:
    /// every insert is immediately evicted). Prefix caches stay at the
    /// default byte budget.
    pub fn with_cache_capacity(capacity: Option<usize>) -> WorkerService {
        WorkerService::with_caches(capacity, Some(PrefixCache::DEFAULT_BYTE_BUDGET))
    }

    /// Full cache control: trial-cache entry capacity plus the
    /// prefix-transform cache byte budget (`None` = prefix cache off;
    /// a `Some(0)` budget also admits nothing, so callers mapping a
    /// `--prefix-cache-bytes 0` flag may pass either).
    pub fn with_caches(capacity: Option<usize>, prefix_bytes: Option<u64>) -> WorkerService {
        WorkerService {
            cache_capacity: capacity,
            prefix_bytes: prefix_bytes.filter(|&b| b > 0),
            repo: None,
            contexts: Mutex::new(BTreeMap::new()),
            served: AtomicU64::new(0),
            fleet: Mutex::new(FleetSpec::default()),
        }
    }

    /// Attach a durable trial repository (`--trial-store`): every
    /// context materialized from now on preloads its segment and
    /// writes finished trials through to it. Builder-style, applied
    /// before the service starts handling requests.
    pub fn with_trial_repo(mut self, repo: TrialRepo) -> WorkerService {
        self.repo = Some(repo);
        self
    }

    /// The fleet spec this worker currently holds.
    pub fn fleet(&self) -> FleetSpec {
        self.fleet.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Adopt `spec` unless it is older than the one held (epochs are
    /// monotonic; a slow supervisor must not roll the fleet back).
    /// Returns the epoch held afterwards.
    fn adopt_fleet(&self, spec: &FleetSpec) -> u64 {
        let mut held = self.fleet.lock().unwrap_or_else(PoisonError::into_inner);
        if spec.epoch >= held.epoch {
            *held = spec.clone();
        }
        held.epoch
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Arc<ContextState>>> {
        // A panic while holding the lock can only come from evaluator
        // construction; the map itself is never left half-written, so
        // recover the guard instead of wedging the worker.
        self.contexts.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Fast path: an already-materialized context. A single lock
    /// acquisition on a temporary guard — nothing is held on return.
    fn cached(&self, key: &str) -> Option<Arc<ContextState>> {
        self.lock().get(key).map(Arc::clone)
    }

    /// Publish `state` under `key`. A racing duplicate build loses the
    /// race and the first insert wins (the contents are identical
    /// either way). Single lock acquisition.
    fn intern(&self, key: String, state: Arc<ContextState>) -> Arc<ContextState> {
        let mut map = self.lock();
        Arc::clone(map.entry(key).or_insert_with(|| state))
    }

    /// The materialized state for `ctx`, building it on first use.
    /// Lookup and publish are separate single-acquisition helpers so
    /// no lock is held across the expensive build (and so the
    /// lock-order rule can see each acquisition stands alone).
    fn context(&self, ctx: &EvalContext) -> Result<Arc<ContextState>, EvalError> {
        if !(ctx.scale > 0.0 && ctx.scale <= 1.0) {
            return Err(EvalError::Transport {
                detail: format!("context scale {} outside (0, 1]", ctx.scale),
            });
        }
        let key = ctx.canonical();
        if let Some(state) = self.cached(&key) {
            return Ok(state);
        }
        let spec = spec_by_name(&ctx.dataset).ok_or_else(|| EvalError::Transport {
            detail: format!("unknown dataset `{}`", ctx.dataset),
        })?;
        // Generate outside the lock: dataset materialization is the
        // expensive part and is deterministic, so a racing duplicate
        // build produces an identical evaluator and the first insert
        // wins below.
        let dataset = spec.generate(ctx.scale);
        let mut evaluator = Evaluator::new(&dataset, ctx.eval_config());
        if let Some(bytes) = self.prefix_bytes {
            evaluator = evaluator.with_prefix_cache(SharedPrefixCache::with_byte_budget(bytes));
        }
        let cache = match self.cache_capacity {
            Some(cap) => SharedEvalCache::with_capacity(cap),
            None => SharedEvalCache::new(),
        };
        let store = match &self.repo {
            Some(repo) => Some(durable_segment(repo, &key, &evaluator, &cache)?),
            None => None,
        };
        let state = Arc::new(ContextState { evaluator, cache, store });
        Ok(self.intern(key, state))
    }

    /// Cumulative counters: requests served, contexts built, and every
    /// context's cache counters folded together.
    pub fn stats(&self) -> WorkerStats {
        let map = self.lock();
        let mut out = WorkerStats {
            served: self.served.load(Ordering::Relaxed),
            contexts: map.len() as u64,
            ..WorkerStats::default()
        };
        for state in map.values() {
            let s = state.cache.stats();
            out.hits += s.hits;
            out.misses += s.misses;
            out.entries += s.entries as u64;
            out.evictions += s.evictions;
            out.saved_nanos = out
                .saved_nanos
                .saturating_add(u64::try_from(s.saved.as_nanos()).unwrap_or(u64::MAX));
            if let Some(p) = state.evaluator.prefix_cache().map(|c| c.stats()) {
                out.prefix_hits += p.hits;
                out.prefix_misses += p.misses;
                out.prefix_evictions += p.evictions;
                out.prefix_steps_saved += p.steps_saved;
            }
            if let Some(store) = &state.store {
                out.preloaded += store.stats().preloaded;
            }
        }
        out
    }

    /// Serve one request. Total: every failure mode becomes
    /// [`Response::Error`], and evaluation itself is shielded (a
    /// panicking pipeline yields a worst-error trial, not a dead
    /// worker).
    pub fn handle(&self, req: &Request) -> Response {
        match req {
            Request::Ping | Request::Shutdown => Response::Pong,
            Request::Stats => Response::Stats(self.stats()),
            Request::Health => {
                let map = self.lock();
                let contexts = map.len() as u64;
                drop(map);
                Response::Health {
                    epoch: self.fleet.lock().unwrap_or_else(PoisonError::into_inner).epoch,
                    served: self.served.load(Ordering::Relaxed),
                    contexts,
                }
            }
            Request::SetFleet(spec) => Response::FleetAck { epoch: self.adopt_fleet(spec) },
            Request::Describe(ctx) => match self.context(ctx) {
                Ok(state) => Response::Described {
                    baseline_accuracy: state.evaluator.baseline_accuracy(),
                    train_rows: state.evaluator.split().train.n_rows() as u64,
                },
                Err(err) => Response::Error(err),
            },
            Request::Eval { ctx, pipeline, fraction } => match self.context(ctx) {
                Ok(state) => {
                    let trial =
                        state.evaluator.evaluate_cached(pipeline, *fraction, &state.cache);
                    self.served.fetch_add(1, Ordering::Relaxed);
                    Response::Trial { trial, stats: self.stats() }
                }
                Err(err) => Response::Error(err),
            },
        }
    }
}

impl Default for WorkerService {
    fn default() -> Self {
        WorkerService::new()
    }
}

/// Open `context`'s durable segment, record the evaluator's identity
/// meta, and preload + attach the context cache. Store failures
/// surface as transport errors (retryable, never cached): the worker
/// refuses to serve a context whose persisted identity conflicts with
/// the evaluator it just built rather than mixing trials from two
/// different worlds.
fn durable_segment(
    repo: &TrialRepo,
    context: &str,
    evaluator: &Evaluator,
    cache: &SharedEvalCache,
) -> Result<SharedTrialStore, EvalError> {
    let transport = |err: autofp_core::RepoError| EvalError::Transport {
        detail: format!("trial store: {err}"),
    };
    let store = repo.open_context(context).map_err(transport)?;
    store
        .set_meta(StoreMeta {
            baseline_accuracy: evaluator.baseline_accuracy(),
            train_rows: evaluator.split().train.n_rows() as u64,
        })
        .map_err(transport)?;
    cache.preload_from(&store);
    cache.attach_store(store.clone());
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_models::classifier::ModelKind;
    use autofp_preprocess::{Pipeline, PreprocKind};

    fn ctx() -> EvalContext {
        EvalContext {
            dataset: "heart".to_string(),
            scale: 0.5,
            model: ModelKind::Lr,
            train_fraction: 0.8,
            seed: 7,
            train_subsample: None,
        }
    }

    #[test]
    fn eval_matches_local_evaluator_bit_exactly() {
        let svc = WorkerService::new();
        let pipeline = Pipeline::from_kinds(&[PreprocKind::StandardScaler]);
        let resp = svc.handle(&Request::Eval { ctx: ctx(), pipeline: pipeline.clone(), fraction: 1.0 });
        let Response::Trial { trial, stats } = resp else { panic!("expected Trial, got {resp:?}") };

        let spec = spec_by_name("heart").expect("heart in registry");
        let local = Evaluator::new(&spec.generate(0.5), ctx().eval_config());
        let expect = local.evaluate(&pipeline);
        assert_eq!(trial.accuracy.to_bits(), expect.accuracy.to_bits());
        assert_eq!(trial.pipeline, expect.pipeline);
        assert_eq!(stats.served, 1);
        assert_eq!(stats.contexts, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn repeat_eval_hits_the_context_cache() {
        let svc = WorkerService::new();
        let req = Request::Eval {
            ctx: ctx(),
            pipeline: Pipeline::from_kinds(&[PreprocKind::MinMaxScaler]),
            fraction: 1.0,
        };
        let first = svc.handle(&req);
        let second = svc.handle(&req);
        let (Response::Trial { trial: a, .. }, Response::Trial { trial: b, stats }) =
            (first, second)
        else {
            panic!("expected two Trial responses");
        };
        assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.served, 2);
    }

    #[test]
    fn distinct_contexts_get_distinct_caches() {
        let svc = WorkerService::new();
        let p = Pipeline::empty();
        let other = EvalContext { seed: 8, ..ctx() };
        let _ = svc.handle(&Request::Eval { ctx: ctx(), pipeline: p.clone(), fraction: 1.0 });
        let _ = svc.handle(&Request::Eval { ctx: other, pipeline: p, fraction: 1.0 });
        let stats = svc.stats();
        assert_eq!(stats.contexts, 2);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn describe_reports_baseline_and_rows() {
        let svc = WorkerService::new();
        let resp = svc.handle(&Request::Describe(ctx()));
        let Response::Described { baseline_accuracy, train_rows } = resp else {
            panic!("expected Described, got {resp:?}");
        };
        assert!((0.0..=1.0).contains(&baseline_accuracy));
        // heart at scale 0.5 = 121 rows; the stratified 80:20 split
        // rounds per class, giving 97 training rows.
        assert_eq!(train_rows, 97);
    }

    #[test]
    fn unknown_dataset_and_bad_scale_are_errors_not_panics() {
        let svc = WorkerService::new();
        let bad_name = EvalContext { dataset: "no-such-dataset".into(), ..ctx() };
        let resp = svc.handle(&Request::Describe(bad_name));
        assert!(
            matches!(resp, Response::Error(EvalError::Transport { ref detail })
                if detail.contains("unknown dataset")),
            "{resp:?}"
        );
        let bad_scale = EvalContext { scale: 0.0, ..ctx() };
        let resp = svc.handle(&Request::Describe(bad_scale));
        assert!(matches!(resp, Response::Error(EvalError::Transport { .. })), "{resp:?}");
        let nan_scale = EvalContext { scale: f64::NAN, ..ctx() };
        let resp = svc.handle(&Request::Describe(nan_scale));
        assert!(matches!(resp, Response::Error(EvalError::Transport { .. })), "{resp:?}");
    }

    #[test]
    fn prefix_cache_counters_reach_worker_stats() {
        let svc = WorkerService::new();
        let shared = Pipeline::from_kinds(&[PreprocKind::StandardScaler, PreprocKind::Normalizer]);
        let extended =
            Pipeline::from_kinds(&[PreprocKind::StandardScaler, PreprocKind::Normalizer, PreprocKind::MinMaxScaler]);
        let _ = svc.handle(&Request::Eval { ctx: ctx(), pipeline: shared, fraction: 1.0 });
        let resp = svc.handle(&Request::Eval { ctx: ctx(), pipeline: extended, fraction: 1.0 });
        let Response::Trial { stats, .. } = resp else { panic!("expected Trial, got {resp:?}") };
        // The second pipeline extends the first, so its deepest-prefix
        // probe hits and skips both shared transform steps.
        assert_eq!(stats.prefix_hits, 1);
        assert_eq!(stats.prefix_misses, 1);
        assert_eq!(stats.prefix_steps_saved, 2);
    }

    #[test]
    fn prefix_cache_bytes_zero_disables_the_layer() {
        let svc = WorkerService::with_caches(None, Some(0));
        let p = Pipeline::from_kinds(&[PreprocKind::StandardScaler]);
        let resp = svc.handle(&Request::Eval { ctx: ctx(), pipeline: p, fraction: 1.0 });
        let Response::Trial { stats, .. } = resp else { panic!("expected Trial, got {resp:?}") };
        assert_eq!(stats.prefix_hits + stats.prefix_misses, 0, "no cache, no probes");
    }

    #[test]
    fn prefix_cached_worker_matches_plain_evaluator_bit_exactly() {
        let with = WorkerService::new();
        let without = WorkerService::with_caches(None, None);
        for kinds in [
            vec![PreprocKind::StandardScaler],
            vec![PreprocKind::StandardScaler, PreprocKind::PowerTransformer],
            vec![PreprocKind::StandardScaler, PreprocKind::PowerTransformer, PreprocKind::Normalizer],
        ] {
            let req = Request::Eval { ctx: ctx(), pipeline: Pipeline::from_kinds(&kinds), fraction: 1.0 };
            let (a, b) = (with.handle(&req), without.handle(&req));
            let (Response::Trial { trial: a, .. }, Response::Trial { trial: b, .. }) = (a, b)
            else {
                panic!("expected two Trial responses");
            };
            assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits(), "{kinds:?}");
            assert_eq!(a.error.to_bits(), b.error.to_bits(), "{kinds:?}");
        }
    }

    #[test]
    fn health_reports_epoch_served_and_contexts() {
        let svc = WorkerService::new();
        let resp = svc.handle(&Request::Health);
        assert_eq!(resp, Response::Health { epoch: 0, served: 0, contexts: 0 });
        let _ = svc.handle(&Request::Eval {
            ctx: ctx(),
            pipeline: Pipeline::empty(),
            fraction: 1.0,
        });
        let resp = svc.handle(&Request::Health);
        assert_eq!(resp, Response::Health { epoch: 0, served: 1, contexts: 1 });
    }

    #[test]
    fn set_fleet_adopts_newer_specs_and_rejects_stale_ones() {
        let svc = WorkerService::new();
        let fresh = FleetSpec { epoch: 3, addrs: vec!["a:1".into(), "b:2".into()] };
        assert_eq!(svc.handle(&Request::SetFleet(fresh.clone())), Response::FleetAck { epoch: 3 });
        assert_eq!(svc.fleet(), fresh);

        // A stale publish is acked with the held (higher) epoch and
        // does not roll the spec back.
        let stale = FleetSpec { epoch: 2, addrs: vec!["c:3".into()] };
        assert_eq!(svc.handle(&Request::SetFleet(stale)), Response::FleetAck { epoch: 3 });
        assert_eq!(svc.fleet(), fresh);

        // Same-epoch republish is idempotent; newer wins.
        let newer = FleetSpec { epoch: 4, addrs: vec!["d:4".into()] };
        assert_eq!(svc.handle(&Request::SetFleet(newer.clone())), Response::FleetAck { epoch: 4 });
        assert_eq!(svc.fleet(), newer);
        let resp = svc.handle(&Request::Health);
        assert_eq!(resp, Response::Health { epoch: 4, served: 0, contexts: 0 });
    }

    #[test]
    fn trial_store_persists_and_preloads_across_worker_restarts() {
        // Deterministic temp dir without wall-clock identity.
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "evald-svc-store-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let p = Pipeline::from_kinds(&[PreprocKind::MinMaxScaler]);
        // First worker process: evaluates and persists.
        let first = WorkerService::new().with_trial_repo(TrialRepo::open(&dir).expect("open repo"));
        let resp = first.handle(&Request::Eval { ctx: ctx(), pipeline: p.clone(), fraction: 1.0 });
        let Response::Trial { trial: a, stats } = resp else { panic!("expected Trial, got {resp:?}") };
        assert_eq!(stats.preloaded, 0, "fresh store preloads nothing");
        assert_eq!(stats.misses, 1);

        // Second worker process (a respawn): preloads the segment and
        // serves the same pipeline as a cache hit, bit-identically,
        // without evaluating.
        let second = WorkerService::new().with_trial_repo(TrialRepo::open(&dir).expect("reopen repo"));
        let resp = second.handle(&Request::Eval { ctx: ctx(), pipeline: p, fraction: 1.0 });
        let Response::Trial { trial: b, stats } = resp else { panic!("expected Trial, got {resp:?}") };
        assert_eq!(stats.preloaded, 1, "respawn preloads the persisted trial");
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 0);
        assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        assert_eq!(a.prep_time, b.prep_time, "preloaded trials round-trip bit-exactly");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn conflicting_store_identity_is_refused_not_mixed() {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "evald-svc-conflict-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // Forge a segment for this context holding a different
        // evaluator identity (wrong baseline).
        let repo = TrialRepo::open(&dir).expect("open repo");
        let segment = repo.open_context(&ctx().canonical()).expect("segment");
        segment
            .set_meta(autofp_core::StoreMeta { baseline_accuracy: 0.123, train_rows: 1 })
            .expect("forge meta");
        drop(repo);

        let svc = WorkerService::new().with_trial_repo(TrialRepo::open(&dir).expect("reopen"));
        let resp = svc.handle(&Request::Eval { ctx: ctx(), pipeline: Pipeline::empty(), fraction: 1.0 });
        assert!(
            matches!(resp, Response::Error(EvalError::Transport { ref detail })
                if detail.contains("trial store")),
            "{resp:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_capacity_zero_disables_memoization() {
        let svc = WorkerService::with_cache_capacity(Some(0));
        let req = Request::Eval {
            ctx: ctx(),
            pipeline: Pipeline::from_kinds(&[PreprocKind::MaxAbsScaler]),
            fraction: 1.0,
        };
        let _ = svc.handle(&req);
        let _ = svc.handle(&req);
        let stats = svc.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 0);
        assert!(stats.evictions >= 2);
    }
}
