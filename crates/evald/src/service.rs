//! The worker's transport-agnostic request handler.
//!
//! A [`WorkerService`] owns one [`Evaluator`] + [`SharedEvalCache`]
//! pair per distinct [`EvalContext`] it has been asked about, built
//! lazily by regenerating the named dataset from the registry — dataset
//! generation is seeded purely by the dataset name, so every worker
//! process materializes bit-identical data and its trials match an
//! in-process evaluation exactly.
//!
//! The service is deliberately transport-free: [`crate::server`] feeds
//! it decoded frames from TCP, [`crate::client::LoopbackBackend`] feeds
//! it the same frames in memory, and both get byte-identical responses.

use crate::wire::{EvalContext, Request, Response, WorkerStats};
use autofp_core::{EvalError, Evaluator, SharedEvalCache};
use autofp_data::spec_by_name;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One materialized evaluation context: the evaluator (dataset split,
/// trainer, baseline) plus its process-local trial cache.
struct ContextState {
    evaluator: Evaluator,
    cache: SharedEvalCache,
}

/// The worker daemon's brain: maps requests to responses.
///
/// Thread-safe behind `&self` — the TCP server handles each connection
/// on its own thread against one shared `Arc<WorkerService>`.
pub struct WorkerService {
    /// LRU capacity for each context's cache (`None` = unbounded).
    cache_capacity: Option<usize>,
    /// Context canonical string -> materialized state. A `BTreeMap`
    /// keeps stats aggregation in deterministic order.
    contexts: Mutex<BTreeMap<String, Arc<ContextState>>>,
    /// Evaluation requests handled (cache hits included).
    served: AtomicU64,
}

impl WorkerService {
    /// A service whose per-context caches are unbounded.
    pub fn new() -> WorkerService {
        WorkerService::with_cache_capacity(None)
    }

    /// A service whose per-context caches are LRU-capped at `capacity`
    /// entries (`None` = unbounded, `Some(0)` = effectively disabled:
    /// every insert is immediately evicted).
    pub fn with_cache_capacity(capacity: Option<usize>) -> WorkerService {
        WorkerService {
            cache_capacity: capacity,
            contexts: Mutex::new(BTreeMap::new()),
            served: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Arc<ContextState>>> {
        // A panic while holding the lock can only come from evaluator
        // construction; the map itself is never left half-written, so
        // recover the guard instead of wedging the worker.
        self.contexts.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The materialized state for `ctx`, building it on first use.
    fn context(&self, ctx: &EvalContext) -> Result<Arc<ContextState>, EvalError> {
        if !(ctx.scale > 0.0 && ctx.scale <= 1.0) {
            return Err(EvalError::Transport {
                detail: format!("context scale {} outside (0, 1]", ctx.scale),
            });
        }
        let key = ctx.canonical();
        if let Some(state) = self.lock().get(&key) {
            return Ok(Arc::clone(state));
        }
        let spec = spec_by_name(&ctx.dataset).ok_or_else(|| EvalError::Transport {
            detail: format!("unknown dataset `{}`", ctx.dataset),
        })?;
        // Generate outside the lock: dataset materialization is the
        // expensive part and is deterministic, so a racing duplicate
        // build produces an identical evaluator and the first insert
        // wins below.
        let dataset = spec.generate(ctx.scale);
        let evaluator = Evaluator::new(&dataset, ctx.eval_config());
        let cache = match self.cache_capacity {
            Some(cap) => SharedEvalCache::with_capacity(cap),
            None => SharedEvalCache::new(),
        };
        let state = Arc::new(ContextState { evaluator, cache });
        let mut map = self.lock();
        let entry = map.entry(key).or_insert_with(|| Arc::clone(&state));
        Ok(Arc::clone(entry))
    }

    /// Cumulative counters: requests served, contexts built, and every
    /// context's cache counters folded together.
    pub fn stats(&self) -> WorkerStats {
        let map = self.lock();
        let mut out = WorkerStats {
            served: self.served.load(Ordering::Relaxed),
            contexts: map.len() as u64,
            ..WorkerStats::default()
        };
        for state in map.values() {
            let s = state.cache.stats();
            out.hits += s.hits;
            out.misses += s.misses;
            out.entries += s.entries as u64;
            out.evictions += s.evictions;
            out.saved_nanos = out
                .saved_nanos
                .saturating_add(u64::try_from(s.saved.as_nanos()).unwrap_or(u64::MAX));
        }
        out
    }

    /// Serve one request. Total: every failure mode becomes
    /// [`Response::Error`], and evaluation itself is shielded (a
    /// panicking pipeline yields a worst-error trial, not a dead
    /// worker).
    pub fn handle(&self, req: &Request) -> Response {
        match req {
            Request::Ping | Request::Shutdown => Response::Pong,
            Request::Stats => Response::Stats(self.stats()),
            Request::Describe(ctx) => match self.context(ctx) {
                Ok(state) => Response::Described {
                    baseline_accuracy: state.evaluator.baseline_accuracy(),
                    train_rows: state.evaluator.split().train.n_rows() as u64,
                },
                Err(err) => Response::Error(err),
            },
            Request::Eval { ctx, pipeline, fraction } => match self.context(ctx) {
                Ok(state) => {
                    let trial =
                        state.evaluator.evaluate_cached(pipeline, *fraction, &state.cache);
                    self.served.fetch_add(1, Ordering::Relaxed);
                    Response::Trial { trial, stats: self.stats() }
                }
                Err(err) => Response::Error(err),
            },
        }
    }
}

impl Default for WorkerService {
    fn default() -> Self {
        WorkerService::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_models::classifier::ModelKind;
    use autofp_preprocess::{Pipeline, PreprocKind};

    fn ctx() -> EvalContext {
        EvalContext {
            dataset: "heart".to_string(),
            scale: 0.5,
            model: ModelKind::Lr,
            train_fraction: 0.8,
            seed: 7,
            train_subsample: None,
        }
    }

    #[test]
    fn eval_matches_local_evaluator_bit_exactly() {
        let svc = WorkerService::new();
        let pipeline = Pipeline::from_kinds(&[PreprocKind::StandardScaler]);
        let resp = svc.handle(&Request::Eval { ctx: ctx(), pipeline: pipeline.clone(), fraction: 1.0 });
        let Response::Trial { trial, stats } = resp else { panic!("expected Trial, got {resp:?}") };

        let spec = spec_by_name("heart").expect("heart in registry");
        let local = Evaluator::new(&spec.generate(0.5), ctx().eval_config());
        let expect = local.evaluate(&pipeline);
        assert_eq!(trial.accuracy.to_bits(), expect.accuracy.to_bits());
        assert_eq!(trial.pipeline, expect.pipeline);
        assert_eq!(stats.served, 1);
        assert_eq!(stats.contexts, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn repeat_eval_hits_the_context_cache() {
        let svc = WorkerService::new();
        let req = Request::Eval {
            ctx: ctx(),
            pipeline: Pipeline::from_kinds(&[PreprocKind::MinMaxScaler]),
            fraction: 1.0,
        };
        let first = svc.handle(&req);
        let second = svc.handle(&req);
        let (Response::Trial { trial: a, .. }, Response::Trial { trial: b, stats }) =
            (first, second)
        else {
            panic!("expected two Trial responses");
        };
        assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.served, 2);
    }

    #[test]
    fn distinct_contexts_get_distinct_caches() {
        let svc = WorkerService::new();
        let p = Pipeline::empty();
        let other = EvalContext { seed: 8, ..ctx() };
        let _ = svc.handle(&Request::Eval { ctx: ctx(), pipeline: p.clone(), fraction: 1.0 });
        let _ = svc.handle(&Request::Eval { ctx: other, pipeline: p, fraction: 1.0 });
        let stats = svc.stats();
        assert_eq!(stats.contexts, 2);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn describe_reports_baseline_and_rows() {
        let svc = WorkerService::new();
        let resp = svc.handle(&Request::Describe(ctx()));
        let Response::Described { baseline_accuracy, train_rows } = resp else {
            panic!("expected Described, got {resp:?}");
        };
        assert!((0.0..=1.0).contains(&baseline_accuracy));
        // heart at scale 0.5 = 121 rows; the stratified 80:20 split
        // rounds per class, giving 97 training rows.
        assert_eq!(train_rows, 97);
    }

    #[test]
    fn unknown_dataset_and_bad_scale_are_errors_not_panics() {
        let svc = WorkerService::new();
        let bad_name = EvalContext { dataset: "no-such-dataset".into(), ..ctx() };
        let resp = svc.handle(&Request::Describe(bad_name));
        assert!(
            matches!(resp, Response::Error(EvalError::Transport { ref detail })
                if detail.contains("unknown dataset")),
            "{resp:?}"
        );
        let bad_scale = EvalContext { scale: 0.0, ..ctx() };
        let resp = svc.handle(&Request::Describe(bad_scale));
        assert!(matches!(resp, Response::Error(EvalError::Transport { .. })), "{resp:?}");
        let nan_scale = EvalContext { scale: f64::NAN, ..ctx() };
        let resp = svc.handle(&Request::Describe(nan_scale));
        assert!(matches!(resp, Response::Error(EvalError::Transport { .. })), "{resp:?}");
    }

    #[test]
    fn cache_capacity_zero_disables_memoization() {
        let svc = WorkerService::with_cache_capacity(Some(0));
        let req = Request::Eval {
            ctx: ctx(),
            pipeline: Pipeline::from_kinds(&[PreprocKind::MaxAbsScaler]),
            fraction: 1.0,
        };
        let _ = svc.handle(&req);
        let _ = svc.handle(&req);
        let stats = svc.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 0);
        assert!(stats.evictions >= 2);
    }
}
