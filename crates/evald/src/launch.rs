//! Spawning and supervising local worker processes.
//!
//! The bench harness's `--workers N` flag and the distributed test
//! suite both need real `evald serve` child processes: spawn the
//! binary, read the `evald listening on <addr>` line it prints once
//! bound, and keep the [`std::process::Child`] so the worker dies with
//! its supervisor (kill-on-drop) instead of leaking daemons.

use std::io::{self, BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};

/// The stdout prefix a worker prints once its listener is bound; the
/// rest of the line is the address to dial.
pub const READY_PREFIX: &str = "evald listening on ";

/// One supervised worker process.
pub struct Worker {
    child: Child,
    addr: String,
}

impl Worker {
    /// The address the worker is serving on.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Kill the worker process immediately (SIGKILL) and reap it.
    /// Idempotent: killing an already-dead worker is a no-op.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Spawn one `evald serve` worker from the binary at `bin` and wait
/// until it reports its address.
pub fn spawn_worker(bin: &Path) -> io::Result<Worker> {
    let mut child = Command::new(bin)
        .args(["serve"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let Some(stdout) = child.stdout.take() else {
        let _ = child.kill();
        let _ = child.wait();
        return Err(io::Error::other("worker stdout was not captured"));
    };
    let mut lines = BufReader::new(stdout).lines();
    loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(addr) = line.strip_prefix(READY_PREFIX) {
                    let addr = addr.trim().to_string();
                    // Drain any further stdout on a detached thread so
                    // the worker never blocks on a full pipe.
                    std::thread::spawn(move || for _ in lines {});
                    return Ok(Worker { child, addr });
                }
            }
            Some(Err(e)) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(e);
            }
            None => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(io::Error::other("worker exited before reporting its address"));
            }
        }
    }
}

/// A fleet of supervised local workers.
pub struct WorkerFleet {
    workers: Vec<Worker>,
}

impl WorkerFleet {
    /// Spawn `n` workers from the binary at `bin`. If any spawn fails,
    /// the already-started workers are killed (via drop) before the
    /// error is returned.
    pub fn spawn(bin: &Path, n: usize) -> io::Result<WorkerFleet> {
        let mut workers = Vec::with_capacity(n);
        for _ in 0..n {
            workers.push(spawn_worker(bin)?);
        }
        Ok(WorkerFleet { workers })
    }

    /// The workers' addresses, in spawn (= shard) order. Killed workers
    /// keep their slot: shard routing is positional.
    pub fn addrs(&self) -> Vec<String> {
        self.workers.iter().map(|w| w.addr.clone()).collect()
    }

    /// Number of workers in the fleet (dead ones included).
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True when the fleet has no workers at all.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Kill worker `i` (no-op for an out-of-range index or an
    /// already-dead worker). Its address stays in [`WorkerFleet::addrs`]
    /// so the requests sharded to it fail as transport errors — exactly
    /// the mid-run worker-death scenario the fault tests exercise.
    pub fn kill(&mut self, i: usize) {
        if let Some(w) = self.workers.get_mut(i) {
            w.kill();
        }
    }
}
