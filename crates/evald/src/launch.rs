//! Spawning and supervising local worker processes.
//!
//! The bench harness's `--workers N` flag and the distributed test
//! suite both need real `evald serve` child processes: spawn the
//! binary, read the `evald listening on <addr>` line it prints once
//! bound, and keep the [`std::process::Child`] so the worker dies with
//! its supervisor instead of leaking daemons. Dropping a [`Worker`] or
//! [`WorkerFleet`] shuts the children down (best-effort graceful
//! `Shutdown` frame, then SIGKILL + reap), so aborted tests and
//! panicking benches never leave `evald serve` daemons behind.
//!
//! [`FleetSupervisor`] adds self-healing on top of a spawned fleet:
//! it health-checks every slot via `Ping`, respawns dead workers
//! (capped restarts per slot, exponential backoff with seeded jitter
//! so the schedule is reproducible), and republishes the epoch-bumped
//! [`FleetSpec`] to the shared spec and to every live worker on any
//! membership change. A respawned worker comes back on a fresh
//! OS-assigned port but keeps its *slot*, and rendezvous routing is
//! keyed on slots — so its keyspace follows it and results stay
//! bit-identical across kill/respawn.

use crate::client;
use crate::fleet::SharedFleetSpec;
use crate::wire::FleetSpec;
use std::io::{self, BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The stdout prefix a worker prints once its listener is bound; the
/// rest of the line is the address to dial.
pub const READY_PREFIX: &str = "evald listening on ";

/// Timeout for the best-effort graceful `Shutdown` frame sent before
/// a worker is killed.
const GRACEFUL_SHUTDOWN_TIMEOUT: Duration = Duration::from_millis(250);

/// One supervised worker process.
pub struct Worker {
    child: Child,
    addr: String,
}

impl Worker {
    /// The address the worker is serving on.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Kill the worker process immediately (SIGKILL) and reap it.
    /// Idempotent: killing an already-dead worker is a no-op.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Ask the worker to exit cleanly (short-timeout `Shutdown`
    /// frame), then kill and reap it regardless — the graceful frame
    /// lets a live worker stop accepting, the kill guarantees no
    /// daemon outlives its supervisor. Idempotent; an already-reaped
    /// worker is left alone.
    pub fn shutdown_then_kill(&mut self) {
        if matches!(self.child.try_wait(), Ok(Some(_))) {
            return;
        }
        let _ = client::shutdown(&self.addr, GRACEFUL_SHUTDOWN_TIMEOUT);
        self.kill();
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.shutdown_then_kill();
    }
}

/// Spawn one `evald serve` worker from the binary at `bin` and wait
/// until it reports its address.
pub fn spawn_worker(bin: &Path) -> io::Result<Worker> {
    let mut child = Command::new(bin)
        .args(["serve"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let Some(stdout) = child.stdout.take() else {
        let _ = child.kill();
        let _ = child.wait();
        return Err(io::Error::other("worker stdout was not captured"));
    };
    let mut lines = BufReader::new(stdout).lines();
    loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(addr) = line.strip_prefix(READY_PREFIX) {
                    let addr = addr.trim().to_string();
                    // Drain any further stdout on a detached thread so
                    // the worker never blocks on a full pipe.
                    std::thread::spawn(move || for _ in lines {});
                    return Ok(Worker { child, addr });
                }
            }
            Some(Err(e)) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(e);
            }
            None => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(io::Error::other("worker exited before reporting its address"));
            }
        }
    }
}

/// A fleet of supervised local workers with fixed membership (no
/// respawn — see [`FleetSupervisor`] for the self-healing variant).
pub struct WorkerFleet {
    workers: Vec<Worker>,
}

impl WorkerFleet {
    /// Spawn `n` workers from the binary at `bin`. If any spawn fails,
    /// the already-started workers are killed (via drop) before the
    /// error is returned.
    pub fn spawn(bin: &Path, n: usize) -> io::Result<WorkerFleet> {
        let mut workers = Vec::with_capacity(n);
        for _ in 0..n {
            workers.push(spawn_worker(bin)?);
        }
        Ok(WorkerFleet { workers })
    }

    /// The workers' addresses, in spawn (= shard) order. Killed workers
    /// keep their slot: shard routing is positional.
    pub fn addrs(&self) -> Vec<String> {
        self.workers.iter().map(|w| w.addr.clone()).collect()
    }

    /// Number of workers in the fleet (dead ones included).
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True when the fleet has no workers at all.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Kill worker `i` (no-op for an out-of-range index or an
    /// already-dead worker). Its address stays in [`WorkerFleet::addrs`]
    /// so the requests sharded to it fail as transport errors — exactly
    /// the mid-run worker-death scenario the fault tests exercise.
    pub fn kill(&mut self, i: usize) {
        if let Some(w) = self.workers.get_mut(i) {
            w.kill();
        }
    }
}

impl Drop for WorkerFleet {
    fn drop(&mut self) {
        // Each Worker's own drop would do this too; doing it here
        // keeps the whole fleet's teardown in one place and makes the
        // contract explicit: dropping a fleet leaks no daemons.
        for w in &mut self.workers {
            w.shutdown_then_kill();
        }
    }
}

/// Knobs for [`FleetSupervisor`] health-checking and respawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Maximum respawns per slot; a slot that exhausts them stays dead
    /// (its keys fail over to rendezvous successors).
    pub max_restarts: u32,
    /// Base respawn backoff; doubles per restart of the same slot.
    pub backoff: Duration,
    /// Seed for the deterministic backoff jitter (mixed with slot and
    /// restart count, so concurrent respawns de-synchronize
    /// reproducibly).
    pub jitter_seed: u64,
    /// Timeout for the per-slot `Ping` health probe (and for fleet-spec
    /// publishes to workers).
    pub ping_timeout: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            max_restarts: 3,
            backoff: Duration::from_millis(50),
            jitter_seed: 0x5EED_F1EE7,
            ping_timeout: Duration::from_secs(2),
        }
    }
}

/// splitmix64-style finalizer for the deterministic backoff jitter.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Respawn delay for `slot` at its `restarts`-th restart: exponential
/// base plus a seeded jitter in `[0, backoff/2]`. Pure, so the whole
/// respawn schedule is a function of the config — no RNG, no clock.
pub fn respawn_backoff(config: &SupervisorConfig, slot: usize, restarts: u32) -> Duration {
    let base = config.backoff.saturating_mul(1u32 << restarts.min(16));
    let half_ms = config.backoff.as_millis() as u64 / 2;
    if half_ms == 0 {
        return base;
    }
    let mixed = mix64(config.jitter_seed ^ ((slot as u64) << 32) ^ u64::from(restarts));
    base + Duration::from_millis(mixed % (half_ms + 1))
}

struct SupervisedSlot {
    worker: Worker,
    restarts: u32,
}

/// A self-healing fleet: spawned workers plus the health-check /
/// respawn / republish loop.
///
/// The supervisor owns the children (drop tears the fleet down) and a
/// [`SharedFleetSpec`] that clients route over; every membership
/// change bumps the spec's epoch and is pushed to all live workers via
/// `SetFleet`. Call [`FleetSupervisor::supervise_once`] from your own
/// loop, or hand the supervisor to [`FleetSupervisor::monitor`] for a
/// background thread.
pub struct FleetSupervisor {
    bin: PathBuf,
    config: SupervisorConfig,
    slots: Vec<SupervisedSlot>,
    fleet: SharedFleetSpec,
}

impl FleetSupervisor {
    /// Spawn `n` workers from `bin` and publish the initial fleet spec
    /// (epoch 1) to each of them.
    pub fn spawn(bin: &Path, n: usize, config: SupervisorConfig) -> io::Result<FleetSupervisor> {
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            slots.push(SupervisedSlot { worker: spawn_worker(bin)?, restarts: 0 });
        }
        let addrs: Vec<String> = slots.iter().map(|s| s.worker.addr().to_string()).collect();
        let fleet = SharedFleetSpec::new(FleetSpec { epoch: 1, addrs });
        let sup = FleetSupervisor { bin: bin.to_path_buf(), config, slots, fleet };
        sup.push_spec_to_workers();
        Ok(sup)
    }

    /// The shared fleet spec clients should route over.
    pub fn fleet(&self) -> SharedFleetSpec {
        self.fleet.clone()
    }

    /// Current worker addresses in slot order.
    pub fn addrs(&self) -> Vec<String> {
        self.slots.iter().map(|s| s.worker.addr().to_string()).collect()
    }

    /// Number of worker slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the fleet has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current fleet-spec epoch.
    pub fn epoch(&self) -> u64 {
        self.fleet.epoch()
    }

    /// Cumulative workers respawned by this supervisor.
    pub fn respawns(&self) -> u64 {
        self.fleet.respawns()
    }

    /// Kill the worker in `slot` (SIGKILL, no respawn until the next
    /// supervision pass) — the chaos-test hook.
    pub fn kill(&mut self, slot: usize) {
        if let Some(s) = self.slots.get_mut(slot) {
            s.worker.kill();
        }
    }

    /// One supervision pass: ping every slot, respawn dead workers
    /// whose restart budget allows it (exponential backoff with seeded
    /// jitter before each respawn), and republish the fleet spec if
    /// membership changed. Returns the number of workers respawned.
    pub fn supervise_once(&mut self) -> usize {
        let mut respawned = 0usize;
        for (i, slot) in self.slots.iter_mut().enumerate() {
            let addr = slot.worker.addr().to_string();
            if client::ping(&addr, self.config.ping_timeout).is_ok() {
                continue;
            }
            let restarts = slot.restarts;
            if restarts >= self.config.max_restarts {
                continue;
            }
            let delay = respawn_backoff(&self.config, i, restarts);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            // On spawn failure the slot stays dead and a later pass
            // (with a bigger backoff) tries again.
            if let Ok(worker) = spawn_worker(&self.bin) {
                // Replacing the Worker drops (and reaps) the dead
                // child; the slot index — the routing identity —
                // is preserved.
                slot.worker = worker;
                slot.restarts = restarts + 1;
                respawned += 1;
            }
        }
        if respawned > 0 {
            self.fleet.note_respawns(respawned as u64);
            self.republish();
        }
        respawned
    }

    /// Grow or shrink the fleet to `n` slots, then republish. Removed
    /// slots are shut down; new slots spawn with a fresh restart
    /// budget.
    pub fn resize(&mut self, n: usize) -> io::Result<()> {
        while self.slots.len() > n {
            if let Some(mut slot) = self.slots.pop() {
                slot.worker.shutdown_then_kill();
            }
        }
        while self.slots.len() < n {
            self.slots.push(SupervisedSlot { worker: spawn_worker(&self.bin)?, restarts: 0 });
        }
        self.republish();
        Ok(())
    }

    /// Bump the epoch, update the shared spec, and push it to every
    /// worker (best effort — a dead worker learns the spec when it is
    /// respawned).
    fn republish(&self) {
        let spec = FleetSpec { epoch: self.fleet.epoch() + 1, addrs: self.addrs() };
        self.fleet.publish(spec);
        self.push_spec_to_workers();
    }

    fn push_spec_to_workers(&self) {
        let spec = self.fleet.snapshot();
        for slot in &self.slots {
            let _ = client::set_fleet(slot.worker.addr(), &spec, self.config.ping_timeout);
        }
    }

    /// Move the supervisor onto a background thread that runs
    /// [`FleetSupervisor::supervise_once`] every `interval` until the
    /// returned [`FleetMonitor`] is stopped or dropped.
    pub fn monitor(self, interval: Duration) -> FleetMonitor {
        let stop = Arc::new(AtomicBool::new(false));
        let fleet = self.fleet();
        let stop_in_thread = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut sup = self;
            while !stop_in_thread.load(Ordering::SeqCst) {
                sup.supervise_once();
                // Sleep in short slices so stop requests are honored
                // promptly even with a long supervision interval.
                let mut remaining = interval;
                while !remaining.is_zero() && !stop_in_thread.load(Ordering::SeqCst) {
                    let slice = remaining.min(Duration::from_millis(50));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
            }
            sup
        });
        FleetMonitor { stop, fleet, handle: Some(handle) }
    }
}

/// Handle to a [`FleetSupervisor`] running on a background thread.
///
/// Dropping the monitor stops the thread and tears the fleet down
/// (workers are shut down then killed) — a panicking bench run cannot
/// leak daemons.
pub struct FleetMonitor {
    stop: Arc<AtomicBool>,
    fleet: SharedFleetSpec,
    handle: Option<std::thread::JoinHandle<FleetSupervisor>>,
}

impl FleetMonitor {
    /// The shared fleet spec clients should route over.
    pub fn fleet(&self) -> SharedFleetSpec {
        self.fleet.clone()
    }

    /// Stop the supervision thread and take the supervisor back (e.g.
    /// to read final counters before dropping it).
    pub fn stop(mut self) -> Option<FleetSupervisor> {
        self.stop.store(true, Ordering::SeqCst);
        self.handle.take().and_then(|h| h.join().ok())
    }
}

impl Drop for FleetMonitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            // Joining returns the supervisor, whose drop shuts every
            // worker down.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respawn_backoff_is_deterministic_exponential_and_jittered() {
        let config = SupervisorConfig::default();
        // Deterministic: same inputs, same delay.
        assert_eq!(respawn_backoff(&config, 1, 0), respawn_backoff(&config, 1, 0));
        // Jitter stays within [0, backoff/2] of the exponential base.
        for slot in 0..8usize {
            for restarts in 0..4u32 {
                let d = respawn_backoff(&config, slot, restarts);
                let base = config.backoff * (1 << restarts);
                assert!(d >= base, "{slot}/{restarts}: {d:?} < base {base:?}");
                assert!(d <= base + config.backoff / 2, "{slot}/{restarts}: {d:?} too jittered");
            }
        }
        // Different slots de-synchronize (at least one differing pair
        // among the first few slots — jitter spans 26 values here).
        let distinct: std::collections::BTreeSet<Duration> =
            (0..8usize).map(|slot| respawn_backoff(&config, slot, 0)).collect();
        assert!(distinct.len() > 1, "jitter must separate slots");
        // Zero base backoff degrades to no jitter without dividing by
        // zero.
        let zero = SupervisorConfig { backoff: Duration::ZERO, ..config };
        assert_eq!(respawn_backoff(&zero, 3, 2), Duration::ZERO);
    }
}
