//! Fleet membership and per-worker failure tracking.
//!
//! [`SharedFleetSpec`] is the one mutable cell the robustness layer
//! shares: the supervisor publishes epoch-stamped membership changes
//! into it, and every [`crate::client::TcpBackend`] clone reads it at
//! request time, resynchronizing its connection pool when the epoch
//! moves. [`CircuitBreaker`] tracks consecutive transport failures per
//! worker slot so the router can stop paying connect timeouts to a
//! dead worker and fail over to the key's rendezvous successor, while
//! still probing the slot periodically to notice recovery.
//!
//! Everything here is deterministic: breaker transitions are a pure
//! function of the observed success/failure sequence, and the fleet
//! spec only moves when a supervisor publishes a strictly describable
//! membership change. No clocks, no RNG.

use crate::wire::FleetSpec;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Consecutive transport failures that open a worker's circuit.
pub const OPEN_AFTER: u32 = 3;

/// While a circuit is open, one request in every `PROBE_EVERY` is let
/// through as a half-open probe so a recovered worker is noticed.
pub const PROBE_EVERY: u32 = 8;

/// A thread-shared, epoch-stamped [`FleetSpec`] plus the supervisor's
/// cumulative respawn counter.
///
/// Cloning shares the underlying cell: the supervisor and any number
/// of backends observe the same membership. Publishes are
/// last-writer-wins guarded by epoch monotonicity, mirroring the
/// worker-side adoption rule.
#[derive(Debug, Clone)]
pub struct SharedFleetSpec {
    spec: Arc<Mutex<FleetSpec>>,
    respawns: Arc<AtomicU64>,
}

impl SharedFleetSpec {
    /// Share `spec` as the initial membership.
    pub fn new(spec: FleetSpec) -> SharedFleetSpec {
        SharedFleetSpec { spec: Arc::new(Mutex::new(spec)), respawns: Arc::new(AtomicU64::new(0)) }
    }

    /// A fixed fleet over `addrs` at epoch 1 (the common case for a
    /// hand-supplied `--remote` address list with no supervisor).
    pub fn fixed(addrs: Vec<String>) -> SharedFleetSpec {
        SharedFleetSpec::new(FleetSpec { epoch: 1, addrs })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FleetSpec> {
        // The spec is replaced wholesale under the lock, never left
        // half-written; recover the guard instead of wedging routing.
        self.spec.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A copy of the current spec.
    pub fn snapshot(&self) -> FleetSpec {
        self.lock().clone()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Number of worker slots in the current spec.
    pub fn len(&self) -> usize {
        self.lock().addrs.len()
    }

    /// Whether the current spec has no workers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adopt `spec` unless it is older than the one held (epochs are
    /// monotonic). Returns the epoch held afterwards.
    pub fn publish(&self, spec: FleetSpec) -> u64 {
        let mut held = self.lock();
        if spec.epoch >= held.epoch {
            *held = spec;
        }
        held.epoch
    }

    /// Record `n` worker respawns (supervisor-side).
    pub fn note_respawns(&self, n: u64) {
        self.respawns.fetch_add(n, Ordering::Relaxed);
    }

    /// Cumulative respawns recorded against this fleet.
    pub fn respawns(&self) -> u64 {
        self.respawns.load(Ordering::Relaxed)
    }
}

/// Per-worker-slot circuit breaker.
///
/// Closed (the normal state) routes everything. [`OPEN_AFTER`]
/// consecutive transport failures open the circuit; while open, the
/// slot reports unroutable except for one half-open probe every
/// [`PROBE_EVERY`] routing decisions. Any success closes the circuit.
/// State transitions are a pure function of the observed event
/// sequence, so routing stays deterministic for a fixed failure
/// pattern.
#[derive(Debug, Default)]
pub struct CircuitBreaker {
    consecutive_failures: u32,
    open: bool,
    skips: u32,
}

impl CircuitBreaker {
    /// A closed breaker with no recorded failures.
    pub fn new() -> CircuitBreaker {
        CircuitBreaker::default()
    }

    /// Whether the circuit is currently open.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Record a successful exchange: closes the circuit.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.open = false;
        self.skips = 0;
    }

    /// Record a transport failure. Returns `true` exactly when this
    /// failure transitioned the circuit from closed to open (callers
    /// count circuit-opens on that edge).
    pub fn record_failure(&mut self) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if !self.open && self.consecutive_failures >= OPEN_AFTER {
            self.open = true;
            self.skips = 0;
            return true;
        }
        false
    }

    /// Routing decision for this slot. Closed circuits always route;
    /// open circuits route one half-open probe every [`PROBE_EVERY`]
    /// calls and report unroutable otherwise.
    pub fn should_route(&mut self) -> bool {
        if !self.open {
            return true;
        }
        self.skips = self.skips.saturating_add(1);
        if self.skips >= PROBE_EVERY {
            self.skips = 0;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_opens_after_consecutive_failures_only() {
        let mut b = CircuitBreaker::new();
        assert!(b.should_route());
        // A success in between resets the streak.
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        b.record_success();
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(!b.is_open());
        // The third consecutive failure opens it, exactly once.
        assert!(b.record_failure());
        assert!(b.is_open());
        assert!(!b.record_failure(), "already open: no second open edge");
    }

    #[test]
    fn open_breaker_probes_every_nth_decision_and_closes_on_success() {
        let mut b = CircuitBreaker::new();
        for _ in 0..OPEN_AFTER {
            b.record_failure();
        }
        assert!(b.is_open());
        let decisions: Vec<bool> = (0..2 * PROBE_EVERY).map(|_| b.should_route()).collect();
        let probes = decisions.iter().filter(|&&d| d).count();
        assert_eq!(probes, 2, "one probe per PROBE_EVERY decisions");
        assert!(decisions[PROBE_EVERY as usize - 1]);
        // A successful probe closes the circuit.
        b.record_success();
        assert!(!b.is_open());
        assert!(b.should_route());
    }

    #[test]
    fn shared_spec_publish_is_epoch_monotonic() {
        let fleet = SharedFleetSpec::fixed(vec!["a:1".into(), "b:2".into()]);
        assert_eq!(fleet.epoch(), 1);
        assert_eq!(fleet.len(), 2);
        assert!(!fleet.is_empty());

        let newer = FleetSpec { epoch: 2, addrs: vec!["a:1".into(), "c:3".into()] };
        assert_eq!(fleet.publish(newer.clone()), 2);
        assert_eq!(fleet.snapshot(), newer);

        // Stale publishes are ignored; the held epoch is returned.
        let stale = FleetSpec { epoch: 1, addrs: vec!["z:9".into()] };
        assert_eq!(fleet.publish(stale), 2);
        assert_eq!(fleet.snapshot(), newer);

        // Clones share the cell.
        let view = fleet.clone();
        let e3 = FleetSpec { epoch: 3, addrs: vec!["d:4".into()] };
        fleet.publish(e3.clone());
        assert_eq!(view.snapshot(), e3);
        view.note_respawns(2);
        assert_eq!(fleet.respawns(), 2);
    }
}
