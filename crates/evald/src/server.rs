//! The worker daemon's TCP accept loop.
//!
//! One thread per connection, frames in / frames out, cooperative
//! shutdown: a [`crate::wire::Request::Shutdown`] frame flips the stop
//! flag and pokes the listener awake with a self-connection so the
//! accept loop can observe it. Malformed frames are answered with a
//! [`crate::wire::Response::Error`] and the connection is closed — a
//! hostile or torn client never takes the worker down.

use crate::service::WorkerService;
use crate::wire::{decode_request, encode_response, read_frame, write_frame, Request, Response};
use std::io;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A bound, not-yet-running worker server.
pub struct Server {
    listener: TcpListener,
    service: Arc<WorkerService>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Bind to `addr` (use port 0 to let the OS pick a free port).
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<WorkerService>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server { listener, service, stop: Arc::new(AtomicBool::new(false)) })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes [`Server::run`] return after the connection
    /// being served finishes (used by tests; the CLI path stops via a
    /// `Shutdown` frame instead).
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Serve until shut down. Each connection gets its own detached
    /// thread; a `Shutdown` request stops the accept loop after
    /// answering.
    pub fn run(self) -> io::Result<()> {
        let local = self.listener.local_addr()?;
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                // A single torn accept is not fatal to the daemon.
                Err(_) => continue,
            };
            let service = Arc::clone(&self.service);
            let stop = Arc::clone(&self.stop);
            std::thread::spawn(move || {
                let shutdown = serve_connection(stream, &service);
                if shutdown {
                    stop.store(true, Ordering::SeqCst);
                    // Poke the accept loop awake so it observes `stop`.
                    let _ = TcpStream::connect_timeout(&local, Duration::from_secs(1));
                }
            });
        }
        Ok(())
    }
}

/// Serve one connection to completion; returns whether a `Shutdown`
/// request was received.
fn serve_connection(mut stream: TcpStream, service: &WorkerService) -> bool {
    let _ = stream.set_nodelay(true);
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            // Clean EOF: the client is done with this connection.
            Ok(None) => return false,
            // Torn frame: nothing sane to answer on this stream.
            Err(_) => return false,
        };
        let response = match decode_request(&payload) {
            Ok(req) => {
                let resp = service.handle(&req);
                if matches!(req, Request::Shutdown) {
                    let _ = write_frame(&mut stream, &encode_response(&resp));
                    return true;
                }
                resp
            }
            // Reflect the decode failure back, then drop the
            // connection: after a corrupt frame the stream's framing
            // can no longer be trusted.
            Err(err) => {
                let _ = write_frame(&mut stream, &encode_response(&Response::Error(err)));
                return false;
            }
        };
        if write_frame(&mut stream, &encode_response(&response)).is_err() {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::encode_request;

    fn start_server() -> (std::net::SocketAddr, std::thread::JoinHandle<io::Result<()>>) {
        let server =
            Server::bind("127.0.0.1:0", Arc::new(WorkerService::new())).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let handle = std::thread::spawn(move || server.run());
        (addr, handle)
    }

    fn roundtrip(stream: &mut TcpStream, req: &Request) -> Response {
        write_frame(stream, &encode_request(req)).expect("write");
        let payload = read_frame(stream).expect("read").expect("response frame");
        crate::wire::decode_response(&payload).expect("decode")
    }

    #[test]
    fn ping_stats_and_shutdown_over_real_tcp() {
        let (addr, handle) = start_server();
        let mut stream = TcpStream::connect(addr).expect("connect");
        assert_eq!(roundtrip(&mut stream, &Request::Ping), Response::Pong);
        let Response::Stats(stats) = roundtrip(&mut stream, &Request::Stats) else {
            panic!("expected Stats");
        };
        assert_eq!(stats.served, 0);
        assert_eq!(roundtrip(&mut stream, &Request::Shutdown), Response::Pong);
        drop(stream);
        handle.join().expect("server thread").expect("server run");
    }

    #[test]
    fn corrupt_frame_gets_an_error_response_and_server_survives() {
        let (addr, handle) = start_server();
        {
            let mut stream = TcpStream::connect(addr).expect("connect");
            write_frame(&mut stream, &[99, 1, 2, 3]).expect("write corrupt");
            let payload = read_frame(&mut stream).expect("read").expect("error frame");
            let resp = crate::wire::decode_response(&payload).expect("decode");
            assert!(matches!(resp, Response::Error(_)), "{resp:?}");
        }
        // The daemon still answers fresh connections afterwards.
        let mut stream = TcpStream::connect(addr).expect("reconnect");
        assert_eq!(roundtrip(&mut stream, &Request::Ping), Response::Pong);
        assert_eq!(roundtrip(&mut stream, &Request::Shutdown), Response::Pong);
        drop(stream);
        handle.join().expect("server thread").expect("server run");
    }
}
