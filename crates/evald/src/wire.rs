//! The evaluation service's wire protocol.
//!
//! Dependency-free, length-prefixed, canonical: every message is one
//! frame of `[u32 LE payload length][payload]`, and every payload
//! starts with a one-byte message tag. Integers are little-endian,
//! floats travel as their IEEE-754 bit patterns (`f64::to_bits`), and
//! strings are a `u32` byte length followed by UTF-8 — so an encoded
//! message is a pure function of its value and round-trips
//! bit-exactly, which the golden-bytes tests below pin.
//!
//! Decoding is total: truncated, oversized, or corrupt input returns
//! [`EvalError::Transport`] with a diagnostic detail — this module
//! must never panic on untrusted bytes (enforced by the xtask
//! panic-boundary lint, which covers this file).

use autofp_core::{EvalConfig, EvalError, FailureKind, Trial};
use autofp_models::classifier::ModelKind;
use autofp_preprocess::{Norm, OutputDist, Pipeline, Preproc, PreprocKind};
use std::io::{Read, Write};
use std::time::Duration;

/// Hard cap on one frame's payload size (16 MiB): a corrupt length
/// prefix must not make a worker allocate unbounded memory.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Hard cap on pipeline length in a decoded message; the search space
/// never exceeds [`autofp_preprocess::DEFAULT_MAX_LEN`] by much, so
/// anything larger is a corrupt frame.
pub const MAX_STEPS: u32 = 64;

/// Hard cap on the number of worker addresses in a decoded
/// [`FleetSpec`]; fleets are process-scale, so anything larger is a
/// corrupt frame.
pub const MAX_FLEET: u32 = 1024;

/// An epoch-stamped description of the worker fleet: which addresses
/// hold which slots, versioned so every party can tell stale specs
/// from fresh ones.
///
/// The slot *index* (position in `addrs`) is a worker's routing
/// identity — rendezvous hashing maps fingerprints to slots, so a
/// respawned worker that comes back on a new port keeps its keyspace.
/// `epoch` increases monotonically on every membership change
/// (respawn, resize); receivers adopt a spec only if its epoch is not
/// older than the one they hold.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FleetSpec {
    /// Monotonic version of the fleet membership.
    pub epoch: u64,
    /// Worker addresses by slot index.
    pub addrs: Vec<String>,
}

/// The evaluation context a request addresses: which dataset (by
/// registry name) at which generation scale, evaluated under which
/// [`EvalConfig`]. A worker keeps one evaluator + cache per distinct
/// context.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalContext {
    /// Registry dataset name (see `autofp_data::registry`).
    pub dataset: String,
    /// Row-count generation scale in `(0, 1]`.
    pub scale: f64,
    /// Downstream model family.
    pub model: ModelKind,
    /// Train fraction for the split (paper: 0.8).
    pub train_fraction: f64,
    /// Split / training seed.
    pub seed: u64,
    /// Optional stratified training-row cap.
    pub train_subsample: Option<u64>,
}

impl EvalContext {
    /// The [`EvalConfig`] this context evaluates under.
    pub fn eval_config(&self) -> EvalConfig {
        EvalConfig {
            model: self.model,
            train_fraction: self.train_fraction,
            seed: self.seed,
            train_subsample: self.train_subsample.map(|v| v as usize),
        }
    }

    /// Canonical string identity (the worker's context-map key): a pure
    /// function of the context's value, float fields by bit pattern.
    pub fn canonical(&self) -> String {
        format!(
            "ds={};scale={};m={};tf={};seed={};sub={}",
            self.dataset,
            self.scale.to_bits(),
            self.model.name(),
            self.train_fraction.to_bits(),
            self.seed,
            self.train_subsample.map_or(-1_i64, |v| v as i64),
        )
    }
}

/// Cumulative counters a worker reports: requests served, distinct
/// contexts built, and its cache counters folded over every context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStats {
    /// Evaluation requests handled (cache hits included).
    pub served: u64,
    /// Distinct evaluation contexts materialized.
    pub contexts: u64,
    /// Cache hits over all contexts.
    pub hits: u64,
    /// Cache misses over all contexts.
    pub misses: u64,
    /// Live memoized trials over all contexts.
    pub entries: u64,
    /// LRU evictions over all contexts.
    pub evictions: u64,
    /// Prep + Train wall-clock the hits avoided, in nanoseconds.
    pub saved_nanos: u64,
    /// Prefix-transform cache hits over all contexts.
    pub prefix_hits: u64,
    /// Prefix-transform cache misses over all contexts.
    pub prefix_misses: u64,
    /// Prefix-transform cache evictions (LRU + oversize rejects).
    pub prefix_evictions: u64,
    /// Transform invocations the prefix hits skipped.
    pub prefix_steps_saved: u64,
    /// Trials preloaded from the durable trial store
    /// ([`autofp_core::TrialStore`]) into context caches at
    /// materialization; 0 when the worker runs without `--trial-store`.
    pub preloaded: u64,
}

/// A client-to-worker message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Ask for the context's baseline accuracy and training-row count
    /// (materializes the context on the worker).
    Describe(EvalContext),
    /// Evaluate one pipeline at a training-budget fraction.
    Eval {
        /// The evaluation context.
        ctx: EvalContext,
        /// The pipeline to evaluate (kinds and parameters).
        pipeline: Pipeline,
        /// Training-budget fraction in `[0, 1]`.
        fraction: f64,
    },
    /// Ask for the worker's cumulative [`WorkerStats`].
    Stats,
    /// Ask the worker to stop accepting connections and exit.
    Shutdown,
    /// Cheap health probe: answers with the worker's fleet epoch and
    /// load counters without touching any evaluation context.
    Health,
    /// Publish a new fleet spec to the worker (supervisor -> worker on
    /// membership change). The worker adopts it if not stale.
    SetFleet(FleetSpec),
}

/// A worker-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness answer.
    Pong,
    /// Answer to [`Request::Describe`].
    Described {
        /// Validation accuracy of the empty pipeline (no-FP baseline).
        baseline_accuracy: f64,
        /// Training rows the context's evaluator fits on.
        train_rows: u64,
    },
    /// Answer to [`Request::Eval`]: the finished trial (worst-error
    /// trials included — their [`FailureKind`] rides on the trial) and
    /// a stats snapshot taken after serving it.
    Trial {
        /// The evaluated (or worst-error) trial.
        trial: Trial,
        /// Worker counters after this request.
        stats: WorkerStats,
    },
    /// Answer to [`Request::Stats`].
    Stats(WorkerStats),
    /// The request could not be served (unknown dataset, malformed
    /// frame reflected back, ...).
    Error(EvalError),
    /// Answer to [`Request::Health`].
    Health {
        /// Epoch of the fleet spec the worker holds (0 until told).
        epoch: u64,
        /// Evaluation requests handled so far.
        served: u64,
        /// Distinct evaluation contexts materialized.
        contexts: u64,
    },
    /// Answer to [`Request::SetFleet`]: the epoch the worker holds
    /// after considering the published spec (equal to the published
    /// epoch when adopted, higher when the publish was stale).
    FleetAck {
        /// The worker's post-publish fleet epoch.
        epoch: u64,
    },
}

fn transport(detail: impl Into<String>) -> EvalError {
    EvalError::Transport { detail: detail.into() }
}

// ---------------------------------------------------------------- frames

/// Write one frame (`u32` LE length + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), EvalError> {
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(transport(format!("frame of {} bytes exceeds MAX_FRAME", payload.len())));
    }
    let len = (payload.len() as u32).to_le_bytes();
    w.write_all(&len).map_err(|e| transport(format!("write frame length: {e}")))?;
    w.write_all(payload).map_err(|e| transport(format!("write frame payload: {e}")))?;
    w.flush().map_err(|e| transport(format!("flush frame: {e}")))?;
    Ok(())
}

/// Read one frame. `Ok(None)` on a clean end-of-stream (no bytes at a
/// frame boundary); [`EvalError::Transport`] on a torn or oversized
/// frame.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, EvalError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        // lint:allow(panic-reach): `got < 4` loop guard bounds the range start within the 4-byte array
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(transport("connection closed inside a frame length")),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                if got == 0 {
                    return Err(transport(format!("read frame length: {e}")));
                }
                return Err(transport(format!("read frame length (torn): {e}")));
            }
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(transport(format!("frame length {len} exceeds MAX_FRAME")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| transport(format!("read frame payload: {e}")))?;
    Ok(Some(payload))
}

// ------------------------------------------------------------- encoding

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(tag: u8) -> Enc {
        Enc { buf: vec![tag] }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
            None => self.u8(0),
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], EvalError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| transport(format!("truncated frame reading {what}")))?;
        // lint:allow(panic-reach): checked_add + `end <= buf.len()` above make the range provably in bounds
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self, what: &str) -> Result<u8, EvalError> {
        Ok(self.take(1, what)?[0])
    }
    fn u32(&mut self, what: &str) -> Result<u32, EvalError> {
        let b = self.take(4, what)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }
    fn u64(&mut self, what: &str) -> Result<u64, EvalError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    fn f64(&mut self, what: &str) -> Result<f64, EvalError> {
        Ok(f64::from_bits(self.u64(what)?))
    }
    fn string(&mut self, what: &str) -> Result<String, EvalError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| transport(format!("invalid UTF-8 in {what}")))
    }
    fn opt_u64(&mut self, what: &str) -> Result<Option<u64>, EvalError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.u64(what)?)),
            flag => Err(transport(format!("bad Option flag {flag} in {what}"))),
        }
    }
    fn finish(self, what: &str) -> Result<(), EvalError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(transport(format!(
                "{} trailing bytes after {what}",
                self.buf.len() - self.pos
            )))
        }
    }
}

// --------------------------------------------------------- field codecs

fn enc_context(e: &mut Enc, ctx: &EvalContext) {
    e.string(&ctx.dataset);
    e.f64(ctx.scale);
    e.u8(model_code(ctx.model));
    e.f64(ctx.train_fraction);
    e.u64(ctx.seed);
    e.opt_u64(ctx.train_subsample);
}

fn dec_context(d: &mut Dec) -> Result<EvalContext, EvalError> {
    Ok(EvalContext {
        dataset: d.string("context dataset")?,
        scale: d.f64("context scale")?,
        model: dec_model(d.u8("context model")?)?,
        train_fraction: d.f64("context train_fraction")?,
        seed: d.u64("context seed")?,
        train_subsample: d.opt_u64("context train_subsample")?,
    })
}

fn model_code(m: ModelKind) -> u8 {
    // ALL is tiny and total over the enum, so the position exists.
    ModelKind::ALL.iter().position(|&k| k == m).map_or(0, |i| i as u8)
}

fn dec_model(code: u8) -> Result<ModelKind, EvalError> {
    ModelKind::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| transport(format!("bad model code {code}")))
}

fn enc_pipeline(e: &mut Enc, pipeline: &Pipeline) {
    e.u32(pipeline.len() as u32);
    for step in pipeline.steps() {
        e.u8(step.kind().index() as u8);
        match step {
            Preproc::Binarizer { threshold } => e.f64(*threshold),
            Preproc::MaxAbsScaler | Preproc::MinMaxScaler => {}
            Preproc::Normalizer { norm } => e.u8(match norm {
                Norm::L1 => 0,
                Norm::L2 => 1,
                Norm::Max => 2,
            }),
            Preproc::PowerTransformer { standardize } => e.u8(u8::from(*standardize)),
            Preproc::QuantileTransformer { n_quantiles, output } => {
                e.u64(*n_quantiles as u64);
                e.u8(match output {
                    OutputDist::Uniform => 0,
                    OutputDist::Normal => 1,
                });
            }
            Preproc::StandardScaler { with_mean } => e.u8(u8::from(*with_mean)),
        }
    }
}

fn dec_pipeline(d: &mut Dec) -> Result<Pipeline, EvalError> {
    let n = d.u32("pipeline length")?;
    if n > MAX_STEPS {
        return Err(transport(format!("pipeline of {n} steps exceeds MAX_STEPS")));
    }
    let mut steps = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let code = d.u8("step kind")? as usize;
        if code >= PreprocKind::ALL.len() {
            return Err(transport(format!("bad preprocessor code {code}")));
        }
        let kind = PreprocKind::from_index(code);
        let step = match kind {
            PreprocKind::Binarizer => Preproc::Binarizer { threshold: d.f64("Binarizer threshold")? },
            PreprocKind::MaxAbsScaler => Preproc::MaxAbsScaler,
            PreprocKind::MinMaxScaler => Preproc::MinMaxScaler,
            PreprocKind::Normalizer => Preproc::Normalizer {
                norm: match d.u8("Normalizer norm")? {
                    0 => Norm::L1,
                    1 => Norm::L2,
                    2 => Norm::Max,
                    v => return Err(transport(format!("bad norm code {v}"))),
                },
            },
            PreprocKind::PowerTransformer => {
                Preproc::PowerTransformer { standardize: dec_bool(d, "PowerTransformer standardize")? }
            }
            PreprocKind::QuantileTransformer => Preproc::QuantileTransformer {
                n_quantiles: d.u64("QuantileTransformer n_quantiles")? as usize,
                output: match d.u8("QuantileTransformer output")? {
                    0 => OutputDist::Uniform,
                    1 => OutputDist::Normal,
                    v => return Err(transport(format!("bad output-dist code {v}"))),
                },
            },
            PreprocKind::StandardScaler => {
                Preproc::StandardScaler { with_mean: dec_bool(d, "StandardScaler with_mean")? }
            }
        };
        steps.push(step);
    }
    Ok(Pipeline::new(steps))
}

fn dec_bool(d: &mut Dec, what: &str) -> Result<bool, EvalError> {
    match d.u8(what)? {
        0 => Ok(false),
        1 => Ok(true),
        v => Err(transport(format!("bad bool {v} in {what}"))),
    }
}

fn failure_code(kind: FailureKind) -> u8 {
    FailureKind::ALL.iter().position(|&k| k == kind).map_or(0, |i| i as u8)
}

fn dec_failure(code: u8) -> Result<FailureKind, EvalError> {
    FailureKind::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| transport(format!("bad failure code {code}")))
}

fn enc_trial(e: &mut Enc, t: &Trial) {
    enc_pipeline(e, &t.pipeline);
    e.f64(t.accuracy);
    e.f64(t.error);
    e.u64(duration_nanos(t.prep_time));
    e.u64(duration_nanos(t.train_time));
    e.f64(t.train_fraction);
    match t.failure {
        Some(kind) => {
            e.u8(1);
            e.u8(failure_code(kind));
        }
        None => e.u8(0),
    }
}

fn dec_trial(d: &mut Dec) -> Result<Trial, EvalError> {
    let pipeline = dec_pipeline(d)?;
    let accuracy = d.f64("trial accuracy")?;
    let error = d.f64("trial error")?;
    let prep_time = Duration::from_nanos(d.u64("trial prep_time")?);
    let train_time = Duration::from_nanos(d.u64("trial train_time")?);
    let train_fraction = d.f64("trial train_fraction")?;
    let failure = match d.u8("trial failure flag")? {
        0 => None,
        1 => Some(dec_failure(d.u8("trial failure kind")?)?),
        v => return Err(transport(format!("bad failure flag {v}"))),
    };
    Ok(Trial { pipeline, accuracy, error, prep_time, train_time, train_fraction, failure })
}

fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn enc_stats(e: &mut Enc, s: &WorkerStats) {
    e.u64(s.served);
    e.u64(s.contexts);
    e.u64(s.hits);
    e.u64(s.misses);
    e.u64(s.entries);
    e.u64(s.evictions);
    e.u64(s.saved_nanos);
    e.u64(s.prefix_hits);
    e.u64(s.prefix_misses);
    e.u64(s.prefix_evictions);
    e.u64(s.prefix_steps_saved);
    e.u64(s.preloaded);
}

fn dec_stats(d: &mut Dec) -> Result<WorkerStats, EvalError> {
    Ok(WorkerStats {
        served: d.u64("stats served")?,
        contexts: d.u64("stats contexts")?,
        hits: d.u64("stats hits")?,
        misses: d.u64("stats misses")?,
        entries: d.u64("stats entries")?,
        evictions: d.u64("stats evictions")?,
        saved_nanos: d.u64("stats saved_nanos")?,
        prefix_hits: d.u64("stats prefix_hits")?,
        prefix_misses: d.u64("stats prefix_misses")?,
        prefix_evictions: d.u64("stats prefix_evictions")?,
        prefix_steps_saved: d.u64("stats prefix_steps_saved")?,
        preloaded: d.u64("stats preloaded")?,
    })
}

fn enc_fleet_spec(e: &mut Enc, spec: &FleetSpec) {
    e.u64(spec.epoch);
    e.u32(spec.addrs.len() as u32);
    for addr in &spec.addrs {
        e.string(addr);
    }
}

fn dec_fleet_spec(d: &mut Dec) -> Result<FleetSpec, EvalError> {
    let epoch = d.u64("fleet epoch")?;
    let n = d.u32("fleet size")?;
    if n > MAX_FLEET {
        return Err(transport(format!("fleet of {n} workers exceeds MAX_FLEET")));
    }
    let mut addrs = Vec::with_capacity(n as usize);
    for _ in 0..n {
        addrs.push(d.string("fleet addr")?);
    }
    Ok(FleetSpec { epoch, addrs })
}

fn enc_error(e: &mut Enc, err: &EvalError) {
    match err {
        EvalError::NonFiniteTransform { detail } => {
            e.u8(0);
            e.string(detail);
        }
        EvalError::DegenerateMatrix { detail } => {
            e.u8(1);
            e.string(detail);
        }
        EvalError::TrainerDiverged { detail } => {
            e.u8(2);
            e.string(detail);
        }
        EvalError::Panic { message } => {
            e.u8(3);
            e.string(message);
        }
        EvalError::DeadlineExceeded => e.u8(4),
        EvalError::Transport { detail } => {
            e.u8(5);
            e.string(detail);
        }
    }
}

fn dec_error(d: &mut Dec) -> Result<EvalError, EvalError> {
    Ok(match d.u8("error tag")? {
        0 => EvalError::NonFiniteTransform { detail: d.string("error detail")? },
        1 => EvalError::DegenerateMatrix { detail: d.string("error detail")? },
        2 => EvalError::TrainerDiverged { detail: d.string("error detail")? },
        3 => EvalError::Panic { message: d.string("error detail")? },
        4 => EvalError::DeadlineExceeded,
        5 => EvalError::Transport { detail: d.string("error detail")? },
        tag => return Err(transport(format!("bad error tag {tag}"))),
    })
}

// ------------------------------------------------------------- messages

const REQ_PING: u8 = 0;
const REQ_DESCRIBE: u8 = 1;
const REQ_EVAL: u8 = 2;
const REQ_STATS: u8 = 3;
const REQ_SHUTDOWN: u8 = 4;
const REQ_HEALTH: u8 = 5;
const REQ_SET_FLEET: u8 = 6;

const RESP_PONG: u8 = 0;
const RESP_DESCRIBED: u8 = 1;
const RESP_TRIAL: u8 = 2;
const RESP_STATS: u8 = 3;
const RESP_ERROR: u8 = 4;
const RESP_HEALTH: u8 = 5;
const RESP_FLEET_ACK: u8 = 6;

/// Canonical bytes of a [`Request`].
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Ping => Enc::new(REQ_PING).buf,
        Request::Describe(ctx) => {
            let mut e = Enc::new(REQ_DESCRIBE);
            enc_context(&mut e, ctx);
            e.buf
        }
        Request::Eval { ctx, pipeline, fraction } => {
            let mut e = Enc::new(REQ_EVAL);
            enc_context(&mut e, ctx);
            enc_pipeline(&mut e, pipeline);
            e.f64(*fraction);
            e.buf
        }
        Request::Stats => Enc::new(REQ_STATS).buf,
        Request::Shutdown => Enc::new(REQ_SHUTDOWN).buf,
        Request::Health => Enc::new(REQ_HEALTH).buf,
        Request::SetFleet(spec) => {
            let mut e = Enc::new(REQ_SET_FLEET);
            enc_fleet_spec(&mut e, spec);
            e.buf
        }
    }
}

/// Decode a [`Request`] payload (total: corrupt input is an `Err`).
pub fn decode_request(payload: &[u8]) -> Result<Request, EvalError> {
    let mut d = Dec::new(payload);
    let req = match d.u8("request tag")? {
        REQ_PING => Request::Ping,
        REQ_DESCRIBE => Request::Describe(dec_context(&mut d)?),
        REQ_EVAL => {
            let ctx = dec_context(&mut d)?;
            let pipeline = dec_pipeline(&mut d)?;
            let fraction = d.f64("eval fraction")?;
            Request::Eval { ctx, pipeline, fraction }
        }
        REQ_STATS => Request::Stats,
        REQ_SHUTDOWN => Request::Shutdown,
        REQ_HEALTH => Request::Health,
        REQ_SET_FLEET => Request::SetFleet(dec_fleet_spec(&mut d)?),
        tag => return Err(transport(format!("bad request tag {tag}"))),
    };
    d.finish("request")?;
    Ok(req)
}

/// Canonical bytes of a [`Response`].
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Pong => Enc::new(RESP_PONG).buf,
        Response::Described { baseline_accuracy, train_rows } => {
            let mut e = Enc::new(RESP_DESCRIBED);
            e.f64(*baseline_accuracy);
            e.u64(*train_rows);
            e.buf
        }
        Response::Trial { trial, stats } => {
            let mut e = Enc::new(RESP_TRIAL);
            enc_trial(&mut e, trial);
            enc_stats(&mut e, stats);
            e.buf
        }
        Response::Stats(stats) => {
            let mut e = Enc::new(RESP_STATS);
            enc_stats(&mut e, stats);
            e.buf
        }
        Response::Error(err) => {
            let mut e = Enc::new(RESP_ERROR);
            enc_error(&mut e, err);
            e.buf
        }
        Response::Health { epoch, served, contexts } => {
            let mut e = Enc::new(RESP_HEALTH);
            e.u64(*epoch);
            e.u64(*served);
            e.u64(*contexts);
            e.buf
        }
        Response::FleetAck { epoch } => {
            let mut e = Enc::new(RESP_FLEET_ACK);
            e.u64(*epoch);
            e.buf
        }
    }
}

/// Decode a [`Response`] payload (total: corrupt input is an `Err`).
pub fn decode_response(payload: &[u8]) -> Result<Response, EvalError> {
    let mut d = Dec::new(payload);
    let resp = match d.u8("response tag")? {
        RESP_PONG => Response::Pong,
        RESP_DESCRIBED => Response::Described {
            baseline_accuracy: d.f64("described baseline")?,
            train_rows: d.u64("described train_rows")?,
        },
        RESP_TRIAL => {
            let trial = dec_trial(&mut d)?;
            let stats = dec_stats(&mut d)?;
            Response::Trial { trial, stats }
        }
        RESP_STATS => Response::Stats(dec_stats(&mut d)?),
        RESP_ERROR => Response::Error(dec_error(&mut d)?),
        RESP_HEALTH => Response::Health {
            epoch: d.u64("health epoch")?,
            served: d.u64("health served")?,
            contexts: d.u64("health contexts")?,
        },
        RESP_FLEET_ACK => Response::FleetAck { epoch: d.u64("fleet ack epoch")? },
        tag => return Err(transport(format!("bad response tag {tag}"))),
    };
    d.finish("response")?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> EvalContext {
        EvalContext {
            dataset: "heart".to_string(),
            scale: 0.05,
            model: ModelKind::Xgb,
            train_fraction: 0.8,
            seed: 11,
            train_subsample: Some(64),
        }
    }

    fn every_step_pipeline() -> Pipeline {
        Pipeline::new(vec![
            Preproc::Binarizer { threshold: 0.25 },
            Preproc::MaxAbsScaler,
            Preproc::MinMaxScaler,
            Preproc::Normalizer { norm: Norm::Max },
            Preproc::PowerTransformer { standardize: false },
            Preproc::QuantileTransformer { n_quantiles: 77, output: OutputDist::Normal },
            Preproc::StandardScaler { with_mean: false },
        ])
    }

    fn trial() -> Trial {
        Trial {
            pipeline: every_step_pipeline(),
            accuracy: 0.8125,
            error: 0.1875,
            prep_time: Duration::from_nanos(123_456_789),
            train_time: Duration::from_nanos(987_654_321),
            train_fraction: 0.5,
            failure: Some(FailureKind::Transport),
        }
    }

    fn stats() -> WorkerStats {
        WorkerStats {
            served: 10,
            contexts: 2,
            hits: 4,
            misses: 6,
            entries: 6,
            evictions: 1,
            saved_nanos: 42_000,
            prefix_hits: 9,
            prefix_misses: 3,
            prefix_evictions: 2,
            prefix_steps_saved: 17,
            preloaded: 5,
        }
    }

    fn fleet_spec() -> FleetSpec {
        FleetSpec {
            epoch: 7,
            addrs: vec!["127.0.0.1:4101".to_string(), "127.0.0.1:4102".to_string()],
        }
    }

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Describe(ctx()),
            Request::Eval { ctx: ctx(), pipeline: every_step_pipeline(), fraction: 0.25 },
            Request::Stats,
            Request::Shutdown,
            Request::Health,
            Request::SetFleet(fleet_spec()),
            Request::SetFleet(FleetSpec::default()),
        ]
    }

    fn all_responses() -> Vec<Response> {
        let mut errors: Vec<EvalError> = vec![
            EvalError::NonFiniteTransform { detail: "a".into() },
            EvalError::DegenerateMatrix { detail: "b".into() },
            EvalError::TrainerDiverged { detail: "c".into() },
            EvalError::Panic { message: "d".into() },
            EvalError::DeadlineExceeded,
            EvalError::Transport { detail: "e".into() },
        ];
        let mut out = vec![
            Response::Pong,
            Response::Described { baseline_accuracy: 0.5, train_rows: 193 },
            Response::Trial { trial: trial(), stats: stats() },
            Response::Stats(stats()),
            Response::Health { epoch: 7, served: 41, contexts: 3 },
            Response::FleetAck { epoch: 9 },
        ];
        out.extend(errors.drain(..).map(Response::Error));
        out
    }

    #[test]
    fn every_request_round_trips_bit_exactly() {
        for req in all_requests() {
            let bytes = encode_request(&req);
            let back = decode_request(&bytes).expect("decode");
            assert_eq!(back, req);
            // Canonical: re-encoding the decoded value reproduces the
            // exact bytes.
            assert_eq!(encode_request(&back), bytes);
        }
    }

    #[test]
    fn every_response_round_trips_bit_exactly() {
        for resp in all_responses() {
            let bytes = encode_response(&resp);
            let back = decode_response(&bytes).expect("decode");
            assert_eq!(back, resp);
            assert_eq!(encode_response(&back), bytes);
        }
    }

    /// Golden bytes: the wire format is a compatibility surface — a
    /// silent encoding change would strand every deployed worker.
    /// These constants were transcribed from known-good encodings.
    #[test]
    fn golden_bytes_are_locked() {
        assert_eq!(encode_request(&Request::Ping), vec![0u8]);
        assert_eq!(encode_request(&Request::Stats), vec![3u8]);
        assert_eq!(encode_request(&Request::Shutdown), vec![4u8]);
        assert_eq!(encode_response(&Response::Pong), vec![0u8]);

        // Describe(heart, scale 0.05, XGB, tf 0.8, seed 11, sub 64):
        let describe = encode_request(&Request::Describe(ctx()));
        let mut expect: Vec<u8> = vec![1];
        expect.extend_from_slice(&5u32.to_le_bytes());
        expect.extend_from_slice(b"heart");
        expect.extend_from_slice(&0.05f64.to_bits().to_le_bytes());
        expect.push(1); // XGB = ModelKind::ALL[1]
        expect.extend_from_slice(&0.8f64.to_bits().to_le_bytes());
        expect.extend_from_slice(&11u64.to_le_bytes());
        expect.push(1);
        expect.extend_from_slice(&64u64.to_le_bytes());
        assert_eq!(describe, expect);

        // A one-step Eval: StandardScaler(with_mean=true) @ 1.0.
        let eval = encode_request(&Request::Eval {
            ctx: ctx(),
            pipeline: Pipeline::from_kinds(&[PreprocKind::StandardScaler]),
            fraction: 1.0,
        });
        let mut expect: Vec<u8> = vec![2];
        expect.extend_from_slice(&describe[1..]); // same context bytes
        expect.extend_from_slice(&1u32.to_le_bytes()); // 1 step
        expect.push(6); // StandardScaler = PreprocKind::ALL[6]
        expect.push(1); // with_mean = true
        expect.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        assert_eq!(eval, expect);

        // Error response carrying a Transport error.
        let err = encode_response(&Response::Error(EvalError::Transport { detail: "x".into() }));
        assert_eq!(err, vec![4, 5, 1, 0, 0, 0, b'x']);

        // Health probe and answer.
        assert_eq!(encode_request(&Request::Health), vec![5u8]);
        let health = encode_response(&Response::Health { epoch: 7, served: 41, contexts: 3 });
        let mut expect: Vec<u8> = vec![5];
        expect.extend_from_slice(&7u64.to_le_bytes());
        expect.extend_from_slice(&41u64.to_le_bytes());
        expect.extend_from_slice(&3u64.to_le_bytes());
        assert_eq!(health, expect);

        // SetFleet(epoch 7, two addrs) and its ack.
        let set = encode_request(&Request::SetFleet(fleet_spec()));
        let mut expect: Vec<u8> = vec![6];
        expect.extend_from_slice(&7u64.to_le_bytes());
        expect.extend_from_slice(&2u32.to_le_bytes());
        for addr in &fleet_spec().addrs {
            expect.extend_from_slice(&(addr.len() as u32).to_le_bytes());
            expect.extend_from_slice(addr.as_bytes());
        }
        assert_eq!(set, expect);
        let ack = encode_response(&Response::FleetAck { epoch: 9 });
        let mut expect: Vec<u8> = vec![6];
        expect.extend_from_slice(&9u64.to_le_bytes());
        assert_eq!(ack, expect);
    }

    #[test]
    fn oversized_fleet_spec_is_rejected() {
        // Hand-build a SetFleet frame claiming MAX_FLEET + 1 addresses;
        // the decoder must reject it on the count, before reading them.
        let mut bytes: Vec<u8> = vec![6];
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&(MAX_FLEET + 1).to_le_bytes());
        let err = decode_request(&bytes).unwrap_err();
        assert!(format!("{err}").contains("MAX_FLEET"), "{err}");
    }

    #[test]
    fn truncated_and_corrupt_frames_error_without_panic() {
        // Every prefix of every valid message must decode to an error
        // (or, for proper prefixes that happen to parse, at least not
        // panic — the `finish` check rejects trailing bytes instead).
        for req in all_requests() {
            let bytes = encode_request(&req);
            for cut in 0..bytes.len() {
                assert!(
                    decode_request(&bytes[..cut]).is_err(),
                    "prefix of {req:?} at {cut} decoded"
                );
            }
        }
        for resp in all_responses() {
            let bytes = encode_response(&resp);
            for cut in 0..bytes.len() {
                assert!(
                    decode_response(&bytes[..cut]).is_err(),
                    "prefix of {resp:?} at {cut} decoded"
                );
            }
        }
        // Corrupt tags and fields.
        assert!(decode_request(&[99]).is_err());
        assert!(decode_response(&[99]).is_err());
        assert!(decode_request(&[]).is_err());
        // Bad model code inside Describe.
        let mut bytes = encode_request(&Request::Describe(ctx()));
        bytes[1 + 4 + 5 + 8] = 250; // model byte
        assert!(decode_request(&bytes).is_err());
        // Trailing garbage is rejected.
        let mut bytes = encode_request(&Request::Ping);
        bytes.push(0);
        assert!(decode_request(&bytes).is_err());
        // A string length pointing past the buffer.
        let mut bytes = encode_request(&Request::Describe(ctx()));
        bytes[1] = 255; // dataset length LSB
        assert!(decode_request(&bytes).is_err());
    }

    #[test]
    fn corrupt_bytes_never_panic_exhaustively() {
        // Flip every byte of a rich message to a handful of values; the
        // decoder must return (Ok or Err), never panic.
        let bytes = encode_response(&Response::Trial { trial: trial(), stats: stats() });
        for i in 0..bytes.len() {
            for v in [0u8, 1, 2, 127, 255] {
                let mut mutated = bytes.clone();
                mutated[i] = v;
                let _ = decode_response(&mutated);
            }
        }
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let payload = encode_request(&Request::Eval {
            ctx: ctx(),
            pipeline: every_step_pipeline(),
            fraction: 0.75,
        });
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).expect("write");
        write_frame(&mut buf, &encode_request(&Request::Ping)).expect("write");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).expect("frame 1"), Some(payload));
        assert_eq!(read_frame(&mut r).expect("frame 2"), Some(vec![0u8]));
        assert_eq!(read_frame(&mut r).expect("eof"), None);

        // Oversized length prefix is rejected before allocation.
        let huge = (MAX_FRAME + 1).to_le_bytes();
        let mut r = &huge[..];
        assert!(read_frame(&mut r).is_err());
        // A torn length prefix is an error, not EOF.
        let torn = [1u8, 0];
        let mut r = &torn[..];
        assert!(read_frame(&mut r).is_err());
        // A torn payload is an error.
        let mut torn_payload = Vec::new();
        write_frame(&mut torn_payload, &[1, 2, 3, 4]).expect("write");
        torn_payload.pop();
        let mut r = &torn_payload[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn context_canonical_distinguishes_every_field() {
        let base = ctx();
        let variants = [
            EvalContext { dataset: "pd".into(), ..base.clone() },
            EvalContext { scale: 0.1, ..base.clone() },
            EvalContext { model: ModelKind::Lr, ..base.clone() },
            EvalContext { train_fraction: 0.7, ..base.clone() },
            EvalContext { seed: 12, ..base.clone() },
            EvalContext { train_subsample: None, ..base.clone() },
        ];
        for v in &variants {
            assert_ne!(v.canonical(), base.canonical(), "{v:?}");
        }
        assert_eq!(base.canonical(), ctx().canonical());
    }
}
