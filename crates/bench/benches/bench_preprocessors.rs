//! Microbenchmarks of the seven preprocessors, plus the DESIGN.md
//! ablations: Yeo-Johnson λ-search cost and QuantileTransformer
//! resolution. These costs are the "Prep" phase of Figure 7.

use autofp_data::SynthConfig;
use autofp_preprocess::power::optimal_lambda;
use autofp_preprocess::{OutputDist, Preproc, PreprocKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_each_preprocessor(c: &mut Criterion) {
    let dataset = SynthConfig::new("bench-prep", 1000, 20, 2, 5).generate();
    let mut group = c.benchmark_group("preprocessor_fit_transform_1000x20");
    group.sample_size(20);
    for kind in PreprocKind::ALL {
        let p = Preproc::default_for(kind);
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut x = dataset.x.clone();
                let fitted = p.fit_transform(&mut x);
                black_box((fitted, x))
            })
        });
    }
    group.finish();
}

fn bench_yeo_johnson_lambda(c: &mut Criterion) {
    let mut group = c.benchmark_group("yeo_johnson_lambda_search");
    group.sample_size(20);
    for n in [100usize, 1000, 10_000] {
        let col: Vec<f64> = (0..n).map(|i| ((i * 37 % 101) as f64 / 10.0).exp()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &col, |b, col| {
            b.iter(|| black_box(optimal_lambda(col)))
        });
    }
    group.finish();
}

fn bench_quantile_resolution(c: &mut Criterion) {
    let dataset = SynthConfig::new("bench-q", 2000, 10, 2, 7).generate();
    let mut group = c.benchmark_group("quantile_transformer_resolution");
    group.sample_size(20);
    for q in [10usize, 100, 1000] {
        let p = Preproc::QuantileTransformer { n_quantiles: q, output: OutputDist::Uniform };
        group.bench_with_input(BenchmarkId::from_parameter(q), &p, |b, p| {
            b.iter(|| {
                let mut x = dataset.x.clone();
                black_box(p.fit_transform(&mut x));
                black_box(&x);
            })
        });
    }
    group.finish();
}

fn bench_pipeline_depth(c: &mut Criterion) {
    // Cost growth with pipeline length (scalers only, so the growth is
    // the composition overhead itself).
    let dataset = SynthConfig::new("bench-depth", 1000, 20, 2, 9).generate();
    let mut group = c.benchmark_group("pipeline_length");
    group.sample_size(20);
    for len in [1usize, 3, 7] {
        let kinds = vec![PreprocKind::StandardScaler; len];
        let p = autofp_preprocess::Pipeline::from_kinds(&kinds);
        group.bench_with_input(BenchmarkId::from_parameter(len), &p, |b, p| {
            b.iter(|| black_box(p.fit_transform(&dataset.x)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_each_preprocessor,
    bench_yeo_johnson_lambda,
    bench_quantile_resolution,
    bench_pipeline_depth
);
criterion_main!(benches);
