//! Serving-path throughput: rows/second through a fitted artifact,
//! single-thread versus pooled, at several batch sizes.
//!
//! The scenario is the fit-once / serve-many deployment: one exported
//! (pipeline, model) winner answering batched prediction requests. The
//! pipeline is the four-step worst case (standard → power → quantile →
//! min-max) so the prep share of serving cost is realistic, and a
//! slice of malformed rows rides along to price the quarantine path.
//!
//! Run with `cargo bench -p autofp-bench --bench bench_serve`.
//! The run asserts pooled serving is bit-identical to single-thread
//! serving (the engine's fixed-chunk guarantee) before reporting.

use autofp_core::EvalConfig;
use autofp_data::{Personality, SynthConfig};
use autofp_models::classifier::ModelKind;
use autofp_preprocess::{Pipeline, PreprocKind};
use autofp_serve::{fit_artifact, BatchReport, ServeEngine};
use std::time::{Duration, Instant};

const ROUNDS: usize = 3;
const THREADS: usize = 8;
const FEATURES: usize = 12;

fn measure<F: FnMut() -> BatchReport>(mut f: F) -> (Duration, BatchReport) {
    let mut out = f(); // warm-up round (page in data, prime allocator)
    let start = Instant::now();
    for _ in 0..ROUNDS {
        out = f();
    }
    (start.elapsed() / ROUNDS as u32, out)
}

fn main() {
    let mut p = Personality::default();
    p.scale_spread = 5.0;
    p.skew = 0.3;
    let dataset = SynthConfig::new("serve-bench", 2_000, FEATURES, 3, 11)
        .with_personality(p)
        .generate();
    let pipeline = Pipeline::from_kinds(&[
        PreprocKind::StandardScaler,
        PreprocKind::PowerTransformer,
        PreprocKind::QuantileTransformer,
        PreprocKind::MinMaxScaler,
    ]);
    let config = EvalConfig { model: ModelKind::Lr, seed: 11, ..Default::default() };
    let artifact = fit_artifact(&dataset, &pipeline, &config).expect("export fits");
    println!(
        "artifact: pipeline `{}`, model {}, {} features, accuracy {:.4}",
        artifact.meta.pipeline_key, artifact.meta.model, artifact.meta.n_features,
        artifact.meta.accuracy
    );
    let engine = ServeEngine::new(artifact);

    // Request rows cycled from the dataset, with 1-in-32 malformed so
    // the quarantine branch is priced in.
    let make_rows = |n: usize| -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let mut row = dataset.x.row(i % dataset.x.nrows()).to_vec();
                if i % 32 == 31 {
                    row[i % FEATURES] = f64::NAN;
                }
                row
            })
            .collect()
    };

    println!(
        "\n{:>8}  {:>14}  {:>14}  {:>8}",
        "batch", "1 thread", format!("{THREADS} threads"), "speedup"
    );
    for batch in [64usize, 1_024, 16_384] {
        let rows = make_rows(batch);
        let (single, single_out) = measure(|| engine.predict_batch(&rows, 1));
        let (pooled, pooled_out) = measure(|| engine.predict_batch(&rows, THREADS));
        assert_eq!(
            single_out.outcomes, pooled_out.outcomes,
            "pooled serving must be bit-identical to single-thread serving"
        );
        let single_rps = batch as f64 / single.as_secs_f64();
        let pooled_rps = batch as f64 / pooled.as_secs_f64();
        println!(
            "{:>8}  {:>10.0} r/s  {:>10.0} r/s  {:>7.2}x",
            batch,
            single_rps,
            pooled_rps,
            single.as_secs_f64() / pooled.as_secs_f64(),
        );
    }
    println!("\nok: pooled outcomes bit-identical to single-thread at every batch size");
}
